//! End-to-end integration: analog characterization → parametrization →
//! model validation — the full Section V pipeline across `mis-analog`,
//! `mis-core` and `mis-num`.

use mis_delay::analog::measure::{self, RisingPrecondition};
use mis_delay::analog::transient::TransientOptions;
use mis_delay::analog::NorTech;
use mis_delay::core::charlie::CharacteristicDelays;
use mis_delay::core::{delay, fit, RisingInitialVn};
use mis_delay::waveform::units::{ps, to_ps};

fn calibration() -> (NorTech, TransientOptions, CharacteristicDelays) {
    let tech = NorTech::freepdk15_like();
    let tran = TransientOptions::default();
    let chars = measure::characteristic_delays(&tech, &tran).expect("characterization");
    (tech, tran, CharacteristicDelays::from_array(chars))
}

#[test]
fn full_fit_pipeline_produces_small_falling_error() {
    let (tech, tran, targets) = calibration();
    let dmin = (2.0 * targets.fall_zero - targets.fall_minus_inf).max(0.0);
    let outcome = fit::fit(
        &targets,
        &fit::FitConfig {
            delta_min: dmin,
            vdd: tech.vdd,
            vth: tech.vdd / 2.0,
            ..fit::FitConfig::default()
        },
    )
    .expect("fit");
    assert!(
        outcome.worst_residual() < 0.05,
        "characteristic-delay residuals must be within 5 %: {:?}",
        outcome.residuals
    );

    // Sweep validation: the fitted model must track the analog falling
    // curve within 1.5 ps everywhere (paper Fig. 5: 'very good fit').
    for &d_ps in &[-50.0, -25.0, -8.0, 0.0, 8.0, 25.0, 50.0] {
        let d = ps(d_ps);
        let model = delay::falling_delay(&outcome.params, d).expect("model delay");
        let analog = measure::falling_delay(&tech, d, &tran).expect("analog delay");
        assert!(
            (model - analog).abs() < ps(1.5),
            "Δ = {d_ps} ps: model {:.2} ps vs analog {:.2} ps",
            to_ps(model),
            to_ps(analog)
        );
    }
}

#[test]
fn rising_fit_matches_tails_but_misses_peak() {
    // The paper's documented limitation, reproduced quantitatively: with
    // V_N = GND the fitted model is accurate at the SIS tails yet cannot
    // produce the analog MIS peak at Δ ≈ 0.
    let (tech, tran, targets) = calibration();
    let dmin = (2.0 * targets.fall_zero - targets.fall_minus_inf).max(0.0);
    let params = fit::fit(
        &targets,
        &fit::FitConfig {
            delta_min: dmin,
            vdd: tech.vdd,
            vth: tech.vdd / 2.0,
            ..fit::FitConfig::default()
        },
    )
    .expect("fit")
    .params;

    // Tails within 2.5 ps.
    for &d_ps in &[-200.0, 200.0] {
        let d = ps(d_ps);
        let model = delay::rising_delay(&params, d, RisingInitialVn::Gnd).expect("model");
        let analog = measure::rising_delay(&tech, d, RisingPrecondition::WorstCaseGnd, &tran)
            .expect("analog");
        assert!(
            (model - analog).abs() < ps(2.5),
            "tail Δ = {d_ps}: {:.2} vs {:.2} ps",
            to_ps(model),
            to_ps(analog)
        );
    }
    // Peak missed: analog at Δ=0 exceeds its own tails; the model (Gnd)
    // is flat across Δ ≤ 0, so the analog–model gap at 0 must exceed the
    // tail gap by a clear margin.
    let model_0 = delay::rising_delay(&params, 0.0, RisingInitialVn::Gnd).expect("model");
    let analog_0 =
        measure::rising_delay(&tech, 0.0, RisingPrecondition::WorstCaseGnd, &tran).expect("analog");
    assert!(
        analog_0 - model_0 > ps(0.8),
        "the MIS peak should be visibly under-predicted: model {:.2} vs analog {:.2} ps",
        to_ps(model_0),
        to_ps(analog_0)
    );
}

#[test]
fn pure_delay_restores_feasibility_and_cuts_cost() {
    let (tech, _tran, targets) = calibration();
    let raw_ratio = fit::feasibility_ratio(&targets, 0.0).expect("ratio");
    assert!(
        raw_ratio < 1.95,
        "the raw technology ratio must be infeasible for matched nMOS (got {raw_ratio:.3})"
    );
    let dmin = (2.0 * targets.fall_zero - targets.fall_minus_inf).max(0.0);
    assert!(dmin > 0.0, "a positive pure delay is required");
    let fixed = fit::feasibility_ratio(&targets, dmin).expect("ratio");
    assert!((fixed - 2.0).abs() < 1e-9);

    let base_cfg = fit::FitConfig {
        vdd: tech.vdd,
        vth: tech.vdd / 2.0,
        ..fit::FitConfig::default()
    };
    let without = fit::fit(&targets, &base_cfg).expect("fit without");
    let with = fit::fit(
        &targets,
        &fit::FitConfig {
            delta_min: dmin,
            ..base_cfg
        },
    )
    .expect("fit with");
    assert!(
        with.cost < 0.5 * without.cost,
        "δ_min must cut the misfit at least in half: {:.3e} vs {:.3e}",
        with.cost,
        without.cost
    );
}

#[test]
fn fitted_parameters_have_physical_structure() {
    let (tech, _tran, targets) = calibration();
    let dmin = (2.0 * targets.fall_zero - targets.fall_minus_inf).max(0.0);
    let p = fit::fit(
        &targets,
        &fit::FitConfig {
            delta_min: dmin,
            vdd: tech.vdd,
            vth: tech.vdd / 2.0,
            ..fit::FitConfig::default()
        },
    )
    .expect("fit")
    .params;
    // Matched nMOS: R3 ≈ R4 (the ratio-2 rule makes this exact up to fit noise).
    assert!(
        (p.r3 / p.r4 - 1.0).abs() < 0.1,
        "R3 = {:.1} kΩ vs R4 = {:.1} kΩ",
        p.r3 / 1e3,
        p.r4 / 1e3
    );
    // Output load dominates the internal parasitic.
    assert!(p.co > 3.0 * p.cn, "C_O = {:e} vs C_N = {:e}", p.co, p.cn);
}
