//! Integration test of the Fig. 7 experiment at reduced scale: the
//! paper's qualitative claims must hold — the hybrid model with pure
//! delay clearly beats inertial delay on short-pulse traffic, and the
//! hybrid model *without* pure delay does not.

use mis_delay::analog::transient::TransientOptions;
use mis_delay::analog::NorTech;
use mis_delay::charlib::{CharConfig, CharLib};
use mis_delay::digital::accuracy::{run_experiment, ExperimentConfig};
use mis_delay::waveform::generate::{Assignment, TraceConfig};
use mis_delay::waveform::units::ps;

#[test]
fn fig7_orderings_hold_at_reduced_scale() {
    let cfg = ExperimentConfig {
        repetitions: 2,
        ..ExperimentConfig::calibrated(
            NorTech::freepdk15_like(),
            TransientOptions::default(),
            None,
            2,
        )
        .expect("calibration")
    };
    let configs = vec![
        TraceConfig::new(ps(100.0), ps(50.0), Assignment::Local, 60),
        TraceConfig::new(ps(2000.0), ps(1000.0), Assignment::Global, 40),
    ];
    let results = run_experiment(&cfg, &configs).expect("experiment");
    assert_eq!(results.len(), 2);

    let local = &results[0];
    let inertial = local.models[0].normalized_mean;
    let hm_without = local.models[2].normalized_mean;
    let hm_with = local.models[3].normalized_mean;
    assert!((inertial - 1.0).abs() < 1e-9, "baseline normalizes to 1");
    // Paper, short pulses: HM w/ δ_min less than ~half of inertial; HM
    // w/o δ_min worse than inertial.
    assert!(
        hm_with < 0.75,
        "HM with δ_min must clearly beat inertial on short pulses: {hm_with:.3}"
    );
    assert!(
        hm_without > hm_with * 1.5,
        "pure delay must matter on short pulses: {hm_without:.3} vs {hm_with:.3}"
    );

    // Broad pulses: every model's raw deviation is dominated by SIS
    // accuracy; the hybrid (fitted to SIS values) must not be worse than
    // the Exp-Channel.
    let global = &results[1];
    let exp = global.models[1].normalized_mean;
    let hm_with_g = global.models[3].normalized_mean;
    assert!(
        hm_with_g <= exp + 0.05,
        "on broad pulses the hybrid should at least match the Exp-Channel: \
         {hm_with_g:.3} vs {exp:.3}"
    );
}

#[test]
fn cached_channel_matches_exact_hybrid_within_budget_at_reduced_scale() {
    // The characterization acceptance check: in the reduced Fig. 7
    // experiment the cached fast-path channel's deviation area must stay
    // within the configured interpolation-error budget of the exact
    // hybrid channel — the budget is per scheduled edge, so the
    // per-trace allowance is the input transition count times the budget.
    let transitions = 40;
    let char_cfg = CharConfig::default();
    let lib = CharLib::nor(&mis_delay::core::NorParams::paper_table1(), &char_cfg)
        .expect("characterization");
    let cfg = ExperimentConfig {
        repetitions: 2,
        ..ExperimentConfig::default()
    }
    .with_cached_library(lib);
    let configs = vec![TraceConfig::new(
        ps(300.0),
        ps(100.0),
        Assignment::Local,
        transitions,
    )];
    let results = run_experiment(&cfg, &configs).expect("experiment");
    let models = &results[0].models;
    assert_eq!(models.len(), 5);
    let exact = models[3].raw_mean;
    let cached = models[4].raw_mean;
    let tol = transitions as f64 * char_cfg.budget;
    assert!(
        (cached - exact).abs() <= tol,
        "cached deviation area {cached:e} vs exact {exact:e} exceeds \
         {transitions} × budget = {tol:e}"
    );
}

#[test]
fn experiment_is_reproducible() {
    let cfg = ExperimentConfig {
        repetitions: 1,
        ..ExperimentConfig::default()
    };
    let configs = vec![TraceConfig::new(
        ps(300.0),
        ps(100.0),
        Assignment::Local,
        20,
    )];
    let r1 = run_experiment(&cfg, &configs).expect("run 1");
    let r2 = run_experiment(&cfg, &configs).expect("run 2");
    assert_eq!(r1[0].models, r2[0].models, "same seed → same scores");
}
