//! Cross-crate consistency: the same physics expressed through different
//! interfaces (stateless delay functions, the stateful channel, the
//! digital network, closed-form expressions) must agree.

use mis_delay::core::charlie;
use mis_delay::core::{delay, NorParams, RisingInitialVn};
use mis_delay::digital::{
    gates, involution, ExpChannel, HybridNorChannel, Network, SumExpChannel, TraceTransform,
    TwoInputTransform,
};
use mis_delay::waveform::units::{ps, to_ps};
use mis_delay::waveform::{deviation_area, DigitalTrace};

#[test]
fn channel_reproduces_delay_curve_over_full_sweep() {
    let params = NorParams::paper_table1();
    let ch = HybridNorChannel::new(&params).expect("channel");
    for i in 0..13 {
        let delta = ps(-60.0 + 10.0 * i as f64);
        let (ta, tb) = if delta >= 0.0 {
            (ps(300.0), ps(300.0) + delta)
        } else {
            (ps(300.0) - delta, ps(300.0))
        };
        let a = DigitalTrace::with_edges(false, vec![(ta, true)]).expect("trace");
        let b = DigitalTrace::with_edges(false, vec![(tb, true)]).expect("trace");
        let out = ch.apply2(&a, &b).expect("apply");
        assert_eq!(out.transition_count(), 1);
        let expected = ta.min(tb) + delay::falling_delay(&params, delta).expect("delay");
        assert!(
            (out.edges()[0].time - expected).abs() < ps(0.01),
            "Δ = {:.0} ps: channel {:.3} vs function {:.3} ps",
            to_ps(delta),
            to_ps(out.edges()[0].time),
            to_ps(expected)
        );
    }
}

#[test]
fn closed_forms_agree_with_delay_module() {
    let p = NorParams::paper_table1().without_pure_delay();
    let (fall_m, _) = delay::falling_sis(&p).expect("sis");
    assert!((charlie::fall_minus_inf_exact(&p) - fall_m).abs() < 1e-16);
    let fall_0 = delay::falling_delay(&p, 0.0).expect("delay");
    assert!((charlie::fall_zero_exact(&p) - fall_0).abs() < 1e-15);
    let approx = charlie::fall_plus_inf_approx_auto(&p).expect("approx");
    let (_, fall_p) = delay::falling_sis(&p).expect("sis");
    assert!((approx - fall_p).abs() < ps(0.1));
}

#[test]
fn network_gate_equals_direct_channel_application() {
    let params = NorParams::paper_table1();
    let mut net = Network::new();
    let a = net.add_input("a");
    let b = net.add_input("b");
    let y = net
        .add_two_input_channel_gate(
            "y",
            [a, b],
            Box::new(HybridNorChannel::new(&params).expect("channel")),
        )
        .expect("gate");
    let ta =
        DigitalTrace::with_edges(false, vec![(ps(200.0), true), (ps(600.0), false)]).expect("t");
    let tb =
        DigitalTrace::with_edges(false, vec![(ps(230.0), true), (ps(660.0), false)]).expect("t");
    let through_net = net.run(&[ta.clone(), tb.clone()]).expect("run");
    let direct = HybridNorChannel::new(&params)
        .expect("channel")
        .apply2(&ta, &tb)
        .expect("apply");
    assert_eq!(through_net[y.index()], direct);
}

#[test]
fn involution_channels_certified() {
    let exp = ExpChannel::from_sis_delays(ps(54.0), ps(38.0), ps(20.0)).expect("exp");
    let up = involution::check(|t| exp.delta_up(t), ps(-30.0), ps(300.0), 150);
    // For asymmetric channels the *pair* property is the axiom.
    let pair = involution::check(
        |t| {
            let d = exp.delta_up(t);
            if d.is_finite() {
                // encode pair check as a single function: T → δ↓(−δ↑(T))
                -exp.delta_down(-d)
            } else {
                f64::NAN
            }
        },
        ps(-30.0),
        ps(300.0),
        150,
    );
    // The raw single-direction check fails for asymmetric τ (expected);
    // the pair mapping must be the identity, i.e. δ-like with
    // −f(−f(T)) = T trivially since f(T) = −T ... verify directly instead:
    for &t in &[ps(-15.0), 0.0, ps(40.0)] {
        let d = exp.delta_up(t);
        assert!((-exp.delta_down(-d) - t).abs() < ps(1e-6));
    }
    let _ = (up, pair);

    let sumexp = SumExpChannel::from_sis_delay(ps(54.0), ps(20.0), 0.65, 3.0).expect("sumexp");
    let rep = involution::check(|t| sumexp.delta(t), ps(-25.0), ps(300.0), 120);
    assert!(rep.holds(ps(0.01)), "worst: {:e}", rep.worst_violation);
}

#[test]
fn hybrid_beats_inertial_on_an_mis_stress_trace() {
    // Deterministic MIS stress: pairs of near-simultaneous rising inputs
    // with varying separations — the exact regime single-input channels
    // cannot represent. Reference = hybrid model itself is unfair; use
    // the delay functions as ground truth for the crossing times and an
    // inertial channel tuned to the SIS delays.
    let params = NorParams::paper_table1();
    let ch = HybridNorChannel::new(&params).expect("channel");
    let (fall_m, fall_p) = delay::falling_sis(&params).expect("sis");
    let (rise_m, rise_p) = delay::rising_sis(&params).expect("sis");
    let inertial = mis_delay::digital::InertialChannel::symmetric(
        0.5 * (rise_m + rise_p),
        0.5 * (fall_m + fall_p),
    )
    .expect("inertial");

    let mut a_edges = Vec::new();
    let mut b_edges = Vec::new();
    let mut t = ps(300.0);
    let mut level = false;
    for i in 0..8 {
        let sep = ps(2.0 * i as f64);
        level = !level;
        a_edges.push((t, level));
        b_edges.push((t + sep, level));
        t += ps(400.0);
    }
    let a = DigitalTrace::with_edges(false, a_edges).expect("a");
    let b = DigitalTrace::with_edges(false, b_edges).expect("b");

    // Ground truth from the stateless delay functions, edge by edge.
    let truth = ch
        .apply2(&a, &b)
        .expect("hybrid is the defining model here");
    let ideal = gates::nor(&a, &b).expect("ideal");
    let inertial_out = inertial.apply(&ideal).expect("inertial");
    let horizon = t + ps(400.0);
    let dev_inertial = deviation_area(&inertial_out, &truth, 0.0, horizon).expect("area");
    // The inertial model must disagree noticeably (it cannot track the
    // MIS speed-up of small separations).
    assert!(
        dev_inertial > ps(10.0),
        "inertial should deviate from MIS-aware timing: {:.2} ps",
        to_ps(dev_inertial)
    );
}

#[test]
fn tracked_vn_extension_changes_history_dependent_delays() {
    // DESIGN.md ablation 3: Tracked vs fixed-GND V_N policy.
    let base = NorParams::paper_table1();
    let ch = HybridNorChannel::new(&base).expect("channel");

    // History A: N partially discharged before (1,1) via an A-first pair.
    let a1 =
        DigitalTrace::with_edges(false, vec![(ps(200.0), true), (ps(700.0), false)]).expect("a");
    let b1 =
        DigitalTrace::with_edges(false, vec![(ps(212.0), true), (ps(700.0), false)]).expect("b");
    // History B: both rise simultaneously (N frozen at V_DD).
    let a2 =
        DigitalTrace::with_edges(false, vec![(ps(200.0), true), (ps(700.0), false)]).expect("a");
    let b2 =
        DigitalTrace::with_edges(false, vec![(ps(200.0), true), (ps(700.0), false)]).expect("b");

    let out1 = ch.apply2(&a1, &b1).expect("apply");
    let out2 = ch.apply2(&a2, &b2).expect("apply");
    let rise1 = out1.edges().last().expect("rising edge").time - ps(700.0);
    let rise2 = out2.edges().last().expect("rising edge").time - ps(700.0);
    assert!(
        (rise1 - rise2).abs() > ps(0.05),
        "different switching histories must give different rising delays \
         with tracked V_N: {:.3} vs {:.3} ps",
        to_ps(rise1),
        to_ps(rise2)
    );
}

#[test]
fn rising_delay_policy_ordering() {
    // Precharged N must always rise at least as fast as discharged N for
    // Δ <= 0 (more charge already on the series path).
    let p = NorParams::paper_table1();
    for &d_ps in &[-80.0, -40.0, -10.0, 0.0] {
        let d = ps(d_ps);
        let gnd = delay::rising_delay(&p, d, RisingInitialVn::Gnd).expect("delay");
        let vdd = delay::rising_delay(&p, d, RisingInitialVn::Vdd).expect("delay");
        assert!(
            vdd <= gnd + ps(1e-3),
            "Δ = {d_ps}: VDD-init {:.3} ps should not exceed GND-init {:.3} ps",
            to_ps(vdd),
            to_ps(gnd)
        );
    }
}
