#!/usr/bin/env bash
# Benchmark regression gate: re-runs the mis-bench suites (quick mode)
# into a scratch directory and compares every committed BENCH_*.json
# baseline id against the fresh results — the glob picks up all three
# suites (model_kernels, channel_throughput, netlist_throughput), so a
# newly committed BENCH_<suite>.json is gated automatically — failing
# on a >25 % regression
# (override with BENCH_DIFF_MAX_REGRESSION, a factor, e.g. 1.25). The
# fresh side uses each benchmark's fastest sample so quick-mode
# scheduling noise cannot flake the gate (see bench_diff.rs), and a
# failing auto-generated run is retried once — a regression must
# reproduce in two independent bench runs to fail the build.
#
# Usage:
#   scripts/bench_diff.sh             # run quick benches, then compare
#   scripts/bench_diff.sh <fresh_dir> # compare pre-existing fresh results
#
# Wired into scripts/ci.sh behind CI_BENCH=1.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
MAX_REGRESSION="${BENCH_DIFF_MAX_REGRESSION:-1.25}"

shopt -s nullglob
baselines=(BENCH_*.json)
if [[ ${#baselines[@]} -eq 0 ]]; then
    echo "bench_diff.sh: no committed BENCH_*.json baselines found" >&2
    exit 2
fi

compare_dir() {
    local fresh_dir="$1"
    local status=0
    local baseline fresh
    for baseline in "${baselines[@]}"; do
        fresh="${fresh_dir}/${baseline}"
        echo "== ${baseline}"
        if [[ ! -f "${fresh}" ]]; then
            echo "bench_diff.sh: fresh run produced no ${baseline}" >&2
            status=1
            continue
        fi
        cargo run --release -q -p mis-bench --bin bench_diff --offline -- \
            "${baseline}" "${fresh}" "${MAX_REGRESSION}" || status=1
    done
    return "${status}"
}

if [[ -n "${1:-}" ]]; then
    compare_dir "$1"
    exit $?
fi

SCRATCH="$(mktemp -d)"
trap 'rm -rf "${SCRATCH}"' EXIT
for attempt in 1 2; do
    echo "== fresh quick bench run (attempt ${attempt}) into ${SCRATCH}"
    TESTKIT_BENCH_DIR="${SCRATCH}" TESTKIT_BENCH_QUICK=1 \
        cargo bench -p mis-bench --offline
    if compare_dir "${SCRATCH}"; then
        exit 0
    fi
    if [[ "${attempt}" == "1" ]]; then
        echo "bench_diff.sh: regression reported; retrying once to rule out machine noise"
    fi
done
echo "bench_diff.sh: regression reproduced in two independent runs" >&2
exit 1
