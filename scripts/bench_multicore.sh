#!/usr/bin/env bash
# Multicore perf baseline: runs the full (non-quick) mis-bench suites on
# real multicore hardware and appends env-tagged records to the
# committed BENCH_HISTORY.jsonl — so measured parallel speedups
# (par{2,4} and wavefront{2,4} ids) enter the perf trajectory instead of
# staying a modeled footnote in EXPERIMENTS.md.
#
# This script is deliberately NOT part of scripts/ci.sh: the tier-1 gate
# runs on 1-CPU containers where parallel ids measure scheduling
# overhead, not speedup. Run it manually on a real machine and commit
# the BENCH_HISTORY.jsonl growth (the BENCH_*.json baselines stay pinned
# to the CI environment — this records history, it does not overwrite
# them).
#
# Usage:
#   scripts/bench_multicore.sh               # bench, then append history
#   scripts/bench_multicore.sh <fresh_dir>   # append pre-existing results
#
# Environment:
#   BENCH_MULTICORE_ENV   history env tag (default "multicore")
#   BENCH_MULTICORE_MIN   minimum CPU count to proceed (default 2)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
ENV_TAG="${BENCH_MULTICORE_ENV:-multicore}"
MIN_CPUS="${BENCH_MULTICORE_MIN:-2}"

cpus="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [[ "${cpus}" -lt "${MIN_CPUS}" ]]; then
    echo "bench_multicore.sh: ${cpus} CPU(s) < ${MIN_CPUS}; skipping" \
         "(a 1-CPU run would record scheduling overhead as 'speedup')" >&2
    exit 0
fi

if [[ -n "${1:-}" ]]; then
    FRESH_DIR="$1"
else
    FRESH_DIR="$(mktemp -d)"
    trap 'rm -rf "${FRESH_DIR}"' EXIT
    echo "== full bench run on ${cpus} CPUs into ${FRESH_DIR}"
    TESTKIT_BENCH_DIR="${FRESH_DIR}" cargo bench -p mis-bench --offline
fi

shopt -s nullglob
snapshots=("${FRESH_DIR}"/BENCH_*.json)
if [[ ${#snapshots[@]} -eq 0 ]]; then
    echo "bench_multicore.sh: no BENCH_*.json snapshots in ${FRESH_DIR}" >&2
    exit 2
fi

echo "== appending ${ENV_TAG} records to BENCH_HISTORY.jsonl"
cargo run --release -q -p mis-bench --bin bench_diff --offline -- \
    --history BENCH_HISTORY.jsonl --env "${ENV_TAG}" "${snapshots[@]}"
echo "bench_multicore.sh: done (commit the BENCH_HISTORY.jsonl growth)"
