#!/usr/bin/env bash
# Tier-1 verification gate, runnable with an empty cargo registry cache
# (the workspace has no external dependencies). See ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "== cargo doc --offline --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace --quiet

# Optional: CI-scale benchmark smoke + regression gate (quick-mode runs
# of the harness = false bench targets, diffed against the committed
# BENCH_*.json baselines; >25 % median regression on any existing id
# fails — see scripts/bench_diff.sh; refresh baselines with a full
# `cargo bench -p mis-bench`). The same leg re-runs the counting-
# allocator suites explicitly: the zero-allocation guarantees of the
# arena engine (mis-digital) and of the event-queue simulator (mis-sim,
# on the committed C432/C880 fixtures) are performance invariants and
# belong with the perf gate (they also run as part of the workspace
# tests above). The leg also regenerates every committed data/ artifact
# in memory and fails on drift vs the committed bytes
# (make_data --check), and runs the mis-analyze structural linter over
# every committed .bench fixture with --deny-warnings: the fixtures
# must stay diagnostic-clean (no dead logic, unused signals, degenerate
# operands — codes A001–A007, see crates/analyze). Enable with
# CI_BENCH=1.
if [[ "${CI_BENCH:-0}" != "0" ]]; then
    echo "== allocation-counter gate (crates/digital/tests/alloc.rs)"
    cargo test -q -p mis-digital --test alloc --offline
    echo "== allocation-counter gate (crates/sim/tests/alloc.rs)"
    cargo test -q -p mis-sim --test alloc --offline
    echo "== committed-artifact reproducibility gate (make_data --check)"
    cargo run --release -q -p mis-bench --bin make_data --offline -- --check
    echo "== netlist lint gate (lint_bench --deny-warnings data/bench/*.bench)"
    cargo run --release -q -p mis-bench --bin lint_bench --offline -- \
        --deny-warnings data/bench/*.bench
    # The --json line is self-validated by the binary (mis_probe::json);
    # a malformed line exits non-zero and fails this gate.
    cargo run --release -q -p mis-bench --bin lint_bench --offline -- \
        --json data/bench/*.bench > /dev/null
    # Engine-count pinning gate: sim_profile re-simulates each committed
    # fixture under the committed cell library and deterministic traffic
    # (seed base 0x5eed) and compares probe counters against the frozen
    # values below — any drift in event scheduling, duplicate-span
    # shortcuts, table-lookup census, or pulse filtering fails CI. The
    # values were pinned with EXPERIMENTS.md PR 7; re-pin them only with
    # an intentional engine change, via `sim_profile --json <fixture>`.
    echo "== engine-count pinning gate (sim_profile --expect, c17/c432/c880)"
    cargo run --release -q -p mis-bench --bin sim_profile --offline -- --json \
        --expect sim.events_popped=6,sim.gates_evaluated=6,sim.heap_high_water=2,sim.edges.input=100,sim.edges.mis=144,chan.pending_cancelled=6,chan.table_lookups=83,chan.pulse_filtered=0 \
        data/bench/c17.bench > /dev/null
    cargo run --release -q -p mis-bench --bin sim_profile --offline -- --json \
        --expect sim.events_popped=184,sim.gates_evaluated=184,sim.heap_high_water=36,sim.edges.input=720,sim.edges.mis=830,sim.edges.not=740,chan.pending_cancelled=44,chan.table_lookups=476,chan.pulse_filtered=118 \
        data/bench/c432.bench > /dev/null
    cargo run --release -q -p mis-bench --bin sim_profile --offline -- --json \
        --expect sim.events_popped=510,sim.gates_evaluated=510,sim.heap_high_water=95,sim.edges.input=1200,sim.edges.mis=1238,sim.edges.not=1750,chan.pending_cancelled=65,chan.table_lookups=741,chan.pulse_filtered=1424 \
        data/bench/c880.bench > /dev/null
    # Wavefront-engine pinning gate: the same fixtures through the
    # level-sliced engine at 4 workers. Exact-once evaluation means
    # every pinned count above must hold unchanged — the pin sets below
    # are the serial ones minus sim.heap_high_water (a ready-queue
    # metric; the wavefront engine has no heap and reports 0), plus the
    # exact-once schedule gauge (wave.assigned_signals = the fixture's
    # signal count, i.e. replication factor 1.0).
    echo "== wavefront-engine pinning gate (sim_profile --engine wavefront:4)"
    cargo run --release -q -p mis-bench --bin sim_profile --offline -- --json \
        --engine wavefront:4 \
        --expect sim.events_popped=6,sim.gates_evaluated=6,sim.edges.input=100,sim.edges.mis=144,chan.pending_cancelled=6,chan.table_lookups=83,chan.pulse_filtered=0,wave.assigned_signals=11 \
        data/bench/c17.bench > /dev/null
    cargo run --release -q -p mis-bench --bin sim_profile --offline -- --json \
        --engine wavefront:4 \
        --expect sim.events_popped=184,sim.gates_evaluated=184,sim.edges.input=720,sim.edges.mis=830,sim.edges.not=740,chan.pending_cancelled=44,chan.table_lookups=476,chan.pulse_filtered=118,wave.assigned_signals=220 \
        data/bench/c432.bench > /dev/null
    cargo run --release -q -p mis-bench --bin sim_profile --offline -- --json \
        --engine wavefront:4 \
        --expect sim.events_popped=510,sim.gates_evaluated=510,sim.edges.input=1200,sim.edges.mis=1238,sim.edges.not=1750,chan.pending_cancelled=65,chan.table_lookups=741,chan.pulse_filtered=1424,wave.assigned_signals=570 \
        data/bench/c880.bench > /dev/null
    # Fault-coverage pinning gate: fault_sim runs the exhaustive
    # single-stuck-at campaign (plus 24 deterministic glitches on the
    # large fixtures) against the same golden run sim_profile pins event
    # counts on, and compares the fault.* probe counters against the
    # frozen values below. Coverage is a pure function of the netlist,
    # cells and traffic, and the campaign report is identical at every
    # worker count — any drift means detection behavior changed. Re-pin
    # via `fault_sim --json [--glitches 24] <fixture>`.
    echo "== fault-coverage pinning gate (fault_sim --expect, c17/c432/c880)"
    cargo run --release -q -p mis-bench --bin fault_sim --offline -- --json \
        --expect fault.injected=22,fault.detected=22,fault.budget_trips=0 \
        data/bench/c17.bench > /dev/null
    cargo run --release -q -p mis-bench --bin fault_sim --offline -- --json --glitches 24 \
        --expect fault.injected=464,fault.detected=356,fault.budget_trips=0 \
        data/bench/c432.bench > /dev/null
    cargo run --release -q -p mis-bench --bin fault_sim --offline -- --json --glitches 24 \
        --expect fault.injected=1164,fault.detected=1049,fault.budget_trips=0 \
        data/bench/c880.bench > /dev/null
    # Timeline-tracing smoke: both binaries export a Chrome Trace JSON
    # timeline (self-validated by mis_probe::json::is_wellformed before
    # writing — a malformed export exits non-zero and fails this gate),
    # and sim_profile additionally joins the timeline against the
    # static level table (per-level attribution + level.* histograms).
    # The byte-level format pin lives in crates/sim/tests/trace.rs
    # (golden C17 chrome trace, timestamp-normalized).
    echo "== timeline-tracing smoke (sim_profile/fault_sim --trace)"
    trace_scratch="$(mktemp -d)"
    trap 'rm -rf "$trace_scratch"' EXIT
    cargo run --release -q -p mis-bench --bin sim_profile --offline -- \
        --trace "$trace_scratch/c17.trace.json" data/bench/c17.bench > /dev/null
    cargo run --release -q -p mis-bench --bin fault_sim --offline -- \
        --trace "$trace_scratch/c17.fault.trace.json" data/bench/c17.bench > /dev/null
    # Wavefront timeline smoke: C432's wide early fronts (peak 36 > the
    # default cutover) must fan out in the export — per-worker par.w<i>
    # gate-span tracks and the coordinator's per-level "level" spans.
    cargo run --release -q -p mis-bench --bin sim_profile --offline -- \
        --engine wavefront:4 --trace "$trace_scratch/c432.wave.trace.json" \
        data/bench/c432.bench > /dev/null
    grep -q '"par\.w0"' "$trace_scratch/c432.wave.trace.json"
    grep -q '"par\.w3"' "$trace_scratch/c432.wave.trace.json"
    grep -q '"level"' "$trace_scratch/c432.wave.trace.json"
    # Bench-history smoke: the --history mode appends one self-validated
    # JSON line per committed baseline to a scratch log (the committed
    # trajectory lives in BENCH_HISTORY.jsonl; append a real record with
    # `bench_diff --history BENCH_HISTORY.jsonl --env <tag> BENCH_*.json`
    # whenever the baselines are refreshed).
    echo "== bench-history smoke (bench_diff --history)"
    cargo run --release -q -p mis-bench --bin bench_diff --offline -- \
        --history "$trace_scratch/history.jsonl" --env ci-smoke BENCH_*.json > /dev/null
    # Differential-fuzz smoke: a bounded run of the mis-fault harness
    # (random bounded-channel circuits; serial-vs-parallel bit-identity,
    # faulted-STA soundness, graceful budget trips on both engines).
    # Deterministic per seed, so a failure here reproduces locally with
    # the same command.
    echo "== differential-fuzz smoke (fault_sim --fuzz 16)"
    cargo run --release -q -p mis-bench --bin fault_sim --offline -- \
        --fuzz 16 --workers 4 > /dev/null
    echo "== bench regression gate (scripts/bench_diff.sh)"
    scripts/bench_diff.sh
fi

echo "tier-1 gate: OK"
