//! Composing circuits from gates and channels: a two-level NOR network
//! (y = NOR(NOR(a,b), NOR(c,d))) where one network uses the cached
//! hybrid MIS model — built from the **committed** characterized library
//! under `data/charlib/`, no re-characterization — and the other uses
//! inertial channels behind zero-time gates, demonstrating how MIS-aware
//! channels change glitch behaviour deeper in a circuit. Both networks
//! are evaluated on the allocation-free `run_in` path over one warm
//! `TraceArena`.
//!
//! Run: `cargo run --release --example circuit_network`

use std::sync::Arc;

use mis_delay::charlib::CharLib;
use mis_delay::digital::{GateKind, InertialChannel, Network, SignalId};
use mis_delay::sim::CellLibrary;
use mis_delay::waveform::units::{ps, to_ps};
use mis_delay::waveform::{DigitalTrace, TraceArena, TraceRef};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The committed characterized NOR library (regenerate with
    // `cargo run -p mis-bench --bin make_data`).
    let lib_path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/charlib/nor_paper.mislib");
    let lib = CharLib::from_text(&std::fs::read_to_string(lib_path)?)?;
    println!(
        "loaded committed NOR library ({} — budget {:.2} ps)",
        lib_path,
        to_ps(lib.budget())
    );

    // Network 1: all three NOR gates share one Arc'd cached-hybrid
    // table set through the cell library.
    let cells = CellLibrary::hybrid(&lib, None)?;
    let tables = Arc::clone(cells.shared_tables().expect("hybrid cells"));
    let mut hybrid_net = Network::new();
    let a = hybrid_net.add_input("a");
    let b = hybrid_net.add_input("b");
    let c = hybrid_net.add_input("c");
    let d = hybrid_net.add_input("d");
    let n1 = cells.add(&mut hybrid_net, "n1", GateKind::Nor, a, b)?;
    let n2 = cells.add(&mut hybrid_net, "n2", GateKind::Nor, c, d)?;
    let y_hybrid = cells.add(&mut hybrid_net, "y", GateKind::Nor, n1, n2)?;
    println!(
        "hybrid network built: 3 gates, 1 shared table set ({} references)",
        Arc::strong_count(&tables)
    );

    // Network 2: same topology, inertial channels behind zero-time gates.
    let icells = CellLibrary::inertial(InertialChannel::symmetric(ps(55.0), ps(39.0))?);
    let mut inertial_net = Network::new();
    let ia = inertial_net.add_input("a");
    let ib = inertial_net.add_input("b");
    let ic = inertial_net.add_input("c");
    let id = inertial_net.add_input("d");
    let m1 = icells.add(&mut inertial_net, "n1", GateKind::Nor, ia, ib)?;
    let m2 = icells.add(&mut inertial_net, "n2", GateKind::Nor, ic, id)?;
    let y_inertial = icells.add(&mut inertial_net, "y", GateKind::Nor, m1, m2)?;

    // Stimulus: a and b rise 12 ps apart (MIS region on gate n1); c stays
    // low, d pulses briefly.
    let inputs = [
        DigitalTrace::with_edges(false, vec![(ps(200.0), true)])?,
        DigitalTrace::with_edges(false, vec![(ps(212.0), true)])?,
        DigitalTrace::constant(false),
        DigitalTrace::with_edges(false, vec![(ps(230.0), true), (ps(260.0), false)])?,
    ];

    // Both evaluations run allocation-free through one warm arena.
    let mut arena = TraceArena::new();
    let describe = |name: &str, t: TraceRef<'_>| {
        print!("  {name}: initial {} |", u8::from(t.initial_value()));
        for k in 0..t.len() {
            print!(
                " {}@{:.2}ps",
                if t.rising(k) { "rise" } else { "fall" },
                to_ps(t.times()[k])
            );
        }
        println!();
    };
    let show = |arena: &TraceArena, label: &str, ids: [SignalId; 3]| {
        println!("{label}:");
        for (name, id) in ["n1", "n2", "y "].into_iter().zip(ids) {
            describe(name, arena.trace(id.index()));
        }
        println!();
    };

    hybrid_net.run_in(&inputs, &mut arena)?; // warm-up sizes the arena
    hybrid_net.run_in(&inputs, &mut arena)?; // steady state: zero allocations
    show(&arena, "hybrid-channel network", [n1, n2, y_hybrid]);
    inertial_net.run_in(&inputs, &mut arena)?;
    show(&arena, "inertial-channel network", [m1, m2, y_inertial]);

    println!("Note how the hybrid n1 sees the 12 ps input separation (MIS speed-up),");
    println!("while the inertial n1 applies one fixed delay regardless; downstream, the");
    println!("30 ps pulse on d may survive or die depending on the channel model.");
    Ok(())
}
