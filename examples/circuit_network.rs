//! Composing circuits from gates and channels: a two-level NOR network
//! (y = NOR(NOR(a,b), NOR(c,d))) where the first level uses hybrid
//! two-input channels and the second level compares hybrid vs inertial
//! timing — demonstrating how MIS-aware channels change glitch behaviour
//! deeper in a circuit.
//!
//! Run: `cargo run --release --example circuit_network`

use mis_delay::core::NorParams;
use mis_delay::digital::{GateKind, HybridNorChannel, InertialChannel, Network};
use mis_delay::waveform::units::{ps, to_ps};
use mis_delay::waveform::DigitalTrace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = NorParams::paper_table1();

    // Network 1: all three NOR gates are hybrid channels.
    let mut hybrid_net = Network::new();
    let a = hybrid_net.add_input("a");
    let b = hybrid_net.add_input("b");
    let c = hybrid_net.add_input("c");
    let d = hybrid_net.add_input("d");
    let n1 = hybrid_net.add_two_input_channel_gate(
        "n1",
        [a, b],
        Box::new(HybridNorChannel::new(&params)?),
    )?;
    let n2 = hybrid_net.add_two_input_channel_gate(
        "n2",
        [c, d],
        Box::new(HybridNorChannel::new(&params)?),
    )?;
    let y_hybrid = hybrid_net.add_two_input_channel_gate(
        "y",
        [n1, n2],
        Box::new(HybridNorChannel::new(&params)?),
    )?;

    // Network 2: same topology, inertial channels behind zero-time gates.
    let mut inertial_net = Network::new();
    let ia = inertial_net.add_input("a");
    let ib = inertial_net.add_input("b");
    let ic = inertial_net.add_input("c");
    let id = inertial_net.add_input("d");
    let ch = || InertialChannel::symmetric(ps(55.0), ps(39.0)).map(|c| Box::new(c) as Box<_>);
    let m1 = inertial_net.add_gate("n1", GateKind::Nor, &[ia, ib], Some(ch()?))?;
    let m2 = inertial_net.add_gate("n2", GateKind::Nor, &[ic, id], Some(ch()?))?;
    let y_inertial = inertial_net.add_gate("y", GateKind::Nor, &[m1, m2], Some(ch()?))?;

    // Stimulus: a and b rise 12 ps apart (MIS region on gate n1); c stays
    // low, d pulses briefly.
    let ta = DigitalTrace::with_edges(false, vec![(ps(200.0), true)])?;
    let tb = DigitalTrace::with_edges(false, vec![(ps(212.0), true)])?;
    let tc_ = DigitalTrace::constant(false);
    let td = DigitalTrace::with_edges(false, vec![(ps(230.0), true), (ps(260.0), false)])?;

    let hybrid_out = hybrid_net.run(&[ta.clone(), tb.clone(), tc_.clone(), td.clone()])?;
    let inertial_out = inertial_net.run(&[ta, tb, tc_, td])?;

    let describe = |name: &str, t: &DigitalTrace| {
        print!("  {name}: initial {} |", u8::from(t.initial_value()));
        for e in t.edges() {
            print!(
                " {}@{:.2}ps",
                if e.rising { "rise" } else { "fall" },
                to_ps(e.time)
            );
        }
        println!();
    };

    println!("hybrid-channel network:");
    describe("n1", &hybrid_out[4]);
    describe("n2", &hybrid_out[5]);
    describe("y ", &hybrid_out[6]);
    let _ = y_hybrid;
    println!();
    println!("inertial-channel network:");
    describe("n1", &inertial_out[4]);
    describe("n2", &inertial_out[5]);
    describe("y ", &inertial_out[6]);
    let _ = y_inertial;
    println!();
    println!("Note how the hybrid n1 sees the 12 ps input separation (MIS speed-up),");
    println!("while the inertial n1 applies one fixed delay regardless; downstream, the");
    println!("30 ps pulse on d may survive or die depending on the channel model.");
    Ok(())
}
