//! Quickstart: query the hybrid NOR delay model with the paper's Table I
//! parameters and print the headline MIS effects.
//!
//! Run: `cargo run --example quickstart`

use mis_delay::core::{delay, NorParams, RisingInitialVn};
use mis_delay::waveform::units::{ps, to_ps};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = NorParams::paper_table1();
    println!("Hybrid NOR delay model — paper Table I parameters");
    println!(
        "  R1..R4 = {:.1}/{:.1}/{:.1}/{:.1} kΩ, C_N = {:.1} aF, C_O = {:.1} aF, δ_min = {:.0} ps",
        params.r1 / 1e3,
        params.r2 / 1e3,
        params.r3 / 1e3,
        params.r4 / 1e3,
        params.cn * 1e18,
        params.co * 1e18,
        params.delta_min * 1e12
    );
    println!();

    // Falling output (both inputs rise): the MIS speed-up.
    let (fall_m, fall_p) = delay::falling_sis(&params)?;
    let fall_0 = delay::falling_delay(&params, 0.0)?;
    println!("Falling output transition (inputs rise):");
    println!("  δ↓(−∞) = {:.2} ps  (only B switches)", to_ps(fall_m));
    println!("  δ↓(+∞) = {:.2} ps  (only A switches)", to_ps(fall_p));
    println!(
        "  δ↓(0)  = {:.2} ps  → MIS speed-up of {:.1} % (parallel nMOS discharge)",
        to_ps(fall_0),
        100.0 * (fall_0 - fall_m) / fall_m
    );
    println!();

    // Rising output (both inputs fall): the slow-down, and the V_N
    // ambiguity in mode (1,1).
    let (rise_m, rise_p) = delay::rising_sis(&params)?;
    println!("Rising output transition (inputs fall):");
    println!(
        "  δ↑(−∞) = {:.2} ps  (B fell first → N discharged)",
        to_ps(rise_m)
    );
    println!(
        "  δ↑(+∞) = {:.2} ps  (A fell first → N precharged)",
        to_ps(rise_p)
    );
    for policy in [
        RisingInitialVn::Gnd,
        RisingInitialVn::HalfVdd,
        RisingInitialVn::Vdd,
    ] {
        let d = delay::rising_delay(&params, ps(-20.0), policy)?;
        println!("  δ↑(−20 ps) with V_N = {policy:?}: {:.2} ps", to_ps(d));
    }
    println!();

    // A small Δ sweep — the shape of the paper's Fig. 5.
    println!("δ↓(Δ) sweep:");
    let curve = delay::falling_curve(&params, ps(-60.0), ps(60.0), 13)?;
    for (d, v) in curve.deltas.iter().zip(&curve.delays) {
        let bar = "#".repeat((to_ps(*v) - 25.0).max(0.0) as usize);
        println!("  Δ = {:>6.1} ps: {:>6.2} ps  {bar}", to_ps(*d), to_ps(*v));
    }
    Ok(())
}
