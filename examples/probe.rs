use mis_core::{delay, NorParams, RisingInitialVn};
use mis_waveform::units::{ps, to_ps};
fn main() {
    let p = NorParams::paper_table1();
    let (fm, fp) = delay::falling_sis(&p).unwrap();
    let f0 = delay::falling_delay(&p, 0.0).unwrap();
    println!(
        "fall: -inf {:.2} ps | 0 {:.2} ps | +inf {:.2} ps",
        to_ps(fm),
        to_ps(f0),
        to_ps(fp)
    );
    let (rm, rp) = delay::rising_sis(&p).unwrap();
    let r0 = delay::rising_delay(&p, 0.0, RisingInitialVn::Gnd).unwrap();
    println!(
        "rise: -inf {:.2} ps | 0 {:.2} ps | +inf {:.2} ps",
        to_ps(rm),
        to_ps(r0),
        to_ps(rp)
    );
    for x in [
        RisingInitialVn::Gnd,
        RisingInitialVn::HalfVdd,
        RisingInitialVn::Vdd,
    ] {
        let d = delay::rising_delay(&p, ps(-20.0), x).unwrap();
        println!("rise(-20ps, {:?}) = {:.2} ps", x, to_ps(d));
    }
}
