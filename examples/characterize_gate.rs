//! Characterize the paper's NOR gate once, save/reload the library, and
//! race the cached fast-path channel against the exact hybrid channel.
//!
//! ```sh
//! cargo run --release --example characterize_gate --offline
//! ```

use std::time::Instant;

use mis_delay::charlib::{CharConfig, CharLib};
use mis_delay::core::NorParams;
use mis_delay::digital::{CachedHybridChannel, HybridNorChannel, TwoInputTransform};
use mis_delay::waveform::generate::{Assignment, TraceConfig};
use mis_delay::waveform::units::{ps, to_ps};

fn main() {
    let params = NorParams::paper_table1();
    let cfg = CharConfig::default();

    // 1. One-time characterization sweep against the exact solver.
    let t0 = Instant::now();
    let lib = CharLib::nor(&params, &cfg).expect("characterization");
    let build_time = t0.elapsed();
    let grid_points: usize = lib
        .falling()
        .slices()
        .iter()
        .chain(lib.rising().slices())
        .map(mis_delay::charlib::DelaySurface::len)
        .sum();
    println!(
        "characterized NOR: {} slices / {} grid points, budget {:.2} ps, built in {:.1} ms",
        lib.falling().slices().len() + lib.rising().slices().len(),
        grid_points,
        to_ps(lib.budget()),
        build_time.as_secs_f64() * 1e3
    );

    // 2. The library round-trips through its committable text form.
    let text = lib.to_text();
    let reloaded = CharLib::from_text(&text).expect("reload");
    assert_eq!(reloaded, lib);
    println!(
        "text form: {} lines, {} bytes — reloads bit-identically",
        text.lines().count(),
        text.len()
    );

    // 3. Race the channels over a 500-transition random trace pair.
    let pair = TraceConfig::new(ps(150.0), ps(60.0), Assignment::Local, 500)
        .generate(0xbe7)
        .expect("trace generation");
    let exact = HybridNorChannel::new(&params).expect("channel");
    let cached = CachedHybridChannel::new(&reloaded).expect("channel");

    let t0 = Instant::now();
    let out_exact = exact.apply2(&pair.a, &pair.b).expect("exact");
    let t_exact = t0.elapsed();
    let t0 = Instant::now();
    let out_cached = cached.apply2(&pair.a, &pair.b).expect("cached");
    let t_cached = t0.elapsed();

    println!(
        "exact hybrid:  {:>4} output edges in {:>8.1} µs",
        out_exact.transition_count(),
        t_exact.as_secs_f64() * 1e6
    );
    println!(
        "cached hybrid: {:>4} output edges in {:>8.1} µs  ({:.1}x faster)",
        out_cached.transition_count(),
        t_cached.as_secs_f64() * 1e6,
        t_exact.as_secs_f64() / t_cached.as_secs_f64().max(1e-12)
    );

    // 4. Agreement, as the Fig. 7 metric: total time the two outputs
    // disagree. This traffic is deliberately brutal (~150 ps between
    // transitions vs 40–80 ps gate delays), so what remains is the
    // second-order partial-swing residual on overlapping transitions —
    // well under a picosecond per output edge.
    let dev = mis_delay::waveform::deviation_area(&out_cached, &out_exact, 0.0, pair.horizon)
        .expect("deviation area");
    println!(
        "agreement vs exact channel: deviation area {:.2} ps over a {:.0} ps trace \
         ({:.3} % of the horizon)",
        to_ps(dev),
        to_ps(pair.horizon),
        100.0 * dev / pair.horizon
    );
}
