//! Digital timing simulation of a NOR gate under random input traffic,
//! comparing four delay models against the analog reference — a
//! single-configuration version of the paper's Fig. 7 experiment.
//!
//! Run: `cargo run --release --example timing_simulation`

use mis_delay::analog::transient::TransientOptions;
use mis_delay::analog::NorTech;
use mis_delay::digital::accuracy::{reference_trace, run_experiment, ExperimentConfig};
use mis_delay::digital::{
    gates, HybridNorChannel, InertialChannel, TraceTransform, TwoInputTransform,
};
use mis_delay::waveform::deviation_area;
use mis_delay::waveform::generate::{Assignment, TraceConfig};
use mis_delay::waveform::units::{ps, to_ps};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("calibrating the hybrid model to the analog reference...");
    let cfg = ExperimentConfig::calibrated(
        NorTech::freepdk15_like(),
        TransientOptions::default(),
        None,
        3,
    )?;

    // One concrete trace pair, inspected closely. Keep the generated
    // edges renderable by the analog reference: consecutive edges on one
    // signal must be at least one input slew apart.
    let mut tc = TraceConfig::new(ps(150.0), ps(60.0), Assignment::Local, 30);
    tc.min_gap = tc.min_gap.max(1.25 * cfg.tech.input_slew);
    let pair = tc.generate(7)?;
    println!(
        "generated '{}' traffic: {} transitions on A, {} on B, horizon {:.1} ns",
        tc.label(),
        pair.a.transition_count(),
        pair.b.transition_count(),
        pair.horizon * 1e9
    );

    let reference = reference_trace(&cfg, &pair.a, &pair.b, pair.horizon)?;
    println!(
        "analog reference output: {} transitions",
        reference.transition_count()
    );

    let ideal = gates::nor(&pair.a, &pair.b)?;
    let inertial = InertialChannel::symmetric(ps(50.0), ps(38.0))?;
    let hybrid = HybridNorChannel::new(&cfg.hybrid)?;

    let out_inertial = inertial.apply(&ideal)?;
    let out_hybrid = hybrid.apply2(&pair.a, &pair.b)?;
    let dev_i = deviation_area(&out_inertial, &reference, 0.0, pair.horizon)?;
    let dev_h = deviation_area(&out_hybrid, &reference, 0.0, pair.horizon)?;
    println!();
    println!(
        "deviation area vs analog reference over {:.1} ns:",
        pair.horizon * 1e9
    );
    println!(
        "  inertial: {:.1} ps of disagreement ({} output transitions)",
        to_ps(dev_i),
        out_inertial.transition_count()
    );
    println!(
        "  hybrid:   {:.1} ps of disagreement ({} output transitions)",
        to_ps(dev_h),
        out_hybrid.transition_count()
    );

    // The averaged experiment over several configurations.
    println!();
    println!("averaged experiment (3 repetitions each):");
    let configs = vec![
        TraceConfig::new(ps(100.0), ps(50.0), Assignment::Local, 60),
        TraceConfig::new(ps(2000.0), ps(1000.0), Assignment::Global, 40),
    ];
    let results = run_experiment(&cfg, &configs)?;
    for r in &results {
        println!("  {}:", r.label);
        for m in &r.models {
            println!(
                "    {:<18} normalized deviation {:.3}",
                m.name, m.normalized_mean
            );
        }
    }
    Ok(())
}
