//! Explore the Charlie effect analytically: how the characteristic MIS
//! delays react to each model parameter, and how well the paper's
//! closed-form/linearized expressions (eqs. (8)–(12)) track the exact
//! crossings.
//!
//! Run: `cargo run --release --example charlie_explorer`

use mis_delay::core::charlie::{self, CharacteristicDelays};
use mis_delay::core::NorParams;
use mis_delay::waveform::units::to_ps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = NorParams::paper_table1();

    println!("Characteristic Charlie delays of the Table I model (no δ_min):");
    let c = CharacteristicDelays::of_model(&p)?;
    let names = ["δ↓(−∞)", "δ↓(0)", "δ↓(+∞)", "δ↑(−∞)", "δ↑(0)", "δ↑(+∞)"];
    for (n, v) in names.iter().zip(c.as_array()) {
        println!("  {n} = {:.3} ps", to_ps(v));
    }

    println!();
    println!("Closed forms and linearized approximations vs exact numerics:");
    println!(
        "  eq. (8)  δ↓(0)   = ln2·C_O·R₃R₄/(R₃+R₄) = {:.3} ps  (exact numeric {:.3} ps)",
        to_ps(charlie::fall_zero_exact(&p)),
        to_ps(c.fall_zero)
    );
    println!(
        "  eq. (9)  δ↓(−∞)  = ln2·C_O·R₄          = {:.3} ps  (exact numeric {:.3} ps)",
        to_ps(charlie::fall_minus_inf_exact(&p)),
        to_ps(c.fall_minus_inf)
    );
    println!(
        "  eq. (10) δ↓(+∞)  linearized            = {:.3} ps  (exact numeric {:.3} ps)",
        to_ps(charlie::fall_plus_inf_approx_auto(&p)?),
        to_ps(charlie::fall_plus_inf_exact_numeric(&p)?)
    );
    for (x, label) in [(0.0, "GND"), (p.vdd / 2.0, "VDD/2"), (p.vdd, "VDD")] {
        println!(
            "  eq. (11) δ↑(0)|V_N={label:<5} linearized  = {:.3} ps  (exact numeric {:.3} ps)",
            to_ps(charlie::rise_approx_auto(&p, 0.0, x)?),
            to_ps(charlie::rise_exact_numeric(&p, 0.0, x)?)
        );
    }
    println!(
        "  eq. (11) constant l = {:.6} V ≡ V_DD (the paper's convoluted constant is V_DD)",
        charlie::paper_constant_l(&p)
    );

    println!();
    println!("Sensitivities ∂ln δ / ∂ln p (paper Section V's qualitative claims, quantified):");
    let s = charlie::sensitivity_matrix(&p)?;
    println!(
        "  {:<8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "R1", "R2", "R3", "R4", "C_N", "C_O"
    );
    for (i, n) in names.iter().enumerate() {
        print!("  {n:<8}");
        for v in &s[i] {
            print!(" {v:>8.3}");
        }
        println!();
    }
    println!();
    println!("Expected structure (paper):");
    println!("  * falling delays do not depend on R1 (column ≈ 0 in rows 1–3);");
    println!("  * δ↓(−∞) depends only on C_O and R4;");
    println!("  * δ↑(0), δ↑(+∞) are driven by R1, R2, C_N, C_O;");
    println!("  * δ↑(−∞) does not depend on R4.");
    Ok(())
}
