//! The full Section V parametrization workflow, end to end:
//!
//! 1. characterize a transistor-level NOR gate with the analog simulator
//!    (the golden reference);
//! 2. inspect the feasibility ratio `δ↓(−∞)/δ↓(0)` that the hybrid model
//!    structurally pins to `(R₃+R₄)/R₃ ≈ 2`;
//! 3. derive the pure delay `δ_min` that restores feasibility;
//! 4. least-squares fit `R1..R4, C_N, C_O`;
//! 5. validate the fitted model over a full Δ sweep.
//!
//! Run: `cargo run --release --example fit_your_gate`

use mis_delay::analog::measure::{self, RisingPrecondition};
use mis_delay::analog::transient::TransientOptions;
use mis_delay::analog::NorTech;
use mis_delay::core::charlie::CharacteristicDelays;
use mis_delay::core::{delay, fit, RisingInitialVn};
use mis_delay::waveform::units::{ps, to_ps};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = NorTech::freepdk15_like();
    let tran = TransientOptions::default();

    println!("1) characterizing the reference gate (6 transient runs)...");
    let chars = measure::characteristic_delays(&tech, &tran)?;
    let names = ["δ↓(−∞)", "δ↓(0)", "δ↓(+∞)", "δ↑(−∞)", "δ↑(0)", "δ↑(+∞)"];
    for (n, c) in names.iter().zip(&chars) {
        println!("   {n} = {:.2} ps", to_ps(*c));
    }
    let targets = CharacteristicDelays::from_array(chars);

    println!();
    println!("2) feasibility: the model forces δ↓(−∞)/δ↓(0) = (R₃+R₄)/R₃ ≈ 2");
    let raw_ratio = fit::feasibility_ratio(&targets, 0.0)?;
    println!("   measured ratio without pure delay: {raw_ratio:.3}");

    let dmin = (2.0 * targets.fall_zero - targets.fall_minus_inf).max(0.0);
    println!();
    println!(
        "3) pure delay from the ratio-2 rule: δ_min = 2·δ↓(0) − δ↓(−∞) = {:.2} ps",
        dmin * 1e12
    );
    println!(
        "   shifted ratio: {:.3}",
        fit::feasibility_ratio(&targets, dmin)?
    );

    println!();
    println!("4) least-squares fit of R1..R4, C_N, C_O ...");
    let cfg = fit::FitConfig {
        delta_min: dmin,
        vdd: tech.vdd,
        vth: tech.vdd / 2.0,
        ..fit::FitConfig::default()
    };
    let outcome = fit::fit(&targets, &cfg)?;
    let p = outcome.params;
    println!(
        "   R1 = {:.2} kΩ, R2 = {:.2} kΩ, R3 = {:.2} kΩ, R4 = {:.2} kΩ",
        p.r1 / 1e3,
        p.r2 / 1e3,
        p.r3 / 1e3,
        p.r4 / 1e3
    );
    println!(
        "   C_N = {:.2} aF, C_O = {:.2} aF",
        p.cn * 1e18,
        p.co * 1e18
    );
    println!(
        "   worst relative residual: {:.2} % (converged: {})",
        100.0 * outcome.worst_residual(),
        outcome.converged
    );

    println!();
    println!("5) validation sweep (model vs analog):");
    println!(
        "   {:>8} {:>12} {:>12} {:>12} {:>12}",
        "Δ [ps]", "δ↓ model", "δ↓ analog", "δ↑ model", "δ↑ analog"
    );
    for &d_ps in &[-60.0, -30.0, -10.0, 0.0, 10.0, 30.0, 60.0] {
        let d = ps(d_ps);
        let fm = delay::falling_delay(&p, d)?;
        let fa = measure::falling_delay(&tech, d, &tran)?;
        let rm = delay::rising_delay(&p, d, RisingInitialVn::Gnd)?;
        let ra = measure::rising_delay(&tech, d, RisingPrecondition::WorstCaseGnd, &tran)?;
        println!(
            "   {:>8.1} {:>9.2} ps {:>9.2} ps {:>9.2} ps {:>9.2} ps",
            d_ps,
            to_ps(fm),
            to_ps(fa),
            to_ps(rm),
            to_ps(ra)
        );
    }
    println!();
    println!("The falling curve should match closely; the rising curve matches the tails");
    println!("but misses the analog peak near Δ = 0 — the model limitation the paper reports.");
    Ok(())
}
