//! Property-based tests for the dense linear algebra kernels, on the
//! in-repo `mis-testkit` harness (offline replacement for `proptest`).

use mis_linalg::{approx_eq, Eigen2, Eigenvalues2, LuFactors, Matrix};
use mis_testkit::prelude::*;

/// Strategy: entries bounded away from pathological magnitudes.
fn entry() -> impl Strategy<Value = f64> {
    oneof(vec![(-10.0..10.0f64).boxed(), (-0.1..0.1f64).boxed()])
}

/// A random square matrix with a diagonal boost that keeps it comfortably
/// non-singular (diagonally dominant), matching the character of MNA
/// matrices from connected circuits.
fn well_conditioned(n: usize) -> impl Strategy<Value = Matrix> {
    vec(entry(), n * n).prop_map(move |vals| {
        let mut m = Matrix::from_fn(n, n, |i, j| vals[i * n + j]);
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] += row_sum + 1.0;
        }
        m
    })
}

#[test]
fn lu_solve_produces_valid_solution() {
    Config::default().run(&(well_conditioned(4), vec(-5.0..5.0f64, 4)), |(a, b)| {
        let lu = LuFactors::new(a).unwrap();
        let x = lu.solve(b).unwrap();
        let r = a.matvec(&x).unwrap();
        for i in 0..4 {
            prop_assert!(
                approx_eq(r[i], b[i], 1e-8),
                "residual at {}: {} vs {}",
                i,
                r[i],
                b[i]
            );
        }
        Ok(())
    });
}

#[test]
fn lu_det_matches_2x2_formula() {
    Config::default().run(
        &(entry(), entry(), entry(), entry()),
        |&(a11, a12, a21, a22)| {
            let det_formula = a11 * a22 - a12 * a21;
            prop_assume!(det_formula.abs() > 1e-6);
            let a = Matrix::from_rows(&[&[a11, a12], &[a21, a22]]).unwrap();
            let lu = LuFactors::new(&a).unwrap();
            prop_assert!(approx_eq(lu.det(), det_formula, 1e-9));
            Ok(())
        },
    );
}

#[test]
fn inverse_round_trip() {
    Config::default().run(&well_conditioned(3), |a| {
        let lu = LuFactors::new(a).unwrap();
        let inv = lu.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(prod.approx_eq(&Matrix::identity(3), 1e-8));
        Ok(())
    });
}

#[test]
fn transpose_of_product_is_reversed_product() {
    Config::default().run(&(well_conditioned(3), well_conditioned(3)), |(a, b)| {
        let lhs = a.matmul(b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
        Ok(())
    });
}

#[test]
fn eigen2_trace_and_det_invariants() {
    Config::default().run(
        &(entry(), entry(), entry(), entry()),
        |&(a11, a12, a21, a22)| {
            let e = Eigen2::new([[a11, a12], [a21, a22]]);
            let tr = a11 + a22;
            let det = a11 * a22 - a12 * a21;
            match e.eigenvalues() {
                Eigenvalues2::RealDistinct { l1, l2 } => {
                    prop_assert!(approx_eq(l1 + l2, tr, 1e-9));
                    prop_assert!(approx_eq(l1 * l2, det, 1e-8));
                }
                Eigenvalues2::RealRepeated { l } => {
                    prop_assert!(approx_eq(2.0 * l, tr, 1e-9));
                }
                Eigenvalues2::ComplexPair { re, im } => {
                    prop_assert!(approx_eq(2.0 * re, tr, 1e-9));
                    prop_assert!(approx_eq(re * re + im * im, det, 1e-8));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn affine_solution_satisfies_ode_everywhere() {
    // Build an over-damped (real-eigenvalue) matrix the way RC circuits
    // do: negative diagonal dominance with positive coupling.
    Config::default().run(
        &(
            0.5..5.0f64,  // d1
            0.5..5.0f64,  // d2
            0.0..0.4f64,  // c
            -1.0..1.0f64, // x0a
            -1.0..1.0f64, // x0b
            -2.0..2.0f64, // g0
            0.0..3.0f64,  // t
        ),
        |&(d1, d2, c, x0a, x0b, g0, t)| {
            let a = [[-d1, c * d1.min(d2)], [c * d1.min(d2), -d2]];
            let e = Eigen2::new(a);
            prop_assume!(matches!(e.eigenvalues(), Eigenvalues2::RealDistinct { .. }));
            let sol = e.solve_affine([x0a, x0b], [g0, 0.0]).unwrap();
            let x = sol.eval(t);
            let xd = sol.derivative(t);
            let rhs = [
                a[0][0] * x[0] + a[0][1] * x[1] + g0,
                a[1][0] * x[0] + a[1][1] * x[1],
            ];
            prop_assert!(approx_eq(xd[0], rhs[0], 1e-7));
            prop_assert!(approx_eq(xd[1], rhs[1], 1e-7));
            Ok(())
        },
    );
}
