use crate::{LinalgError, Matrix};

/// LU decomposition with partial (row) pivoting: `P·A = L·U`.
///
/// The factorization is computed once and can then solve any number of
/// right-hand sides — exactly the access pattern of a Newton iteration in
/// the analog simulator, where the Jacobian is refactored per iteration but
/// solved for a single residual, and of Levenberg–Marquardt, where the
/// damped normal matrix is factored per trial step.
///
/// # Examples
///
/// ```
/// use mis_linalg::{LuFactors, Matrix};
///
/// # fn main() -> Result<(), mis_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0],
///                             &[4.0, -6.0, 0.0],
///                             &[-2.0, 7.0, 2.0]])?;
/// let lu = LuFactors::new(&a)?;
/// let x = lu.solve(&[5.0, -2.0, 9.0])?;
/// let r = a.matvec(&x)?;
/// assert!((r[0] - 5.0).abs() < 1e-12);
/// assert!((r[1] + 2.0).abs() < 1e-12);
/// assert!((r[2] - 9.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined L (below diagonal, unit diagonal implied) and U (on and
    /// above diagonal) in one matrix.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, ±1, for determinant computation.
    perm_sign: f64,
}

/// Pivot magnitudes below this threshold (relative to the largest entry of
/// the column during pivot search being exactly zero) are treated as
/// singular. MNA matrices of connected circuits are well-conditioned at this
/// scale, so an exact-zero test plus a tiny absolute floor suffices.
const SINGULARITY_FLOOR: f64 = 1e-300;

impl LuFactors {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot vanishes (matrix singular to
    ///   working precision).
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Pivot search: largest magnitude in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_mag = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let mag = lu[(i, k)].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            if !(pivot_mag > SINGULARITY_FLOOR) {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(LuFactors {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for `x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // Apply permutation, then forward substitution (L has unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix (product of U's diagonal times the
    /// permutation sign).
    #[must_use]
    pub fn det(&self) -> f64 {
        let n = self.dim();
        let mut d = self.perm_sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix, column by column.
    ///
    /// Exposed mainly for tests and small covariance computations in the
    /// fitting code; solving against specific right-hand sides is always
    /// preferable when applicable.
    ///
    /// # Errors
    ///
    /// Propagates any [`LinalgError`] from the underlying solves (cannot
    /// happen for a successfully constructed factorization, but the
    /// signature stays honest).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn solve_known_3x3() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]).unwrap();
        let lu = LuFactors::new(&a).unwrap();
        let x = lu.solve(&[5.0, -2.0, 9.0]).unwrap();
        // Known solution x = [1, 1, 2].
        assert!(approx_eq(x[0], 1.0, 1e-12));
        assert!(approx_eq(x[1], 1.0, 1e-12));
        assert!(approx_eq(x[2], 2.0, 1e-12));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Naive elimination without pivoting would divide by zero here.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuFactors::new(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert!(approx_eq(x[0], 3.0, 1e-14));
        assert!(approx_eq(x[1], 2.0, 1e-14));
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuFactors::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuFactors::new(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_of_identity_and_swap() {
        let i = Matrix::identity(3);
        assert!(approx_eq(LuFactors::new(&i).unwrap().det(), 1.0, 1e-15));
        // Swapping two rows of the identity flips the determinant's sign.
        let s = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        assert!(approx_eq(LuFactors::new(&s).unwrap().det(), -1.0, 1e-15));
    }

    #[test]
    fn determinant_known_value() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]).unwrap();
        assert!(approx_eq(LuFactors::new(&a).unwrap().det(), -14.0, 1e-12));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = LuFactors::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let lu = LuFactors::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn solve_near_scaled_rows() {
        // Badly row-scaled but non-singular system; partial pivoting should
        // still produce an accurate answer.
        let a = Matrix::from_rows(&[&[1e-8, 1.0], &[1.0, 1.0]]).unwrap();
        let lu = LuFactors::new(&a).unwrap();
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        let r = a.matvec(&x).unwrap();
        assert!(approx_eq(r[0], 1.0, 1e-10));
        assert!(approx_eq(r[1], 2.0, 1e-10));
    }
}
