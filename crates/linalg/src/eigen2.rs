use crate::LinalgError;

/// Eigenvalues of a real 2×2 matrix, classified by discriminant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Eigenvalues2 {
    /// Two distinct real eigenvalues, ordered `l1 >= l2`.
    RealDistinct {
        /// Larger eigenvalue.
        l1: f64,
        /// Smaller eigenvalue.
        l2: f64,
    },
    /// A repeated real eigenvalue (matrix may or may not be diagonalizable).
    RealRepeated {
        /// The doubled eigenvalue.
        l: f64,
    },
    /// A complex-conjugate pair `re ± i·im` with `im > 0`.
    ComplexPair {
        /// Real part.
        re: f64,
        /// Imaginary part (positive).
        im: f64,
    },
}

/// Closed-form eigendecomposition of a real 2×2 matrix, with a general
/// solver for the affine ODE system `x'(t) = A·x(t) + g`.
///
/// The four operating modes of the hybrid NOR model are all of this form
/// with real, distinct, non-positive eigenvalues (over-damped RC networks).
/// `mis-core` implements the paper's explicit formulas; this type provides
/// the *independent* generic solution used to cross-validate them.
///
/// # Examples
///
/// Solving `x' = A x` for a diagonal decay matrix:
///
/// ```
/// use mis_linalg::Eigen2;
///
/// # fn main() -> Result<(), mis_linalg::LinalgError> {
/// let sys = Eigen2::new([[-1.0, 0.0], [0.0, -2.0]]);
/// let sol = sys.solve_affine([1.0, 1.0], [0.0, 0.0])?;
/// let x = sol.eval(1.0);
/// assert!((x[0] - (-1.0f64).exp()).abs() < 1e-12);
/// assert!((x[1] - (-2.0f64).exp()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Eigen2 {
    a: [[f64; 2]; 2],
    eigenvalues: Eigenvalues2,
}

impl Eigen2 {
    /// Computes the eigendecomposition of `a` (row-major `[[a11,a12],[a21,a22]]`).
    #[must_use]
    pub fn new(a: [[f64; 2]; 2]) -> Self {
        let tr = a[0][0] + a[1][1];
        let det = a[0][0] * a[1][1] - a[0][1] * a[1][0];
        let disc = tr * tr / 4.0 - det;
        // Classification threshold: scale-aware so that nearly-defective
        // matrices are reported as repeated rather than producing wildly
        // ill-conditioned eigenvectors.
        let scale = tr.abs().max(det.abs().sqrt()).max(1e-300);
        let eigenvalues = if disc > (1e-14 * scale) * (1e-14 * scale) {
            let root = disc.sqrt();
            Eigenvalues2::RealDistinct {
                l1: tr / 2.0 + root,
                l2: tr / 2.0 - root,
            }
        } else if disc < -(1e-14 * scale) * (1e-14 * scale) {
            Eigenvalues2::ComplexPair {
                re: tr / 2.0,
                im: (-disc).sqrt(),
            }
        } else {
            Eigenvalues2::RealRepeated { l: tr / 2.0 }
        };
        Eigen2 { a, eigenvalues }
    }

    /// The matrix this decomposition was computed from.
    #[must_use]
    pub fn matrix(&self) -> [[f64; 2]; 2] {
        self.a
    }

    /// The classified eigenvalues.
    #[must_use]
    pub fn eigenvalues(&self) -> Eigenvalues2 {
        self.eigenvalues
    }

    /// An eigenvector for the real eigenvalue `l` (not normalized; the
    /// larger of the two candidate null-space rows is used for stability).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] when `l` is not (numerically)
    /// an eigenvalue of the matrix.
    pub fn eigenvector(&self, l: f64) -> Result<[f64; 2], LinalgError> {
        // (A - l I) v = 0. Two candidate constructions from the two rows;
        // pick whichever row of A - lI is larger in magnitude.
        let b = [
            [self.a[0][0] - l, self.a[0][1]],
            [self.a[1][0], self.a[1][1] - l],
        ];
        let row0_mag = b[0][0].abs() + b[0][1].abs();
        let row1_mag = b[1][0].abs() + b[1][1].abs();
        let v = if row0_mag >= row1_mag {
            // b00 v0 + b01 v1 = 0 -> v = (b01, -b00) (or anything if row is 0)
            [b[0][1], -b[0][0]]
        } else {
            [b[1][1], -b[1][0]]
        };
        let mag = v[0].abs() + v[1].abs();
        if mag == 0.0 {
            // A == l I: every vector is an eigenvector.
            return Ok([1.0, 0.0]);
        }
        // Verify: residual of A v - l v must be small relative to |A| |v|.
        let r0 = self.a[0][0] * v[0] + self.a[0][1] * v[1] - l * v[0];
        let r1 = self.a[1][0] * v[0] + self.a[1][1] * v[1] - l * v[1];
        let a_mag = self
            .a
            .iter()
            .flatten()
            .fold(l.abs(), |m, x| m.max(x.abs()))
            .max(1e-300);
        if (r0.abs() + r1.abs()) > 1e-8 * a_mag * mag {
            return Err(LinalgError::InvalidShape {
                reason: format!("{l} is not an eigenvalue of the matrix"),
            });
        }
        Ok(v)
    }

    /// Solves the affine system `x' = A·x + g` with initial value `x0`,
    /// returning a closed-form trajectory.
    ///
    /// Zero eigenvalues are supported (they contribute secular `g∥·t` terms
    /// along their eigendirection), which is exactly the structure of the
    /// NOR gate's `(1,1)` mode where the internal node floats.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if the matrix has complex or
    /// repeated eigenvalues (never the case for the over-damped RC modes
    /// this workspace builds; the error keeps the API honest).
    pub fn solve_affine(&self, x0: [f64; 2], g: [f64; 2]) -> Result<AffineSolution2, LinalgError> {
        let (l1, l2) = match self.eigenvalues {
            Eigenvalues2::RealDistinct { l1, l2 } => (l1, l2),
            Eigenvalues2::RealRepeated { l } => {
                // Diagonalizable only if A == l I.
                let off = self.a[0][1].abs() + self.a[1][0].abs();
                let diag = (self.a[0][0] - l).abs() + (self.a[1][1] - l).abs();
                if off + diag > 1e-12 * (1.0 + l.abs()) {
                    return Err(LinalgError::InvalidShape {
                        reason: "matrix has a defective repeated eigenvalue".into(),
                    });
                }
                (l, l)
            }
            Eigenvalues2::ComplexPair { .. } => {
                return Err(LinalgError::InvalidShape {
                    reason: "matrix has complex eigenvalues (under-damped system)".into(),
                });
            }
        };
        let v1 = self.eigenvector(l1)?;
        let v2 = if l1 == l2 {
            // A == l I case: any independent pair.
            [0.0, 1.0]
        } else {
            self.eigenvector(l2)?
        };
        // Decompose x0 and g in the eigenbasis: solve [v1 v2] c = x0.
        let det = v1[0] * v2[1] - v2[0] * v1[1];
        if det.abs() < 1e-14 * (v1[0].abs() + v1[1].abs()) * (v2[0].abs() + v2[1].abs()) {
            return Err(LinalgError::InvalidShape {
                reason: "eigenvectors are numerically dependent".into(),
            });
        }
        let solve2 = |b: [f64; 2]| -> [f64; 2] {
            [
                (b[0] * v2[1] - v2[0] * b[1]) / det,
                (v1[0] * b[1] - b[0] * v1[1]) / det,
            ]
        };
        let c = solve2(x0);
        let gc = solve2(g);
        Ok(AffineSolution2 {
            modes: [
                AffineMode::new(l1, v1, c[0], gc[0]),
                AffineMode::new(l2, v2, c[1], gc[1]),
            ],
        })
    }
}

/// One eigen-direction's contribution to an [`AffineSolution2`].
#[derive(Debug, Clone, Copy)]
struct AffineMode {
    lambda: f64,
    v: [f64; 2],
    /// Homogeneous coefficient (adjusted so that eval(0) matches x0).
    c: f64,
    /// Component of g along this eigendirection.
    g: f64,
}

impl AffineMode {
    fn new(lambda: f64, v: [f64; 2], c0: f64, g: f64) -> Self {
        if lambda == 0.0 {
            // x_i(t) = c0 + g t
            AffineMode {
                lambda,
                v,
                c: c0,
                g,
            }
        } else {
            // x_i(t) = (c0 + g/λ) e^{λt} − g/λ
            AffineMode {
                lambda,
                v,
                c: c0 + g / lambda,
                g,
            }
        }
    }

    fn coord(&self, t: f64) -> f64 {
        if self.lambda == 0.0 {
            self.c + self.g * t
        } else {
            self.c * (self.lambda * t).exp() - self.g / self.lambda
        }
    }

    fn coord_dot(&self, t: f64) -> f64 {
        if self.lambda == 0.0 {
            self.g
        } else {
            self.c * self.lambda * (self.lambda * t).exp()
        }
    }
}

/// Closed-form solution of `x' = A·x + g`, produced by
/// [`Eigen2::solve_affine`].
#[derive(Debug, Clone, Copy)]
pub struct AffineSolution2 {
    modes: [AffineMode; 2],
}

impl AffineSolution2 {
    /// State at time `t` (time is relative to the initial value, i.e.
    /// `eval(0.0)` returns `x0`).
    #[must_use]
    pub fn eval(&self, t: f64) -> [f64; 2] {
        let a = self.modes[0].coord(t);
        let b = self.modes[1].coord(t);
        [
            a * self.modes[0].v[0] + b * self.modes[1].v[0],
            a * self.modes[0].v[1] + b * self.modes[1].v[1],
        ]
    }

    /// Time derivative of the state at time `t`.
    #[must_use]
    pub fn derivative(&self, t: f64) -> [f64; 2] {
        let a = self.modes[0].coord_dot(t);
        let b = self.modes[1].coord_dot(t);
        [
            a * self.modes[0].v[0] + b * self.modes[1].v[0],
            a * self.modes[0].v[1] + b * self.modes[1].v[1],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn classifies_real_distinct() {
        let e = Eigen2::new([[-1.0, 0.0], [0.0, -3.0]]);
        match e.eigenvalues() {
            Eigenvalues2::RealDistinct { l1, l2 } => {
                assert!(approx_eq(l1, -1.0, 1e-14));
                assert!(approx_eq(l2, -3.0, 1e-14));
            }
            other => panic!("expected real distinct, got {other:?}"),
        }
    }

    #[test]
    fn classifies_complex() {
        // Rotation generator: eigenvalues ±i.
        let e = Eigen2::new([[0.0, -1.0], [1.0, 0.0]]);
        match e.eigenvalues() {
            Eigenvalues2::ComplexPair { re, im } => {
                assert!(approx_eq(re, 0.0, 1e-14));
                assert!(approx_eq(im, 1.0, 1e-14));
            }
            other => panic!("expected complex, got {other:?}"),
        }
    }

    #[test]
    fn classifies_repeated() {
        let e = Eigen2::new([[2.0, 0.0], [0.0, 2.0]]);
        assert!(matches!(e.eigenvalues(), Eigenvalues2::RealRepeated { .. }));
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let a = [[1.0, 2.0], [3.0, 0.0]];
        let e = Eigen2::new(a);
        if let Eigenvalues2::RealDistinct { l1, l2 } = e.eigenvalues() {
            for l in [l1, l2] {
                let v = e.eigenvector(l).unwrap();
                let av = [
                    a[0][0] * v[0] + a[0][1] * v[1],
                    a[1][0] * v[0] + a[1][1] * v[1],
                ];
                assert!(approx_eq(av[0], l * v[0], 1e-10));
                assert!(approx_eq(av[1], l * v[1], 1e-10));
            }
        } else {
            panic!("expected real distinct eigenvalues");
        }
    }

    #[test]
    fn eigenvector_rejects_non_eigenvalue() {
        let e = Eigen2::new([[1.0, 2.0], [3.0, 0.0]]);
        assert!(e.eigenvector(100.0).is_err());
    }

    #[test]
    fn affine_solution_matches_initial_value() {
        let e = Eigen2::new([[-2.0, 1.0], [1.0, -3.0]]);
        let sol = e.solve_affine([0.7, -0.2], [0.5, 0.0]).unwrap();
        let x = sol.eval(0.0);
        assert!(approx_eq(x[0], 0.7, 1e-12));
        assert!(approx_eq(x[1], -0.2, 1e-12));
    }

    #[test]
    fn affine_solution_satisfies_ode() {
        // Check x'(t) == A x(t) + g at several times.
        let a = [[-2.0, 1.0], [1.0, -3.0]];
        let g = [0.5, -0.1];
        let sol = Eigen2::new(a).solve_affine([1.0, 0.0], g).unwrap();
        for &t in &[0.0, 0.1, 0.5, 2.0] {
            let x = sol.eval(t);
            let xd = sol.derivative(t);
            let rhs = [
                a[0][0] * x[0] + a[0][1] * x[1] + g[0],
                a[1][0] * x[0] + a[1][1] * x[1] + g[1],
            ];
            assert!(approx_eq(xd[0], rhs[0], 1e-10), "t={t}");
            assert!(approx_eq(xd[1], rhs[1], 1e-10), "t={t}");
        }
    }

    #[test]
    fn affine_solution_with_zero_eigenvalue() {
        // Mode (1,1) of the NOR gate: V_N floats (zero eigenvalue), V_O
        // decays. A = [[0,0],[0,-k]], g = 0.
        let k = 4.0;
        let sol = Eigen2::new([[0.0, 0.0], [0.0, -k]])
            .solve_affine([0.8, 0.8], [0.0, 0.0])
            .unwrap();
        let x = sol.eval(0.25);
        assert!(approx_eq(x[0], 0.8, 1e-12), "floating node keeps value");
        assert!(approx_eq(x[1], 0.8 * (-1.0f64).exp(), 1e-12));
    }

    #[test]
    fn affine_solution_with_zero_eigenvalue_and_drive() {
        // x' = 0·x + g along a floating direction integrates linearly.
        let sol = Eigen2::new([[0.0, 0.0], [0.0, -1.0]])
            .solve_affine([0.0, 0.0], [2.0, 0.0])
            .unwrap();
        let x = sol.eval(3.0);
        assert!(approx_eq(x[0], 6.0, 1e-12));
    }

    #[test]
    fn affine_rejects_complex() {
        let e = Eigen2::new([[0.0, -1.0], [1.0, 0.0]]);
        assert!(e.solve_affine([1.0, 0.0], [0.0, 0.0]).is_err());
    }

    #[test]
    fn affine_handles_scalar_matrix() {
        let sol = Eigen2::new([[-1.0, 0.0], [0.0, -1.0]])
            .solve_affine([2.0, 3.0], [0.0, 0.0])
            .unwrap();
        let x = sol.eval(1.0);
        let decay = (-1.0f64).exp();
        assert!(approx_eq(x[0], 2.0 * decay, 1e-12));
        assert!(approx_eq(x[1], 3.0 * decay, 1e-12));
    }

    #[test]
    fn affine_rejects_defective() {
        // Jordan block: repeated eigenvalue, not diagonalizable.
        let e = Eigen2::new([[1.0, 1.0], [0.0, 1.0]]);
        assert!(e.solve_affine([1.0, 0.0], [0.0, 0.0]).is_err());
    }

    #[test]
    fn steady_state_reached() {
        // x' = A(x - x*) form: steady state x* = -A^{-1} g.
        let a = [[-2.0, 1.0], [1.0, -3.0]];
        let g = [1.0, 2.0];
        let sol = Eigen2::new(a).solve_affine([0.0, 0.0], g).unwrap();
        let x = sol.eval(100.0);
        // Solve A x* = -g by hand: det = 5, x* = (1/5)[3·1+1·2, 1·1+2·2]
        assert!(approx_eq(x[0], 1.0, 1e-9));
        assert!(approx_eq(x[1], 1.0, 1e-9));
    }
}
