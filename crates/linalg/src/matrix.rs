use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::LinalgError;

/// A dense, row-major `f64` matrix.
///
/// Sized for the problems in this workspace: modified-nodal-analysis systems
/// of a transistor-level gate (≈ 4–10 unknowns) and the 2×2 state matrices of
/// the hybrid delay model. All operations are straightforward O(n³)/O(n²)
/// dense kernels; no attempt is made at blocking or sparsity.
///
/// # Examples
///
/// ```
/// use mis_linalg::Matrix;
///
/// # fn main() -> Result<(), mis_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; a zero-sized matrix is never
    /// meaningful in this workspace and always indicates a logic error.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `rows` is empty, any row is
    /// empty, or the rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::InvalidShape {
                reason: "matrix must have at least one row and one column".into(),
            });
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::InvalidShape {
                reason: "ragged rows".into(),
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{}xK * Kx{}", self.rows, rhs.cols),
                found: format!("{}x{} * {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when
    /// `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("length {}", x.len()),
            });
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self[(i, j)] * x[j];
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Scales every entry by `s`, returning a new matrix.
    #[must_use]
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Maximum absolute entry (the max-norm).
    ///
    /// Returns 0 for an all-zero matrix. NaN entries are ignored by `max`,
    /// so callers that may encounter NaN should check [`Matrix::has_nan`].
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// `true` if any entry is NaN.
    #[must_use]
    pub fn has_nan(&self) -> bool {
        self.data.iter().any(|v| v.is_nan())
    }

    /// Entrywise approximate equality within `tol` (absolute-and-relative,
    /// see [`crate::approx_eq`]).
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| crate::approx_eq(*a, *b, tol))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix addition requires equal shapes"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix subtraction requires equal shapes"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.6e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_rows(&[&[a, b], &[c, d]]).expect("2x2")
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        let _ = Matrix::zeros(0, 2);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidShape { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
        let empty: &[f64] = &[];
        assert!(Matrix::from_rows(&[empty]).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m22(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matvec_known() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let y = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn matvec_wrong_length() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert_eq!(&a + &b, m22(5.0, 5.0, 5.0, 5.0));
        assert_eq!(&a - &a, Matrix::zeros(2, 2));
        assert_eq!(&a * 2.0, m22(2.0, 4.0, 6.0, 8.0));
        assert_eq!(-&a, m22(-1.0, -2.0, -3.0, -4.0));
    }

    #[test]
    fn norms() {
        let a = m22(3.0, 0.0, 0.0, -4.0);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn nan_detection() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_nan());
        a[(1, 0)] = f64::NAN;
        assert!(a.has_nan());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let mut b = a.clone();
        b[(0, 0)] += 1e-13;
        assert!(a.approx_eq(&b, 1e-12));
        b[(0, 0)] += 1.0;
        assert!(!a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }
}
