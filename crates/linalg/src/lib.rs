//! Small dense linear algebra for circuit-scale systems.
//!
//! This crate provides exactly the linear-algebra machinery the rest of the
//! workspace needs and nothing more:
//!
//! * [`Matrix`] — a dense, row-major, heap-allocated `f64` matrix with the
//!   usual arithmetic, built for the *tiny* systems that arise in circuit
//!   simulation (a handful of nodes in modified nodal analysis, 2×2 state
//!   matrices in the hybrid gate model).
//! * [`LuFactors`] — LU decomposition with partial pivoting, used to solve
//!   the Newton update equations of the analog simulator and the normal
//!   equations of Levenberg–Marquardt fitting.
//! * [`Eigen2`] — closed-form eigendecomposition of 2×2 matrices, the
//!   backbone of the analytic per-mode solutions of the hybrid NOR model
//!   (paper eqs. (1)–(7)).
//!
//! # Examples
//!
//! Solving a small linear system:
//!
//! ```
//! use mis_linalg::{Matrix, LuFactors};
//!
//! # fn main() -> Result<(), mis_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuFactors::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod eigen2;
mod error;
mod lu;
mod matrix;

pub use eigen2::{Eigen2, Eigenvalues2};
pub use error::LinalgError;
pub use lu::LuFactors;
pub use matrix::Matrix;

/// Returns `true` when `a` and `b` agree within an absolute *and* relative
/// tolerance of `tol`.
///
/// The comparison used throughout the workspace's numerical tests:
/// `|a - b| <= tol * max(1, |a|, |b|)`.
///
/// # Examples
///
/// ```
/// assert!(mis_linalg::approx_eq(1.0, 1.0 + 1e-13, 1e-12));
/// assert!(!mis_linalg::approx_eq(1.0, 1.1, 1e-12));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= tol * scale
}
