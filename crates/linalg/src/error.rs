use std::error::Error;
use std::fmt;

/// Errors produced by linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// A matrix was (numerically) singular, so the requested factorization
    /// or solve could not proceed. Carries the pivot column at which
    /// elimination broke down.
    Singular {
        /// Column index of the vanishing pivot.
        pivot: usize,
    },
    /// The operands' dimensions are incompatible with the requested
    /// operation (e.g. multiplying a 2×3 by a 2×3, or solving a 3×3 system
    /// with a length-2 right-hand side).
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape actually supplied.
        found: String,
    },
    /// A constructor was given data inconsistent with the requested shape
    /// (ragged rows, zero dimension, element count mismatch).
    InvalidShape {
        /// Description of what was wrong.
        reason: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot in column {pivot})")
            }
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::InvalidShape { reason } => {
                write!(f, "invalid shape: {reason}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is singular (zero pivot in column 3)");
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            expected: "2x2".into(),
            found: "2x3".into(),
        };
        assert!(e.to_string().contains("expected 2x2"));
        assert!(e.to_string().contains("found 2x3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
