//! Property-based tests for the numerics substrate, on the in-repo
//! `mis-testkit` harness (offline replacement for `proptest`).

use mis_num::{exproots, interp, lm, minimize, ode, quad, roots};
use mis_testkit::prelude::*;

#[test]
fn brent_finds_roots_of_shifted_cubics() {
    Config::default().run(&(-5.0..5.0f64), |&shift| {
        // f(x) = (x − shift)³ has a unique root at `shift`.
        let f = |x: f64| (x - shift).powi(3);
        let r = roots::brent(f, -10.0, 10.0, 1e-14).unwrap();
        prop_assert!((r - shift).abs() < 1e-4, "root {} vs {}", r, shift);
        Ok(())
    });
}

#[test]
fn brent_and_bisect_agree() {
    Config::default().run(&(0.2..3.0f64, 0.2..3.0f64), |&(a, b)| {
        // Monotone transcendental with a root guaranteed in the bracket.
        let f = move |x: f64| a * x - (b / (x + 1.0));
        let lo = 0.0;
        let hi = 10.0;
        prop_assume!(f(lo) < 0.0 && f(hi) > 0.0);
        let r1 = roots::brent(f, lo, hi, 1e-13).unwrap();
        let r2 = roots::bisect(f, lo, hi, 1e-11).unwrap();
        prop_assert!((r1 - r2).abs() < 1e-8);
        Ok(())
    });
}

#[test]
fn golden_section_brackets_parabola_vertex() {
    Config::default().run(&(-8.0..8.0f64, 0.1..5.0f64), |&(v, c)| {
        let m = minimize::golden_section(|x| c * (x - v) * (x - v), -10.0, 10.0, 1e-11).unwrap();
        prop_assert!((m.x - v).abs() < 1e-4);
        Ok(())
    });
}

#[test]
fn nelder_mead_solves_random_quadratics() {
    Config::default().run(
        &(-3.0..3.0f64, -3.0..3.0f64, 0.5..4.0f64, 0.5..4.0f64),
        |&(cx, cy, sx, sy)| {
            let f = move |p: &[f64]| sx * (p[0] - cx).powi(2) + sy * (p[1] - cy).powi(2);
            let r = minimize::NelderMead::new()
                .with_max_evals(3000)
                .minimize(f, &[0.0, 0.0])
                .unwrap();
            prop_assert!((r.x[0] - cx).abs() < 1e-3, "{} vs {}", r.x[0], cx);
            prop_assert!((r.x[1] - cy).abs() < 1e-3);
            Ok(())
        },
    );
}

#[test]
fn lm_recovers_two_parameter_exponential() {
    Config::default().run(&(0.2..2.0f64, 0.1..2.0f64), |&(a, tau)| {
        let ts: Vec<f64> = (0..25).map(|i| i as f64 * 0.1).collect();
        let data: Vec<f64> = ts.iter().map(|t| a * (-t / tau).exp()).collect();
        let fit = lm::levenberg_marquardt(
            |p, out| {
                for (i, t) in ts.iter().enumerate() {
                    out[i] = p[0] * (-t / p[1]).exp() - data[i];
                }
            },
            &[1.0, 1.0],
            ts.len(),
            &lm::LmConfig::default(),
        )
        .unwrap();
        prop_assert!((fit.x[0] - a).abs() < 1e-4, "a: {} vs {}", fit.x[0], a);
        prop_assert!(
            (fit.x[1] - tau).abs() < 1e-4,
            "tau: {} vs {}",
            fit.x[1],
            tau
        );
        Ok(())
    });
}

#[test]
fn rk45_matches_closed_form_decay() {
    Config::default().run(&(0.1..20.0f64, 0.1..2.0f64), |&(k, y0)| {
        let samples = ode::integrate_adaptive(
            |_t, y, dy| dy[0] = -k * y[0],
            0.0,
            1.0,
            &[y0],
            &ode::AdaptiveOptions::default(),
        )
        .unwrap();
        let yf = samples.last().unwrap().y[0];
        let exact = y0 * (-k).exp();
        prop_assert!((yf - exact).abs() < 1e-7 * (1.0 + exact.abs()));
        Ok(())
    });
}

#[test]
fn exp2_crossings_are_actual_roots() {
    Config::default().run(
        &(
            -2.0..2.0f64,
            -2.0..2.0f64,
            -20.0..-0.1f64,
            -20.0..-0.1f64,
            -1.5..1.5f64,
        ),
        |&(a, b, l1, l2, c)| {
            prop_assume!(a != 0.0 || b != 0.0);
            let rts = exproots::exp2_crossings(a, l1, b, l2, c, 10.0).unwrap();
            prop_assert!(rts.len() <= 2, "at most two roots: {rts:?}");
            for &t in &rts {
                let f = a * (l1 * t).exp() + b * (l2 * t).exp() - c;
                prop_assert!(f.abs() < 1e-8, "f({t}) = {f}");
            }
            // Roots sorted.
            for w in rts.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            Ok(())
        },
    );
}

#[test]
fn exp2_crossings_no_missed_roots_vs_dense_sampling() {
    Config::default().run(
        &(
            -2.0..2.0f64,
            -2.0..2.0f64,
            -10.0..-0.1f64,
            -10.0..-0.1f64,
            -1.5..1.5f64,
        ),
        |&(a, b, l1, l2, c)| {
            prop_assume!(a != 0.0 || b != 0.0);
            let rts = exproots::exp2_crossings(a, l1, b, l2, c, 5.0).unwrap();
            // Count sign changes on a fine grid; must not exceed analytic count.
            let f = |t: f64| a * (l1 * t).exp() + b * (l2 * t).exp() - c;
            let mut grid_changes = 0;
            let n = 20_000;
            let mut prev = f(0.0);
            for i in 1..=n {
                let t = 5.0 * i as f64 / n as f64;
                let v = f(t);
                if prev != 0.0 && v != 0.0 && prev.signum() != v.signum() {
                    grid_changes += 1;
                }
                prev = v;
            }
            prop_assert!(
                rts.len() >= grid_changes,
                "analytic {} roots but grid found {} sign changes",
                rts.len(),
                grid_changes
            );
            Ok(())
        },
    );
}

#[test]
fn lerp_is_exact_on_linear_functions() {
    Config::default().run(
        &(-5.0..5.0f64, -5.0..5.0f64, -0.5..10.5f64),
        |&(m, q, x)| {
            let xs: Vec<f64> = (0..11).map(|i| i as f64).collect();
            let ys: Vec<f64> = xs.iter().map(|&v| m * v + q).collect();
            let y = interp::lerp_table(&xs, &ys, x).unwrap();
            let expected = m * x.clamp(0.0, 10.0) + q;
            prop_assert!((y - expected).abs() < 1e-9 * (1.0 + expected.abs()));
            Ok(())
        },
    );
}

#[test]
fn abs_area_triangle_inequality() {
    Config::default().run(
        &(
            vec(-2.0..2.0f64, 6),
            vec(-2.0..2.0f64, 6),
            vec(-2.0..2.0f64, 6),
        ),
        |(f, g, h)| {
            let xs: Vec<f64> = (0..6).map(|i| i as f64).collect();
            let d = |p: &[f64], q: &[f64]| quad::abs_area_between(&xs, p, &xs, q).unwrap();
            let fg = d(f, g);
            let gh = d(g, h);
            let fh = d(f, h);
            prop_assert!(fh <= fg + gh + 1e-9, "triangle: {fh} > {fg} + {gh}");
            Ok(())
        },
    );
}

#[test]
fn trapezoid_linearity() {
    Config::default().run(&(vec(-3.0..3.0f64, 8), -2.0..2.0f64), |(ys, scale)| {
        let xs: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
        let scaled: Vec<f64> = ys.iter().map(|v| v * scale).collect();
        let a1 = quad::trapezoid(&xs, ys).unwrap();
        let a2 = quad::trapezoid(&xs, &scaled).unwrap();
        prop_assert!((a2 - scale * a1).abs() < 1e-9 * (1.0 + a1.abs()));
        Ok(())
    });
}
