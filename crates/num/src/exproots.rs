//! Exact root localization for two-exponential functions
//! `f(t) = a·e^{λ₁t} + b·e^{λ₂t} − c`.
//!
//! Every per-mode output-voltage trajectory of the hybrid NOR model has
//! exactly this form (one or two real exponentials plus a constant), so
//! threshold-crossing extraction reduces to finding the roots of `f` on an
//! interval. Such an `f` has **at most two** real roots, because its
//! derivative `a·λ₁·e^{λ₁t} + b·λ₂·e^{λ₂t}` vanishes at most once (the
//! ratio of two exponentials is monotone). This module brackets each
//! monotone piece analytically and refines with Brent — crossings are never
//! missed by sampling artifacts.

use crate::{roots, NumError};

/// Absolute tolerance for root refinement, as a fraction of `t_max`.
const REL_XTOL: f64 = 1e-15;

/// Returns all roots of `a·e^{l1·t} + b·e^{l2·t} = c` with `0 <= t <= t_max`,
/// sorted increasingly.
///
/// Exponents may be zero (constant terms) or equal (the two terms merge).
/// Positive exponents are accepted but the caller is responsible for
/// keeping `t_max` small enough that `e^{l·t_max}` does not overflow.
///
/// # Errors
///
/// * [`NumError::InvalidInput`] — `t_max` is not positive and finite, or a
///   coefficient is non-finite.
///
/// # Examples
///
/// A discharging RC output crossing half-swing:
///
/// ```
/// # fn main() -> Result<(), mis_num::NumError> {
/// // 0.8·e^{-t/τ} = 0.4  ⟹  t = τ·ln 2
/// let tau = 25e-12;
/// let r = mis_num::exproots::exp2_crossings(0.8, -1.0 / tau, 0.0, 0.0, 0.4, 1e-9)?;
/// assert_eq!(r.len(), 1);
/// assert!((r[0] - tau * std::f64::consts::LN_2).abs() < 1e-24);
/// # Ok(())
/// # }
/// ```
pub fn exp2_crossings(
    a: f64,
    l1: f64,
    b: f64,
    l2: f64,
    c: f64,
    t_max: f64,
) -> Result<Vec<f64>, NumError> {
    if !(t_max > 0.0) || !t_max.is_finite() {
        return Err(NumError::InvalidInput {
            reason: "t_max must be positive and finite".into(),
        });
    }
    for (name, v) in [("a", a), ("l1", l1), ("b", b), ("l2", l2), ("c", c)] {
        if !v.is_finite() {
            return Err(NumError::InvalidInput {
                reason: format!("coefficient {name} is not finite"),
            });
        }
    }

    // Normalize: fold constant terms (λ = 0) into the offset, merge equal
    // exponents, and drop zero coefficients.
    let mut amp = Vec::<(f64, f64)>::new(); // (coefficient, exponent)
    let mut offset = -c;
    for (coef, lam) in [(a, l1), (b, l2)] {
        if coef == 0.0 {
            continue;
        }
        if lam == 0.0 {
            offset += coef;
        } else if let Some(slot) = amp.iter_mut().find(|(_, l)| *l == lam) {
            slot.0 += coef;
        } else {
            amp.push((coef, lam));
        }
    }
    amp.retain(|&(coef, _)| coef != 0.0);

    match amp.len() {
        0 => {
            // Constant function: either no roots or "everywhere"; report none
            // (a constant exactly on the threshold carries no crossing event).
            Ok(Vec::new())
        }
        1 => {
            // coef·e^{λt} + offset = 0 ⟹ t = ln(−offset/coef)/λ.
            let (coef, lam) = amp[0];
            let ratio = -offset / coef;
            if ratio <= 0.0 {
                return Ok(Vec::new());
            }
            let t = ratio.ln() / lam;
            if (0.0..=t_max).contains(&t) {
                Ok(vec![t])
            } else {
                Ok(Vec::new())
            }
        }
        _ => {
            let f = |t: f64| -> f64 {
                let mut v = offset;
                for &(coef, lam) in &amp {
                    v += coef * (lam * t).exp();
                }
                v
            };
            // Two distinct exponentials: derivative vanishes at most once, at
            // t* = ln(−(b·λ₂)/(a·λ₁)) / (λ₁ − λ₂).
            let (ca, la) = amp[0];
            let (cb, lb) = amp[1];
            let ratio = -(cb * lb) / (ca * la);
            let t_star = if ratio > 0.0 {
                let t = ratio.ln() / (la - lb);
                (t > 0.0 && t < t_max).then_some(t)
            } else {
                None
            };
            let mut pieces: Vec<(f64, f64)> = Vec::with_capacity(2);
            match t_star {
                Some(ts) => {
                    pieces.push((0.0, ts));
                    pieces.push((ts, t_max));
                }
                None => pieces.push((0.0, t_max)),
            }
            let xtol = REL_XTOL * t_max;
            let mut out = Vec::new();
            for (lo, hi) in pieces {
                let flo = f(lo);
                let fhi = f(hi);
                if flo == 0.0 {
                    push_unique(&mut out, lo, xtol);
                    continue;
                }
                if fhi == 0.0 {
                    push_unique(&mut out, hi, xtol);
                    continue;
                }
                if flo.signum() != fhi.signum() {
                    let r = roots::brent(&f, lo, hi, xtol)?;
                    push_unique(&mut out, r, xtol);
                }
            }
            out.sort_by(|x, y| x.partial_cmp(y).expect("finite roots"));
            Ok(out)
        }
    }
}

fn push_unique(out: &mut Vec<f64>, r: f64, xtol: f64) {
    if out.iter().all(|&x| (x - r).abs() > 2.0 * xtol) {
        out.push(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_exponential_decay() {
        // 1·e^{-2t} = 0.25 ⟹ t = ln(4)/2
        let r = exp2_crossings(1.0, -2.0, 0.0, 0.0, 0.25, 10.0).unwrap();
        assert_eq!(r.len(), 1);
        assert!((r[0] - 4.0f64.ln() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn no_root_when_level_unreachable() {
        // e^{-t} never reaches 2 for t >= 0.
        assert!(exp2_crossings(1.0, -1.0, 0.0, 0.0, 2.0, 10.0)
            .unwrap()
            .is_empty());
        // ... nor negative levels.
        assert!(exp2_crossings(1.0, -1.0, 0.0, 0.0, -0.5, 10.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn root_beyond_t_max_excluded() {
        let r = exp2_crossings(1.0, -1.0, 0.0, 0.0, 0.5, 0.1).unwrap();
        assert!(r.is_empty(), "ln 2 ≈ 0.693 > 0.1");
    }

    #[test]
    fn rising_saturating_curve() {
        // 1 − e^{-t} = 0.5 written as −1·e^{-t} + 1·e^{0t} = 0.5.
        let r = exp2_crossings(-1.0, -1.0, 1.0, 0.0, 0.5, 10.0).unwrap();
        assert_eq!(r.len(), 1);
        assert!((r[0] - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn two_roots_from_non_monotone_sum() {
        // f(t) = 5·e^{-5t} − 4·e^{-t}: f(0) = 1 > 0, dips negative, then
        // approaches 0 from below... check f against level -0.5 which is
        // crossed twice.
        let f = |t: f64| 5.0 * (-5.0 * t).exp() - 4.0 * (-t).exp();
        let r = exp2_crossings(5.0, -5.0, -4.0, -1.0, -0.5, 20.0).unwrap();
        assert_eq!(r.len(), 2, "expected a dip through the level twice: {r:?}");
        for &t in &r {
            assert!((f(t) + 0.5).abs() < 1e-9);
        }
        assert!(r[0] < r[1]);
    }

    #[test]
    fn equal_exponents_merge() {
        // 0.3 e^{-t} + 0.7 e^{-t} = e^{-t}.
        let r = exp2_crossings(0.3, -1.0, 0.7, -1.0, 0.5, 10.0).unwrap();
        assert_eq!(r.len(), 1);
        assert!((r[0] - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn cancelling_coefficients_constant_zero() {
        // 1·e^{-t} − 1·e^{-t} − 0 = 0 everywhere: report no crossing events.
        let r = exp2_crossings(1.0, -1.0, -1.0, -1.0, 0.0, 10.0).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn root_at_zero_reported_once() {
        // f(0) = 1 + 1 − 2 = 0.
        let r = exp2_crossings(1.0, -1.0, 1.0, -2.0, 2.0, 10.0).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0], 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(exp2_crossings(1.0, -1.0, 0.0, 0.0, 0.5, 0.0).is_err());
        assert!(exp2_crossings(f64::NAN, -1.0, 0.0, 0.0, 0.5, 1.0).is_err());
        assert!(exp2_crossings(1.0, -1.0, 0.0, 0.0, 0.5, f64::INFINITY).is_err());
    }

    #[test]
    fn nor_mode_00_style_rise() {
        // V_O(t) = VDD + c1·v1·e^{λ1 t} + c2·v2·e^{λ2 t} rising from 0 to
        // VDD = 0.8, crossing 0.4 exactly once.
        let vdd = 0.8;
        // Pick a representative pair of decaying components with V_O(0)=0.
        let (k1, k2) = (-0.55 * vdd, -0.25 * vdd);
        let (l1, l2) = (-3.0e10, -0.8e10);
        // roots of k1 e^{l1 t} + k2 e^{l2 t} = 0.4 − 0.8 = −0.4
        let r = exp2_crossings(k1, l1, k2, l2, 0.4 - vdd, 1e-9).unwrap();
        assert_eq!(r.len(), 1);
        let f = k1 * (l1 * r[0]).exp() + k2 * (l2 * r[0]).exp() + vdd;
        assert!((f - 0.4).abs() < 1e-10);
    }
}
