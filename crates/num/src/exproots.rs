//! Exact root localization for two-exponential functions
//! `f(t) = a·e^{λ₁t} + b·e^{λ₂t} − c`.
//!
//! Every per-mode output-voltage trajectory of the hybrid NOR model has
//! exactly this form (one or two real exponentials plus a constant), so
//! threshold-crossing extraction reduces to finding the roots of `f` on an
//! interval. Such an `f` has **at most two** real roots, because its
//! derivative `a·λ₁·e^{λ₁t} + b·λ₂·e^{λ₂t}` vanishes at most once (the
//! ratio of two exponentials is monotone). This module brackets each
//! monotone piece analytically and refines with Brent — crossings are never
//! missed by sampling artifacts.

use crate::NumError;

/// Absolute tolerance for root refinement, as a fraction of `t_max`.
const REL_XTOL: f64 = 1e-15;

/// Returns all roots of `a·e^{l1·t} + b·e^{l2·t} = c` with `0 <= t <= t_max`,
/// sorted increasingly.
///
/// Exponents may be zero (constant terms) or equal (the two terms merge).
/// Positive exponents are accepted but the caller is responsible for
/// keeping `t_max` small enough that `e^{l·t_max}` does not overflow.
///
/// # Errors
///
/// * [`NumError::InvalidInput`] — `t_max` is not positive and finite, or a
///   coefficient is non-finite.
///
/// # Examples
///
/// A discharging RC output crossing half-swing:
///
/// ```
/// # fn main() -> Result<(), mis_num::NumError> {
/// // 0.8·e^{-t/τ} = 0.4  ⟹  t = τ·ln 2
/// let tau = 25e-12;
/// let r = mis_num::exproots::exp2_crossings(0.8, -1.0 / tau, 0.0, 0.0, 0.4, 1e-9)?;
/// assert_eq!(r.len(), 1);
/// assert!((r[0] - tau * std::f64::consts::LN_2).abs() < 1e-24);
/// # Ok(())
/// # }
/// ```
pub fn exp2_crossings(
    a: f64,
    l1: f64,
    b: f64,
    l2: f64,
    c: f64,
    t_max: f64,
) -> Result<Vec<f64>, NumError> {
    if !(t_max > 0.0) || !t_max.is_finite() {
        return Err(NumError::InvalidInput {
            reason: "t_max must be positive and finite".into(),
        });
    }
    for (name, v) in [("a", a), ("l1", l1), ("b", b), ("l2", l2), ("c", c)] {
        if !v.is_finite() {
            return Err(NumError::InvalidInput {
                reason: format!("coefficient {name} is not finite"),
            });
        }
    }

    // Normalize: fold constant terms (λ = 0) into the offset, merge equal
    // exponents, and drop zero coefficients. At most two terms survive, so
    // a fixed-size buffer keeps this hot path allocation-free.
    let mut amp = [(0.0_f64, 0.0_f64); 2]; // (coefficient, exponent)
    let mut n_amp = 0_usize;
    let mut offset = -c;
    for (coef, lam) in [(a, l1), (b, l2)] {
        if coef == 0.0 {
            continue;
        }
        if lam == 0.0 {
            offset += coef;
        } else if let Some(slot) = amp[..n_amp].iter_mut().find(|(_, l)| *l == lam) {
            slot.0 += coef;
        } else {
            amp[n_amp] = (coef, lam);
            n_amp += 1;
        }
    }
    if n_amp == 2 && amp[1].0 == 0.0 {
        n_amp = 1;
    }
    if n_amp >= 1 && amp[0].0 == 0.0 {
        amp[0] = amp[1];
        n_amp -= 1;
    }
    let amp = &amp[..n_amp];

    match amp.len() {
        0 => {
            // Constant function: either no roots or "everywhere"; report none
            // (a constant exactly on the threshold carries no crossing event).
            Ok(Vec::new())
        }
        1 => {
            // coef·e^{λt} + offset = 0 ⟹ t = ln(−offset/coef)/λ.
            let (coef, lam) = amp[0];
            let ratio = -offset / coef;
            if ratio <= 0.0 {
                return Ok(Vec::new());
            }
            let t = ratio.ln() / lam;
            if (0.0..=t_max).contains(&t) {
                Ok(vec![t])
            } else {
                Ok(Vec::new())
            }
        }
        _ => {
            let f = |t: f64| -> f64 {
                let mut v = offset;
                for &(coef, lam) in amp {
                    v += coef * (lam * t).exp();
                }
                v
            };
            // Value and derivative from the same exponentials — one pair
            // of `exp` calls serves both, which is what makes the Newton
            // refinement cheaper than derivative-free bisection hybrids.
            let f_df = |t: f64| -> (f64, f64) {
                let mut v = offset;
                let mut dv = 0.0;
                for &(coef, lam) in amp {
                    let e = coef * (lam * t).exp();
                    v += e;
                    dv += lam * e;
                }
                (v, dv)
            };
            // Two distinct exponentials: derivative vanishes at most once, at
            // t* = ln(−(b·λ₂)/(a·λ₁)) / (λ₁ − λ₂).
            let (ca, la) = amp[0];
            let (cb, lb) = amp[1];
            let ratio = -(cb * lb) / (ca * la);
            let t_star = if ratio > 0.0 {
                let t = ratio.ln() / (la - lb);
                (t > 0.0 && t < t_max).then_some(t)
            } else {
                None
            };
            let pieces: [(f64, f64); 2] = match t_star {
                Some(ts) => [(0.0, ts), (ts, t_max)],
                None => [(0.0, t_max), (t_max, t_max)], // second piece is empty
            };
            let xtol = REL_XTOL * t_max;
            // Characteristic scale for the bracket scan: a fraction of the
            // fastest time constant. Roots live at O(1/|λ|) distances, so
            // scanning geometrically from this scale finds a bracket that
            // is orders of magnitude tighter than the full piece (whose
            // width is the crossing-search horizon, ~60 slow τ). This is
            // what makes rising delays (root-found in the coupled (0,0)
            // mode) as cheap as falling ones (closed-form in (1,1)).
            let scan_step = 0.5 / la.abs().max(lb.abs());
            let mut out = Vec::new();
            for (lo, hi) in pieces {
                if !(hi > lo) {
                    continue;
                }
                let flo = f(lo);
                let fhi = f(hi);
                if flo == 0.0 {
                    push_unique(&mut out, lo, xtol);
                    continue;
                }
                if fhi == 0.0 {
                    push_unique(&mut out, hi, xtol);
                    continue;
                }
                if flo.signum() != fhi.signum() {
                    let r = monotone_root(f, f_df, lo, hi, flo, fhi, scan_step, xtol)?;
                    push_unique(&mut out, r, xtol);
                }
            }
            out.sort_by(|x, y| x.partial_cmp(y).expect("finite roots"));
            Ok(out)
        }
    }
}

/// Finds the single root of a *monotone* `f` on `[lo, hi]` (the caller
/// guarantees a sign change): geometrically expands a bracket of initial
/// width `scan_step` from `lo`, then refines with bracket-safeguarded
/// Newton on the tightened bracket (quadratic convergence; bisection
/// fallback keeps every iterate inside the sign-change bracket).
#[allow(clippy::too_many_arguments)]
fn monotone_root(
    f: impl Fn(f64) -> f64,
    f_df: impl Fn(f64) -> (f64, f64),
    lo: f64,
    hi: f64,
    flo: f64,
    fhi: f64,
    scan_step: f64,
    xtol: f64,
) -> Result<f64, NumError> {
    let mut width = scan_step;
    if !(width > 0.0) || !width.is_finite() || width >= hi - lo {
        return newton_bracketed(&f_df, lo, hi, flo, fhi, xtol);
    }
    let mut a = lo;
    let fa = flo;
    loop {
        let b = (a + width).min(hi);
        if b >= hi {
            // The sign change sits in the remaining tail.
            return newton_bracketed(&f_df, a, hi, fa, fhi, xtol);
        }
        let fb = f(b);
        if !fb.is_finite() {
            return Err(NumError::NonFiniteValue { at: b });
        }
        if fb == 0.0 {
            return Ok(b);
        }
        if fb.signum() != fa.signum() {
            return newton_bracketed(&f_df, a, b, fa, fb, xtol);
        }
        a = b;
        width *= 2.0;
    }
}

/// Newton's method confined to a sign-change bracket `[a, b]`: iterates
/// that leave the bracket (or a vanishing derivative) fall back to
/// bisection, so worst-case behaviour is plain bisection while smooth
/// two-exponential crossings converge quadratically.
fn newton_bracketed(
    f_df: impl Fn(f64) -> (f64, f64),
    mut a: f64,
    mut b: f64,
    mut fa: f64,
    fb: f64,
    xtol: f64,
) -> Result<f64, NumError> {
    debug_assert!(fa.signum() != fb.signum());
    let _ = fb;
    let mut x = 0.5 * (a + b);
    for _ in 0..200 {
        let (fx, dfx) = f_df(x);
        if !fx.is_finite() {
            return Err(NumError::NonFiniteValue { at: x });
        }
        if fx == 0.0 {
            return Ok(x);
        }
        if fx.signum() == fa.signum() {
            a = x;
            fa = fx;
        } else {
            b = x;
        }
        let tol = xtol.max(4.0 * f64::EPSILON * a.abs().max(b.abs()));
        if b - a < tol {
            return Ok(0.5 * (a + b));
        }
        let step = fx / dfx;
        let candidate = x - step;
        x = if candidate.is_finite() && candidate > a && candidate < b {
            if step.abs() < tol {
                return Ok(candidate);
            }
            candidate
        } else {
            0.5 * (a + b)
        };
    }
    Err(NumError::NoConvergence {
        iterations: 200,
        residual: f_df(x).0.abs(),
    })
}

fn push_unique(out: &mut Vec<f64>, r: f64, xtol: f64) {
    if out.iter().all(|&x| (x - r).abs() > 2.0 * xtol) {
        out.push(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_exponential_decay() {
        // 1·e^{-2t} = 0.25 ⟹ t = ln(4)/2
        let r = exp2_crossings(1.0, -2.0, 0.0, 0.0, 0.25, 10.0).unwrap();
        assert_eq!(r.len(), 1);
        assert!((r[0] - 4.0f64.ln() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn no_root_when_level_unreachable() {
        // e^{-t} never reaches 2 for t >= 0.
        assert!(exp2_crossings(1.0, -1.0, 0.0, 0.0, 2.0, 10.0)
            .unwrap()
            .is_empty());
        // ... nor negative levels.
        assert!(exp2_crossings(1.0, -1.0, 0.0, 0.0, -0.5, 10.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn root_beyond_t_max_excluded() {
        let r = exp2_crossings(1.0, -1.0, 0.0, 0.0, 0.5, 0.1).unwrap();
        assert!(r.is_empty(), "ln 2 ≈ 0.693 > 0.1");
    }

    #[test]
    fn rising_saturating_curve() {
        // 1 − e^{-t} = 0.5 written as −1·e^{-t} + 1·e^{0t} = 0.5.
        let r = exp2_crossings(-1.0, -1.0, 1.0, 0.0, 0.5, 10.0).unwrap();
        assert_eq!(r.len(), 1);
        assert!((r[0] - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn two_roots_from_non_monotone_sum() {
        // f(t) = 5·e^{-5t} − 4·e^{-t}: f(0) = 1 > 0, dips negative, then
        // approaches 0 from below... check f against level -0.5 which is
        // crossed twice.
        let f = |t: f64| 5.0 * (-5.0 * t).exp() - 4.0 * (-t).exp();
        let r = exp2_crossings(5.0, -5.0, -4.0, -1.0, -0.5, 20.0).unwrap();
        assert_eq!(r.len(), 2, "expected a dip through the level twice: {r:?}");
        for &t in &r {
            assert!((f(t) + 0.5).abs() < 1e-9);
        }
        assert!(r[0] < r[1]);
    }

    #[test]
    fn equal_exponents_merge() {
        // 0.3 e^{-t} + 0.7 e^{-t} = e^{-t}.
        let r = exp2_crossings(0.3, -1.0, 0.7, -1.0, 0.5, 10.0).unwrap();
        assert_eq!(r.len(), 1);
        assert!((r[0] - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn cancelling_coefficients_constant_zero() {
        // 1·e^{-t} − 1·e^{-t} − 0 = 0 everywhere: report no crossing events.
        let r = exp2_crossings(1.0, -1.0, -1.0, -1.0, 0.0, 10.0).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn root_at_zero_reported_once() {
        // f(0) = 1 + 1 − 2 = 0.
        let r = exp2_crossings(1.0, -1.0, 1.0, -2.0, 2.0, 10.0).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0], 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(exp2_crossings(1.0, -1.0, 0.0, 0.0, 0.5, 0.0).is_err());
        assert!(exp2_crossings(f64::NAN, -1.0, 0.0, 0.0, 0.5, 1.0).is_err());
        assert!(exp2_crossings(1.0, -1.0, 0.0, 0.0, 0.5, f64::INFINITY).is_err());
    }

    #[test]
    fn near_equal_exponent_rates_stay_accurate() {
        // λ₂ = λ₁(1 + ε): the stationary-point formula divides by λ₁ − λ₂,
        // which must not destabilize the result. Reference: for nearly
        // equal rates the sum is ≈ (a+b)·e^{λt}.
        for &eps in &[1e-6, 1e-9, 1e-12] {
            let l1 = -2.0;
            let l2 = l1 * (1.0 + eps);
            let r = exp2_crossings(0.4, l1, 0.6, l2, 0.5, 10.0).unwrap();
            assert_eq!(r.len(), 1, "eps = {eps:e}: {r:?}");
            let expected = (0.5f64).ln() / -2.0; // ln 2 / 2
            assert!(
                (r[0] - expected).abs() < 1e-6,
                "eps = {eps:e}: {} vs {expected}",
                r[0]
            );
        }
    }

    #[test]
    fn crossing_arbitrarily_close_to_zero() {
        // Root at t₀ = 10⁻¹⁸ of a 1 ns window: the tightened bracket scan
        // must localize it without degrading accuracy.
        for &t0 in &[1e-12_f64, 1e-15, 1e-18] {
            let tau = 25e-12_f64;
            let level = 0.8 * (-t0 / tau).exp();
            // Two-exponential form so the Brent path is exercised.
            let r = exp2_crossings(0.4, -1.0 / tau, 0.4, -1.0 / tau * (1.0 + 1e-3), level, 1e-9)
                .unwrap();
            assert_eq!(r.len(), 1, "t0 = {t0:e}: {r:?}");
            assert!(
                (r[0] - t0).abs() < 1e-3 * t0 + 1e-21,
                "t0 = {t0:e}: got {:e}",
                r[0]
            );
        }
    }

    #[test]
    fn no_crossing_two_exponential_is_clean_and_fast() {
        // A genuinely out-of-reach level with two distinct exponents: the
        // solver must report "no roots" without ever invoking the
        // iterative refinement (there is no sign change to hand to Brent),
        // i.e. a clean Ok(empty) — never a NoConvergence error.
        let r = exp2_crossings(0.3, -2.0e10, 0.5, -0.7e10, 2.0, 1e-8).unwrap();
        assert!(r.is_empty());
        // Same on the negative side.
        let r = exp2_crossings(0.3, -2.0e10, 0.5, -0.7e10, -1.0, 1e-8).unwrap();
        assert!(r.is_empty());
        // A non-monotone dip that never reaches the level: two monotone
        // pieces, neither with a sign change.
        // (the dip's minimum is ≈ −2.02, safely above −2.1)
        let r = exp2_crossings(5.0, -5.0, -4.0, -1.0, -2.1, 20.0).unwrap();
        assert!(r.is_empty(), "dip bottoms out above −2.1: {r:?}");
    }

    #[test]
    fn overflowing_positive_exponent_reports_clean_error() {
        // A positive exponent with a huge horizon overflows e^{λt}; the
        // contract is a descriptive error, not a hang or a panic.
        let res = exp2_crossings(1.0, 2000.0, 1.0, -1.0, -5.0, 1.0);
        match res {
            Err(NumError::NonFiniteValue { .. }) | Ok(_) => {}
            Err(e) => panic!("expected NonFiniteValue or roots, got {e:?}"),
        }
    }

    #[test]
    fn nor_mode_00_style_rise() {
        // V_O(t) = VDD + c1·v1·e^{λ1 t} + c2·v2·e^{λ2 t} rising from 0 to
        // VDD = 0.8, crossing 0.4 exactly once.
        let vdd = 0.8;
        // Pick a representative pair of decaying components with V_O(0)=0.
        let (k1, k2) = (-0.55 * vdd, -0.25 * vdd);
        let (l1, l2) = (-3.0e10, -0.8e10);
        // roots of k1 e^{l1 t} + k2 e^{l2 t} = 0.4 − 0.8 = −0.4
        let r = exp2_crossings(k1, l1, k2, l2, 0.4 - vdd, 1e-9).unwrap();
        assert_eq!(r.len(), 1);
        let f = k1 * (l1 * r[0]).exp() + k2 * (l2 * r[0]).exp() + vdd;
        assert!((f - 0.4).abs() < 1e-10);
    }
}
