//! Derivative-free minimization: golden-section search and Nelder–Mead.
//!
//! The paper validates its characteristic-delay formulas against MATLAB's
//! `fminbnd` (a golden-section/parabolic hybrid) and obtains the Table I
//! parameters by least-squares fitting. [`golden_section`] is our `fminbnd`
//! stand-in; [`NelderMead`] is the derivative-free simplex optimizer the
//! fitting pipeline builds on (robust to the noisy, kinked objectives that
//! threshold-crossing delays produce).

use crate::NumError;

/// Result of a scalar minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarMin {
    /// Abscissa of the located minimum.
    pub x: f64,
    /// Objective value at [`ScalarMin::x`].
    pub value: f64,
    /// Iterations used.
    pub iterations: usize,
}

/// Minimizes a unimodal scalar function over `[a, b]` by golden-section
/// search.
///
/// Note the fundamental accuracy floor of comparison-based minimization:
/// near the minimum, objective differences scale with `(x - x*)²`, so the
/// abscissa cannot be located more precisely than about `√ε ≈ 1.5e-8`
/// relative to the problem scale, no matter how small `xtol` is.
///
/// # Errors
///
/// * [`NumError::InvalidBracket`] — `a >= b`.
/// * [`NumError::NonFiniteValue`] — objective returned NaN/inf.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mis_num::NumError> {
/// let m = mis_num::minimize::golden_section(|x| (x - 1.5).powi(2), 0.0, 4.0, 1e-10)?;
/// assert!((m.x - 1.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn golden_section<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    xtol: f64,
) -> Result<ScalarMin, NumError> {
    if !(a < b) {
        return Err(NumError::InvalidBracket {
            a,
            b,
            reason: "endpoints not ordered".into(),
        });
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    let mut iterations = 0;
    while (b - a) > xtol && iterations < 400 {
        if !fc.is_finite() {
            return Err(NumError::NonFiniteValue { at: c });
        }
        if !fd.is_finite() {
            return Err(NumError::NonFiniteValue { at: d });
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
        iterations += 1;
    }
    let x = 0.5 * (a + b);
    let value = f(x);
    if !value.is_finite() {
        return Err(NumError::NonFiniteValue { at: x });
    }
    Ok(ScalarMin {
        x,
        value,
        iterations,
    })
}

/// Outcome of a Nelder–Mead run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexMin {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at [`SimplexMin::x`].
    pub value: f64,
    /// Objective evaluations performed.
    pub evaluations: usize,
    /// Whether the simplex shrank below the configured tolerances.
    pub converged: bool,
}

/// Nelder–Mead downhill-simplex minimizer.
///
/// Construct with [`NelderMead::new`], optionally adjust the budget and
/// tolerances, then call [`NelderMead::minimize`]. The implementation uses
/// the standard reflection/expansion/contraction/shrink coefficients
/// (1, 2, ½, ½) and an adaptive initial simplex scaled per coordinate.
///
/// # Examples
///
/// ```
/// use mis_num::minimize::NelderMead;
///
/// # fn main() -> Result<(), mis_num::NumError> {
/// // Rosenbrock function: minimum at (1, 1).
/// let rosen = |p: &[f64]| {
///     let (x, y) = (p[0], p[1]);
///     (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2)
/// };
/// let result = NelderMead::new().with_max_evals(4000).minimize(rosen, &[-1.2, 1.0])?;
/// assert!((result.x[0] - 1.0).abs() < 1e-4);
/// assert!((result.x[1] - 1.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NelderMead {
    max_evals: usize,
    xtol: f64,
    ftol: f64,
    initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            max_evals: 2000,
            xtol: 1e-10,
            ftol: 1e-12,
            initial_step: 0.1,
        }
    }
}

impl NelderMead {
    /// Creates an optimizer with default budget (2000 evaluations) and
    /// tolerances (`xtol = 1e-10`, `ftol = 1e-12`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum number of objective evaluations.
    #[must_use]
    pub fn with_max_evals(mut self, max_evals: usize) -> Self {
        self.max_evals = max_evals;
        self
    }

    /// Sets the simplex-diameter convergence tolerance.
    #[must_use]
    pub fn with_xtol(mut self, xtol: f64) -> Self {
        self.xtol = xtol;
        self
    }

    /// Sets the objective-spread convergence tolerance.
    #[must_use]
    pub fn with_ftol(mut self, ftol: f64) -> Self {
        self.ftol = ftol;
        self
    }

    /// Sets the relative size of the initial simplex (default 0.1, i.e.
    /// each vertex perturbs one coordinate by 10 % — or by an absolute step
    /// for near-zero coordinates).
    #[must_use]
    pub fn with_initial_step(mut self, step: f64) -> Self {
        self.initial_step = step;
        self
    }

    /// Runs the minimization from `x0`.
    ///
    /// # Errors
    ///
    /// * [`NumError::InvalidInput`] — empty starting point.
    /// * [`NumError::NonFiniteValue`] — objective returned NaN/inf at the
    ///   starting simplex (non-finite values *during* the search are treated
    ///   as +∞ so the simplex retreats from them).
    pub fn minimize<F: FnMut(&[f64]) -> f64>(
        &self,
        mut f: F,
        x0: &[f64],
    ) -> Result<SimplexMin, NumError> {
        let n = x0.len();
        if n == 0 {
            return Err(NumError::InvalidInput {
                reason: "empty starting point".into(),
            });
        }
        let mut evals = 0usize;
        let f0_raw = f(x0);
        evals += 1;
        if !f0_raw.is_finite() && f0_raw.is_nan() {
            return Err(NumError::NonFiniteValue { at: 0.0 });
        }
        let mut eval = |p: &[f64], evals: &mut usize| -> f64 {
            *evals += 1;
            let v = f(p);
            if v.is_nan() {
                f64::INFINITY
            } else {
                v
            }
        };

        // Initial simplex: x0 plus per-coordinate perturbations.
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.to_vec());
        for i in 0..n {
            let mut v = x0.to_vec();
            let step = if v[i].abs() > 1e-12 {
                self.initial_step * v[i].abs()
            } else {
                self.initial_step
            };
            v[i] += step;
            simplex.push(v);
        }
        let mut fvals: Vec<f64> = Vec::with_capacity(n + 1);
        fvals.push(if f0_raw.is_nan() {
            f64::INFINITY
        } else {
            f0_raw
        });
        fvals.extend(simplex[1..].iter().map(|p| eval(p, &mut evals)));

        let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
        loop {
            // Order simplex by objective.
            let mut order: Vec<usize> = (0..=n).collect();
            order.sort_by(|&i, &j| fvals[i].partial_cmp(&fvals[j]).expect("no NaN"));
            let best = order[0];
            let worst = order[n];
            let second_worst = order[n - 1];

            // Convergence: simplex diameter and objective spread.
            let diam = simplex
                .iter()
                .map(|p| {
                    p.iter()
                        .zip(&simplex[best])
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0_f64, f64::max)
                })
                .fold(0.0_f64, f64::max);
            let fspread = fvals[worst] - fvals[best];
            let scale = 1.0 + simplex[best].iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            if diam < self.xtol * scale && fspread.abs() < self.ftol * (1.0 + fvals[best].abs()) {
                return Ok(SimplexMin {
                    x: simplex[best].clone(),
                    value: fvals[best],
                    evaluations: evals,
                    converged: true,
                });
            }
            if evals >= self.max_evals {
                return Ok(SimplexMin {
                    x: simplex[best].clone(),
                    value: fvals[best],
                    evaluations: evals,
                    converged: false,
                });
            }

            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; n];
            for (idx, p) in simplex.iter().enumerate() {
                if idx == worst {
                    continue;
                }
                for (c, v) in centroid.iter_mut().zip(p) {
                    *c += v / n as f64;
                }
            }

            let lerp = |from: &[f64], towards: &[f64], t: f64| -> Vec<f64> {
                from.iter()
                    .zip(towards)
                    .map(|(a, b)| a + t * (b - a))
                    .collect()
            };

            // Reflection.
            let reflected = lerp(&centroid, &simplex[worst], -alpha);
            let fr = eval(&reflected, &mut evals);
            if fr < fvals[best] {
                // Expansion.
                let expanded = lerp(&centroid, &simplex[worst], -gamma);
                let fe = eval(&expanded, &mut evals);
                if fe < fr {
                    simplex[worst] = expanded;
                    fvals[worst] = fe;
                } else {
                    simplex[worst] = reflected;
                    fvals[worst] = fr;
                }
            } else if fr < fvals[second_worst] {
                simplex[worst] = reflected;
                fvals[worst] = fr;
            } else {
                // Contraction (outside if reflection improved on worst,
                // inside otherwise).
                let contracted = if fr < fvals[worst] {
                    lerp(&centroid, &reflected, rho)
                } else {
                    lerp(&centroid, &simplex[worst], rho)
                };
                let fc = eval(&contracted, &mut evals);
                if fc < fvals[worst].min(fr) {
                    simplex[worst] = contracted;
                    fvals[worst] = fc;
                } else {
                    // Shrink towards the best vertex.
                    let best_point = simplex[best].clone();
                    for idx in 0..=n {
                        if idx == best {
                            continue;
                        }
                        simplex[idx] = lerp(&best_point, &simplex[idx], sigma);
                        fvals[idx] = eval(&simplex[idx], &mut evals);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_quadratic() {
        let m = golden_section(|x| (x - 3.0) * (x - 3.0) + 1.0, -10.0, 10.0, 1e-12).unwrap();
        // √ε accuracy floor: ~1e-8 relative to the problem scale of 10.
        assert!((m.x - 3.0).abs() < 1e-6);
        assert!((m.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn golden_section_asymmetric_function() {
        // Minimum of x - ln(x) at x = 1.
        let m = golden_section(|x: f64| x - x.ln(), 0.1, 5.0, 1e-12).unwrap();
        assert!((m.x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn golden_section_rejects_bad_interval() {
        assert!(golden_section(|x| x, 1.0, 0.0, 1e-10).is_err());
    }

    #[test]
    fn golden_section_rejects_nan() {
        assert!(golden_section(|_| f64::NAN, 0.0, 1.0, 1e-10).is_err());
    }

    #[test]
    fn nelder_mead_sphere() {
        let r = NelderMead::new()
            .minimize(|p| p.iter().map(|v| v * v).sum(), &[1.0, -2.0, 3.0])
            .unwrap();
        assert!(r.value < 1e-12);
        for v in &r.x {
            assert!(v.abs() < 1e-5);
        }
    }

    #[test]
    fn nelder_mead_rosenbrock() {
        let rosen = |p: &[f64]| {
            let (x, y) = (p[0], p[1]);
            (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2)
        };
        let r = NelderMead::new()
            .with_max_evals(5000)
            .minimize(rosen, &[-1.2, 1.0])
            .unwrap();
        assert!(r.converged, "should converge within budget");
        assert!((r.x[0] - 1.0).abs() < 1e-4);
        assert!((r.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn nelder_mead_respects_budget() {
        let r = NelderMead::new()
            .with_max_evals(10)
            .minimize(|p| p[0] * p[0], &[100.0])
            .unwrap();
        assert!(!r.converged);
        assert!(r.evaluations <= 12, "a few extra evals at setup are ok");
    }

    #[test]
    fn nelder_mead_survives_nan_regions() {
        // NaN outside |x| <= 10 must not break the search for the minimum at 5.
        let f = |p: &[f64]| {
            if p[0].abs() > 10.0 {
                f64::NAN
            } else {
                (p[0] - 5.0) * (p[0] - 5.0)
            }
        };
        let r = NelderMead::new().minimize(f, &[8.0]).unwrap();
        assert!((r.x[0] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn nelder_mead_rejects_empty_input() {
        assert!(NelderMead::new().minimize(|_| 0.0, &[]).is_err());
    }

    #[test]
    fn nelder_mead_zero_start_coordinates() {
        // Starting at the origin exercises the absolute-step branch.
        let r = NelderMead::new()
            .minimize(
                |p| (p[0] - 0.5).powi(2) + (p[1] + 0.25).powi(2),
                &[0.0, 0.0],
            )
            .unwrap();
        assert!((r.x[0] - 0.5).abs() < 1e-5);
        assert!((r.x[1] + 0.25).abs() < 1e-5);
    }
}
