use std::error::Error;
use std::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumError {
    /// A bracketing interval was invalid: the function does not change sign
    /// over `[a, b]`, or the interval is degenerate.
    InvalidBracket {
        /// Left endpoint supplied.
        a: f64,
        /// Right endpoint supplied.
        b: f64,
        /// Diagnostic detail.
        reason: String,
    },
    /// An iteration failed to converge within its budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Best residual / error estimate at abandonment.
        residual: f64,
    },
    /// The objective or derivative returned a non-finite value.
    NonFiniteValue {
        /// Where the non-finite value was observed (e.g. input abscissa).
        at: f64,
    },
    /// The caller supplied inconsistent or out-of-domain arguments.
    InvalidInput {
        /// Description of the problem.
        reason: String,
    },
    /// An embedded linear solve failed (e.g. singular LM normal matrix).
    LinearSolve(mis_linalg::LinalgError),
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::InvalidBracket { a, b, reason } => {
                write!(f, "invalid bracket [{a}, {b}]: {reason}")
            }
            NumError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumError::NonFiniteValue { at } => {
                write!(f, "non-finite function value near {at}")
            }
            NumError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            NumError::LinearSolve(e) => write!(f, "linear solve failed: {e}"),
        }
    }
}

impl Error for NumError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NumError::LinearSolve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mis_linalg::LinalgError> for NumError {
    fn from(e: mis_linalg::LinalgError) -> Self {
        NumError::LinearSolve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = NumError::NoConvergence {
            iterations: 50,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("50 iterations"));
        let e = NumError::InvalidBracket {
            a: 0.0,
            b: 1.0,
            reason: "no sign change".into(),
        };
        assert!(e.to_string().contains("no sign change"));
    }

    #[test]
    fn wraps_linalg_error_with_source() {
        use std::error::Error as _;
        let inner = mis_linalg::LinalgError::Singular { pivot: 0 };
        let e = NumError::from(inner);
        assert!(e.source().is_some());
    }
}
