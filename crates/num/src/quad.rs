//! Quadrature over sampled curves: trapezoid rule and the exact absolute
//! area between two piecewise-linear functions.
//!
//! The paper's accuracy metric (Fig. 7) integrates the absolute difference
//! between a digital model's output trace and the digitized SPICE trace.
//! [`abs_area_between`] computes that integral *exactly* for
//! piecewise-linear inputs by splitting each segment at internal sign
//! changes of the difference.

use crate::interp::validate_table;
use crate::NumError;

/// Trapezoid-rule integral of the sampled curve `(xs, ys)`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for invalid tables (see
/// [`crate::interp::lerp_table`]).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mis_num::NumError> {
/// // ∫₀² x dx = 2
/// let area = mis_num::quad::trapezoid(&[0.0, 1.0, 2.0], &[0.0, 1.0, 2.0])?;
/// assert!((area - 2.0).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
pub fn trapezoid(xs: &[f64], ys: &[f64]) -> Result<f64, NumError> {
    validate_table(xs, ys)?;
    let mut acc = 0.0;
    for i in 1..xs.len() {
        acc += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
    }
    Ok(acc)
}

/// Exact integral of `|f(x) − g(x)|` where `f` and `g` are the
/// piecewise-linear interpolants of `(xs_f, ys_f)` and `(xs_g, ys_g)`,
/// over the intersection of their domains.
///
/// Both curves are first merged onto the union grid of breakpoints, then
/// each segment of the (linear) difference is integrated exactly,
/// splitting at its internal zero if it changes sign.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for invalid tables or disjoint
/// domains.
pub fn abs_area_between(
    xs_f: &[f64],
    ys_f: &[f64],
    xs_g: &[f64],
    ys_g: &[f64],
) -> Result<f64, NumError> {
    validate_table(xs_f, ys_f)?;
    validate_table(xs_g, ys_g)?;
    let lo = xs_f[0].max(xs_g[0]);
    let hi = xs_f[xs_f.len() - 1].min(xs_g[xs_g.len() - 1]);
    if !(hi > lo) {
        return Err(NumError::InvalidInput {
            reason: "curve domains do not overlap".into(),
        });
    }
    // Union grid restricted to [lo, hi].
    let mut grid: Vec<f64> = Vec::with_capacity(xs_f.len() + xs_g.len() + 2);
    grid.push(lo);
    grid.extend(
        xs_f.iter()
            .chain(xs_g.iter())
            .copied()
            .filter(|&x| x > lo && x < hi),
    );
    grid.push(hi);
    grid.sort_by(|a, b| a.partial_cmp(b).expect("finite abscissae"));
    grid.dedup();

    let mut acc = 0.0;
    let eval = |xs: &[f64], ys: &[f64], x: f64| crate::interp::lerp_table_unchecked(xs, ys, x);
    for w in grid.windows(2) {
        let (x0, x1) = (w[0], w[1]);
        let d0 = eval(xs_f, ys_f, x0) - eval(xs_g, ys_g, x0);
        let d1 = eval(xs_f, ys_f, x1) - eval(xs_g, ys_g, x1);
        let h = x1 - x0;
        if d0 == 0.0 && d1 == 0.0 {
            continue;
        }
        if d0.signum() * d1.signum() >= 0.0 {
            // No interior sign change: trapezoid of |d| directly.
            acc += 0.5 * (d0.abs() + d1.abs()) * h;
        } else {
            // Linear difference crosses zero at fraction t*.
            let t_star = d0 / (d0 - d1);
            acc += 0.5 * d0.abs() * t_star * h;
            acc += 0.5 * d1.abs() * (1.0 - t_star) * h;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_of_constant() {
        let a = trapezoid(&[0.0, 2.0, 5.0], &[3.0, 3.0, 3.0]).unwrap();
        assert!((a - 15.0).abs() < 1e-15);
    }

    #[test]
    fn trapezoid_signed() {
        let a = trapezoid(&[0.0, 1.0, 2.0], &[-1.0, -1.0, -1.0]).unwrap();
        assert!((a + 2.0).abs() < 1e-15);
    }

    #[test]
    fn abs_area_identical_curves_is_zero() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 5.0, 1.0];
        assert_eq!(abs_area_between(&xs, &ys, &xs, &ys).unwrap(), 0.0);
    }

    #[test]
    fn abs_area_constant_offset() {
        let xs = [0.0, 4.0];
        let f = [1.0, 1.0];
        let g = [0.0, 0.0];
        let a = abs_area_between(&xs, &f, &xs, &g).unwrap();
        assert!((a - 4.0).abs() < 1e-15);
    }

    #[test]
    fn abs_area_with_sign_change_is_split_exactly() {
        // f = x on [0,2], g = 1: |x−1| integrates to 1 (two triangles of ½).
        let a = abs_area_between(&[0.0, 2.0], &[0.0, 2.0], &[0.0, 2.0], &[1.0, 1.0]).unwrap();
        assert!((a - 1.0).abs() < 1e-15);
    }

    #[test]
    fn abs_area_mismatched_grids() {
        // f is a unit square pulse on [1,2]; g ≡ 0 on a coarser grid.
        let xs_f = [0.0, 1.0, 1.0 + 1e-12, 2.0, 2.0 + 1e-12, 3.0];
        let ys_f = [0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let xs_g = [0.0, 3.0];
        let ys_g = [0.0, 0.0];
        let a = abs_area_between(&xs_f, &ys_f, &xs_g, &ys_g).unwrap();
        assert!((a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn abs_area_symmetry() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let f = [0.0, 2.0, -1.0, 0.5];
        let g = [1.0, 0.0, 0.0, 2.0];
        let ab = abs_area_between(&xs, &f, &xs, &g).unwrap();
        let ba = abs_area_between(&xs, &g, &xs, &f).unwrap();
        assert!((ab - ba).abs() < 1e-15);
    }

    #[test]
    fn abs_area_rejects_disjoint_domains() {
        assert!(abs_area_between(&[0.0, 1.0], &[0.0, 0.0], &[2.0, 3.0], &[0.0, 0.0]).is_err());
    }
}
