//! Scalar root finding: bisection, Brent's method, and bracket expansion.
//!
//! Threshold-crossing extraction — "when does `V_O(t)` cross `V_DD/2`?" — is
//! the single most common numerical operation in this workspace. Brent's
//! method is the workhorse: superlinear on the smooth exponential
//! trajectories of the hybrid model, while never leaving its bracket.

use crate::NumError;

/// Convergence budget shared by the iterative solvers.
const MAX_ITER: usize = 200;

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// Robust and simple; used as the fallback validator for
/// [`brent`]. Requires `f(a)` and `f(b)` to have opposite signs.
///
/// # Errors
///
/// * [`NumError::InvalidBracket`] — no sign change over `[a, b]`.
/// * [`NumError::NonFiniteValue`] — `f` returned NaN/inf.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mis_num::NumError> {
/// let root = mis_num::roots::bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12)?;
/// assert!((root - 2.0f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    xtol: f64,
) -> Result<f64, NumError> {
    if !(a < b) {
        return Err(NumError::InvalidBracket {
            a,
            b,
            reason: "endpoints not ordered".into(),
        });
    }
    let mut fa = f(a);
    let fb = f(b);
    check_finite(fa, a)?;
    check_finite(fb, b)?;
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumError::InvalidBracket {
            a,
            b,
            reason: "no sign change".into(),
        });
    }
    for _ in 0..MAX_ITER.max(128) {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        check_finite(fm, mid)?;
        if fm == 0.0 || (b - a) < xtol {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Ok(0.5 * (a + b))
}

/// Finds a root of `f` in `[a, b]` with Brent's method (inverse quadratic
/// interpolation + secant + bisection safeguards).
///
/// # Errors
///
/// * [`NumError::InvalidBracket`] — no sign change over `[a, b]`.
/// * [`NumError::NonFiniteValue`] — `f` returned NaN/inf.
///
/// # Examples
///
/// Inverting an exponential decay for its half-life:
///
/// ```
/// # fn main() -> Result<(), mis_num::NumError> {
/// let tau = 2.0;
/// let t_half = mis_num::roots::brent(|t: f64| (-t / tau).exp() - 0.5, 0.0, 10.0, 1e-14)?;
/// assert!((t_half - tau * std::f64::consts::LN_2).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn brent<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, xtol: f64) -> Result<f64, NumError> {
    let (mut xa, mut xb) = (a, b);
    let mut fa = f(xa);
    let mut fb = f(xb);
    check_finite(fa, xa)?;
    check_finite(fb, xb)?;
    if fa == 0.0 {
        return Ok(xa);
    }
    if fb == 0.0 {
        return Ok(xb);
    }
    if fa.signum() == fb.signum() {
        return Err(NumError::InvalidBracket {
            a,
            b,
            reason: "no sign change".into(),
        });
    }
    // Ensure |f(xb)| <= |f(xa)|: xb is the current best iterate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut xa, &mut xb);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut xc = xa;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0_f64;

    for _ in 0..MAX_ITER {
        // Converged when the bracket shrinks below the requested tolerance
        // *or* below the floating-point resolution at the iterate — a
        // caller-supplied xtol finer than one ULP is otherwise unreachable.
        let ulp_floor = 4.0 * f64::EPSILON * xa.abs().max(xb.abs());
        if fb == 0.0 || (xb - xa).abs() < xtol.max(ulp_floor) {
            return Ok(xb);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            xa * fb * fc / ((fa - fb) * (fa - fc))
                + xb * fa * fc / ((fb - fa) * (fb - fc))
                + xc * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            xb - fb * (xb - xa) / (fb - fa)
        };

        let lo = (3.0 * xa + xb) / 4.0;
        let (lo, hi) = if lo < xb { (lo, xb) } else { (xb, lo) };
        let use_bisection = !(s > lo && s < hi)
            || (mflag && (s - xb).abs() >= (xb - xc).abs() / 2.0)
            || (!mflag && (s - xb).abs() >= (xc - d).abs() / 2.0)
            || (mflag && (xb - xc).abs() < xtol)
            || (!mflag && (xc - d).abs() < xtol);
        if use_bisection {
            s = 0.5 * (xa + xb);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        check_finite(fs, s)?;
        d = xc;
        xc = xb;
        fc = fb;
        if fa.signum() != fs.signum() {
            xb = s;
            fb = fs;
        } else {
            xa = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut xa, &mut xb);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumError::NoConvergence {
        iterations: MAX_ITER,
        residual: fb.abs(),
    })
}

/// Expands an initial guess interval geometrically until it brackets a sign
/// change of `f`, then returns the bracket.
///
/// Used to locate threshold crossings whose rough time scale is known (an RC
/// time constant) but whose exact position is not.
///
/// # Errors
///
/// * [`NumError::InvalidInput`] — non-positive initial width.
/// * [`NumError::NoConvergence`] — no sign change found within `max_expand`
///   doublings.
/// * [`NumError::NonFiniteValue`] — `f` returned NaN/inf.
pub fn expand_bracket<F: FnMut(f64) -> f64>(
    mut f: F,
    start: f64,
    initial_width: f64,
    max_expand: usize,
) -> Result<(f64, f64), NumError> {
    if !(initial_width > 0.0) {
        return Err(NumError::InvalidInput {
            reason: "initial bracket width must be positive".into(),
        });
    }
    let f0 = f(start);
    check_finite(f0, start)?;
    if f0 == 0.0 {
        return Ok((start, start));
    }
    let mut width = initial_width;
    let mut prev = start;
    let mut fprev = f0;
    for _ in 0..max_expand {
        let next = start + width;
        let fnext = f(next);
        check_finite(fnext, next)?;
        if fnext == 0.0 || fnext.signum() != fprev.signum() {
            return Ok((prev, next));
        }
        prev = next;
        fprev = fnext;
        width *= 2.0;
    }
    Err(NumError::NoConvergence {
        iterations: max_expand,
        residual: fprev.abs(),
    })
}

fn check_finite(v: f64, at: f64) -> Result<(), NumError> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(NumError::NonFiniteValue { at })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-11);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-10),
            Err(NumError::InvalidBracket { .. })
        ));
        assert!(bisect(|x| x, 1.0, 0.0, 1e-10).is_err());
    }

    #[test]
    fn bisect_exact_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-10).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-10).unwrap(), 1.0);
    }

    #[test]
    fn brent_matches_bisect_on_smooth_function() {
        let f = |x: f64| x.exp() - 3.0;
        let rb = brent(f, 0.0, 3.0, 1e-14).unwrap();
        let rbi = bisect(f, 0.0, 3.0, 1e-12).unwrap();
        assert!((rb - 3.0f64.ln()).abs() < 1e-12);
        assert!((rb - rbi).abs() < 1e-9);
    }

    #[test]
    fn brent_handles_steep_function() {
        // Very steep crossing; Brent should still nail it.
        let f = |x: f64| (1e6 * (x - 0.123456)).tanh();
        let r = brent(f, 0.0, 1.0, 1e-15).unwrap();
        assert!((r - 0.123456).abs() < 1e-9);
    }

    #[test]
    fn brent_rejects_nan() {
        assert!(matches!(
            brent(|_| f64::NAN, 0.0, 1.0, 1e-10),
            Err(NumError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn brent_double_root_like_touching_is_rejected() {
        // x^2 touches zero but never changes sign: invalid bracket.
        assert!(brent(|x: f64| x * x, -1.0, 1.0, 1e-12).is_err());
    }

    #[test]
    fn expand_bracket_walks_to_crossing() {
        // Crossing at t = 10; start searching near 0 with width 1.
        let (a, b) = expand_bracket(|t| t - 10.0, 0.0, 1.0, 20).unwrap();
        assert!(a <= 10.0 && 10.0 <= b);
        let r = brent(|t| t - 10.0, a, b, 1e-12).unwrap();
        assert!((r - 10.0).abs() < 1e-10);
    }

    #[test]
    fn expand_bracket_gives_up() {
        assert!(matches!(
            expand_bracket(|_| 1.0, 0.0, 1.0, 8),
            Err(NumError::NoConvergence { .. })
        ));
    }

    #[test]
    fn expand_bracket_rejects_zero_width() {
        assert!(expand_bracket(|t| t, 0.0, 0.0, 8).is_err());
    }
}
