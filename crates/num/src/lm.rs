//! Levenberg–Marquardt nonlinear least squares with finite-difference
//! Jacobians.
//!
//! This is the fitting engine behind the Table I parametrization: given
//! measured characteristic Charlie delays and the hybrid model's predicted
//! delays as a function of `(R1..R4, C_N, C_O)`, [`levenberg_marquardt`]
//! minimizes the sum of squared residuals. Parameters that must stay
//! positive (all of them, here) are handled by the caller fitting in
//! log-space.

use mis_linalg::{LuFactors, Matrix};

use crate::NumError;

/// Configuration for [`levenberg_marquardt`].
#[derive(Debug, Clone)]
pub struct LmConfig {
    /// Maximum outer iterations (Jacobian evaluations).
    pub max_iterations: usize,
    /// Stop when the max-norm of the step falls below `xtol * (1 + |x|)`.
    pub xtol: f64,
    /// Stop when the relative reduction of the cost falls below `ftol`.
    pub ftol: f64,
    /// Initial damping parameter λ.
    pub initial_lambda: f64,
    /// Relative step for forward-difference Jacobians.
    pub fd_step: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            max_iterations: 100,
            xtol: 1e-12,
            ftol: 1e-14,
            initial_lambda: 1e-3,
            fd_step: 1e-7,
        }
    }
}

/// Result of a Levenberg–Marquardt fit.
#[derive(Debug, Clone)]
pub struct LmFit {
    /// Fitted parameter vector.
    pub x: Vec<f64>,
    /// Final cost: ½·Σ rᵢ².
    pub cost: f64,
    /// Final residual vector.
    pub residuals: Vec<f64>,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Whether a convergence criterion (rather than the budget) stopped the
    /// fit.
    pub converged: bool,
}

/// Minimizes `½·‖r(x)‖²` where `r` maps `n` parameters to `m >= n`
/// residuals.
///
/// The Jacobian is approximated by forward differences; the damped normal
/// equations `(JᵀJ + λ·diag(JᵀJ))·δ = −Jᵀr` are solved with LU, with λ
/// adapted multiplicatively (accept → λ/3, reject → λ·2, clamped).
///
/// # Errors
///
/// * [`NumError::InvalidInput`] — empty parameter vector, or fewer
///   residuals than parameters.
/// * [`NumError::NonFiniteValue`] — residuals are non-finite at the start
///   point.
/// * [`NumError::LinearSolve`] — the damped normal matrix became singular
///   (degenerate Jacobian and λ exhausted).
///
/// # Examples
///
/// Fitting an exponential decay `y = a·e^{−b·t}`:
///
/// ```
/// use mis_num::lm::{levenberg_marquardt, LmConfig};
///
/// # fn main() -> Result<(), mis_num::NumError> {
/// let ts: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
/// let data: Vec<f64> = ts.iter().map(|t| 2.0 * (-1.5 * t).exp()).collect();
/// let fit = levenberg_marquardt(
///     |p, out| {
///         for (i, t) in ts.iter().enumerate() {
///             out[i] = p[0] * (-p[1] * t).exp() - data[i];
///         }
///     },
///     &[1.0, 1.0],
///     ts.len(),
///     &LmConfig::default(),
/// )?;
/// assert!((fit.x[0] - 2.0).abs() < 1e-6);
/// assert!((fit.x[1] - 1.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn levenberg_marquardt<F>(
    mut residuals_fn: F,
    x0: &[f64],
    m: usize,
    config: &LmConfig,
) -> Result<LmFit, NumError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    let n = x0.len();
    if n == 0 {
        return Err(NumError::InvalidInput {
            reason: "empty parameter vector".into(),
        });
    }
    if m < n {
        return Err(NumError::InvalidInput {
            reason: format!("need at least as many residuals ({m}) as parameters ({n})"),
        });
    }

    let mut x = x0.to_vec();
    let mut r = vec![0.0; m];
    residuals_fn(&x, &mut r);
    if r.iter().any(|v| !v.is_finite()) {
        return Err(NumError::NonFiniteValue { at: 0.0 });
    }
    let mut cost = 0.5 * r.iter().map(|v| v * v).sum::<f64>();
    let mut lambda = config.initial_lambda;
    let mut jac = Matrix::zeros(m, n);
    let mut r_pert = vec![0.0; m];
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // Forward-difference Jacobian.
        for j in 0..n {
            let old = x[j];
            let h = config.fd_step * (1.0 + old.abs());
            x[j] = old + h;
            residuals_fn(&x, &mut r_pert);
            x[j] = old;
            for i in 0..m {
                jac[(i, j)] = (r_pert[i] - r[i]) / h;
            }
        }
        // Normal matrix JᵀJ and gradient Jᵀr.
        let mut jtj = Matrix::zeros(n, n);
        let mut jtr = vec![0.0; n];
        for i in 0..m {
            for a in 0..n {
                jtr[a] += jac[(i, a)] * r[i];
                for b in a..n {
                    jtj[(a, b)] += jac[(i, a)] * jac[(i, b)];
                }
            }
        }
        for a in 0..n {
            for b in 0..a {
                jtj[(a, b)] = jtj[(b, a)];
            }
        }
        let grad_norm = jtr.iter().fold(0.0_f64, |mx, v| mx.max(v.abs()));
        if grad_norm < 1e-14 * (1.0 + cost) {
            converged = true;
            break;
        }

        // Try damped steps until one reduces the cost or λ saturates.
        let mut accepted = false;
        for _ in 0..30 {
            let mut damped = jtj.clone();
            for a in 0..n {
                // Marquardt scaling: damp proportionally to the diagonal,
                // with a floor so zero-curvature directions remain solvable.
                let d = jtj[(a, a)].max(1e-12);
                damped[(a, a)] += lambda * d;
            }
            let lu = match LuFactors::new(&damped) {
                Ok(lu) => lu,
                Err(_) => {
                    lambda *= 10.0;
                    continue;
                }
            };
            let neg_grad: Vec<f64> = jtr.iter().map(|v| -v).collect();
            let step = lu.solve(&neg_grad)?;
            let x_trial: Vec<f64> = x.iter().zip(&step).map(|(a, s)| a + s).collect();
            residuals_fn(&x_trial, &mut r_pert);
            let cost_trial = if r_pert.iter().all(|v| v.is_finite()) {
                0.5 * r_pert.iter().map(|v| v * v).sum::<f64>()
            } else {
                f64::INFINITY
            };
            if cost_trial < cost {
                let step_norm = step.iter().fold(0.0_f64, |mx, v| mx.max(v.abs()));
                let x_norm = x.iter().fold(0.0_f64, |mx, v| mx.max(v.abs()));
                let cost_drop = cost - cost_trial;
                x = x_trial;
                std::mem::swap(&mut r, &mut r_pert);
                cost = cost_trial;
                lambda = (lambda / 3.0).max(1e-12);
                accepted = true;
                if step_norm < config.xtol * (1.0 + x_norm)
                    || cost_drop < config.ftol * (1.0 + cost)
                {
                    converged = true;
                }
                break;
            }
            lambda *= 2.0;
            if lambda > 1e12 {
                break;
            }
        }
        if !accepted {
            // λ saturated without improvement: local minimum (or stall).
            converged = true;
            break;
        }
        if converged {
            break;
        }
    }

    Ok(LmFit {
        x,
        cost,
        residuals: r,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_model_exactly() {
        // y = 3x + 2 sampled without noise: LM must recover (3, 2).
        let ts: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let fit = levenberg_marquardt(
            |p, out| {
                for (i, t) in ts.iter().enumerate() {
                    out[i] = p[0] * t + p[1] - (3.0 * t + 2.0);
                }
            },
            &[0.0, 0.0],
            ts.len(),
            &LmConfig::default(),
        )
        .unwrap();
        assert!((fit.x[0] - 3.0).abs() < 1e-8);
        assert!((fit.x[1] - 2.0).abs() < 1e-8);
        assert!(fit.cost < 1e-16);
        assert!(fit.converged);
    }

    #[test]
    fn fits_exponential() {
        let ts: Vec<f64> = (0..30).map(|i| i as f64 * 0.05).collect();
        let data: Vec<f64> = ts.iter().map(|t| 0.8 * (-t / 0.3).exp()).collect();
        let fit = levenberg_marquardt(
            |p, out| {
                for (i, t) in ts.iter().enumerate() {
                    out[i] = p[0] * (-t / p[1]).exp() - data[i];
                }
            },
            &[1.0, 1.0],
            ts.len(),
            &LmConfig::default(),
        )
        .unwrap();
        assert!((fit.x[0] - 0.8).abs() < 1e-6, "a = {}", fit.x[0]);
        assert!((fit.x[1] - 0.3).abs() < 1e-6, "tau = {}", fit.x[1]);
    }

    #[test]
    fn overdetermined_noisy_fit_lands_near_truth() {
        // Deterministic pseudo-noise; the fit should land near the truth
        // but not exactly on it.
        let ts: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let data: Vec<f64> = ts
            .iter()
            .enumerate()
            .map(|(i, t)| 2.0 * t + 1.0 + 0.01 * ((i * 2654435761) % 97) as f64 / 97.0)
            .collect();
        let fit = levenberg_marquardt(
            |p, out| {
                for (i, t) in ts.iter().enumerate() {
                    out[i] = p[0] * t + p[1] - data[i];
                }
            },
            &[0.0, 0.0],
            ts.len(),
            &LmConfig::default(),
        )
        .unwrap();
        assert!((fit.x[0] - 2.0).abs() < 0.01);
        assert!((fit.x[1] - 1.0).abs() < 0.02);
    }

    #[test]
    fn rejects_underdetermined_problem() {
        assert!(matches!(
            levenberg_marquardt(|_, out| out[0] = 0.0, &[1.0, 2.0], 1, &LmConfig::default()),
            Err(NumError::InvalidInput { .. })
        ));
    }

    #[test]
    fn rejects_empty_parameters() {
        assert!(levenberg_marquardt(|_, _| {}, &[], 3, &LmConfig::default()).is_err());
    }

    #[test]
    fn rejects_non_finite_start() {
        assert!(matches!(
            levenberg_marquardt(|_, out| out.fill(f64::NAN), &[1.0], 2, &LmConfig::default()),
            Err(NumError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn survives_nan_pockets_during_search() {
        // Residual is NaN for p < 0; start at p = 5, minimum at p = 1.
        let fit = levenberg_marquardt(
            |p, out| {
                out[0] = if p[0] < 0.0 { f64::NAN } else { p[0] - 1.0 };
                out[1] = 0.0;
            },
            &[5.0],
            2,
            &LmConfig::default(),
        )
        .unwrap();
        assert!((fit.x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stalls_gracefully_on_flat_objective() {
        let fit = levenberg_marquardt(|_, out| out.fill(1.0), &[0.5, 0.5], 3, &LmConfig::default())
            .unwrap();
        // Nothing to improve; must terminate claiming convergence-at-stall.
        assert!(fit.converged);
        assert!((fit.cost - 1.5).abs() < 1e-12);
    }
}
