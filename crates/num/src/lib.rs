//! Numerics substrate for the mis-delay workspace.
//!
//! The paper's workflow leans on three numerical capabilities that its
//! authors obtained from MATLAB and hand analysis; this crate provides them
//! from scratch:
//!
//! * **Root finding** ([`roots`]) — inverting switching waveforms to find
//!   threshold-crossing times (Brent's method, bisection, bracket search).
//! * **Minimization and least squares** ([`minimize`], [`lm`]) —
//!   golden-section 1-D search (the paper validates its formulas with
//!   MATLAB's `fminbnd`), Nelder–Mead simplex and Levenberg–Marquardt for
//!   the model parametrization of Section V.
//! * **ODE integration** ([`ode`]) — an adaptive Dormand–Prince RK45
//!   integrator used to *validate* the analytic per-mode solutions of the
//!   hybrid model, and fixed-step RK4 for simple reference curves.
//!
//! Plus the small interpolation/quadrature helpers ([`interp`], [`quad`])
//! shared by the waveform tooling.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod exproots;
pub mod interp;
pub mod lm;
pub mod minimize;
pub mod ode;
pub mod quad;
pub mod roots;

pub use error::NumError;
