//! Explicit Runge–Kutta integration: fixed-step RK4 and adaptive
//! Dormand–Prince RK45 with event (threshold-crossing) detection.
//!
//! In this workspace numerical integration is a *validation* tool: the
//! hybrid model's per-mode trajectories are analytic, and property tests
//! integrate the raw ODE right-hand sides with [`integrate_adaptive`] to
//! confirm the closed forms. The analog simulator uses its own implicit
//! companion-model integration (stiff circuits), not this module.

use crate::NumError;

/// A single classical RK4 step of size `h` for `y' = f(t, y)`.
///
/// `f` writes the derivative of `y` into its third argument.
pub fn rk4_step<F>(f: &mut F, t: f64, y: &[f64], h: f64) -> Vec<f64>
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    let n = y.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];

    f(t, y, &mut k1);
    for i in 0..n {
        tmp[i] = y[i] + 0.5 * h * k1[i];
    }
    f(t + 0.5 * h, &tmp, &mut k2);
    for i in 0..n {
        tmp[i] = y[i] + 0.5 * h * k2[i];
    }
    f(t + 0.5 * h, &tmp, &mut k3);
    for i in 0..n {
        tmp[i] = y[i] + h * k3[i];
    }
    f(t + h, &tmp, &mut k4);

    (0..n)
        .map(|i| y[i] + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]))
        .collect()
}

/// Integrates `y' = f(t, y)` from `t0` to `t1` with `steps` fixed RK4 steps,
/// returning the final state.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for zero steps or a reversed time
/// interval.
pub fn integrate_rk4<F>(
    mut f: F,
    t0: f64,
    t1: f64,
    y0: &[f64],
    steps: usize,
) -> Result<Vec<f64>, NumError>
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    if steps == 0 {
        return Err(NumError::InvalidInput {
            reason: "steps must be positive".into(),
        });
    }
    if !(t1 >= t0) {
        return Err(NumError::InvalidInput {
            reason: "t1 must be >= t0".into(),
        });
    }
    let h = (t1 - t0) / steps as f64;
    let mut y = y0.to_vec();
    let mut t = t0;
    for _ in 0..steps {
        y = rk4_step(&mut f, t, &y, h);
        t += h;
    }
    Ok(y)
}

/// Options for [`integrate_adaptive`].
#[derive(Debug, Clone)]
pub struct AdaptiveOptions {
    /// Relative local-error tolerance.
    pub rtol: f64,
    /// Absolute local-error tolerance.
    pub atol: f64,
    /// Initial step size; `None` picks `(t1-t0)/100`.
    pub initial_step: Option<f64>,
    /// Hard cap on accepted + rejected steps.
    pub max_steps: usize,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            rtol: 1e-9,
            atol: 1e-12,
            initial_step: None,
            max_steps: 100_000,
        }
    }
}

/// Dense output sample from [`integrate_adaptive`]: the accepted step
/// endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct OdeSample {
    /// Time of the accepted step end.
    pub t: f64,
    /// State at [`OdeSample::t`].
    pub y: Vec<f64>,
}

/// Integrates `y' = f(t, y)` from `t0` to `t1` with the Dormand–Prince
/// 5(4) embedded pair, returning all accepted samples (including the
/// initial condition).
///
/// # Errors
///
/// * [`NumError::InvalidInput`] — reversed interval.
/// * [`NumError::NonFiniteValue`] — derivative returned NaN/inf.
/// * [`NumError::NoConvergence`] — step budget exhausted.
///
/// # Examples
///
/// ```
/// use mis_num::ode::{integrate_adaptive, AdaptiveOptions};
///
/// # fn main() -> Result<(), mis_num::NumError> {
/// // y' = -y, y(0) = 1: y(1) = e^{-1}.
/// let samples = integrate_adaptive(
///     |_t, y, dy| dy[0] = -y[0],
///     0.0, 1.0, &[1.0],
///     &AdaptiveOptions::default(),
/// )?;
/// let yf = samples.last().expect("at least the initial sample").y[0];
/// assert!((yf - (-1.0f64).exp()).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn integrate_adaptive<F>(
    mut f: F,
    t0: f64,
    t1: f64,
    y0: &[f64],
    opts: &AdaptiveOptions,
) -> Result<Vec<OdeSample>, NumError>
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    if !(t1 >= t0) {
        return Err(NumError::InvalidInput {
            reason: "t1 must be >= t0".into(),
        });
    }
    let n = y0.len();
    let mut samples = vec![OdeSample {
        t: t0,
        y: y0.to_vec(),
    }];
    if t1 == t0 {
        return Ok(samples);
    }

    // Dormand–Prince coefficients.
    const C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
    const A: [[f64; 6]; 7] = [
        [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
        [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
        [
            19372.0 / 6561.0,
            -25360.0 / 2187.0,
            64448.0 / 6561.0,
            -212.0 / 729.0,
            0.0,
            0.0,
        ],
        [
            9017.0 / 3168.0,
            -355.0 / 33.0,
            46732.0 / 5247.0,
            49.0 / 176.0,
            -5103.0 / 18656.0,
            0.0,
        ],
        [
            35.0 / 384.0,
            0.0,
            500.0 / 1113.0,
            125.0 / 192.0,
            -2187.0 / 6784.0,
            11.0 / 84.0,
        ],
    ];
    // 5th-order weights (same as the last row of A).
    const B5: [f64; 7] = [
        35.0 / 384.0,
        0.0,
        500.0 / 1113.0,
        125.0 / 192.0,
        -2187.0 / 6784.0,
        11.0 / 84.0,
        0.0,
    ];
    // 4th-order (embedded) weights.
    const B4: [f64; 7] = [
        5179.0 / 57600.0,
        0.0,
        7571.0 / 16695.0,
        393.0 / 640.0,
        -92097.0 / 339200.0,
        187.0 / 2100.0,
        1.0 / 40.0,
    ];

    let mut t = t0;
    let mut y = y0.to_vec();
    let mut h = opts.initial_step.unwrap_or((t1 - t0) / 100.0).min(t1 - t0);
    let mut k = vec![vec![0.0; n]; 7];
    let mut ytmp = vec![0.0; n];

    for _step in 0..opts.max_steps {
        if t >= t1 {
            return Ok(samples);
        }
        if t + h > t1 {
            h = t1 - t;
        }
        // Stage evaluations.
        for s in 0..7 {
            for i in 0..n {
                let mut acc = 0.0;
                for (j, kj) in k.iter().enumerate().take(s) {
                    acc += A[s][j] * kj[i];
                }
                ytmp[i] = y[i] + h * acc;
            }
            let (pre, rest) = k.split_at_mut(s);
            let _ = pre;
            f(t + C[s] * h, if s == 0 { &y } else { &ytmp }, &mut rest[0]);
            if rest[0].iter().any(|v| !v.is_finite()) {
                return Err(NumError::NonFiniteValue { at: t });
            }
        }
        // 5th-order solution and embedded error estimate.
        let mut err_norm = 0.0_f64;
        let mut y5 = vec![0.0; n];
        for i in 0..n {
            let mut acc5 = 0.0;
            let mut acc4 = 0.0;
            for s in 0..7 {
                acc5 += B5[s] * k[s][i];
                acc4 += B4[s] * k[s][i];
            }
            y5[i] = y[i] + h * acc5;
            let sc = opts.atol + opts.rtol * y[i].abs().max(y5[i].abs());
            let e = h * (acc5 - acc4) / sc;
            err_norm = err_norm.max(e.abs());
        }

        if err_norm <= 1.0 {
            t += h;
            y = y5;
            samples.push(OdeSample { t, y: y.clone() });
        }
        // PI-free step controller with safety factor.
        let factor = if err_norm > 0.0 {
            (0.9 * err_norm.powf(-0.2)).clamp(0.2, 5.0)
        } else {
            5.0
        };
        h *= factor;
        if h < 1e-18 * (t1 - t0).max(1.0) {
            return Err(NumError::NoConvergence {
                iterations: samples.len(),
                residual: err_norm,
            });
        }
    }
    Err(NumError::NoConvergence {
        iterations: opts.max_steps,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rk4_exponential_decay() {
        let y = integrate_rk4(|_t, y, dy| dy[0] = -y[0], 0.0, 1.0, &[1.0], 100).unwrap();
        assert!((y[0] - (-1.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn rk4_rejects_bad_args() {
        assert!(integrate_rk4(|_, _, _| {}, 0.0, 1.0, &[1.0], 0).is_err());
        assert!(integrate_rk4(|_, _, _| {}, 1.0, 0.0, &[1.0], 10).is_err());
    }

    #[test]
    fn adaptive_matches_exact_linear_system() {
        // Coupled decay akin to the gate's (1,0) mode.
        let a = [[-3.0, 1.0], [1.0, -2.0]];
        let samples = integrate_adaptive(
            move |_t, y, dy| {
                dy[0] = a[0][0] * y[0] + a[0][1] * y[1];
                dy[1] = a[1][0] * y[0] + a[1][1] * y[1];
            },
            0.0,
            2.0,
            &[1.0, 0.0],
            &AdaptiveOptions::default(),
        )
        .unwrap();
        let yf = &samples.last().unwrap().y;
        // Cross-check against the closed-form eigensolution.
        let e = mis_linalg::Eigen2::new(a);
        let sol = e.solve_affine([1.0, 0.0], [0.0, 0.0]).unwrap();
        let exact = sol.eval(2.0);
        assert!((yf[0] - exact[0]).abs() < 1e-8);
        assert!((yf[1] - exact[1]).abs() < 1e-8);
    }

    #[test]
    fn adaptive_handles_stiff_ish_decay() {
        // τ separation of 1000: adaptive explicit integration must still
        // deliver the slow component accurately.
        let samples = integrate_adaptive(
            |_t, y, dy| {
                dy[0] = -1000.0 * y[0];
                dy[1] = -y[1];
            },
            0.0,
            1.0,
            &[1.0, 1.0],
            &AdaptiveOptions::default(),
        )
        .unwrap();
        let yf = &samples.last().unwrap().y;
        assert!(yf[0].abs() < 1e-12);
        assert!((yf[1] - (-1.0f64).exp()).abs() < 1e-7);
    }

    #[test]
    fn adaptive_zero_length_interval() {
        let s = integrate_adaptive(
            |_t, _y, dy| dy[0] = 1.0,
            1.0,
            1.0,
            &[42.0],
            &AdaptiveOptions::default(),
        )
        .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].y[0], 42.0);
    }

    #[test]
    fn adaptive_rejects_nan_derivative() {
        assert!(matches!(
            integrate_adaptive(
                |_t, _y, dy| dy[0] = f64::NAN,
                0.0,
                1.0,
                &[1.0],
                &AdaptiveOptions::default()
            ),
            Err(NumError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn adaptive_samples_are_monotone_in_time() {
        let samples = integrate_adaptive(
            |t, _y, dy| dy[0] = (5.0 * t).sin(),
            0.0,
            3.0,
            &[0.0],
            &AdaptiveOptions::default(),
        )
        .unwrap();
        for w in samples.windows(2) {
            assert!(w[1].t > w[0].t);
        }
        assert_eq!(samples.last().unwrap().t, 3.0);
    }
}
