//! Piecewise-linear and monotone-cubic interpolation over sorted sample
//! tables.
//!
//! [`lerp_table`] is the workhorse for sampled voltage waveforms. The
//! monotone cubic ([`pchip_slopes`] / [`pchip_eval`] / [`MonotoneCubic`])
//! exists for *characterized delay surfaces*: a `δ(Δ)` table has a sharp
//! minimum near `Δ = 0`, and a shape-preserving interpolant is what
//! guarantees the reconstructed surface never undershoots the physical
//! minimum delay between samples — a plain cubic spline would.

use crate::NumError;

/// Linear interpolation of `(xs, ys)` samples at `x`.
///
/// `xs` must be strictly increasing. Values outside the sample range are
/// clamped to the boundary ordinates (constant extrapolation), which is the
/// correct semantics for voltage waveforms that have settled before the
/// first and after the last sample.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if the tables are empty, of unequal
/// length, or `xs` is not strictly increasing.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mis_num::NumError> {
/// let xs = [0.0, 1.0, 2.0];
/// let ys = [0.0, 10.0, 0.0];
/// assert_eq!(mis_num::interp::lerp_table(&xs, &ys, 0.5)?, 5.0);
/// assert_eq!(mis_num::interp::lerp_table(&xs, &ys, -1.0)?, 0.0); // clamped
/// # Ok(())
/// # }
/// ```
pub fn lerp_table(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, NumError> {
    validate_table(xs, ys)?;
    Ok(lerp_table_unchecked(xs, ys, x))
}

/// [`lerp_table`] without validation, for hot loops over pre-validated
/// tables. The caller must guarantee the invariants documented there; a
/// violated invariant yields an unspecified (but memory-safe) result.
#[must_use]
pub fn lerp_table_unchecked(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    if x <= xs[0] {
        return ys[0];
    }
    let last = xs.len() - 1;
    if x >= xs[last] {
        return ys[last];
    }
    // partition_point returns the first index with xs[i] > x.
    let hi = xs.partition_point(|&v| v <= x);
    let lo = hi - 1;
    let t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    ys[lo] + t * (ys[hi] - ys[lo])
}

/// Checks the table invariants shared by the interpolation routines.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on empty/unequal tables or
/// non-increasing abscissae.
pub fn validate_table(xs: &[f64], ys: &[f64]) -> Result<(), NumError> {
    if xs.is_empty() {
        return Err(NumError::InvalidInput {
            reason: "empty sample table".into(),
        });
    }
    if xs.len() != ys.len() {
        return Err(NumError::InvalidInput {
            reason: format!("mismatched table lengths: {} vs {}", xs.len(), ys.len()),
        });
    }
    if xs.windows(2).any(|w| !(w[1] > w[0])) {
        return Err(NumError::InvalidInput {
            reason: "abscissae not strictly increasing".into(),
        });
    }
    Ok(())
}

/// Computes the Fritsch–Carlson (PCHIP) tangent slopes for a monotone
/// cubic Hermite interpolant of `(xs, ys)` on a (possibly non-uniform)
/// strictly increasing grid.
///
/// The returned slopes guarantee that [`pchip_eval`] is *shape
/// preserving*: on every interval where the data are monotone, the
/// interpolant is monotone too, so it never overshoots or undershoots the
/// samples. Local extrema of the data become flat tangents.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] under the same conditions as
/// [`validate_table`], or when fewer than two samples are given, or when a
/// `ys` value is not finite.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mis_num::NumError> {
/// use mis_num::interp::{pchip_eval, pchip_slopes};
/// // A V-shaped table: the interpolant must not dip below the minimum.
/// let xs = [-2.0, -1.0, 0.0, 1.0, 3.0];
/// let ys = [4.0, 2.0, 1.0, 2.0, 4.0];
/// let m = pchip_slopes(&xs, &ys)?;
/// for i in 0..=60 {
///     let x = -2.0 + 5.0 * i as f64 / 60.0;
///     assert!(pchip_eval(&xs, &ys, &m, x) >= 1.0 - 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
pub fn pchip_slopes(xs: &[f64], ys: &[f64]) -> Result<Vec<f64>, NumError> {
    validate_table(xs, ys)?;
    let n = xs.len();
    if n < 2 {
        return Err(NumError::InvalidInput {
            reason: "pchip needs at least two samples".into(),
        });
    }
    if ys.iter().any(|y| !y.is_finite()) {
        return Err(NumError::InvalidInput {
            reason: "non-finite ordinate in pchip table".into(),
        });
    }
    // Interval widths and secant slopes.
    let h: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
    let d: Vec<f64> = ys
        .windows(2)
        .zip(&h)
        .map(|(w, &hi)| (w[1] - w[0]) / hi)
        .collect();
    let mut m = vec![0.0; n];
    if n == 2 {
        m[0] = d[0];
        m[1] = d[0];
        return Ok(m);
    }
    // Interior tangents: zero at local extrema of the data, otherwise the
    // weighted harmonic mean of the adjacent secants (Fritsch–Carlson),
    // which is what enforces monotonicity on non-uniform grids.
    for i in 1..n - 1 {
        if d[i - 1] == 0.0 || d[i] == 0.0 || (d[i - 1] > 0.0) != (d[i] > 0.0) {
            m[i] = 0.0;
        } else {
            let w1 = 2.0 * h[i] + h[i - 1];
            let w2 = h[i] + 2.0 * h[i - 1];
            m[i] = (w1 + w2) / (w1 / d[i - 1] + w2 / d[i]);
        }
    }
    // One-sided endpoint tangents (three-point formula), clamped so the
    // boundary interval stays monotone.
    m[0] = endpoint_slope(h[0], h[1], d[0], d[1]);
    m[n - 1] = endpoint_slope(h[n - 2], h[n - 3], d[n - 2], d[n - 3]);
    Ok(m)
}

/// Non-centered three-point endpoint tangent with the standard PCHIP
/// monotonicity clamps (`h0`/`d0` belong to the boundary interval).
fn endpoint_slope(h0: f64, h1: f64, d0: f64, d1: f64) -> f64 {
    let mut m = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if m * d0 <= 0.0 {
        m = 0.0;
    } else if d0 * d1 < 0.0 && m.abs() > 3.0 * d0.abs() {
        m = 3.0 * d0;
    }
    m
}

/// Evaluates the monotone cubic Hermite interpolant defined by
/// [`pchip_slopes`] at `x`, with constant (clamped) extrapolation outside
/// the grid — the correct semantics for delay surfaces that have saturated
/// to their single-input-switching limits beyond the characterized range.
///
/// The caller must pass the `slopes` computed from the *same* `(xs, ys)`;
/// tables are assumed pre-validated (this is a hot-loop entry point).
#[must_use]
pub fn pchip_eval(xs: &[f64], ys: &[f64], slopes: &[f64], x: f64) -> f64 {
    if x <= xs[0] {
        return ys[0];
    }
    let last = xs.len() - 1;
    if x >= xs[last] {
        return ys[last];
    }
    let hi = xs.partition_point(|&v| v <= x);
    let lo = hi - 1;
    let h = xs[hi] - xs[lo];
    let t = (x - xs[lo]) / h;
    // Cubic Hermite basis.
    let t2 = t * t;
    let t3 = t2 * t;
    let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
    let h10 = t3 - 2.0 * t2 + t;
    let h01 = -2.0 * t3 + 3.0 * t2;
    let h11 = t3 - t2;
    h00 * ys[lo] + h10 * h * slopes[lo] + h01 * ys[hi] + h11 * h * slopes[hi]
}

/// A prepared monotone cubic interpolant: owns its table and precomputed
/// PCHIP tangents, for repeated evaluation on a hot path.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mis_num::NumError> {
/// let c = mis_num::interp::MonotoneCubic::new(
///     vec![0.0, 1.0, 4.0],
///     vec![0.0, 1.0, 2.0],
/// )?;
/// assert_eq!(c.eval(0.0), 0.0);
/// assert_eq!(c.eval(-3.0), 0.0); // clamped
/// assert_eq!(c.eval(9.0), 2.0);  // clamped
/// assert!(c.eval(2.0) > 1.0 && c.eval(2.0) < 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MonotoneCubic {
    xs: Vec<f64>,
    ys: Vec<f64>,
    slopes: Vec<f64>,
}

impl MonotoneCubic {
    /// Builds the interpolant, computing the tangents once.
    ///
    /// # Errors
    ///
    /// Propagates [`pchip_slopes`] failures.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, NumError> {
        let slopes = pchip_slopes(&xs, &ys)?;
        Ok(MonotoneCubic { xs, ys, slopes })
    }

    /// Evaluates at `x` (clamped constant extrapolation outside the grid).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        pchip_eval(&self.xs, &self.ys, &self.slopes, x)
    }

    /// The abscissae.
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The ordinates.
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

/// Finds all crossings of level `level` in the sampled curve `(xs, ys)`,
/// returning `(x, rising)` pairs located by linear interpolation.
///
/// A sample exactly on the level is attributed to the segment that leaves
/// it; flat segments on the level produce no crossing.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] under the same conditions as
/// [`lerp_table`].
pub fn level_crossings(xs: &[f64], ys: &[f64], level: f64) -> Result<Vec<(f64, bool)>, NumError> {
    validate_table(xs, ys)?;
    let mut out = Vec::new();
    for i in 1..xs.len() {
        let (y0, y1) = (ys[i - 1] - level, ys[i] - level);
        if y0 == 0.0 && y1 == 0.0 {
            continue;
        }
        let crosses = (y0 < 0.0 && y1 >= 0.0 && y1 != 0.0)
            || (y0 > 0.0 && y1 <= 0.0 && y1 != 0.0)
            || (y0 == 0.0 && y1 != 0.0 && i == 1)
            || (y1 == 0.0 && y0 != 0.0);
        if !crosses {
            continue;
        }
        let t = y0 / (y0 - y1);
        let x = xs[i - 1] + t * (xs[i] - xs[i - 1]);
        out.push((x, y1 > y0));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_midpoints_and_clamps() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [0.0, 2.0, -2.0];
        assert_eq!(lerp_table(&xs, &ys, 0.5).unwrap(), 1.0);
        assert_eq!(lerp_table(&xs, &ys, 2.0).unwrap(), 0.0);
        assert_eq!(lerp_table(&xs, &ys, -5.0).unwrap(), 0.0);
        assert_eq!(lerp_table(&xs, &ys, 99.0).unwrap(), -2.0);
    }

    #[test]
    fn lerp_exact_sample_points() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [5.0, 7.0, 9.0];
        for i in 0..3 {
            assert_eq!(lerp_table(&xs, &ys, xs[i]).unwrap(), ys[i]);
        }
    }

    #[test]
    fn rejects_bad_tables() {
        assert!(lerp_table(&[], &[], 0.0).is_err());
        assert!(lerp_table(&[0.0, 1.0], &[0.0], 0.0).is_err());
        assert!(lerp_table(&[0.0, 0.0], &[1.0, 2.0], 0.0).is_err());
        assert!(lerp_table(&[1.0, 0.0], &[1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn crossings_simple_ramp() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        let c = level_crossings(&xs, &ys, 0.5).unwrap();
        assert_eq!(c.len(), 1);
        assert!((c[0].0 - 0.5).abs() < 1e-15);
        assert!(c[0].1, "rising");
    }

    #[test]
    fn crossings_pulse_counts_both_edges() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.0, 1.0, 0.0];
        let c = level_crossings(&xs, &ys, 0.5).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c[0].1);
        assert!(!c[1].1);
        assert!((c[0].0 - 0.5).abs() < 1e-15);
        assert!((c[1].0 - 2.5).abs() < 1e-15);
    }

    #[test]
    fn flat_at_level_produces_no_crossings() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.5, 0.5, 0.5];
        assert!(level_crossings(&xs, &ys, 0.5).unwrap().is_empty());
    }

    #[test]
    fn pchip_interpolates_samples_exactly() {
        let xs = [-1.0, 0.0, 0.5, 2.0, 7.0];
        let ys = [3.0, 1.0, 0.5, 2.5, 2.6];
        let m = pchip_slopes(&xs, &ys).unwrap();
        for i in 0..xs.len() {
            assert!((pchip_eval(&xs, &ys, &m, xs[i]) - ys[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn pchip_is_monotone_between_monotone_samples() {
        // Strictly increasing non-uniform data: the interpolant must be
        // non-decreasing everywhere.
        let xs = [0.0, 0.1, 0.5, 2.0, 2.2, 9.0];
        let ys = [0.0, 0.05, 1.0, 1.1, 3.0, 3.5];
        let c = MonotoneCubic::new(xs.to_vec(), ys.to_vec()).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=900 {
            let x = 9.0 * i as f64 / 900.0;
            let y = c.eval(x);
            assert!(y >= prev - 1e-12, "non-monotone at x = {x}: {y} < {prev}");
            prev = y;
        }
    }

    #[test]
    fn pchip_never_undershoots_a_vee_minimum() {
        // Delay-surface shape: sharp minimum at x = 0. A shape-preserving
        // interpolant stays at or above the sample minimum.
        let xs = [-4.0, -1.0, -0.2, 0.0, 0.3, 1.5, 4.0];
        let ys = [5.0, 3.0, 2.2, 2.0, 2.3, 3.4, 5.0];
        let c = MonotoneCubic::new(xs.to_vec(), ys.to_vec()).unwrap();
        for i in 0..=800 {
            let x = -4.0 + 8.0 * i as f64 / 800.0;
            assert!(c.eval(x) >= 2.0 - 1e-12, "undershoot at {x}: {}", c.eval(x));
        }
    }

    #[test]
    fn pchip_two_point_table_is_linear() {
        let xs = [1.0, 3.0];
        let ys = [10.0, 20.0];
        let m = pchip_slopes(&xs, &ys).unwrap();
        assert!((pchip_eval(&xs, &ys, &m, 2.0) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn pchip_clamps_outside_grid() {
        let c = MonotoneCubic::new(vec![0.0, 1.0, 2.0], vec![5.0, 6.0, 7.0]).unwrap();
        assert_eq!(c.eval(-10.0), 5.0);
        assert_eq!(c.eval(10.0), 7.0);
        assert_eq!(c.xs().len(), 3);
        assert_eq!(c.ys().len(), 3);
    }

    #[test]
    fn pchip_rejects_bad_tables() {
        assert!(pchip_slopes(&[0.0], &[1.0]).is_err());
        assert!(pchip_slopes(&[0.0, 0.0], &[1.0, 2.0]).is_err());
        assert!(pchip_slopes(&[0.0, 1.0], &[1.0, f64::NAN]).is_err());
        assert!(MonotoneCubic::new(vec![1.0, 0.0], vec![0.0, 1.0]).is_err());
    }
}
