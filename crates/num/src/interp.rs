//! Piecewise-linear interpolation over sorted sample tables.

use crate::NumError;

/// Linear interpolation of `(xs, ys)` samples at `x`.
///
/// `xs` must be strictly increasing. Values outside the sample range are
/// clamped to the boundary ordinates (constant extrapolation), which is the
/// correct semantics for voltage waveforms that have settled before the
/// first and after the last sample.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if the tables are empty, of unequal
/// length, or `xs` is not strictly increasing.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mis_num::NumError> {
/// let xs = [0.0, 1.0, 2.0];
/// let ys = [0.0, 10.0, 0.0];
/// assert_eq!(mis_num::interp::lerp_table(&xs, &ys, 0.5)?, 5.0);
/// assert_eq!(mis_num::interp::lerp_table(&xs, &ys, -1.0)?, 0.0); // clamped
/// # Ok(())
/// # }
/// ```
pub fn lerp_table(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, NumError> {
    validate_table(xs, ys)?;
    Ok(lerp_table_unchecked(xs, ys, x))
}

/// [`lerp_table`] without validation, for hot loops over pre-validated
/// tables. The caller must guarantee the invariants documented there; a
/// violated invariant yields an unspecified (but memory-safe) result.
#[must_use]
pub fn lerp_table_unchecked(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    if x <= xs[0] {
        return ys[0];
    }
    let last = xs.len() - 1;
    if x >= xs[last] {
        return ys[last];
    }
    // partition_point returns the first index with xs[i] > x.
    let hi = xs.partition_point(|&v| v <= x);
    let lo = hi - 1;
    let t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    ys[lo] + t * (ys[hi] - ys[lo])
}

/// Checks the table invariants shared by the interpolation routines.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on empty/unequal tables or
/// non-increasing abscissae.
pub fn validate_table(xs: &[f64], ys: &[f64]) -> Result<(), NumError> {
    if xs.is_empty() {
        return Err(NumError::InvalidInput {
            reason: "empty sample table".into(),
        });
    }
    if xs.len() != ys.len() {
        return Err(NumError::InvalidInput {
            reason: format!("mismatched table lengths: {} vs {}", xs.len(), ys.len()),
        });
    }
    if xs.windows(2).any(|w| !(w[1] > w[0])) {
        return Err(NumError::InvalidInput {
            reason: "abscissae not strictly increasing".into(),
        });
    }
    Ok(())
}

/// Finds all crossings of level `level` in the sampled curve `(xs, ys)`,
/// returning `(x, rising)` pairs located by linear interpolation.
///
/// A sample exactly on the level is attributed to the segment that leaves
/// it; flat segments on the level produce no crossing.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] under the same conditions as
/// [`lerp_table`].
pub fn level_crossings(xs: &[f64], ys: &[f64], level: f64) -> Result<Vec<(f64, bool)>, NumError> {
    validate_table(xs, ys)?;
    let mut out = Vec::new();
    for i in 1..xs.len() {
        let (y0, y1) = (ys[i - 1] - level, ys[i] - level);
        if y0 == 0.0 && y1 == 0.0 {
            continue;
        }
        let crosses = (y0 < 0.0 && y1 >= 0.0 && y1 != 0.0)
            || (y0 > 0.0 && y1 <= 0.0 && y1 != 0.0)
            || (y0 == 0.0 && y1 != 0.0 && i == 1)
            || (y1 == 0.0 && y0 != 0.0);
        if !crosses {
            continue;
        }
        let t = y0 / (y0 - y1);
        let x = xs[i - 1] + t * (xs[i] - xs[i - 1]);
        out.push((x, y1 > y0));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_midpoints_and_clamps() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [0.0, 2.0, -2.0];
        assert_eq!(lerp_table(&xs, &ys, 0.5).unwrap(), 1.0);
        assert_eq!(lerp_table(&xs, &ys, 2.0).unwrap(), 0.0);
        assert_eq!(lerp_table(&xs, &ys, -5.0).unwrap(), 0.0);
        assert_eq!(lerp_table(&xs, &ys, 99.0).unwrap(), -2.0);
    }

    #[test]
    fn lerp_exact_sample_points() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [5.0, 7.0, 9.0];
        for i in 0..3 {
            assert_eq!(lerp_table(&xs, &ys, xs[i]).unwrap(), ys[i]);
        }
    }

    #[test]
    fn rejects_bad_tables() {
        assert!(lerp_table(&[], &[], 0.0).is_err());
        assert!(lerp_table(&[0.0, 1.0], &[0.0], 0.0).is_err());
        assert!(lerp_table(&[0.0, 0.0], &[1.0, 2.0], 0.0).is_err());
        assert!(lerp_table(&[1.0, 0.0], &[1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn crossings_simple_ramp() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        let c = level_crossings(&xs, &ys, 0.5).unwrap();
        assert_eq!(c.len(), 1);
        assert!((c[0].0 - 0.5).abs() < 1e-15);
        assert!(c[0].1, "rising");
    }

    #[test]
    fn crossings_pulse_counts_both_edges() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.0, 1.0, 0.0];
        let c = level_crossings(&xs, &ys, 0.5).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c[0].1);
        assert!(!c[1].1);
        assert!((c[0].0 - 0.5).abs() < 1e-15);
        assert!((c[1].0 - 2.5).abs() < 1e-15);
    }

    #[test]
    fn flat_at_level_produces_no_crossings() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.5, 0.5, 0.5];
        assert!(level_crossings(&xs, &ys, 0.5).unwrap().is_empty());
    }
}
