//! The fault model: where a fault sits and what it does to the trace.
//!
//! A [`FaultSite`] names one signal of a lowered [`Network`] and a
//! [`FaultKind`]:
//!
//! * **Stuck-at-0 / stuck-at-1** — the classic test-generation model:
//!   the signal's trace is replaced by a constant, regardless of what
//!   the fault-free circuit drives.
//! * **Transient glitch** — a pulse of a given start time and width
//!   XOR-merged into the fault-free trace (an SEU-style upset). This is
//!   the interesting one for the paper's regime: the injected pulse
//!   propagates into exactly the inertial/hybrid pulse-filtering paths
//!   whose faithful modeling is the paper's claim, so whether a
//!   downstream gate swallows or propagates the glitch depends on the
//!   delay model under test.
//!
//! [`FaultOverlay`] realizes a site as a [`TraceOverlay`], the rewrite
//! hook both `mis-sim` engines apply at the sealed-span boundary; the
//! XOR-merge keeps edge times strictly increasing by cancelling
//! coincident edges pairwise, so the rewritten trace is always
//! well-formed. [`FaultSite::window_edit`] gives the static companion:
//! the [`WindowEdit`] under which `mis-analyze`'s arrival windows stay
//! sound for the faulted run (verified by the differential fuzzer in
//! [`crate::fuzz`]).

use std::fmt;

use mis_analyze::{Window, WindowEdit};
use mis_digital::{Network, SignalId, SimError};
use mis_sim::TraceOverlay;
use mis_waveform::{EdgeBuf, TraceRef};

use crate::error::FaultError;

/// What a fault does to its signal's trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The signal is forced to a constant value.
    StuckAt(bool),
    /// A transient pulse starting at `time` (seconds) of duration
    /// `width` (seconds), XOR-merged into the fault-free trace.
    Glitch {
        /// Pulse start time in seconds.
        time: f64,
        /// Pulse width in seconds (strictly positive).
        width: f64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StuckAt(false) => f.write_str("sa0"),
            FaultKind::StuckAt(true) => f.write_str("sa1"),
            FaultKind::Glitch { time, width } => {
                write!(f, "glitch@{:.1}ps/{:.1}ps", time / 1e-12, width / 1e-12)
            }
        }
    }
}

/// One injectable fault: a signal plus a [`FaultKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSite {
    /// The faulted signal.
    pub signal: SignalId,
    /// What the fault does.
    pub kind: FaultKind,
}

impl FaultSite {
    /// A stuck-at-0 fault on `signal`.
    #[must_use]
    pub fn stuck_at_0(signal: SignalId) -> Self {
        FaultSite {
            signal,
            kind: FaultKind::StuckAt(false),
        }
    }

    /// A stuck-at-1 fault on `signal`.
    #[must_use]
    pub fn stuck_at_1(signal: SignalId) -> Self {
        FaultSite {
            signal,
            kind: FaultKind::StuckAt(true),
        }
    }

    /// A transient glitch on `signal`: a pulse over
    /// `[time, time + width]` XOR-merged into the fault-free trace.
    ///
    /// # Errors
    ///
    /// [`FaultError::Invalid`] for a non-finite `time` or a
    /// non-positive or non-finite `width`.
    pub fn glitch(signal: SignalId, time: f64, width: f64) -> Result<Self, FaultError> {
        if !time.is_finite() || !width.is_finite() || !(width > 0.0) {
            return Err(FaultError::Invalid {
                reason: format!(
                    "glitch needs finite time and positive finite width, got time={time}, width={width}"
                ),
            });
        }
        Ok(FaultSite {
            signal,
            kind: FaultKind::Glitch { time, width },
        })
    }

    /// The [`WindowEdit`] under which statically propagated arrival
    /// windows stay sound for this fault's dynamic runs: a stuck-at
    /// trace has no edges ([`WindowEdit::Replace`] with
    /// [`Window::EMPTY`]); every glitch-rewritten edge is an original
    /// edge or one of the two pulse edges ([`WindowEdit::Widen`] over
    /// the pulse interval).
    #[must_use]
    pub fn window_edit(&self) -> (SignalId, WindowEdit) {
        match self.kind {
            FaultKind::StuckAt(_) => (self.signal, WindowEdit::Replace(Window::EMPTY)),
            FaultKind::Glitch { time, width } => (
                self.signal,
                WindowEdit::Widen(Window::new(time, time + width)),
            ),
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(s{})", self.kind, self.signal.index())
    }
}

/// Every single stuck-at site of `net`: stuck-at-0 and stuck-at-1 on
/// each signal (inputs and gates alike), in ascending signal order —
/// the canonical exhaustive campaign fault list.
#[must_use]
pub fn stuck_at_sites(net: &Network) -> Vec<FaultSite> {
    (0..net.signal_count())
        .filter_map(|s| net.signal_id(s))
        .flat_map(|id| [FaultSite::stuck_at_0(id), FaultSite::stuck_at_1(id)])
        .collect()
}

/// A [`FaultSite`] realized as the [`TraceOverlay`] the engines inject
/// it through. Stateless beyond the site itself, so it is trivially
/// `Sync` and a pure function of `(signal, view)` — the determinism
/// contract the overlay trait requires.
#[derive(Debug, Clone, Copy)]
pub struct FaultOverlay {
    site: FaultSite,
}

impl FaultOverlay {
    /// Wraps a site for injection.
    #[must_use]
    pub fn new(site: FaultSite) -> Self {
        FaultOverlay { site }
    }

    /// The wrapped site.
    #[must_use]
    pub fn site(&self) -> FaultSite {
        self.site
    }
}

impl TraceOverlay for FaultOverlay {
    fn rewrites(&self, id: SignalId) -> bool {
        id == self.site.signal
    }

    fn rewrite(
        &self,
        _id: SignalId,
        view: TraceRef<'_>,
        out: &mut EdgeBuf,
    ) -> Result<(), SimError> {
        match self.site.kind {
            FaultKind::StuckAt(value) => {
                out.clear(value);
                Ok(())
            }
            FaultKind::Glitch { time, width } => xor_pulse(view, time, time + width, out),
        }
    }
}

/// XOR-merges the pulse `[t0, t1]` into `view`: a sorted two-way merge
/// of the edge-time sequences in which exactly coincident times cancel
/// pairwise (XOR of two simultaneous toggles is no toggle). Cancelling
/// preserves strict monotonicity and alternation, so the pushes below
/// cannot fail on well-formed input.
fn xor_pulse(view: TraceRef<'_>, t0: f64, t1: f64, out: &mut EdgeBuf) -> Result<(), SimError> {
    out.clear(view.initial_value());
    let a = view.times();
    let b = [t0, t1];
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        if i < a.len() && j < b.len() && a[i] == b[j] {
            i += 1;
            j += 1;
            continue;
        }
        let t = if j >= b.len() || (i < a.len() && a[i] < b[j]) {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
        out.push_time(t)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_digital::{GateKind, Network};

    fn net3() -> (Network, SignalId, SignalId, SignalId) {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let y = net.add_gate("y", GateKind::Nor, &[a, b], None).unwrap();
        (net, a, b, y)
    }

    fn rewrite(site: FaultSite, initial: bool, times: &[f64]) -> (bool, Vec<f64>) {
        let ov = FaultOverlay::new(site);
        assert!(ov.rewrites(site.signal));
        let mut out = EdgeBuf::new();
        ov.rewrite(site.signal, TraceRef::new(initial, times), &mut out)
            .unwrap();
        (out.initial_value(), out.as_ref().times().to_vec())
    }

    #[test]
    fn stuck_at_forces_a_constant() {
        let (_, a, _, _) = net3();
        let (init, times) = rewrite(FaultSite::stuck_at_1(a), false, &[1.0, 2.0, 3.0]);
        assert!(init);
        assert!(times.is_empty());
        let (init, times) = rewrite(FaultSite::stuck_at_0(a), true, &[1.0]);
        assert!(!init);
        assert!(times.is_empty());
    }

    #[test]
    fn glitch_xor_merges_the_pulse() {
        let (_, a, _, _) = net3();
        let site = FaultSite::glitch(a, 5.0, 1.0).unwrap();
        // Pulse lands in quiet space: both edges appear.
        let (init, times) = rewrite(site, false, &[1.0, 2.0]);
        assert!(!init);
        assert_eq!(times, vec![1.0, 2.0, 5.0, 6.0]);
        // Pulse start coincides with an existing edge: both cancel.
        let (init, times) = rewrite(site, false, &[5.0, 9.0]);
        assert!(!init);
        assert_eq!(times, vec![6.0, 9.0]);
        // Both pulse edges coincide with existing edges: pulse erased.
        let (_, times) = rewrite(site, true, &[5.0, 6.0]);
        assert!(times.is_empty());
        // Initial value is never touched by a glitch.
        let (init, _) = rewrite(site, true, &[]);
        assert!(init);
    }

    #[test]
    fn glitch_validation_rejects_degenerate_pulses() {
        let (_, a, _, _) = net3();
        assert!(FaultSite::glitch(a, 1.0, 0.0).is_err());
        assert!(FaultSite::glitch(a, 1.0, -2.0).is_err());
        assert!(FaultSite::glitch(a, f64::NAN, 1.0).is_err());
        assert!(FaultSite::glitch(a, 1.0, f64::INFINITY).is_err());
        assert!(FaultSite::glitch(a, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn stuck_at_sites_cover_every_signal_twice() {
        let (net, a, _, y) = net3();
        let sites = stuck_at_sites(&net);
        assert_eq!(sites.len(), 2 * net.signal_count());
        assert_eq!(sites[0], FaultSite::stuck_at_0(a));
        assert_eq!(sites[1], FaultSite::stuck_at_1(a));
        assert!(sites.contains(&FaultSite::stuck_at_1(y)));
    }

    #[test]
    fn window_edits_match_the_fault_semantics() {
        let (_, a, _, _) = net3();
        let (id, edit) = FaultSite::stuck_at_0(a).window_edit();
        assert_eq!(id, a);
        assert_eq!(edit, WindowEdit::Replace(Window::EMPTY));
        let (_, edit) = FaultSite::glitch(a, 2.0, 3.0).unwrap().window_edit();
        assert_eq!(edit, WindowEdit::Widen(Window::new(2.0, 5.0)));
    }

    #[test]
    fn sites_render_for_reports() {
        let (_, a, _, _) = net3();
        assert_eq!(FaultSite::stuck_at_0(a).to_string(), "sa0(s0)");
        let g = FaultSite::glitch(a, 100e-12, 25e-12).unwrap();
        assert_eq!(g.to_string(), "glitch@100.0ps/25.0ps(s0)");
    }
}
