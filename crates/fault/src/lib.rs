//! **mis-fault** — deterministic fault injection over the `mis-sim`
//! engines: the adversarial robustness harness of the workspace.
//!
//! The paper's headline claim is faithful modeling of small delay
//! variations and glitch behavior under multi-input switching; this
//! crate *stresses* that claim instead of just reproducing it. It turns
//! the oracles the workspace already proves — engine bit-identity and
//! static-timing soundness — into checks that hold under injected
//! faults, bounded work, and random adversarial stimuli:
//!
//! * [`FaultSite`] / [`FaultKind`] — the fault model over a lowered
//!   [`mis_digital::Network`]: stuck-at-0/1 per signal, plus transient
//!   glitch pulses that exercise exactly the inertial/hybrid
//!   pulse-filtering paths the paper is about. [`FaultOverlay`]
//!   realizes a site as a [`mis_sim::TraceOverlay`], the rewrite hook
//!   both engines apply at the sealed-span boundary.
//! * [`campaign`] — the deterministic campaign runner: a fault list
//!   evaluated against a golden run over scoped worker threads (one
//!   warm arena per worker), reporting per-output detection and
//!   aggregate coverage. The report is identical at every worker
//!   count.
//! * [`fuzz`] — the differential fuzz harness: random bounded-channel
//!   circuits, stimuli and faults, cross-checking serial vs parallel
//!   engines bit-for-bit, asserting every faulty edge lands inside its
//!   faulted STA window ([`FaultSite::window_edit`] +
//!   [`mis_analyze::TimingAnalysis::arrival_windows_edited`]), and
//!   probing the [`mis_sim::RunBudget`] degradation contract on both
//!   engines.
//!
//! # Examples
//!
//! An exhaustive single-stuck-at campaign over a NOR:
//!
//! ```
//! use mis_digital::{GateKind, Network};
//! use mis_fault::{run_campaign, stuck_at_sites, CampaignConfig};
//! use mis_waveform::{units::ps, DigitalTrace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = Network::new();
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let y = net.add_gate("y", GateKind::Nor, &[a, b], None)?;
//! let stimulus = vec![
//!     DigitalTrace::with_edges(false, vec![(ps(100.0), true)])?,
//!     DigitalTrace::constant(false),
//! ];
//! let faults = stuck_at_sites(&net);
//! let report = run_campaign(&net, &[y], &stimulus, &faults, &CampaignConfig::default())?;
//! assert_eq!(report.total(), 6);
//! assert!(report.coverage() > 0.8);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
mod error;
pub mod fuzz;
pub mod site;

pub use campaign::{
    run_campaign, run_campaign_probed, run_campaign_traced, CampaignConfig, CampaignEngine,
    CampaignReport, FaultOutcome, FaultResult,
};
pub use error::FaultError;
pub use fuzz::{fuzz_differential, FuzzConfig, FuzzReport};
pub use site::{stuck_at_sites, FaultKind, FaultOverlay, FaultSite};
