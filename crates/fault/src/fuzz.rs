//! The differential fuzz harness: random circuits, random stimuli,
//! random faults — cross-checked between both engines and against the
//! faulted static timing windows.
//!
//! Every iteration draws, from a [`TestRng`] seeded off the configured
//! base (so any failure is reproducible from its printed seed):
//!
//! 1. a random feed-forward network over *bounded* channels (none,
//!    pure-delay, inertial — the kinds whose [`mis_analyze`] windows
//!    are finite, so the soundness check below is non-vacuous);
//! 2. a random stimulus (strictly increasing edge times per input);
//! 3. one random [`FaultSite`] — stuck-at-0/1 or a transient glitch.
//!
//! It then asserts three properties the rest of the workspace argues
//! structurally, end to end on the faulty run:
//!
//! * **Engine bit-identity under faults.** The serial and parallel
//!   engines produce exactly the same trace for every signal, at every
//!   worker count up to the configured maximum.
//! * **Faulted STA soundness.** Every edge of every faulty trace lands
//!   inside the signal's arrival window computed by
//!   [`TimingAnalysis::arrival_windows_edited`] under the fault's
//!   [`crate::FaultSite::window_edit`].
//! * **Graceful budgets.** With exactly enough event budget the run
//!   succeeds on both engines; with one event less the serial engine
//!   (and with a zero budget, the parallel engine too) returns
//!   [`mis_digital::SimError::BudgetExceeded`] — never a panic or a
//!   hang.
//!
//! A violation aborts the fuzz with a message naming the iteration and
//! seed; `scripts/ci.sh` runs a bounded iteration count as a smoke leg
//! through the `fault_sim --fuzz` CLI.

use mis_analyze::TimingAnalysis;
use mis_digital::{GateKind, InertialChannel, Network, PureDelayChannel, SimError};
use mis_sim::{ParallelSimulator, RunBudget, Simulator};
use mis_testkit::rng::TestRng;
use mis_waveform::units::ps;
use mis_waveform::{DigitalTrace, TraceArena, TraceRef};

use crate::site::{FaultOverlay, FaultSite};

/// Bounds for one fuzz run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Iterations (one random circuit + stimulus + fault each).
    pub iterations: u32,
    /// Base seed; iteration `i` uses `seed + i`.
    pub seed: u64,
    /// Parallel-engine worker counts checked: `1..=max_workers`.
    pub max_workers: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iterations: 32,
            seed: 0x5eed,
            max_workers: 8,
        }
    }
}

/// What a completed fuzz run covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzReport {
    /// Iterations completed.
    pub iterations: u32,
    /// Faulty-trace edges checked against their STA windows.
    pub edges_checked: u64,
    /// Engine runs compared for bit-identity (serial + each worker
    /// count, per iteration).
    pub runs_compared: u64,
}

/// Absolute slack for window-containment checks: far below the
/// picosecond scale of every generated delay, far above accumulated
/// `f64` rounding at that scale.
const WINDOW_TOL: f64 = 1e-15;

/// A random feed-forward network over bounded channels only.
fn random_network(rng: &mut TestRng) -> Network {
    const BINARY: [GateKind; 5] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
    ];
    let n_inputs = 2 + rng.gen_u64_below(3) as usize;
    let n_gates = 1 + rng.gen_u64_below(10) as usize;
    let mut net = Network::new();
    let mut ids = Vec::new();
    for i in 0..n_inputs {
        ids.push(net.add_input(&format!("in{i}")));
    }
    for g in 0..n_gates {
        let name = format!("g{g}");
        let channel = match rng.gen_u64_below(3) {
            0 => None,
            1 => Some(Box::new(
                PureDelayChannel::new(ps(10.0 + rng.gen_u64_below(70) as f64))
                    .expect("positive delay"),
            ) as Box<dyn mis_digital::TraceTransform>),
            _ => Some(Box::new(
                InertialChannel::symmetric(
                    ps(10.0 + rng.gen_u64_below(70) as f64),
                    ps(5.0 + rng.gen_u64_below(40) as f64),
                )
                .expect("positive delays"),
            ) as Box<dyn mis_digital::TraceTransform>),
        };
        let pick = ids[rng.gen_u64_below(ids.len() as u64) as usize];
        let id = if rng.gen_bool(0.3) {
            let kind = if rng.gen_bool(0.5) {
                GateKind::Not
            } else {
                GateKind::Buf
            };
            net.add_gate(&name, kind, &[pick], channel)
                .expect("operands precede the gate")
        } else {
            let kind = BINARY[rng.gen_u64_below(5) as usize];
            let other = ids[rng.gen_u64_below(ids.len() as u64) as usize];
            net.add_gate(&name, kind, &[pick, other], channel)
                .expect("operands precede the gate")
        };
        ids.push(id);
    }
    net
}

/// A random stimulus trace: up to six strictly increasing edges.
fn random_trace(rng: &mut TestRng) -> DigitalTrace {
    let initial = rng.gen_bool(0.5);
    let n = rng.gen_u64_below(7);
    let mut t = ps(50.0 + rng.gen_u64_below(100) as f64);
    let mut edges = Vec::new();
    let mut rising = !initial;
    for _ in 0..n {
        edges.push((t, rising));
        rising = !rising;
        t += ps(20.0 + rng.gen_u64_below(100) as f64);
    }
    DigitalTrace::with_edges(initial, edges).expect("strictly increasing times")
}

/// A random fault over the network's signals.
fn random_fault(rng: &mut TestRng, net: &Network) -> FaultSite {
    let signal = net
        .signal_id(rng.gen_u64_below(net.signal_count() as u64) as usize)
        .expect("index < signal_count");
    match rng.gen_u64_below(3) {
        0 => FaultSite::stuck_at_0(signal),
        1 => FaultSite::stuck_at_1(signal),
        _ => FaultSite::glitch(
            signal,
            ps(rng.gen_u64_below(1200) as f64),
            ps(5.0 + rng.gen_u64_below(80) as f64),
        )
        .expect("positive finite width"),
    }
}

/// Exact trace equality between two views (bit-identity, not
/// approximate agreement).
fn same_trace(a: TraceRef<'_>, b: TraceRef<'_>) -> bool {
    a.initial_value() == b.initial_value() && a.times() == b.times()
}

/// Runs the differential fuzz. Returns coverage statistics on success.
///
/// # Errors
///
/// A `String` describing the first violated property, including the
/// iteration index and effective seed for reproduction. (A violation
/// is an engine or analysis bug, not an input error — the harness
/// surfaces it as data so CLI and CI callers can print it and fail.)
pub fn fuzz_differential(config: &FuzzConfig) -> Result<FuzzReport, String> {
    let mut edges_checked = 0u64;
    let mut runs_compared = 0u64;
    for i in 0..config.iterations {
        let seed = config.seed.wrapping_add(u64::from(i));
        let tag = |what: &str| format!("fuzz iteration {i} (seed {seed:#x}): {what}");
        let mut rng = TestRng::seed_from_u64(seed);
        let net = random_network(&mut rng);
        let inputs: Vec<DigitalTrace> = (0..net.input_count())
            .map(|_| random_trace(&mut rng))
            .collect();
        let site = random_fault(&mut rng, &net);
        let overlay = FaultOverlay::new(site);

        // Serial faulty run — the reference for this iteration.
        let mut serial = Simulator::new(&net).map_err(|e| tag(&e.to_string()))?;
        let mut serial_arena = TraceArena::new();
        serial
            .run_controlled_in(
                &inputs,
                &mut serial_arena,
                &RunBudget::UNLIMITED,
                Some(&overlay),
            )
            .map_err(|e| tag(&e.to_string()))?;
        runs_compared += 1;

        // Parallel faulty runs: bit-identical at every worker count.
        for workers in 1..=config.max_workers {
            let mut par = ParallelSimulator::new(&net, workers).map_err(|e| tag(&e.to_string()))?;
            let mut arena = TraceArena::new();
            par.run_controlled_in(&inputs, &mut arena, &RunBudget::UNLIMITED, Some(&overlay))
                .map_err(|e| tag(&e.to_string()))?;
            runs_compared += 1;
            for s in 0..net.signal_count() {
                let id = net.signal_id(s).expect("s < signal_count");
                if !same_trace(serial.trace(&serial_arena, id), par.trace(&arena, id)) {
                    return Err(tag(&format!(
                        "engines diverge on signal {} under fault {site} at {workers} workers",
                        net.signal_name(id)
                    )));
                }
            }
        }

        // Faulted STA soundness: every faulty edge inside its edited
        // window.
        let ta = TimingAnalysis::new(&net);
        let input_windows: Vec<mis_analyze::Window> = inputs
            .iter()
            .map(|t| {
                mis_analyze::Window::from_edge_times(
                    &t.edges().iter().map(|e| e.time).collect::<Vec<f64>>(),
                )
            })
            .collect();
        let windows = ta.arrival_windows_edited(&input_windows, &[site.window_edit()]);
        for (s, window) in windows.iter().enumerate() {
            let id = net.signal_id(s).expect("s < signal_count");
            let trace = serial.trace(&serial_arena, id);
            for &t in trace.times() {
                edges_checked += 1;
                if !window.contains(t, WINDOW_TOL) {
                    return Err(tag(&format!(
                        "edge at {:.3} ps on {} escapes its faulted STA window {window} under {site}",
                        t / 1e-12,
                        net.signal_name(id),
                    )));
                }
            }
        }

        // Graceful budgets: exactly enough succeeds everywhere; one
        // event short trips the serial engine; a zero budget trips the
        // parallel engine too. Always an error, never a panic or hang.
        let gates = (net.signal_count() - net.input_count()) as u64;
        let exact = RunBudget::UNLIMITED.with_max_events(gates);
        serial
            .run_controlled_in(&inputs, &mut serial_arena, &exact, Some(&overlay))
            .map_err(|e| tag(&format!("exact budget should suffice, got: {e}")))?;
        let short = RunBudget::UNLIMITED.with_max_events(gates - 1);
        match serial.run_controlled_in(&inputs, &mut serial_arena, &short, Some(&overlay)) {
            Err(SimError::BudgetExceeded { .. }) => {}
            other => {
                return Err(tag(&format!(
                    "serial engine under a short budget returned {other:?}"
                )))
            }
        }
        let mut par = ParallelSimulator::new(&net, config.max_workers.max(1))
            .map_err(|e| tag(&e.to_string()))?;
        let mut arena = TraceArena::new();
        par.run_controlled_in(&inputs, &mut arena, &exact, Some(&overlay))
            .map_err(|e| {
                tag(&format!(
                    "exact budget should suffice in parallel, got: {e}"
                ))
            })?;
        match par.run_controlled_in(
            &inputs,
            &mut arena,
            &RunBudget::UNLIMITED.with_max_events(0),
            Some(&overlay),
        ) {
            Err(SimError::BudgetExceeded { .. }) => {}
            other => {
                return Err(tag(&format!(
                    "parallel engine under a zero budget returned {other:?}"
                )))
            }
        }
    }
    Ok(FuzzReport {
        iterations: config.iterations,
        edges_checked,
        runs_compared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_fuzz_passes() {
        let report = fuzz_differential(&FuzzConfig {
            iterations: 12,
            seed: 0xfa111,
            max_workers: 4,
        })
        .unwrap();
        assert_eq!(report.iterations, 12);
        assert!(report.edges_checked > 0, "fuzz must exercise real edges");
        assert_eq!(report.runs_compared, 12 * 5);
    }

    #[test]
    fn fuzz_is_deterministic_per_seed() {
        let config = FuzzConfig {
            iterations: 6,
            seed: 42,
            max_workers: 2,
        };
        let a = fuzz_differential(&config).unwrap();
        let b = fuzz_differential(&config).unwrap();
        assert_eq!(a, b);
    }
}
