//! The deterministic campaign runner: a fault list evaluated against a
//! golden run, batched over scoped worker threads.
//!
//! # Determinism
//!
//! A campaign's report is a pure function of
//! `(network, outputs, stimulus, fault list, budget)` — the worker
//! count changes only wall-clock time. The argument has three legs:
//!
//! 1. **Per-fault determinism.** Each fault is evaluated by a private
//!    replay engine — the serial [`Simulator`] by default, or the
//!    level-sliced [`WavefrontSimulator`] via
//!    [`CampaignEngine::Wavefront`] — under a [`FaultOverlay`]; both
//!    engines are deterministic and bit-identical, and the overlay is a
//!    pure rewrite, so a fault's outcome depends on neither the worker
//!    that runs it nor the engine that replays it.
//! 2. **Fixed partition.** Faults are split into contiguous chunks
//!    (`chunks` / `chunks_mut`), and each worker writes outcomes only
//!    into its own chunk of the result vector — no shared accumulator
//!    whose order could vary.
//! 3. **Deterministic error selection.** If a worker fails with a
//!    non-budget error, the error of the lowest-indexed chunk wins,
//!    regardless of completion order. (Budget trips are not errors at
//!    the campaign level: they are recorded per fault as
//!    [`FaultOutcome::BudgetTripped`].)
//!
//! Each worker owns one warm [`TraceArena`] reused across all its
//! faulty runs, so a campaign's steady state allocates only the
//! per-fault outcome bookkeeping, never trace storage.

use mis_digital::{Network, SignalId, SimError};
use mis_probe::{EventKind, Probe, TraceSink};
use mis_sim::{RunBudget, Simulator, TraceOverlay, WavefrontSimulator};
use mis_waveform::{DigitalTrace, TraceArena, TraceRef};

use crate::error::FaultError;
use crate::site::{FaultOverlay, FaultSite};

/// Which simulation engine each campaign worker replays faults on.
///
/// Both engines are bit-identical, so the choice changes only
/// wall-clock time, never the report — pinned by
/// `report_is_identical_on_the_wavefront_engine`. The wavefront option
/// nests its level-parallel threads *inside* each campaign worker, so
/// it pays off on deep circuits with few faults per worker; the serial
/// default wins when the fault list itself supplies the parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignEngine {
    /// The serial event-queue [`Simulator`] (default).
    Serial,
    /// The level-sliced [`WavefrontSimulator`] with this many
    /// level-parallel threads per campaign worker (≥ 1).
    Wavefront {
        /// Level-parallel threads inside each campaign worker.
        workers: usize,
    },
}

/// How a campaign runs: worker count, per-run budget, and the replay
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Worker threads evaluating faults (≥ 1; the report is identical
    /// at every count).
    pub workers: usize,
    /// Budget each faulty run is held to; a tripped run records
    /// [`FaultOutcome::BudgetTripped`] instead of failing the campaign.
    pub budget: RunBudget,
    /// Engine each worker replays faults on; the report is identical
    /// for every choice.
    pub engine: CampaignEngine,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workers: 1,
            budget: RunBudget::UNLIMITED,
            engine: CampaignEngine::Serial,
        }
    }
}

/// One campaign worker's private replay engine: either serial or
/// wavefront, behind one dispatch point so the fault loop stays
/// engine-agnostic. Both variants share the `run_controlled_in` /
/// `trace` surface.
enum ReplaySim<'n> {
    Serial(Box<Simulator<'n>>),
    Wavefront(Box<WavefrontSimulator<'n>>),
}

impl<'n> ReplaySim<'n> {
    fn build(net: &'n Network, engine: CampaignEngine) -> Result<Self, SimError> {
        Ok(match engine {
            CampaignEngine::Serial => ReplaySim::Serial(Box::new(Simulator::new(net)?)),
            CampaignEngine::Wavefront { workers } => {
                ReplaySim::Wavefront(Box::new(WavefrontSimulator::new(net, workers)?))
            }
        })
    }

    fn run_controlled_in(
        &mut self,
        inputs: &[DigitalTrace],
        arena: &mut TraceArena,
        budget: &RunBudget,
        overlay: Option<&dyn TraceOverlay>,
    ) -> Result<(), SimError> {
        match self {
            ReplaySim::Serial(sim) => sim.run_controlled_in(inputs, arena, budget, overlay),
            ReplaySim::Wavefront(sim) => sim.run_controlled_in(inputs, arena, budget, overlay),
        }
    }

    fn trace<'a>(&self, arena: &'a TraceArena, id: SignalId) -> TraceRef<'a> {
        match self {
            ReplaySim::Serial(sim) => sim.trace(arena, id),
            ReplaySim::Wavefront(sim) => sim.trace(arena, id),
        }
    }
}

/// The outcome of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// At least one observed output trace differed from the golden run.
    Detected,
    /// Every observed output matched the golden run exactly.
    Undetected,
    /// The faulty run exhausted its [`RunBudget`] before completing.
    BudgetTripped,
}

/// One fault's campaign record.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultResult {
    /// The injected fault.
    pub site: FaultSite,
    /// What happened.
    pub outcome: FaultOutcome,
    /// Indices (into the campaign's output list) of the outputs whose
    /// traces differed — empty unless [`FaultOutcome::Detected`].
    pub detecting_outputs: Vec<usize>,
}

/// The aggregate result of [`run_campaign`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Per-fault records, in fault-list order.
    pub results: Vec<FaultResult>,
    /// Faults with [`FaultOutcome::Detected`].
    pub detected: usize,
    /// Faults with [`FaultOutcome::BudgetTripped`].
    pub budget_trips: usize,
    /// Per campaign output: how many faults it detected (a fault
    /// detected at several outputs counts at each).
    pub per_output: Vec<usize>,
}

impl CampaignReport {
    /// Total faults injected.
    #[must_use]
    pub fn total(&self) -> usize {
        self.results.len()
    }

    /// Detected faults over total faults, in `[0, 1]` (`0` for an
    /// empty fault list). Budget-tripped faults count as undetected —
    /// coverage under a budget is a lower bound on unbudgeted coverage.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.detected as f64 / self.results.len() as f64
    }
}

/// Whether a faulty output view differs from its golden trace. Exact
/// comparison is the right notion here: both engines are bit-identical
/// and deterministic, so any difference is the fault's doing.
fn differs(view: TraceRef<'_>, golden: &DigitalTrace) -> bool {
    view.initial_value() != golden.initial_value()
        || view.len() != golden.edges().len()
        || view
            .times()
            .iter()
            .zip(golden.edges())
            .any(|(&t, e)| t != e.time)
}

/// [`run_campaign`] with the three campaign counters —
/// `fault.injected`, `fault.detected`, `fault.budget_trips` — and one
/// `fault.w<i>.busy` span timer per worker (the campaign-utilization
/// picture, matching the parallel engine's `par.w<i>.busy`) recording
/// into `probe`. The counters are atomic and shared, so the workers
/// increment them directly; totals are exact, arrival order is not
/// part of the report.
///
/// # Errors
///
/// * [`FaultError::Invalid`] — zero workers.
/// * [`FaultError::Sim`] — the golden run failed, or a faulty run
///   failed with a non-budget error.
pub fn run_campaign_probed(
    net: &Network,
    outputs: &[SignalId],
    inputs: &[DigitalTrace],
    faults: &[FaultSite],
    config: &CampaignConfig,
    probe: &Probe,
) -> Result<CampaignReport, FaultError> {
    run_campaign_traced(
        net,
        outputs,
        inputs,
        faults,
        config,
        probe,
        &TraceSink::disabled(),
    )
}

/// [`run_campaign_probed`] plus timeline recording into `sink`: the
/// golden run traces onto the `sim` track, and each campaign worker
/// records onto its own `fault.w<i>` track — one `chunk` span for its
/// whole fault chunk, a `fault_run` span per faulty replay (payload:
/// global fault index + outcome code), and a `coverage` counter sample
/// after each detection (this worker's cumulative detected count — the
/// coverage-over-time curve, per worker so the values are deterministic
/// under the fixed chunk partition).
///
/// # Errors
///
/// As [`run_campaign_probed`].
pub fn run_campaign_traced(
    net: &Network,
    outputs: &[SignalId],
    inputs: &[DigitalTrace],
    faults: &[FaultSite],
    config: &CampaignConfig,
    probe: &Probe,
    sink: &TraceSink,
) -> Result<CampaignReport, FaultError> {
    if config.workers == 0 {
        return Err(FaultError::Invalid {
            reason: "campaign needs at least one worker".into(),
        });
    }
    if matches!(config.engine, CampaignEngine::Wavefront { workers: 0 }) {
        return Err(FaultError::Invalid {
            reason: "wavefront replay engine needs at least one worker".into(),
        });
    }
    // The golden run: fault-free, unbudgeted, serial. Output traces are
    // materialized once and shared read-only with every worker. It
    // traces onto the `sim` track (with a detached counter bundle, so
    // the campaign's probe keeps only `fault.*` engine-independent
    // metrics).
    let mut sim = Simulator::new_traced(net, &Probe::disabled(), sink)?;
    let mut arena = TraceArena::new();
    sim.run_in(inputs, &mut arena)?;
    let golden: Vec<DigitalTrace> = outputs
        .iter()
        .map(|&id| sim.trace(&arena, id).to_trace())
        .collect();
    drop(sim);

    let injected = probe.counter("fault.injected");
    let detected_ctr = probe.counter("fault.detected");
    let trips_ctr = probe.counter("fault.budget_trips");

    let mut results: Vec<Option<FaultResult>> = vec![None; faults.len()];
    let chunk = faults.len().div_ceil(config.workers).max(1);
    let golden = &golden;
    let (injected_ref, detected_ref, trips_ref) = (&injected, &detected_ctr, &trips_ctr);
    std::thread::scope(|scope| -> Result<(), FaultError> {
        let handles: Vec<_> = faults
            .chunks(chunk)
            .zip(results.chunks_mut(chunk))
            .enumerate()
            .map(|(w, (sites, slots))| {
                // Cold-path registration happens on the coordinator:
                // the worker only records.
                let busy = probe.timer(&format!("fault.w{w}.busy"));
                let track = sink.track(&format!("fault.w{w}"));
                let chunk_base = w * chunk;
                scope.spawn(move || -> Result<(), FaultError> {
                    let busy_started = busy.start();
                    let chunk_started = track.start();
                    let mut detected_here = 0u32;
                    // One engine and one warm arena per worker, reused
                    // across every fault in the chunk.
                    let mut sim = ReplaySim::build(net, config.engine)?;
                    let mut arena = TraceArena::new();
                    for (j, (site, slot)) in sites.iter().zip(slots.iter_mut()).enumerate() {
                        let overlay = FaultOverlay::new(*site);
                        injected_ref.inc();
                        let fault_started = track.start();
                        let run = sim.run_controlled_in(
                            inputs,
                            &mut arena,
                            &config.budget,
                            Some(&overlay),
                        );
                        let result = match run {
                            Ok(()) => {
                                let detecting: Vec<usize> = outputs
                                    .iter()
                                    .enumerate()
                                    .filter(|&(k, &id)| differs(sim.trace(&arena, id), &golden[k]))
                                    .map(|(k, _)| k)
                                    .collect();
                                let outcome = if detecting.is_empty() {
                                    FaultOutcome::Undetected
                                } else {
                                    detected_ref.inc();
                                    detected_here += 1;
                                    FaultOutcome::Detected
                                };
                                FaultResult {
                                    site: *site,
                                    outcome,
                                    detecting_outputs: detecting,
                                }
                            }
                            Err(SimError::BudgetExceeded { .. }) => {
                                trips_ref.inc();
                                FaultResult {
                                    site: *site,
                                    outcome: FaultOutcome::BudgetTripped,
                                    detecting_outputs: Vec::new(),
                                }
                            }
                            Err(e) => return Err(FaultError::Sim(e)),
                        };
                        let code = match result.outcome {
                            FaultOutcome::Undetected => 0,
                            FaultOutcome::Detected => 1,
                            FaultOutcome::BudgetTripped => 2,
                        };
                        track.span(
                            EventKind::FaultRun,
                            (chunk_base + j) as u32,
                            code,
                            fault_started,
                        );
                        if code == 1 {
                            track.sample(EventKind::Coverage, w as u32, detected_here);
                        }
                        *slot = Some(result);
                    }
                    track.span(
                        EventKind::Chunk,
                        w as u32,
                        sites.len() as u32,
                        chunk_started,
                    );
                    busy.stop(busy_started);
                    Ok(())
                })
            })
            .collect();
        // Join in chunk order: the lowest-indexed chunk's error wins,
        // independent of which worker finished first.
        let mut result = Ok(());
        for h in handles {
            let r = h
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
            if result.is_ok() {
                result = r;
            }
        }
        result
    })?;

    let results: Vec<FaultResult> = results
        .into_iter()
        .map(|r| r.expect("every chunk completed without error"))
        .collect();
    let detected = results
        .iter()
        .filter(|r| r.outcome == FaultOutcome::Detected)
        .count();
    let budget_trips = results
        .iter()
        .filter(|r| r.outcome == FaultOutcome::BudgetTripped)
        .count();
    let mut per_output = vec![0usize; outputs.len()];
    for r in &results {
        for &k in &r.detecting_outputs {
            per_output[k] += 1;
        }
    }
    Ok(CampaignReport {
        results,
        detected,
        budget_trips,
        per_output,
    })
}

/// Evaluates `faults` against the golden (fault-free) run of `net`
/// under `inputs`, observing the signals in `outputs`: one faulty run
/// per site, batched over `config.workers` scoped threads, each holding
/// its runs to `config.budget`. See the module docs for why the report
/// is identical at every worker count.
///
/// # Errors
///
/// As [`run_campaign_probed`].
pub fn run_campaign(
    net: &Network,
    outputs: &[SignalId],
    inputs: &[DigitalTrace],
    faults: &[FaultSite],
    config: &CampaignConfig,
) -> Result<CampaignReport, FaultError> {
    run_campaign_probed(net, outputs, inputs, faults, config, &Probe::disabled())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::stuck_at_sites;
    use mis_digital::{GateKind, InertialChannel, Network};
    use mis_waveform::units::ps;

    /// y = NOR(a, b) behind an inertial channel, observed at y.
    fn nor_fixture() -> (Network, Vec<SignalId>, Vec<DigitalTrace>) {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let y = net
            .add_gate(
                "y",
                GateKind::Nor,
                &[a, b],
                Some(Box::new(
                    InertialChannel::symmetric(ps(40.0), ps(30.0)).unwrap(),
                )),
            )
            .unwrap();
        let ta =
            DigitalTrace::with_edges(false, vec![(ps(100.0), true), (ps(400.0), false)]).unwrap();
        let tb = DigitalTrace::constant(false);
        (net, vec![y], vec![ta, tb])
    }

    #[test]
    fn exhaustive_stuck_at_campaign_on_the_nor() {
        use crate::site::FaultKind;
        let (net, outputs, inputs) = nor_fixture();
        let faults = stuck_at_sites(&net);
        let report =
            run_campaign(&net, &outputs, &inputs, &faults, &CampaignConfig::default()).unwrap();
        assert_eq!(report.total(), 6);
        assert_eq!(report.budget_trips, 0);
        // Golden y: a pulse (a's edges inverted through the NOR). Each
        // stuck-at on `a` or `y` kills the pulse; sa1 on quiet `b`
        // forces y low; sa0 on `b` is the fault-free value: undetected.
        assert_eq!(report.detected, 5);
        assert!((report.coverage() - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(report.per_output, vec![5]);
        let undetected: Vec<_> = report
            .results
            .iter()
            .filter(|r| r.outcome == FaultOutcome::Undetected)
            .collect();
        assert_eq!(undetected.len(), 1);
        assert_eq!(undetected[0].site.kind, FaultKind::StuckAt(false));
    }

    #[test]
    fn report_is_identical_at_every_worker_count() {
        let (net, outputs, inputs) = nor_fixture();
        let faults = stuck_at_sites(&net);
        let baseline = run_campaign(
            &net,
            &outputs,
            &inputs,
            &faults,
            &CampaignConfig {
                workers: 1,
                budget: RunBudget::UNLIMITED,
                engine: CampaignEngine::Serial,
            },
        )
        .unwrap();
        for workers in 2..=8 {
            let report = run_campaign(
                &net,
                &outputs,
                &inputs,
                &faults,
                &CampaignConfig {
                    workers,
                    budget: RunBudget::UNLIMITED,
                    engine: CampaignEngine::Serial,
                },
            )
            .unwrap();
            assert_eq!(report, baseline, "{workers} workers");
        }
    }

    #[test]
    fn report_is_identical_on_the_wavefront_engine() {
        let (net, outputs, inputs) = nor_fixture();
        let faults = stuck_at_sites(&net);
        let baseline =
            run_campaign(&net, &outputs, &inputs, &faults, &CampaignConfig::default()).unwrap();
        for campaign_workers in [1, 3] {
            for engine_workers in [1, 4] {
                let report = run_campaign(
                    &net,
                    &outputs,
                    &inputs,
                    &faults,
                    &CampaignConfig {
                        workers: campaign_workers,
                        budget: RunBudget::UNLIMITED,
                        engine: CampaignEngine::Wavefront {
                            workers: engine_workers,
                        },
                    },
                )
                .unwrap();
                assert_eq!(
                    report, baseline,
                    "{campaign_workers} campaign workers x {engine_workers} engine workers"
                );
            }
        }
    }

    #[test]
    fn zero_wavefront_workers_is_invalid() {
        let (net, outputs, inputs) = nor_fixture();
        let err = run_campaign(
            &net,
            &outputs,
            &inputs,
            &[],
            &CampaignConfig {
                engine: CampaignEngine::Wavefront { workers: 0 },
                ..CampaignConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, FaultError::Invalid { .. }));
    }

    #[test]
    fn budget_trips_are_recorded_not_raised() {
        let (net, outputs, inputs) = nor_fixture();
        let faults = stuck_at_sites(&net);
        let report = run_campaign(
            &net,
            &outputs,
            &inputs,
            &faults,
            &CampaignConfig {
                workers: 2,
                budget: RunBudget::UNLIMITED.with_max_events(0),
                engine: CampaignEngine::Serial,
            },
        )
        .unwrap();
        assert_eq!(report.budget_trips, report.total());
        assert_eq!(report.detected, 0);
        assert!(report
            .results
            .iter()
            .all(|r| r.outcome == FaultOutcome::BudgetTripped));
    }

    #[test]
    fn zero_workers_is_invalid() {
        let (net, outputs, inputs) = nor_fixture();
        let err = run_campaign(
            &net,
            &outputs,
            &inputs,
            &[],
            &CampaignConfig {
                workers: 0,
                budget: RunBudget::UNLIMITED,
                engine: CampaignEngine::Serial,
            },
        )
        .unwrap_err();
        assert!(matches!(err, FaultError::Invalid { .. }));
    }

    #[test]
    fn traced_campaign_records_chunks_faults_and_coverage() {
        let (net, outputs, inputs) = nor_fixture();
        let faults = stuck_at_sites(&net);
        let probe = Probe::new();
        let sink = TraceSink::new();
        let report = run_campaign_traced(
            &net,
            &outputs,
            &inputs,
            &faults,
            &CampaignConfig {
                workers: 2,
                budget: RunBudget::UNLIMITED,
                engine: CampaignEngine::Serial,
            },
            &probe,
            &sink,
        )
        .unwrap();
        // The report is unchanged by tracing.
        let want = run_campaign(
            &net,
            &outputs,
            &inputs,
            &faults,
            &CampaignConfig {
                workers: 2,
                budget: RunBudget::UNLIMITED,
                engine: CampaignEngine::Serial,
            },
        )
        .unwrap();
        assert_eq!(report, want);
        let snap = sink.snapshot();
        // The golden run traced onto the `sim` track.
        assert!(snap
            .track("sim")
            .is_some_and(|t| t.events.iter().any(|e| e.kind == EventKind::Run)));
        // Each worker sealed one chunk span, one fault_run span per
        // fault, and one coverage sample per detection; global fault
        // indices across workers cover the whole list exactly once.
        let mut fault_indices = Vec::new();
        let mut detections = 0u32;
        for w in 0..2 {
            let track = snap.track(&format!("fault.w{w}")).unwrap();
            let chunks: Vec<_> = track
                .events
                .iter()
                .filter(|e| e.kind == EventKind::Chunk)
                .collect();
            assert_eq!(chunks.len(), 1);
            assert_eq!(chunks[0].a, w);
            fault_indices.extend(
                track
                    .events
                    .iter()
                    .filter(|e| e.kind == EventKind::FaultRun)
                    .map(|e| e.a),
            );
            detections += track
                .events
                .iter()
                .filter(|e| e.kind == EventKind::Coverage)
                .count() as u32;
        }
        fault_indices.sort_unstable();
        let want_indices: Vec<u32> = (0..faults.len() as u32).collect();
        assert_eq!(fault_indices, want_indices);
        assert_eq!(detections as usize, report.detected);
        // Satellite: per-worker busy timers registered on the probe.
        let preport = probe.report();
        assert!(preport.get("fault.w0.busy").is_some());
        assert!(preport.get("fault.w1.busy").is_some());
    }

    #[test]
    fn probed_campaign_publishes_the_fault_counters() {
        let (net, outputs, inputs) = nor_fixture();
        let faults = stuck_at_sites(&net);
        let probe = Probe::new();
        let report = run_campaign_probed(
            &net,
            &outputs,
            &inputs,
            &faults,
            &CampaignConfig::default(),
            &probe,
        )
        .unwrap();
        let snap = probe.report();
        assert_eq!(
            snap.get("fault.injected").unwrap().scalar(),
            Some(report.total() as u64)
        );
        assert_eq!(
            snap.get("fault.detected").unwrap().scalar(),
            Some(report.detected as u64)
        );
        assert_eq!(snap.get("fault.budget_trips").unwrap().scalar(), Some(0));
    }
}
