use std::error::Error;
use std::fmt;

use mis_digital::SimError;

/// Errors produced by fault construction and campaign execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// Invalid fault parameters (non-finite glitch time, non-positive
    /// width) or an invalid campaign configuration.
    Invalid {
        /// Description of the violated constraint.
        reason: String,
    },
    /// An engine run failed for a reason other than a tripped budget
    /// (budget trips are an expected per-fault outcome, recorded in the
    /// campaign report rather than raised).
    Sim(SimError),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Invalid { reason } => write!(f, "invalid fault: {reason}"),
            FaultError::Sim(e) => write!(f, "fault simulation failed: {e}"),
        }
    }
}

impl Error for FaultError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FaultError::Sim(e) => Some(e),
            FaultError::Invalid { .. } => None,
        }
    }
}

impl From<SimError> for FaultError {
    fn from(e: SimError) -> Self {
        FaultError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FaultError::Invalid {
            reason: "width must be positive".into(),
        };
        assert!(e.to_string().contains("width"));
        assert!(e.source().is_none());
        let e = FaultError::from(SimError::Network {
            reason: "boom".into(),
        });
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }
}
