//! Property-based tests for `mis-analyze`: the **soundness** guarantee.
//!
//! Static timing promises that every transition the dynamic engines
//! emit on a signal lands inside that signal's statically computed
//! arrival window. This suite enforces the promise three ways:
//!
//! * randomized feed-forward DAGs over *every* channel kind (zero-time,
//!   pure, inertial, exact involution — which is unbounded — and cached
//!   hybrid NOR/NAND), with grid-aligned stimuli that include empty
//!   traces and exactly-simultaneous edges;
//! * the same property through [`ParallelSimulator`] at worker counts
//!   1–8, so the cone partitioning cannot leak edges outside a window;
//! * the committed ISCAS fixtures (C17, C432, C880) under the ideal,
//!   inertial and characterized-hybrid cell libraries.
//!
//! Tolerance: window containment is checked with 1 fs of absolute
//! slack (`TOL`), absorbing the ~ulp discrepancies between the fp
//! sequences the scheduler and the bound computation execute.

use std::path::PathBuf;
use std::sync::OnceLock;

use mis_analyze::{lint, LintConfig, TimingAnalysis, Window};
use mis_charlib::{CharConfig, CharLib};
use mis_core::NorParams;
use mis_digital::{
    CachedHybridChannel, CachedHybridNandChannel, ExpChannel, GateKind, InertialChannel, Network,
    PureDelayChannel, SumExpChannel, TraceTransform, TwoInputTransform,
};
use mis_sim::{BenchNetlist, CellLibrary, ParallelSimulator, Simulator};
use mis_testkit::prelude::*;
use mis_testkit::rng::TestRng;
use mis_waveform::units::ps;
use mis_waveform::DigitalTrace;

const CASES: u32 = 48;

/// Absolute containment slack: 1 fs, far above the ~ulp rounding
/// differences between the scheduler's and the analyzer's arithmetic,
/// far below the 5 ps stimulus grid.
const TOL: f64 = 1e-15;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Characterized NOR library (quick config — soundness compares the
/// *same* channel objects' bounds against their own dynamic behavior,
/// so the characterization budget is irrelevant).
fn shared_lib() -> &'static CharLib {
    static LIB: OnceLock<CharLib> = OnceLock::new();
    LIB.get_or_init(|| {
        CharLib::nor(&NorParams::paper_table1(), &CharConfig::quick()).expect("characterization")
    })
}

/// Random trace on a 5 ps grid, empty traces included (same generator
/// shape as the mis-sim bit-identity suite, so the two properties
/// exercise the same stimulus space).
fn grid_trace(rng: &mut TestRng, max_edges: u64) -> DigitalTrace {
    let n = rng.gen_u64_below(max_edges + 1);
    let init = rng.gen_bool(0.5);
    let mut trace = DigitalTrace::constant(init);
    let mut ticks: u64 = 0;
    let mut v = init;
    for _ in 0..n {
        ticks += 1 + rng.gen_u64_below(40);
        v = !v;
        trace
            .push_edge(ps(100.0) + ticks as f64 * ps(5.0), v)
            .expect("monotone");
    }
    trace
}

/// Channel palette index → fresh channel (`None` = zero-time). Palette
/// 3 and 4 are the exact involution channels, which advertise no
/// [`mis_digital::DelayBounds`] — their windows must come out unbounded
/// and the property holds vacuously for them.
fn spec_channel(ch: usize) -> Option<Box<dyn TraceTransform>> {
    match ch {
        0 => None,
        1 => Some(Box::new(PureDelayChannel::new(ps(7.0)).unwrap())),
        2 => Some(Box::new(
            InertialChannel::symmetric(ps(40.0), ps(30.0)).unwrap(),
        )),
        3 => Some(Box::new(
            ExpChannel::from_sis_delays(ps(50.0), ps(38.0), ps(15.0)).unwrap(),
        )),
        _ => Some(Box::new(
            SumExpChannel::from_sis_delay(ps(50.0), ps(15.0), 0.7, 3.0).unwrap(),
        )),
    }
}

/// Random feed-forward network over every channel kind, mirroring the
/// mis-sim generator: unary and binary gates with optional channels,
/// plus cached hybrid NOR/NAND two-input channel gates.
fn random_network(rng: &mut TestRng) -> Network {
    const BINARY: [GateKind; 5] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
    ];
    let n_inputs = 1 + rng.gen_u64_below(3) as usize;
    let n_gates = 1 + rng.gen_u64_below(8) as usize;
    let mut net = Network::new();
    let mut ids = Vec::new();
    for i in 0..n_inputs {
        ids.push(net.add_input(&format!("in{i}")));
    }
    for g in 0..n_gates {
        let name = format!("g{g}");
        let pick = |rng: &mut TestRng| ids[rng.gen_u64_below(ids.len() as u64) as usize];
        let id = match rng.gen_u64_below(4) {
            0 => {
                let kind = if rng.gen_bool(0.5) {
                    GateKind::Not
                } else {
                    GateKind::Buf
                };
                let src = pick(rng);
                net.add_gate(
                    &name,
                    kind,
                    &[src],
                    spec_channel(rng.gen_u64_below(5) as usize),
                )
                .unwrap()
            }
            1 | 2 => {
                let kind = BINARY[rng.gen_u64_below(5) as usize];
                let (a, b) = (pick(rng), pick(rng));
                net.add_gate(
                    &name,
                    kind,
                    &[a, b],
                    spec_channel(rng.gen_u64_below(5) as usize),
                )
                .unwrap()
            }
            _ => {
                let channel: Box<dyn TwoInputTransform> = if rng.gen_bool(0.5) {
                    Box::new(CachedHybridNandChannel::from_dual(shared_lib()).unwrap())
                } else {
                    Box::new(CachedHybridChannel::new(shared_lib()).unwrap())
                };
                let (a, b) = (pick(rng), pick(rng));
                net.add_two_input_channel_gate(&name, [a, b], channel)
                    .unwrap()
            }
        };
        ids.push(id);
    }
    net
}

/// A trace's edge times, for window construction and containment.
fn edge_times(trace: &DigitalTrace) -> Vec<f64> {
    trace.edges().iter().map(|e| e.time).collect()
}

/// Input windows straight from the stimulus: the tightest interval
/// holding each trace's edge times ([`Window::EMPTY`] for constants).
fn input_windows(inputs: &[DigitalTrace]) -> Vec<Window> {
    inputs
        .iter()
        .map(|t| Window::from_edge_times(&edge_times(t)))
        .collect()
}

/// Asserts every edge of every simulated signal lands inside its
/// statically computed window. `traces` is one trace per signal,
/// indexable by signal index (the engines' output convention).
fn assert_sound(net: &Network, windows: &[Window], traces: &[DigitalTrace], context: &str) {
    assert_eq!(windows.len(), traces.len());
    for (s, (w, trace)) in windows.iter().zip(traces).enumerate() {
        for t in edge_times(trace) {
            assert!(
                w.contains(t, TOL),
                "{context}: signal {s} ('{}') has an edge at {:.6} ps outside \
                 its static window {w}",
                net.signal_name(net.signal_id(s).unwrap()),
                t / 1e-12,
            );
        }
    }
}

#[test]
fn windows_contain_event_engine_edges_on_random_dags() {
    // The core soundness property: random wiring, every channel kind,
    // empty traces and simultaneous edges included.
    Config::with_cases(CASES).run(&(0u64..u64::MAX), |&seed| {
        let mut rng = TestRng::seed_from_u64(seed);
        let net = random_network(&mut rng);
        let inputs: Vec<DigitalTrace> = (0..net.input_count())
            .map(|_| grid_trace(&mut rng, 8))
            .collect();
        let ta = TimingAnalysis::new(&net);
        prop_assert_eq!(ta.input_count(), net.input_count());
        prop_assert_eq!(ta.signal_count(), net.signal_count());
        let windows = ta.arrival_windows(&input_windows(&inputs));
        let mut sim = Simulator::new(&net).expect("engine construction");
        let traces = sim.run(&inputs).expect("event-queue run");
        assert_sound(&net, &windows, &traces, &format!("seed {seed}"));
        Ok(())
    });
}

#[test]
fn windows_contain_parallel_engine_edges_at_all_worker_counts() {
    // Same property through the per-cone partitioning, workers 1–8:
    // no schedule may move an edge outside its window.
    Config::with_cases(CASES / 4).run(&(0u64..u64::MAX), |&seed| {
        let mut rng = TestRng::seed_from_u64(seed);
        let net = random_network(&mut rng);
        let inputs: Vec<DigitalTrace> = (0..net.input_count())
            .map(|_| grid_trace(&mut rng, 8))
            .collect();
        let windows = TimingAnalysis::new(&net).arrival_windows(&input_windows(&inputs));
        for workers in 1..=8 {
            let mut par = ParallelSimulator::new(&net, workers).expect("partitioning");
            let traces = par.run(&inputs).expect("parallel run");
            assert_sound(
                &net,
                &windows,
                &traces,
                &format!("seed {seed}, {workers} workers"),
            );
        }
        Ok(())
    });
}

#[test]
fn quiet_inputs_produce_quiet_windows_and_quiet_traces() {
    // Quiescence, both ways: constant stimulus means every window is
    // empty AND the engine emits no edges — the static and dynamic
    // pictures agree exactly, not just by containment.
    Config::with_cases(CASES).run(&(0u64..u64::MAX), |&seed| {
        let mut rng = TestRng::seed_from_u64(seed);
        let net = random_network(&mut rng);
        let inputs: Vec<DigitalTrace> = (0..net.input_count())
            .map(|_| DigitalTrace::constant(rng.gen_bool(0.5)))
            .collect();
        let windows = TimingAnalysis::new(&net).arrival_windows(&input_windows(&inputs));
        prop_assert!(windows.iter().all(Window::is_empty));
        let mut sim = Simulator::new(&net).expect("engine construction");
        let traces = sim.run(&inputs).expect("run");
        prop_assert!(traces.iter().all(|t| t.edges().is_empty()));
        Ok(())
    });
}

/// Loads a committed fixture and checks soundness under one cell
/// library, through both engines.
fn assert_fixture_sound(file: &str, cells: &CellLibrary, context: &str) {
    let path = workspace_root().join("data/bench").join(file);
    let text = std::fs::read_to_string(&path).expect("committed fixture");
    let nl = BenchNetlist::parse(&text).expect("fixture parses");
    let report = lint(&nl, &LintConfig::default());
    assert!(
        report.is_clean(),
        "{file}: committed fixture must lint clean, got:\n{report}"
    );
    let lowered = nl.lower(cells).expect("fixture lowers");
    let ta = TimingAnalysis::new(&lowered.net);
    let mut rng = TestRng::seed_from_u64(0xA11A);
    let inputs: Vec<DigitalTrace> = (0..lowered.net.input_count())
        .map(|_| grid_trace(&mut rng, 4))
        .collect();
    let windows = ta.arrival_windows(&input_windows(&inputs));
    let mut sim = Simulator::new(&lowered.net).expect("engine construction");
    let traces = sim.run(&inputs).expect("run");
    assert_sound(&lowered.net, &windows, &traces, context);
    let mut par = ParallelSimulator::new(&lowered.net, 4).expect("partitioning");
    let ptraces = par.run(&inputs).expect("parallel run");
    assert_sound(
        &lowered.net,
        &windows,
        &ptraces,
        &format!("{context} (parallel)"),
    );
    // The report is well-formed: finite critical path under bounded
    // libraries, level census sums to the signal count.
    let timing = ta.report(&lowered.outputs);
    assert_eq!(
        timing.level_census.iter().sum::<usize>(),
        lowered.net.signal_count()
    );
    assert_eq!(timing.unbounded, 0, "{context}: all channels are bounded");
    assert!(
        !timing.critical_path.is_empty(),
        "{context}: bounded library must yield a critical path"
    );
}

#[test]
fn fixtures_are_sound_under_every_cell_library() {
    let hybrid = CellLibrary::hybrid(
        shared_lib(),
        Some(InertialChannel::symmetric(ps(50.0), ps(38.0)).unwrap()),
    )
    .expect("hybrid library");
    let libraries: [(&str, CellLibrary); 3] = [
        ("ideal", CellLibrary::ideal()),
        (
            "inertial",
            CellLibrary::inertial(InertialChannel::symmetric(ps(40.0), ps(30.0)).unwrap()),
        ),
        ("hybrid", hybrid),
    ];
    for file in ["c17.bench", "c432.bench", "c880.bench"] {
        for (label, cells) in &libraries {
            assert_fixture_sound(file, cells, &format!("{file} under {label} cells"));
        }
    }
}

#[test]
fn unbounded_channels_surface_as_unbounded_windows() {
    // A gate behind an exact involution channel gets the vacuous
    // window — soundness must not silently claim finite bounds there.
    let mut net = Network::new();
    let a = net.add_input("a");
    let y = net
        .add_gate(
            "y",
            GateKind::Not,
            &[a],
            Some(Box::new(
                ExpChannel::from_sis_delays(ps(50.0), ps(38.0), ps(15.0)).unwrap(),
            )),
        )
        .unwrap();
    let ta = TimingAnalysis::new(&net);
    let w = ta.arrival_windows(&[Window::instant(ps(100.0))]);
    assert!(w[y.index()].is_unbounded());
    let report = ta.report(&[y]);
    assert_eq!(report.unbounded, 1);
    assert!(
        report.critical_path.is_empty(),
        "no finite output arrival to backtrack"
    );
}
