//! Structural lints over a validated [`BenchNetlist`].
//!
//! Everything here runs on the *parsed* netlist, before lowering: the
//! parser has already rejected hard structural violations (duplicates,
//! dangling references, cycles), so the linter's job is the gray zone —
//! constructs that lower and simulate fine but are almost certainly
//! mistakes (dead logic, unused declarations, degenerate operand
//! lists), plus the one predictable hard failure the parser cannot see:
//! a netlist whose lowered size exceeds the engines' index width
//! (`A007`, checked against [`mis_sim::ENGINE_INDEX_MAX`] via
//! [`BenchNetlist::lowered_stats`] without allocating anything).
//!
//! Findings anchor to real `.bench` source lines: the parser retains a
//! span per declaration ([`BenchNetlist::gate_lines`] and friends), so
//! a CI failure points at the line to fix. Programmatic netlists carry
//! line `0` throughout.

use std::collections::{HashMap, HashSet};

use mis_sim::{BenchNetlist, ENGINE_INDEX_MAX};

use crate::diag::{DiagCode, Diagnostic, LintReport};

/// Tunables for the structural checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Fan-in count above which `A006` fires. The default (16) keeps
    /// the committed ISCAS fixtures clean — c432's 9-input gates are
    /// legitimate — while still flagging netlists whose reduction trees
    /// dwarf the timed cell at the root.
    pub max_fan_in: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig { max_fan_in: 16 }
    }
}

/// Runs every structural check over `nl` and returns the sorted report.
///
/// The netlist is already validated (it exists), so the linter never
/// fails — it only reports. Checks implemented, by code:
///
/// * `A001` unused signal — declared but never read nor exported;
/// * `A002` output without a driving cone — `OUTPUT` names an `INPUT`;
/// * `A003` duplicate fan-in operand;
/// * `A004` constant-foldable gate — one distinct operand on a
///   non-unary gate;
/// * `A005` dead gate — outside every output cone;
/// * `A006` excessive fan-in — above [`LintConfig::max_fan_in`];
/// * `A007` index-width overflow — lowered size would exceed
///   [`ENGINE_INDEX_MAX`] (the only error-severity finding).
#[must_use]
pub fn lint(nl: &BenchNetlist, config: &LintConfig) -> LintReport {
    let mut out: Vec<Diagnostic> = Vec::new();

    let outputs: HashSet<&str> = nl.outputs().iter().map(String::as_str).collect();
    let inputs: HashSet<&str> = nl.inputs().iter().map(String::as_str).collect();
    let mut read: HashSet<&str> = HashSet::new();
    for g in nl.gates() {
        for op in &g.inputs {
            read.insert(op.as_str());
        }
    }

    // A001 — unused signals, at their declaration line.
    for (name, &line) in nl.inputs().iter().zip(nl.input_lines()) {
        if !read.contains(name.as_str()) && !outputs.contains(name.as_str()) {
            out.push(Diagnostic {
                code: DiagCode::UnusedSignal,
                line,
                signal: Some(name.clone()),
                message: format!("input '{name}' is never read by a gate nor exported"),
            });
        }
    }
    for (g, &line) in nl.gates().iter().zip(nl.gate_lines()) {
        if !read.contains(g.output.as_str()) && !outputs.contains(g.output.as_str()) {
            out.push(Diagnostic {
                code: DiagCode::UnusedSignal,
                line,
                signal: Some(g.output.clone()),
                message: format!("gate output '{}' is never read nor exported", g.output),
            });
        }
    }

    // A002 — outputs that are primary inputs, at the OUTPUT line.
    for (name, &line) in nl.outputs().iter().zip(nl.output_lines()) {
        if inputs.contains(name.as_str()) {
            out.push(Diagnostic {
                code: DiagCode::OutputWithoutCone,
                line,
                signal: Some(name.clone()),
                message: format!(
                    "output '{name}' is a primary input: no gate drives it, it only \
                     echoes the input"
                ),
            });
        }
    }

    // Per-gate operand-shape checks: A003, A004, A006.
    for (g, &line) in nl.gates().iter().zip(nl.gate_lines()) {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut dup: Option<&str> = None;
        for op in &g.inputs {
            if !seen.insert(op.as_str()) && dup.is_none() {
                dup = Some(op.as_str());
            }
        }
        if let Some(d) = dup {
            out.push(Diagnostic {
                code: DiagCode::DuplicateOperand,
                line,
                signal: Some(g.output.clone()),
                message: format!("gate '{}' lists operand '{d}' more than once", g.output),
            });
        }
        if seen.len() == 1 && !g.func.is_unary() {
            out.push(Diagnostic {
                code: DiagCode::ConstantFoldableGate,
                line,
                signal: Some(g.output.clone()),
                message: format!(
                    "gate '{}' = {}({}, ...) reduces to a constant or a copy of its \
                     single distinct operand",
                    g.output,
                    g.func.name(),
                    g.inputs[0]
                ),
            });
        }
        if g.inputs.len() > config.max_fan_in {
            out.push(Diagnostic {
                code: DiagCode::ExcessiveFanIn,
                line,
                signal: Some(g.output.clone()),
                message: format!(
                    "gate '{}' has fan-in {} (limit {}): the delay model covers the \
                     timed root cell, not a reduction tree this deep",
                    g.output,
                    g.inputs.len(),
                    config.max_fan_in
                ),
            });
        }
    }

    // A005 — dead gates: walk the fan-in relation backward from every
    // OUTPUT; gates whose outputs the walk never reaches cannot affect
    // any observable signal.
    let gate_of: HashMap<&str, usize> = nl
        .gates()
        .iter()
        .enumerate()
        .map(|(i, g)| (g.output.as_str(), i))
        .collect();
    let mut alive: HashSet<&str> = HashSet::new();
    let mut stack: Vec<&str> = nl.outputs().iter().map(String::as_str).collect();
    while let Some(name) = stack.pop() {
        if !alive.insert(name) {
            continue;
        }
        if let Some(&gi) = gate_of.get(name) {
            for op in &nl.gates()[gi].inputs {
                stack.push(op.as_str());
            }
        }
    }
    for (g, &line) in nl.gates().iter().zip(nl.gate_lines()) {
        if !alive.contains(g.output.as_str()) {
            out.push(Diagnostic {
                code: DiagCode::DeadGate,
                line,
                signal: Some(g.output.clone()),
                message: format!(
                    "gate '{}' feeds no OUTPUT: it is simulated but unobservable",
                    g.output
                ),
            });
        }
    }

    // A007 — index-width pre-flight: the one finding that predicts a
    // hard engine failure rather than a smell.
    let stats = nl.lowered_stats();
    if stats.signals > ENGINE_INDEX_MAX || stats.edges > ENGINE_INDEX_MAX {
        out.push(Diagnostic {
            code: DiagCode::IndexWidthOverflow,
            line: 0,
            signal: None,
            message: format!(
                "lowering would produce {} signals and {} fan-out edges; the engines \
                 index both as u32 (max {ENGINE_INDEX_MAX}), so Simulator::new is \
                 guaranteed to reject this netlist",
                stats.signals, stats.edges
            ),
        });
    }

    LintReport::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn codes(report: &LintReport) -> Vec<(DiagCode, usize)> {
        report
            .diagnostics()
            .iter()
            .map(|d| (d.code, d.line))
            .collect()
    }

    #[test]
    fn clean_netlist_stays_clean() {
        let nl = BenchNetlist::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = NAND(a, b)\ny = NOT(n)")
            .unwrap();
        let report = lint(&nl, &LintConfig::default());
        assert!(report.is_clean(), "unexpected findings:\n{report}");
    }

    #[test]
    fn every_warning_code_fires_at_its_source_line() {
        // Line:            1         2         3         4
        let text = "INPUT(a)\nINPUT(b)\nINPUT(unused)\nOUTPUT(y)\n\
                    OUTPUT(a)\ndup = AND(a, b, a)\nfold = OR(b, b)\n\
                    dead = NOR(a, dup)\nlost = NOT(fold)\ny = NAND(a, b)";
        // Lines: 5 OUTPUT(a), 6 dup, 7 fold, 8 dead, 9 lost, 10 y.
        let nl = BenchNetlist::parse(text).unwrap();
        let report = lint(&nl, &LintConfig::default());
        let got = codes(&report);
        assert_eq!(
            got,
            vec![
                (DiagCode::UnusedSignal, 3),         // INPUT(unused)
                (DiagCode::OutputWithoutCone, 5),    // OUTPUT(a)
                (DiagCode::DuplicateOperand, 6),     // dup = AND(a, b, a)
                (DiagCode::DeadGate, 6),             // dup feeds only dead
                (DiagCode::DuplicateOperand, 7),     // fold = OR(b, b)
                (DiagCode::ConstantFoldableGate, 7), // fold = OR(b, b)
                (DiagCode::DeadGate, 7),             // fold feeds only lost
                (DiagCode::UnusedSignal, 8),         // dead never read nor exported
                (DiagCode::DeadGate, 8),             // dead = NOR(a, dup)
                (DiagCode::UnusedSignal, 9),         // lost never read nor exported
                (DiagCode::DeadGate, 9),             // lost = NOT(fold)
            ],
            "report was:\n{report}"
        );
        assert!(!report.has_errors());
        assert_eq!(report.warning_count(), 11);
    }

    #[test]
    fn duplicate_operand_on_foldable_gate_reports_both() {
        let nl = BenchNetlist::parse("INPUT(a)\nOUTPUT(y)\ny = XOR(a, a)").unwrap();
        let report = lint(&nl, &LintConfig::default());
        assert_eq!(
            codes(&report),
            vec![
                (DiagCode::DuplicateOperand, 3),
                (DiagCode::ConstantFoldableGate, 3),
            ]
        );
    }

    #[test]
    fn fan_in_limit_is_configurable() {
        let nl = BenchNetlist::parse("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, c)")
            .unwrap();
        assert!(lint(&nl, &LintConfig::default()).is_clean());
        let tight = LintConfig { max_fan_in: 2 };
        let report = lint(&nl, &tight);
        assert_eq!(codes(&report), vec![(DiagCode::ExcessiveFanIn, 5)]);
        assert_eq!(report.diagnostics()[0].signal.as_deref(), Some("y"));
    }

    #[test]
    fn programmatic_netlists_report_line_zero() {
        use mis_sim::{BenchFunc, BenchGate};
        let nl = BenchNetlist::new(
            vec!["a".into(), "b".into()],
            vec!["y".into()],
            vec![
                BenchGate {
                    output: "y".into(),
                    func: BenchFunc::Nor,
                    inputs: vec!["a".into(), "a".into()],
                },
                BenchGate {
                    output: "z".into(),
                    func: BenchFunc::Not,
                    inputs: vec!["b".into()],
                },
            ],
        )
        .unwrap();
        let report = lint(&nl, &LintConfig::default());
        for d in report.diagnostics() {
            assert_eq!(d.line, 0);
        }
        let got: Vec<DiagCode> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(
            got,
            vec![
                DiagCode::UnusedSignal,         // z, never read nor exported
                DiagCode::DuplicateOperand,     // y = NOR(a, a)
                DiagCode::ConstantFoldableGate, // y = NOR(a, a)
                DiagCode::DeadGate,             // z feeds no OUTPUT
            ]
        );
    }

    #[test]
    fn severity_split_matches_registry() {
        let nl = BenchNetlist::parse("INPUT(a)\nOUTPUT(a)").unwrap();
        let report = lint(&nl, &LintConfig::default());
        assert_eq!(codes(&report), vec![(DiagCode::OutputWithoutCone, 2)]);
        assert_eq!(report.diagnostics()[0].severity(), Severity::Warning);
    }
}
