//! **mis-analyze** — static netlist analysis: the layer that inspects a
//! circuit *without* simulating it, and whose answers are property-tested
//! against the dynamic engines that do.
//!
//! Three pieces:
//!
//! * [`mod@lint`] — structural checks over a parsed
//!   [`mis_sim::BenchNetlist`], reported as stable diagnostic codes
//!   (`A001`–`A007`, see [`DiagCode`]) anchored to real `.bench` source
//!   lines. Six warnings for simulable-but-suspicious structure (unused
//!   signals, cone-less outputs, duplicate operands, foldable gates,
//!   dead logic, oversized fan-ins) plus one error — `A007` — that
//!   predicts the engines' `u32` index-width rejection from
//!   [`mis_sim::BenchNetlist::lowered_stats`] before anything allocates.
//! * [`sta`] — static timing over a lowered [`mis_digital::Network`]:
//!   topological levels and per-signal min/max arrival [`Window`]s
//!   propagated with each channel's [`mis_digital::DelayBounds`],
//!   summarized as a level census, per-output arrivals and a critical
//!   path ([`TimingAnalysis::report`]).
//! * [`attribution`] — the static/dynamic join: `gate` spans from a
//!   `mis_probe` trace snapshot attributed to their signals'
//!   topological levels ([`attribute_levels`]), yielding the per-level
//!   time/event table a level-sliced scheduler would be designed
//!   against, plus per-level `level.L<n>.eval_ns` probe histograms.
//!
//! The load-bearing guarantee is **soundness**: every transition the
//! event-driven [`mis_sim::Simulator`] (and its parallel twin) emits
//! lands inside its signal's statically computed window — on random
//! DAGs over every channel kind and on the committed ISCAS fixtures.
//! The property suite in `tests/proptests.rs` enforces exactly that;
//! the inductive argument lives in the [`sta`] module docs.
//!
//! # Examples
//!
//! ```
//! use mis_analyze::{lint, LintConfig, TimingAnalysis, Window};
//! use mis_sim::{BenchNetlist, CellLibrary};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = BenchNetlist::parse(
//!     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)",
//! )?;
//! let report = lint(&nl, &LintConfig::default());
//! assert!(report.is_clean());
//!
//! let lowered = nl.lower(&CellLibrary::ideal())?;
//! let ta = TimingAnalysis::new(&lowered.net);
//! let w = ta.arrival_windows(&[Window::instant(0.0), Window::EMPTY]);
//! assert_eq!(w[lowered.outputs[0].index()], Window::instant(0.0));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod diag;
pub mod lint;
pub mod sta;

pub use attribution::{attribute_levels, LevelAttribution, LevelRow};
pub use diag::{DiagCode, Diagnostic, LintReport, Severity};
pub use lint::{lint, LintConfig};
pub use sta::{OutputTiming, PathStep, TimingAnalysis, TimingReport, Window, WindowEdit};
