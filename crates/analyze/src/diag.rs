//! The diagnostic vocabulary of the linter: stable codes, severities,
//! and the report container the `lint_bench` CLI and CI gate consume.
//!
//! Codes are **stable identifiers**: once shipped, a code keeps its
//! meaning forever (CI configurations and commit messages reference
//! them), so new checks append new codes rather than renumbering. The
//! registry lives in [`DiagCode`]; `DESIGN.md` mirrors it prose-side.

use std::fmt;

/// How bad a diagnostic is.
///
/// * [`Severity::Error`] — the netlist cannot be simulated as written
///   (today only `A007`: the lowered size exceeds the engines' `u32`
///   index width, so [`mis_sim::Simulator::new`] is guaranteed to
///   reject it).
/// * [`Severity::Warning`] — the netlist simulates, but something is
///   structurally suspicious (dead logic, unused declarations,
///   degenerate fan-ins). CI promotes warnings to failures for the
///   committed fixtures via `lint_bench --deny-warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Structurally suspicious but simulable.
    Warning,
    /// Guaranteed to fail at lowering or engine construction.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The diagnostic code registry. One variant per structural check; the
/// numeric part is stable across releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `A001` — a declared signal (primary input or gate output) that no
    /// gate reads and no `OUTPUT` declaration exports.
    UnusedSignal,
    /// `A002` — an `OUTPUT` that names a primary input: the "cone"
    /// feeding it is empty, so the output merely echoes an input.
    OutputWithoutCone,
    /// `A003` — a gate listing the same operand more than once.
    DuplicateOperand,
    /// `A004` — a non-unary gate whose operands are all one signal: its
    /// value is a constant or a copy (`AND(a, a) = a`, `XOR(a, a) = 0`),
    /// so the gate folds away.
    ConstantFoldableGate,
    /// `A005` — a gate outside every output cone: no path from its
    /// output to any `OUTPUT` declaration, so it burns simulation time
    /// without affecting any observable signal.
    DeadGate,
    /// `A006` — a gate whose fan-in exceeds the configured maximum
    /// ([`crate::LintConfig::max_fan_in`]). Wide gates lower into deep
    /// zero-time reduction trees; past the library's characterized
    /// range the single-cell delay model stops being meaningful.
    ExcessiveFanIn,
    /// `A007` — the lowered netlist would exceed the engines' `u32`
    /// index width ([`mis_sim::ENGINE_INDEX_MAX`] signals or fan-out
    /// edges), predicted via [`mis_sim::BenchNetlist::lowered_stats`]
    /// before any allocation happens.
    IndexWidthOverflow,
}

impl DiagCode {
    /// The stable code string, e.g. `"A001"`.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::UnusedSignal => "A001",
            DiagCode::OutputWithoutCone => "A002",
            DiagCode::DuplicateOperand => "A003",
            DiagCode::ConstantFoldableGate => "A004",
            DiagCode::DeadGate => "A005",
            DiagCode::ExcessiveFanIn => "A006",
            DiagCode::IndexWidthOverflow => "A007",
        }
    }

    /// Short human title of the check.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            DiagCode::UnusedSignal => "unused signal",
            DiagCode::OutputWithoutCone => "output without a driving cone",
            DiagCode::DuplicateOperand => "duplicate fan-in operand",
            DiagCode::ConstantFoldableGate => "constant-foldable gate",
            DiagCode::DeadGate => "gate outside every output cone",
            DiagCode::ExcessiveFanIn => "excessive fan-in",
            DiagCode::IndexWidthOverflow => "lowered size exceeds engine index width",
        }
    }

    /// The fixed severity of this check (see [`Severity`]).
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::IndexWidthOverflow => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One finding: a code, where it points, and a rendered message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which check fired.
    pub code: DiagCode,
    /// 1-based `.bench` source line the finding anchors to, `0` for
    /// netlist-wide findings or programmatically assembled netlists
    /// (which carry no source spans).
    pub line: usize,
    /// The signal or gate-output name involved, when the finding is
    /// about one.
    pub signal: Option<String>,
    /// Rendered explanation.
    pub message: String,
}

impl Diagnostic {
    /// The severity of this finding — fixed per code.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity(), self.code.code())?;
        if self.line > 0 {
            write!(f, " line {}", self.line)?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Everything the linter found, sorted by (line, code, signal) so output
/// is deterministic and reads in source order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Wraps and sorts a finding list (line, then code, then signal).
    #[must_use]
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| (a.line, a.code, &a.signal).cmp(&(b.line, b.code, &b.signal)));
        LintReport { diagnostics }
    }

    /// The findings, in report order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` when nothing fired.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Count of [`Severity::Error`] findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Count of [`Severity::Warning`] findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// `true` when at least one finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_titles_severities_are_wired() {
        let all = [
            DiagCode::UnusedSignal,
            DiagCode::OutputWithoutCone,
            DiagCode::DuplicateOperand,
            DiagCode::ConstantFoldableGate,
            DiagCode::DeadGate,
            DiagCode::ExcessiveFanIn,
            DiagCode::IndexWidthOverflow,
        ];
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.code(), format!("A{:03}", i + 1));
            assert!(!c.title().is_empty());
        }
        assert_eq!(DiagCode::IndexWidthOverflow.severity(), Severity::Error);
        assert_eq!(DiagCode::UnusedSignal.severity(), Severity::Warning);
    }

    #[test]
    fn report_sorts_and_counts() {
        let d = |code: DiagCode, line: usize| Diagnostic {
            code,
            line,
            signal: None,
            message: format!("{} here", code.title()),
        };
        let report = LintReport::new(vec![
            d(DiagCode::DeadGate, 9),
            d(DiagCode::IndexWidthOverflow, 0),
            d(DiagCode::UnusedSignal, 9),
            d(DiagCode::DuplicateOperand, 4),
        ]);
        let lines: Vec<usize> = report.diagnostics().iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![0, 4, 9, 9]);
        assert_eq!(report.diagnostics()[2].code, DiagCode::UnusedSignal);
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 3);
        assert!(report.has_errors());
        assert!(!report.is_clean());
        let text = report.to_string();
        assert!(text.contains("error[A007]"));
        assert!(text.contains("warning[A001] line 9"));
        assert!(LintReport::default().is_clean());
    }
}
