//! Static timing bounds over a lowered [`Network`]: per-signal arrival
//! *windows* propagated through the DAG using each channel's
//! [`DelayBounds`], plus topological levels and a critical-path report.
//!
//! # The soundness contract
//!
//! This module's guarantee — property-verified in
//! `tests/proptests.rs` against the dynamic engines — is **soundness**,
//! not tightness: every transition the event-driven simulator emits on
//! signal `s` lands inside `s`'s statically computed arrival window.
//! The argument is inductive over the (topological) declaration order:
//!
//! * **Inputs.** An input's window is supplied by the caller, computed
//!   from the stimulus itself ([`Window::from_edge_times`]) — the base
//!   case holds by construction.
//! * **Ideal gates.** A zero-time gate's output transitions only when
//!   some fan-in transitions, at exactly that time, so the fan-in hull
//!   covers it.
//! * **Bounded channels.** Every channel advertising
//!   [`DelayBounds`] `[lo, hi]` guarantees each emitted output edge at
//!   `t_out` has *some* input edge at `t_in` with
//!   `t_in + lo ≤ t_out ≤ t_in + hi` — pure delays exactly, inertial
//!   channels because cancellation only removes edges, the cached
//!   hybrid because its commit rule anchors on an input edge and its
//!   table lookups are bounded by exact per-cell extrema. Shifting the
//!   fan-in hull by `[lo, hi]` therefore covers every output edge.
//! * **Unbounded channels.** The exact involution channels
//!   (`ExpChannel`, `SumExpChannel`) advertise no bounds; their outputs
//!   get [`Window::UNBOUNDED`], which contains everything — still
//!   sound, just vacuous. The report counts these separately.
//! * **Quiescence.** Every channel maps a constant trace to a constant
//!   trace, so empty fan-in windows (no edges at all) propagate as
//!   [`Window::EMPTY`], and a gate whose *every* fan-in window is empty
//!   gets an empty window: no input edges, no output edges. Fan-ins
//!   with empty windows are skipped when forming the hull — a constant
//!   side input cannot time an output edge.

use std::fmt;

use mis_digital::{DelayBounds, Network, SignalId, SignalSource};

/// A closed interval of edge times in seconds, possibly empty or
/// unbounded. `lo > hi` encodes "no edges at all".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Earliest possible edge time (seconds).
    pub lo: f64,
    /// Latest possible edge time (seconds).
    pub hi: f64,
}

impl Window {
    /// The empty window: no edges can occur. Propagates through every
    /// bound computation as "stays constant".
    pub const EMPTY: Window = Window {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };

    /// The window containing every time — the sound answer for channels
    /// that advertise no [`DelayBounds`].
    pub const UNBOUNDED: Window = Window {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// The window holding exactly one instant.
    #[must_use]
    pub fn instant(t: f64) -> Self {
        Window { lo: t, hi: t }
    }

    /// A window spanning `lo..=hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        Window { lo, hi }
    }

    /// The tightest window containing every time in `times` —
    /// [`Window::EMPTY`] for an empty slice. This is how stimulus
    /// traces become input windows: `times` are a trace's edge times
    /// (already monotone, but this does not rely on that).
    #[must_use]
    pub fn from_edge_times(times: &[f64]) -> Self {
        times.iter().fold(Window::EMPTY, |w, &t| Window {
            lo: w.lo.min(t),
            hi: w.hi.max(t),
        })
    }

    /// `true` when no edge can occur in this window.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !(self.lo <= self.hi)
    }

    /// `true` when the window is non-empty with at least one infinite
    /// end — the vacuous answer produced by unbounded channels.
    #[must_use]
    pub fn is_unbounded(&self) -> bool {
        !self.is_empty() && (self.lo.is_infinite() || self.hi.is_infinite())
    }

    /// Whether `t` lies inside the window, widened by `tol` on both
    /// sides (containment checks against simulated edge times use a
    /// small absolute tolerance for floating-point slack).
    #[must_use]
    pub fn contains(&self, t: f64, tol: f64) -> bool {
        t >= self.lo - tol && t <= self.hi + tol
    }

    /// The tightest window containing both operands (empty windows are
    /// identities).
    #[must_use]
    pub fn hull(self, other: Window) -> Window {
        Window {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The window shifted by a delay interval: an edge in `self` fed
    /// through a channel with `bounds` lands here. Empty stays empty.
    #[must_use]
    pub fn shifted(self, bounds: DelayBounds) -> Window {
        if self.is_empty() {
            return Window::EMPTY;
        }
        Window {
            lo: self.lo + bounds.lo,
            hi: self.hi + bounds.hi,
        }
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "(quiet)")
        } else if self.is_unbounded() {
            write!(f, "(unbounded)")
        } else {
            write!(f, "[{:.3}, {:.3}] ps", self.lo / 1e-12, self.hi / 1e-12)
        }
    }
}

/// A per-signal override applied during
/// [`TimingAnalysis::arrival_windows_edited`] propagation — the static
/// counterpart of a `mis-sim` trace overlay (see that method's docs for
/// the soundness correspondence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowEdit {
    /// Replace the signal's propagated window outright. A stuck-at
    /// fault is `Replace(Window::EMPTY)`: the faulted trace is
    /// constant, so no edge can occur.
    Replace(Window),
    /// Hull the signal's propagated window with an extra interval. A
    /// transient glitch at `t` of width `w` is
    /// `Widen(Window::new(t, t + w))`: every faulted edge is either an
    /// original edge or one of the two pulse edges.
    Widen(Window),
}

impl WindowEdit {
    /// The edited window for a signal whose propagated window is `w`.
    #[must_use]
    pub fn apply(self, w: Window) -> Window {
        match self {
            WindowEdit::Replace(r) => r,
            WindowEdit::Widen(x) => w.hull(x),
        }
    }
}

/// The static view of one lowered [`Network`]: per-signal fan-in lists,
/// per-gate delay bounds, and topological levels — everything needed to
/// propagate arrival windows without touching the dynamic engines.
///
/// Construction walks the network once. Windows are then computed per
/// stimulus via [`TimingAnalysis::arrival_windows`], or once with all
/// inputs pinned at `t = 0` via [`TimingAnalysis::report`].
#[derive(Debug, Clone)]
pub struct TimingAnalysis {
    names: Vec<String>,
    /// Fan-in signal indices per signal (empty for inputs).
    fan_ins: Vec<Vec<usize>>,
    /// Channel delay bounds per signal: `Some` for inputs (unused) and
    /// bounded gates, `None` for gates behind unbounded channels.
    bounds: Vec<Option<DelayBounds>>,
    is_input: Vec<bool>,
    /// Signal indices of the primary inputs, in declaration order —
    /// the order `Network::run` expects its stimulus in.
    input_positions: Vec<usize>,
    levels: Vec<u32>,
}

impl TimingAnalysis {
    /// Captures the static structure of `net`.
    ///
    /// Relies on the builder invariant that declaration order is
    /// topological (a gate's operands are declared before it), which
    /// [`Network`] enforces at `add_gate` time.
    #[must_use]
    pub fn new(net: &Network) -> Self {
        let n = net.signal_count();
        let mut names = Vec::with_capacity(n);
        let mut fan_ins: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut bounds = Vec::with_capacity(n);
        let mut is_input = Vec::with_capacity(n);
        let mut input_positions = Vec::new();
        let mut levels = vec![0u32; n];
        for s in 0..n {
            let id = net.signal_id(s).expect("s < signal_count");
            names.push(net.signal_name(id).to_owned());
            match net.source(id) {
                SignalSource::Input => {
                    input_positions.push(s);
                    fan_ins.push(Vec::new());
                    bounds.push(Some(DelayBounds::exact(0.0)));
                    is_input.push(true);
                }
                SignalSource::Gate {
                    inputs, channel, ..
                } => {
                    fan_ins.push(inputs.iter().map(|i| i.index()).collect());
                    // A channel-less gate is zero-time: edges pass
                    // through at their input times exactly.
                    bounds.push(match channel {
                        None => Some(DelayBounds::exact(0.0)),
                        Some(ch) => ch.delay_bounds(),
                    });
                    is_input.push(false);
                }
                SignalSource::TwoInputChannelGate { inputs, channel } => {
                    fan_ins.push(inputs.iter().map(|i| i.index()).collect());
                    bounds.push(channel.delay_bounds());
                    is_input.push(false);
                }
            }
            if !fan_ins[s].is_empty() {
                levels[s] = 1 + fan_ins[s]
                    .iter()
                    .map(|&f| levels[f])
                    .max()
                    .expect("non-empty fan-in");
            }
        }
        TimingAnalysis {
            names,
            fan_ins,
            bounds,
            is_input,
            input_positions,
            levels,
        }
    }

    /// Number of primary inputs (the stimulus arity).
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.input_positions.len()
    }

    /// Number of signals (inputs included), matching
    /// [`Network::signal_count`].
    #[must_use]
    pub fn signal_count(&self) -> usize {
        self.names.len()
    }

    /// Topological level per signal: `0` for inputs, `1 + max` over
    /// fan-in levels for gates. Indexable by [`SignalId::index`].
    #[must_use]
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// Propagates arrival windows through the DAG: `input_windows[k]`
    /// bounds the edge times of the `k`-th declared input (the same
    /// order `Network::run` takes its traces in); the returned vector
    /// holds one window per signal, indexable by [`SignalId::index`].
    ///
    /// Fan-ins with empty windows are skipped (a constant side input
    /// times no output edge); a gate whose every fan-in is quiet gets
    /// [`Window::EMPTY`]; a gate behind an unbounded channel whose
    /// fan-in hull is non-empty gets [`Window::UNBOUNDED`].
    ///
    /// # Panics
    ///
    /// Panics when `input_windows.len()` differs from
    /// [`TimingAnalysis::input_count`].
    #[must_use]
    pub fn arrival_windows(&self, input_windows: &[Window]) -> Vec<Window> {
        self.arrival_windows_edited(input_windows, &[])
    }

    /// [`TimingAnalysis::arrival_windows`] with per-signal
    /// [`WindowEdit`]s applied *during* propagation: a signal's edit
    /// replaces or widens its window before any downstream gate hulls
    /// it, so the edit's effect flows through the whole fan-out cone.
    ///
    /// This is the static companion of `mis-sim`'s trace overlays — an
    /// overlay rewriting signal `s`'s trace stays sound against the
    /// windows computed here as long as its edit covers the rewrite:
    /// [`WindowEdit::Replace`]`(`[`Window::EMPTY`]`)` for a stuck-at
    /// site (the rewritten trace has no edges), [`WindowEdit::Widen`]
    /// over the pulse interval for a glitch (every rewritten edge is an
    /// original edge or one of the two pulse edges). The inductive
    /// soundness argument in the module docs goes through unchanged
    /// with "window of `s`" read as "edited window of `s`".
    ///
    /// Edits are matched by signal; a signal listed twice gets the
    /// edits applied in list order.
    ///
    /// # Panics
    ///
    /// As [`TimingAnalysis::arrival_windows`].
    #[must_use]
    pub fn arrival_windows_edited(
        &self,
        input_windows: &[Window],
        edits: &[(SignalId, WindowEdit)],
    ) -> Vec<Window> {
        assert_eq!(
            input_windows.len(),
            self.input_positions.len(),
            "one window per declared input"
        );
        let mut w = vec![Window::EMPTY; self.names.len()];
        let mut next_input = 0usize;
        for s in 0..self.names.len() {
            if self.is_input[s] {
                w[s] = input_windows[next_input];
                next_input += 1;
            } else {
                let hull = self.fan_ins[s]
                    .iter()
                    .map(|&f| w[f])
                    .filter(|fw| !fw.is_empty())
                    .fold(Window::EMPTY, Window::hull);
                w[s] = if hull.is_empty() {
                    Window::EMPTY
                } else {
                    match self.bounds[s] {
                        Some(b) => hull.shifted(b),
                        None => Window::UNBOUNDED,
                    }
                };
            }
            for (id, edit) in edits {
                if id.index() == s {
                    w[s] = edit.apply(w[s]);
                }
            }
        }
        w
    }

    /// The standard static-timing summary: all inputs pinned at
    /// `t = 0`, per-output arrival windows, the level census, and the
    /// critical path to the latest-arriving bounded output.
    ///
    /// `outputs` selects which signals to report as outputs (typically
    /// `LoweredNetlist::outputs`).
    #[must_use]
    pub fn report(&self, outputs: &[SignalId]) -> TimingReport {
        let zeros = vec![Window::instant(0.0); self.input_positions.len()];
        let w = self.arrival_windows(&zeros);
        let max_level = self.levels.iter().copied().max().unwrap_or(0);
        let mut level_census = vec![0usize; max_level as usize + 1];
        for &l in &self.levels {
            level_census[l as usize] += 1;
        }
        let unbounded = w.iter().filter(|x| x.is_unbounded()).count();
        // Critical path: the latest finite output arrival, backtracked
        // greedily through the fan-in that realizes each hi bound.
        let critical = outputs
            .iter()
            .map(|id| id.index())
            .filter(|&s| !w[s].is_empty() && w[s].hi.is_finite())
            .max_by(|&a, &b| w[a].hi.total_cmp(&w[b].hi));
        let outputs: Vec<OutputTiming> = outputs
            .iter()
            .map(|id| OutputTiming {
                name: self.names[id.index()].clone(),
                level: self.levels[id.index()],
                window: w[id.index()],
            })
            .collect();
        let mut critical_path = Vec::new();
        if let Some(start) = critical {
            let mut s = start;
            loop {
                critical_path.push(PathStep {
                    name: self.names[s].clone(),
                    level: self.levels[s],
                    latest: w[s].hi,
                });
                if self.is_input[s] {
                    break;
                }
                let Some(&f) = self.fan_ins[s]
                    .iter()
                    .filter(|&&f| !w[f].is_empty())
                    .max_by(|&&a, &&b| w[a].hi.total_cmp(&w[b].hi))
                else {
                    break;
                };
                s = f;
            }
            critical_path.reverse();
        }
        TimingReport {
            max_level,
            level_census,
            outputs,
            unbounded,
            critical_path,
        }
    }
}

/// One output's static timing.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputTiming {
    /// Output signal name.
    pub name: String,
    /// Topological level.
    pub level: u32,
    /// Arrival window with inputs pinned at `t = 0`.
    pub window: Window,
}

/// One hop on the critical path, input first.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Signal name.
    pub name: String,
    /// Topological level.
    pub level: u32,
    /// Latest possible arrival (seconds, inputs at `t = 0`).
    pub latest: f64,
}

/// The rendered summary [`TimingAnalysis::report`] produces.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Deepest topological level in the network.
    pub max_level: u32,
    /// Signal count per level, index = level (level 0 = inputs).
    pub level_census: Vec<usize>,
    /// Per-output arrivals, in the order the caller listed them.
    pub outputs: Vec<OutputTiming>,
    /// Signals whose window is vacuous because an unbounded channel
    /// feeds them (exact involution channels advertise no bounds).
    pub unbounded: usize,
    /// Input-to-output chain realizing the latest bounded output
    /// arrival; empty when every output is quiet or unbounded.
    pub critical_path: Vec<PathStep>,
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "static timing (inputs at t = 0):")?;
        writeln!(
            f,
            "  levels: {} (signals per level: {:?})",
            self.max_level, self.level_census
        )?;
        if self.unbounded > 0 {
            writeln!(f, "  unbounded signals: {}", self.unbounded)?;
        }
        writeln!(f, "  outputs:")?;
        for o in &self.outputs {
            writeln!(f, "    {:<12} level {:<3} {}", o.name, o.level, o.window)?;
        }
        if let Some(last) = self.critical_path.last() {
            writeln!(
                f,
                "  critical path (latest arrival {:.3} ps):",
                last.latest / 1e-12
            )?;
            let chain: Vec<&str> = self.critical_path.iter().map(|s| s.name.as_str()).collect();
            writeln!(f, "    {}", chain.join(" -> "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_digital::{GateKind, Network, PureDelayChannel};

    fn ps(x: f64) -> f64 {
        x * 1e-12
    }

    #[test]
    fn window_algebra() {
        assert!(Window::EMPTY.is_empty());
        assert!(!Window::EMPTY.is_unbounded());
        assert!(Window::UNBOUNDED.is_unbounded());
        assert!(Window::UNBOUNDED.contains(1e300, 0.0));
        assert_eq!(Window::from_edge_times(&[]), Window::EMPTY);
        assert_eq!(
            Window::from_edge_times(&[3.0, 1.0, 2.0]),
            Window::new(1.0, 3.0)
        );
        let w = Window::instant(5.0).hull(Window::EMPTY);
        assert_eq!(w, Window::instant(5.0));
        let s = Window::new(1.0, 2.0).shifted(DelayBounds::new(0.5, 1.5));
        assert_eq!(s, Window::new(1.5, 3.5));
        assert!(Window::EMPTY.shifted(DelayBounds::exact(1.0)).is_empty());
        assert!(Window::instant(1.0).contains(1.0 + 5e-16, 1e-15));
        assert!(!Window::instant(1.0).contains(1.0 + 2e-15, 1e-15));
    }

    #[test]
    fn levels_and_windows_on_a_small_dag() {
        // a, b inputs; n1 = NOR(a, b) ideal; y = NOT(n1) with 7 ps pure.
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let n1 = net.add_gate("n1", GateKind::Nor, &[a, b], None).unwrap();
        let y = net
            .add_gate(
                "y",
                GateKind::Not,
                &[n1],
                Some(Box::new(PureDelayChannel::new(ps(7.0)).unwrap())),
            )
            .unwrap();
        let ta = TimingAnalysis::new(&net);
        assert_eq!(ta.input_count(), 2);
        assert_eq!(ta.levels(), &[0, 0, 1, 2]);
        let w = ta.arrival_windows(&[
            Window::new(ps(100.0), ps(200.0)),
            Window::EMPTY, // b constant
        ]);
        assert_eq!(w[n1.index()], Window::new(ps(100.0), ps(200.0)));
        let wy = w[y.index()];
        assert!((wy.lo - ps(107.0)).abs() < 1e-24 && (wy.hi - ps(207.0)).abs() < 1e-24);
        // Both inputs quiet: everything quiet.
        let w = ta.arrival_windows(&[Window::EMPTY, Window::EMPTY]);
        assert!(w.iter().all(Window::is_empty));
    }

    #[test]
    fn window_edits_flow_through_the_fanout_cone() {
        // a -> n1 (ideal NOR with b) -> y (NOT, 7 ps pure delay).
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let n1 = net.add_gate("n1", GateKind::Nor, &[a, b], None).unwrap();
        let y = net
            .add_gate(
                "y",
                GateKind::Not,
                &[n1],
                Some(Box::new(PureDelayChannel::new(ps(7.0)).unwrap())),
            )
            .unwrap();
        let ta = TimingAnalysis::new(&net);
        let inputs = [Window::new(ps(100.0), ps(200.0)), Window::EMPTY];

        // Stuck-at on n1: its window empties, and so does everything
        // downstream — but `a` itself is untouched.
        let w = ta.arrival_windows_edited(&inputs, &[(n1, WindowEdit::Replace(Window::EMPTY))]);
        assert_eq!(w[a.index()], Window::new(ps(100.0), ps(200.0)));
        assert!(w[n1.index()].is_empty());
        assert!(w[y.index()].is_empty());

        // Glitch on the quiet input b: the pulse interval appears on b,
        // widens n1's hull, and shifts through y's channel.
        let glitch = Window::new(ps(300.0), ps(310.0));
        let w = ta.arrival_windows_edited(&inputs, &[(b, WindowEdit::Widen(glitch))]);
        assert_eq!(w[b.index()], glitch, "EMPTY hulled with the pulse");
        assert_eq!(w[n1.index()], Window::new(ps(100.0), ps(310.0)));
        let wy = w[y.index()];
        assert!((wy.lo - ps(107.0)).abs() < 1e-24 && (wy.hi - ps(317.0)).abs() < 1e-24);

        // No edits reproduces arrival_windows exactly.
        assert_eq!(
            ta.arrival_windows_edited(&inputs, &[]),
            ta.arrival_windows(&inputs)
        );
    }

    #[test]
    fn report_census_and_critical_path() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let slow = net
            .add_gate(
                "slow",
                GateKind::Not,
                &[a],
                Some(Box::new(PureDelayChannel::new(ps(50.0)).unwrap())),
            )
            .unwrap();
        let y = net.add_gate("y", GateKind::And, &[slow, b], None).unwrap();
        let ta = TimingAnalysis::new(&net);
        let report = ta.report(&[y]);
        assert_eq!(report.max_level, 2);
        assert_eq!(report.level_census, vec![2, 1, 1]);
        assert_eq!(report.unbounded, 0);
        assert_eq!(report.outputs.len(), 1);
        assert_eq!(report.outputs[0].window, Window::new(0.0, ps(50.0)));
        let chain: Vec<&str> = report
            .critical_path
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(chain, vec!["a", "slow", "y"]);
        let text = report.to_string();
        assert!(text.contains("critical path"));
        assert!(text.contains("a -> slow -> y"));
    }
}
