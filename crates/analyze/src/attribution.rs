//! Per-topological-level time attribution: joining engine trace
//! timelines against static level assignments.
//!
//! The event-tracing layer (`mis_probe::trace`) records one `gate` span
//! per evaluated signal — signal index, output-edge count, wall-clock
//! interval. [`crate::TimingAnalysis::levels`] assigns every signal a
//! topological level. Joining the two answers the question the
//! ROADMAP's level-sliced wavefront redesign needs answered with data
//! rather than guesses: *where does evaluation time actually go, level
//! by level?* A level whose signal count is large but whose time share
//! is small is cheap parallelism; a level holding most of the time in
//! few signals bounds any level-barrier schedule from below.
//!
//! [`attribute_levels`] performs the join over a [`TraceSnapshot`] —
//! every `gate` event on every track, so serial `sim` runs, parallel
//! `par.w<i>` workers and campaign timelines all attribute the same way
//! — and both returns the per-level table ([`LevelAttribution`],
//! `Display`-renderable) and records per-level `level.L<n>.eval_ns`
//! histograms into a [`Probe`], so the numbers travel in ordinary probe
//! reports too.

use std::fmt;

use mis_probe::{EventKind, Probe, TraceSnapshot};

/// One topological level's share of the traced evaluation work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelRow {
    /// The topological level (0 = primary inputs).
    pub level: u32,
    /// Signals assigned to this level — the maximum wavefront width a
    /// level-sliced schedule could exploit here.
    pub signals: usize,
    /// `gate` trace events joined to this level (inputs seal without a
    /// gate span, so level 0 is normally 0).
    pub gate_events: u64,
    /// Summed wall-clock nanoseconds of those gate spans.
    pub eval_ns: u64,
    /// Summed output edges sealed by those gates.
    pub edges: u64,
}

impl LevelRow {
    /// This level's fraction of `total_eval_ns` (0 when nothing was
    /// attributed anywhere).
    #[must_use]
    pub fn share(&self, total_eval_ns: u64) -> f64 {
        if total_eval_ns == 0 {
            0.0
        } else {
            self.eval_ns as f64 / total_eval_ns as f64
        }
    }
}

/// The per-level attribution table built by [`attribute_levels`]: one
/// row per topological level, plus the join totals. Renders as a
/// deterministic text table via `Display` (timings are wall-clock, so
/// the *values* vary run to run; the shape does not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelAttribution {
    /// One row per level, ascending (always `max_level + 1` rows, even
    /// for levels no gate event landed on).
    pub rows: Vec<LevelRow>,
    /// Total attributed gate-span nanoseconds.
    pub total_eval_ns: u64,
    /// Total attributed gate events.
    pub total_events: u64,
    /// Gate events whose signal index was outside the level table —
    /// zero when the snapshot and the analysis came from the same
    /// network.
    pub unattributed: u64,
}

impl LevelAttribution {
    /// The widest level (most signals) — the upper bound on useful
    /// wavefront parallelism for a level-sliced schedule.
    #[must_use]
    pub fn peak_width(&self) -> usize {
        self.rows.iter().map(|r| r.signals).max().unwrap_or(0)
    }
}

impl fmt::Display for LevelAttribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>8} {:>8} {:>10} {:>12} {:>7}",
            "level", "signals", "gates", "edges", "eval_ns", "share"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "L{:<5} {:>8} {:>8} {:>10} {:>12} {:>6.1}%",
                r.level,
                r.signals,
                r.gate_events,
                r.edges,
                r.eval_ns,
                100.0 * r.share(self.total_eval_ns)
            )?;
        }
        write!(
            f,
            "total: {} gate events, {} ns attributed",
            self.total_events, self.total_eval_ns
        )?;
        if self.unattributed > 0 {
            write!(f, " ({} events unattributed)", self.unattributed)?;
        }
        Ok(())
    }
}

/// Joins every `gate` span in `snap` (across all tracks — serial
/// engine, parallel workers, campaign timelines alike) against the
/// per-signal `levels` table from [`crate::TimingAnalysis::levels`],
/// and records each gate's span duration into that level's
/// `level.L<n>.eval_ns` histogram on `probe` (a no-op on a disabled
/// probe).
///
/// Level 0 rows count input signals but normally attribute no time:
/// inputs are sealed, not evaluated. On a parallel snapshot the same
/// signal may appear on several worker tracks (cone overlap) — each
/// evaluation is real work and each is attributed, so parallel totals
/// exceed serial totals by exactly the replication redundancy.
#[must_use]
pub fn attribute_levels(levels: &[u32], snap: &TraceSnapshot, probe: &Probe) -> LevelAttribution {
    let max_level = levels.iter().copied().max().unwrap_or(0);
    let mut rows: Vec<LevelRow> = (0..=max_level)
        .map(|l| LevelRow {
            level: l,
            signals: 0,
            gate_events: 0,
            eval_ns: 0,
            edges: 0,
        })
        .collect();
    for &l in levels {
        rows[l as usize].signals += 1;
    }
    // Histogram handles, registered once per level (cold path).
    let hists: Vec<_> = (0..=max_level)
        .map(|l| probe.histogram(&format!("level.L{l:02}.eval_ns")))
        .collect();
    let mut unattributed = 0u64;
    let (mut total_eval_ns, mut total_events) = (0u64, 0u64);
    for track in &snap.tracks {
        for e in &track.events {
            if e.kind != EventKind::Gate {
                continue;
            }
            let Some(&level) = levels.get(e.a as usize) else {
                unattributed += 1;
                continue;
            };
            let row = &mut rows[level as usize];
            let dur = e.duration_ns();
            row.gate_events += 1;
            row.eval_ns += dur;
            row.edges += u64::from(e.b);
            total_events += 1;
            total_eval_ns += dur;
            hists[level as usize].record(dur);
        }
    }
    LevelAttribution {
        rows,
        total_eval_ns,
        total_events,
        unattributed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_probe::{TraceSink, TraceTrack};

    /// Seals a synthetic gate span on `track` with a fixed edge count.
    fn gate(track: &TraceTrack, signal: u32, edges: u32) {
        track.span(EventKind::Gate, signal, edges, track.start());
    }

    #[test]
    fn joins_gate_events_to_their_levels() {
        // Levels: signals 0,1 inputs (L0); 2 at L1; 3 at L2.
        let levels = vec![0, 0, 1, 2];
        let sink = TraceSink::new();
        let t = sink.track("sim");
        gate(&t, 2, 3);
        gate(&t, 2, 3);
        gate(&t, 3, 5);
        let probe = Probe::new();
        let attr = attribute_levels(&levels, &sink.snapshot(), &probe);
        assert_eq!(attr.rows.len(), 3);
        assert_eq!(attr.rows[0].signals, 2);
        assert_eq!(attr.rows[0].gate_events, 0, "inputs are sealed, not run");
        assert_eq!(attr.rows[1].gate_events, 2);
        assert_eq!(attr.rows[1].edges, 6);
        assert_eq!(attr.rows[2].gate_events, 1);
        assert_eq!(attr.rows[2].edges, 5);
        assert_eq!(attr.total_events, 3);
        assert_eq!(attr.unattributed, 0);
        assert_eq!(attr.peak_width(), 2);
        // The per-level histograms registered and saw the samples.
        let report = probe.report();
        assert!(report.get("level.L01.eval_ns").is_some());
        assert!(report.get("level.L02.eval_ns").is_some());
    }

    #[test]
    fn events_from_every_track_are_joined() {
        let levels = vec![0, 1, 1];
        let sink = TraceSink::new();
        gate(&sink.track("par.w0"), 1, 2);
        gate(&sink.track("par.w1"), 2, 4);
        // Cone overlap: w1 also evaluated signal 1.
        gate(&sink.track("par.w1"), 1, 2);
        let attr = attribute_levels(&levels, &sink.snapshot(), &Probe::disabled());
        assert_eq!(attr.rows[1].gate_events, 3, "overlap counts each run");
        assert_eq!(attr.rows[1].edges, 8);
    }

    #[test]
    fn foreign_signals_count_as_unattributed() {
        let levels = vec![0, 1];
        let sink = TraceSink::new();
        gate(&sink.track("sim"), 7, 1);
        let attr = attribute_levels(&levels, &sink.snapshot(), &Probe::disabled());
        assert_eq!(attr.total_events, 0);
        assert_eq!(attr.unattributed, 1);
        let rendered = attr.to_string();
        assert!(rendered.contains("unattributed"), "{rendered}");
    }

    #[test]
    fn display_renders_one_row_per_level() {
        let levels = vec![0, 1, 2, 2];
        let sink = TraceSink::new();
        gate(&sink.track("sim"), 1, 1);
        let attr = attribute_levels(&levels, &sink.snapshot(), &Probe::disabled());
        let rendered = attr.to_string();
        for l in ["L0", "L1", "L2"] {
            assert!(rendered.contains(l), "{rendered}");
        }
        assert!(rendered.contains("100.0%"), "{rendered}");
    }

    #[test]
    fn empty_snapshot_attributes_nothing() {
        let attr = attribute_levels(&[0, 0], &TraceSink::new().snapshot(), &Probe::disabled());
        assert_eq!(attr.total_events, 0);
        assert_eq!(attr.total_eval_ns, 0);
        assert_eq!(attr.rows.len(), 1);
        assert_eq!(attr.rows[0].share(attr.total_eval_ns), 0.0);
    }
}
