//! A small, fast, reproducible PRNG for tests, trace generation and
//! benchmarks.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded by
//! expanding a single `u64` through **SplitMix64** — the standard
//! construction that turns an arbitrary (even all-zero) seed into a
//! well-mixed 256-bit state. Not cryptographic; statistically more than
//! adequate for randomized testing and waveform generation, and the
//! stream for a given seed is stable across platforms and releases
//! (per-seed determinism is part of the public contract and is covered
//! by unit tests).

use std::ops::Range;

/// Multiplicative constant of the SplitMix64 output function.
const SPLITMIX_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Advances a SplitMix64 state and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ generator with the `rand`-style convenience
/// surface the workspace uses (`seed_from_u64`, `gen_bool`, `gen_range`).
///
/// # Examples
///
/// ```
/// use mis_testkit::rng::TestRng;
///
/// let mut rng = TestRng::seed_from_u64(42);
/// let x: f64 = rng.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// let mut again = TestRng::seed_from_u64(42);
/// assert_eq!(x, again.gen_range(0.0..1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// A uniform `u64` in `[0, n)` via Lemire's multiply-shift method with
    /// rejection — exactly unbiased.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn gen_u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_u64_below: empty range");
        // 2^64 mod n; multiply-shift outputs below this threshold would be
        // over-represented, so reject and redraw them.
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(n);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform draw from a half-open range; supported for `f64` and the
    /// integer types the workspace samples (see [`SampleRange`]).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// A range that [`TestRng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut TestRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample(self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range: empty f64 range {}..{}",
            self.start,
            self.end
        );
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Floating-point rounding of start + u*(end-start) can land exactly
        // on `end`; nudge one ULP back toward `start` (sign-correct, unlike
        // raw bit decrements, which break for end <= 0).
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty integer range"
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.gen_u64_below(span);
                (self.start as i128 + i128::from(off)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        // SplitMix64 expansion guarantees a non-degenerate state even for
        // seed 0 (all-zero xoshiro state would be a fixed point).
        let mut rng = TestRng::seed_from_u64(0);
        assert_ne!(rng.s, [0; 4]);
        let first: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn stream_is_pinned_across_releases() {
        // Golden values: per-seed determinism is part of the contract
        // relied on by waveform generation; a library change that alters
        // the stream must be deliberate.
        let mut rng = TestRng::seed_from_u64(42);
        assert_eq!(rng.next_u64(), 15021278609987233951);
        assert_eq!(rng.next_u64(), 5881210131331364753);
        assert_eq!(rng.next_u64(), 18149643915985481100);
    }

    #[test]
    fn unit_f64_in_range_and_covers() {
        let mut rng = TestRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = TestRng::seed_from_u64(11);
        for &p in &[0.1, 0.5, 0.9] {
            let hits = (0..20_000).filter(|_| rng.gen_bool(p)).count();
            let freq = hits as f64 / 20_000.0;
            assert!(
                (freq - p).abs() < 0.02,
                "p = {p}: observed frequency {freq}"
            );
        }
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_f64_bounds_and_mean() {
        let mut rng = TestRng::seed_from_u64(5);
        let mut sum = 0.0;
        let n = 50_000;
        for _ in 0..n {
            let v = rng.gen_range(-2.0..6.0);
            assert!((-2.0..6.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean} far from 2.0");
    }

    #[test]
    fn gen_range_integers_hit_every_value() {
        let mut rng = TestRng::seed_from_u64(9);
        let mut counts = [0usize; 7];
        for _ in 0..7_000 {
            counts[rng.gen_range(0usize..7)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 700, "value {i} drawn only {c} times");
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_range_panics() {
        let mut rng = TestRng::seed_from_u64(0);
        let _ = rng.gen_range(1.0..1.0);
    }
}
