//! **mis-testkit** — zero-dependency test infrastructure for the
//! `mis-delay` workspace.
//!
//! The workspace builds and tests in fully offline environments, so the
//! usual external crates are off the table. This crate replaces the three
//! the sources historically relied on:
//!
//! * [`rng`] — a seedable, reproducible PRNG (SplitMix64-seeded
//!   xoshiro256++) covering the `rand` API surface the workspace uses:
//!   [`rng::TestRng::seed_from_u64`], [`rng::TestRng::gen_bool`],
//!   [`rng::TestRng::gen_range`].
//! * [`prop`] — a proptest-style property-test harness: composable
//!   [`prop::Strategy`] input generators, configurable case counts,
//!   failing-input reporting and basic greedy shrinking.
//! * [`mod@bench`] — a criterion-free micro-bench harness: warmup,
//!   auto-calibrated timed iterations, median/p95 statistics and JSON
//!   output for longitudinal `BENCH_*.json` tracking.
//!
//! With the `counting-alloc` feature, `alloc` additionally provides a
//! thread-local counting `#[global_allocator]` wrapper so zero-allocation
//! claims about hot paths are asserted in tests, not eyeballed.
//!
//! # Property-test quickstart
//!
//! ```
//! use mis_testkit::prelude::*;
//!
//! Config::with_cases(128).run(&(0.0..10.0f64, any_bool()), |&(x, up)| {
//!     let y = if up { x + 1.0 } else { x };
//!     prop_assert!(y >= x, "transform must not decrease: {y} < {x}");
//!     Ok(())
//! });
//! ```

#![deny(missing_docs)]
// `unsafe` is forbidden everywhere except the opt-in counting-allocator
// module, which must implement `GlobalAlloc` (an `unsafe` trait); that
// module carries its own narrowly scoped `#[allow(unsafe_code)]`.
#![cfg_attr(not(feature = "counting-alloc"), forbid(unsafe_code))]
#![cfg_attr(feature = "counting-alloc", deny(unsafe_code))]

#[cfg(feature = "counting-alloc")]
pub mod alloc;
pub mod bench;
pub mod prop;
pub mod rng;

/// The common imports for writing property tests.
pub mod prelude {
    pub use crate::prop::{any_bool, oneof, select, vec, CaseError, CaseResult, Config, Strategy};
    pub use crate::rng::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
}
