//! Thread-local allocation counting, so "this hot path performs zero
//! heap allocations" is an *asserted* property rather than an eyeballed
//! one. Only compiled with the `counting-alloc` feature — the one module
//! of the testkit that needs `unsafe` (implementing
//! [`std::alloc::GlobalAlloc`]).
//!
//! # Usage
//!
//! The counter only observes allocations when [`CountingAllocator`] is
//! installed as the global allocator of the *test binary* (integration
//! tests are separate binaries, so installing it there leaves every other
//! target on the system allocator):
//!
//! ```ignore
//! use mis_testkit::alloc::{self, CountingAllocator};
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//!
//! #[test]
//! fn steady_state_is_allocation_free() {
//!     warm_up();
//!     let (allocations, _) = alloc::count_in(|| hot_path());
//!     assert_eq!(allocations, 0);
//! }
//! ```
//!
//! Counters are per-thread, so concurrently running tests do not pollute
//! each other's counts. [`count_in`] first verifies — via a canary
//! allocation — that the counting allocator is actually installed, and
//! panics otherwise: a zero-allocation assertion that silently counted
//! nothing would always pass.
//!
//! # Thread scope
//!
//! Thread-locality cuts both ways and is the *intended* semantics: a
//! [`count_in`] assertion is **serial-scoped** — it observes exactly the
//! allocations of the closure on the calling thread. Work the closure
//! fans out to other threads (e.g. the `mis-sim` parallel engine's
//! scoped workers) is invisible to the count, apart from the spawn
//! machinery itself, which allocates on the calling thread. Zero-
//! allocation guarantees in this workspace are therefore claims about
//! *serial* hot paths; asserting one across a multi-threaded region
//! would be vacuous by construction, not a measurement. (Asserted in
//! `crates/sim/tests/alloc.rs`.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// A `#[global_allocator]` wrapper around [`System`] that bumps
/// thread-local counters on every allocation and deallocation.
pub struct CountingAllocator;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static DEALLOCS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn bump(counter: &'static std::thread::LocalKey<Cell<u64>>) {
    // `try_with`: counting must never abort a thread that is tearing
    // down its TLS while the runtime frees memory.
    let _ = counter.try_with(|c| c.set(c.get() + 1));
}

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(&ALLOCS);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump(&ALLOCS);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc acquires fresh storage (even when it grows in place
        // it *may* move): count it as an allocation — the steady-state
        // claim is "no Vec ever outgrows its warmed capacity".
        bump(&ALLOCS);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        bump(&DEALLOCS);
        System.dealloc(ptr, layout)
    }
}

/// Number of allocations (alloc, `alloc_zeroed`, realloc) observed on
/// this thread since it started.
#[must_use]
pub fn thread_allocations() -> u64 {
    ALLOCS.with(Cell::get)
}

/// Number of deallocations observed on this thread since it started.
#[must_use]
pub fn thread_deallocations() -> u64 {
    DEALLOCS.with(Cell::get)
}

/// Runs `f` and returns `(allocations, result)` where `allocations` is
/// the number of heap allocations `f` performed on this thread.
///
/// # Panics
///
/// Panics when [`CountingAllocator`] is not installed as the global
/// allocator of the current binary — without it the count would be a
/// vacuous zero.
pub fn count_in<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let canary_before = thread_allocations();
    drop(std::hint::black_box(Box::new(0u8)));
    assert!(
        thread_allocations() > canary_before,
        "CountingAllocator is not installed: add `#[global_allocator] static A: \
         CountingAllocator = CountingAllocator;` to the test binary"
    );
    let before = thread_allocations();
    let result = f();
    (thread_allocations() - before, result)
}
