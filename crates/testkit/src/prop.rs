//! A small proptest-style property-testing harness.
//!
//! A property test draws many random inputs from a [`Strategy`], runs an
//! assertion closure on each, and — on failure — greedily shrinks the
//! offending input before reporting it. Compared to the `proptest` crate
//! this harness is deliberately minimal (no persistence files, no
//! regression corpus, shrinking is best-effort), but it is dependency-free
//! and fully deterministic: the default seed is fixed, so an offline CI
//! run is reproducible bit-for-bit.
//!
//! # Writing a test
//!
//! ```
//! use mis_testkit::prelude::*;
//!
//! #[derive(Debug, Clone)]
//! struct P(f64);
//!
//! Config::with_cases(64).run(
//!     &(0.1..5.0f64).prop_map(P),
//!     |p| {
//!         prop_assert!(p.0 > 0.0, "constructor must stay positive");
//!         Ok(())
//!     },
//! );
//! ```

use std::fmt::Debug;
use std::ops::Range;

use crate::rng::TestRng;

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum CaseError {
    /// The drawn input is outside the property's domain
    /// (see [`prop_assume!`](crate::prop_assume)); draw another.
    Reject,
    /// The property is false for this input; the message describes how.
    Fail(String),
}

/// The outcome of one property evaluation.
pub type CaseResult = Result<(), CaseError>;

/// A generator of random test inputs, with optional shrinking.
pub trait Strategy {
    /// The input type this strategy produces.
    type Value: Debug + Clone;

    /// Draws one random value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes candidate "smaller" values for a failing input, all within
    /// the strategy's domain. An empty list ends shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transforms generated values with `f` (shrinking does not propagate
    /// through the mapping).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug + Clone,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type, for heterogeneous collections
    /// such as [`oneof`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug + Clone> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value != self.start {
            out.push(self.start);
            let mid = self.start + (value - self.start) / 2.0;
            if mid != *value && mid != self.start {
                out.push(mid);
            }
        }
        out
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value != self.start {
                    out.push(self.start);
                    let mid = self.start + (value - self.start) / 2;
                    if mid != *value && mid != self.start {
                        out.push(mid);
                    }
                    // Halving can jump past the pass/fail boundary; the
                    // predecessor guarantees convergence to the minimal
                    // failing value.
                    if *value - 1 != mid && *value - 1 != self.start {
                        out.push(*value - 1);
                    }
                }
                out
            }
        }
    )*};
}

impl_int_strategy!(u32, u64, usize, i32, i64);

/// A fair coin. Shrinks `true` to `false`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

/// Uniformly random booleans (the equivalent of proptest's `any::<bool>()`).
#[must_use]
pub fn any_bool() -> AnyBool {
    AnyBool
}

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug + Clone,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

/// Draws uniformly from a fixed list of values; shrinks toward the first
/// item (the equivalent of proptest's `prop::sample::select`).
///
/// # Panics
///
/// Panics when `items` is empty.
#[must_use]
pub fn select<T: Debug + Clone + PartialEq>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select: no items");
    Select { items }
}

impl<T: Debug + Clone + PartialEq> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.items[rng.gen_range(0..self.items.len())].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        if self.items[0] != *value {
            vec![self.items[0].clone()]
        } else {
            Vec::new()
        }
    }
}

/// See [`oneof`].
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

/// Each sample picks one of `choices` uniformly and draws from it (the
/// equivalent of proptest's `prop_oneof!`).
///
/// # Panics
///
/// Panics when `choices` is empty.
#[must_use]
pub fn oneof<T: Debug + Clone>(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!choices.is_empty(), "oneof: no choices");
    OneOf { choices }
}

impl<T: Debug + Clone> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.choices[rng.gen_range(0..self.choices.len())].sample(rng)
    }

    // No shrinking: the generating branch is unknown, and another branch's
    // shrinks could propose values outside every branch's domain (e.g. the
    // midpoint between two disjoint ranges), which would violate the
    // `Strategy::shrink` in-domain contract.
}

/// Length specification for [`fn@vec`]: an exact `usize` or a half-open
/// `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct LenRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for LenRange {
    fn from(n: usize) -> Self {
        LenRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for LenRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec: empty length range");
        LenRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// See [`fn@vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: LenRange,
}

/// Vectors of values from `elem`, with length drawn from `len` (the
/// equivalent of proptest's `prop::collection::vec`).
#[must_use]
pub fn vec<S: Strategy>(elem: S, len: impl Into<LenRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        len: len.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.len.hi - self.len.lo <= 1 {
            self.len.lo
        } else {
            rng.gen_range(self.len.lo..self.len.hi)
        };
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Shorter first: drop the tail, then drop one element.
        if value.len() > self.len.lo {
            out.push(value[..self.len.lo].to_vec());
            let mut popped = value.clone();
            popped.pop();
            if popped.len() > self.len.lo {
                out.push(popped);
            }
        }
        // Then element-wise: first shrink candidate at each position.
        for (i, v) in value.iter().enumerate() {
            if let Some(s) = self.elem.shrink(v).into_iter().next() {
                let mut next = value.clone();
                next[i] = s;
                out.push(next);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $v:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/a/0, B/b/1)
    (A/a/0, B/b/1, C/c/2)
    (A/a/0, B/b/1, C/c/2, D/d/3)
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4)
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5)
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5, G/g/6)
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5, G/g/6, H/h/7)
}

/// Property-runner configuration: case count, seed, reject and shrink
/// budgets.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required (proptest's default is 256).
    pub cases: u32,
    /// PRNG seed. Fixed by default so offline CI is reproducible;
    /// override via the `TESTKIT_SEED` environment variable or
    /// [`Config::seed`].
    pub seed: u64,
    /// Total rejected draws tolerated before the run aborts.
    pub max_rejects: u32,
    /// Upper bound on property evaluations spent shrinking a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var("TESTKIT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x006d_6973_5f74_6573_u64);
        Config {
            cases: 256,
            seed,
            max_rejects: 20_000,
            max_shrink_steps: 400,
        }
    }
}

impl Config {
    /// A default configuration requiring `cases` passing cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Overrides the PRNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs `property` on `self.cases` inputs drawn from `strategy`.
    ///
    /// A panic inside the property (e.g. an `.unwrap()` on a model error)
    /// is caught and treated as a failing case, so the report still names
    /// the offending input and shrinking still runs.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) when the property fails
    /// for some input — the report names the original and the shrunk
    /// offending input plus the seed to reproduce — or when the reject
    /// budget is exhausted.
    pub fn run<S, P>(&self, strategy: &S, property: P)
    where
        S: Strategy,
        P: Fn(&S::Value) -> CaseResult,
    {
        let mut rng = TestRng::seed_from_u64(self.seed);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        while passed < self.cases {
            let input = strategy.sample(&mut rng);
            match eval(&property, &input) {
                Ok(()) => passed += 1,
                Err(CaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= self.max_rejects,
                        "property rejected {} inputs (passed {passed}/{} cases); \
                         the assume-condition is too narrow for its strategy",
                        rejected,
                        self.cases
                    );
                }
                Err(CaseError::Fail(msg)) => {
                    let report = self.shrink_report(strategy, &property, input, msg, passed);
                    panic!("{report}");
                }
            }
        }
    }

    /// Greedily shrinks a failing input and formats the failure report.
    fn shrink_report<S, P>(
        &self,
        strategy: &S,
        property: &P,
        original: S::Value,
        original_msg: String,
        passed: u32,
    ) -> String
    where
        S: Strategy,
        P: Fn(&S::Value) -> CaseResult,
    {
        let mut best = original.clone();
        let mut best_msg = original_msg.clone();
        let mut steps: u32 = 0;
        'shrinking: while steps < self.max_shrink_steps {
            for cand in strategy.shrink(&best) {
                steps += 1;
                if let Err(CaseError::Fail(msg)) = eval(property, &cand) {
                    best = cand;
                    best_msg = msg;
                    continue 'shrinking; // restart from the smaller input
                }
                if steps >= self.max_shrink_steps {
                    break;
                }
            }
            break;
        }
        format!(
            "property failed after {passed} passing case(s) [seed = {:#x}]\n\
             -- original input: {:?}\n\
             -- original error: {}\n\
             -- shrunk input ({} shrink evals): {:?}\n\
             -- shrunk error: {}",
            self.seed, original, original_msg, steps, best, best_msg
        )
    }
}

/// Evaluates a property on one input, converting a panic (e.g. a failed
/// `.unwrap()` in the property body) into a failing case so the runner
/// can still report and shrink the offending input.
fn eval<V, P>(property: &P, input: &V) -> CaseResult
where
    P: Fn(&V) -> CaseResult,
{
    // Silence the default panic hook for the duration of the call: a
    // failing property panics once per shrink candidate, and hundreds of
    // "thread panicked" backtraces would bury the actual shrink report.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(input)));
    std::panic::set_hook(prev_hook);
    match outcome {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            Err(CaseError::Fail(format!("property panicked: {msg}")))
        }
    }
}

/// Fails the current case when `cond` is false; an optional trailing
/// format string is appended to the report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::prop::CaseError::Fail(format!(
                "{} is false ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::CaseError::Fail(format!(
                "{} is false ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "{} != {}: {:?} vs {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "{} != {}: {:?} vs {:?} — {}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "{} == {}: both {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Rejects the current case (without failing) when `cond` is false: the
/// input is outside the property's domain and another is drawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::prop::CaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        let counter = std::cell::Cell::new(0u32);
        Config::with_cases(100).run(&(0.0..1.0f64), |x| {
            counter.set(counter.get() + 1);
            prop_assert!((0.0..1.0).contains(x));
            Ok(())
        });
        seen += counter.get();
        assert_eq!(seen, 100);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let collect = |seed| {
            let vals = std::cell::RefCell::new(Vec::new());
            Config::with_cases(20).seed(seed).run(&(0.0..1.0f64), |x| {
                vals.borrow_mut().push(*x);
                Ok(())
            });
            vals.into_inner()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    fn failure_report_names_offending_input() {
        // A deliberately falsified property: fails for x >= 25.
        let err = std::panic::catch_unwind(|| {
            Config::with_cases(256).run(&(0u64..1000), |&x| {
                prop_assert!(x < 25, "x = {x} is too big");
                Ok(())
            });
        })
        .expect_err("the falsified property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is the report");
        assert!(msg.contains("property failed"), "report: {msg}");
        assert!(msg.contains("shrunk input"), "report: {msg}");
        assert!(msg.contains("is too big"), "report: {msg}");
        // Greedy shrinking on u64 ranges converges to the boundary.
        assert!(
            msg.contains("shrunk input (") && msg.contains(": 25"),
            "report: {msg}"
        );
    }

    #[test]
    fn panicking_property_is_reported_with_its_input() {
        // An .unwrap()-style panic inside the property must not escape the
        // runner raw: it becomes a failing case with the input named.
        let err = std::panic::catch_unwind(|| {
            Config::with_cases(64).run(&(0u64..100), |&x| {
                assert!(x < 30, "boom at {x}");
                Ok(())
            });
        })
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("property panicked"), "report: {msg}");
        assert!(msg.contains("boom at"), "report: {msg}");
        assert!(msg.contains("shrunk input"), "report: {msg}");
    }

    #[test]
    fn negative_and_zero_ended_ranges_stay_half_open() {
        let mut rng = TestRng::seed_from_u64(17);
        for _ in 0..20_000 {
            let v = rng.gen_range(-1.0..0.0);
            assert!((-1.0..0.0).contains(&v), "out of range: {v}");
            let w = rng.gen_range(-20.0..-0.1);
            assert!((-20.0..-0.1).contains(&w), "out of range: {w}");
        }
        // The rounding nudge itself must step toward the range start.
        assert!(0.0f64.next_down() < 0.0);
        assert!((-0.1f64).next_down() < -0.1);
    }

    #[test]
    fn oneof_does_not_shrink_out_of_domain() {
        // Disjoint branches: shrinking must never propose a value (like
        // the midpoint -1.5) that neither branch can generate.
        let s = oneof(vec![(-10.0..-5.0f64).boxed(), (5.0..10.0f64).boxed()]);
        assert!(s.shrink(&7.0).is_empty());
    }

    #[test]
    fn shrinking_respects_strategy_domain() {
        // Inputs come from 10..100; shrinks must never leave that range,
        // so the reported minimum is the range start, not 0.
        let err = std::panic::catch_unwind(|| {
            Config::with_cases(64).run(&(10u64..100), |&x| {
                prop_assert!(false, "always fails, x = {x}");
                Ok(())
            });
        })
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains(": 10"), "should shrink to range start: {msg}");
    }

    #[test]
    fn assume_rejects_without_failing() {
        Config::with_cases(50).run(&(0.0..1.0f64), |&x| {
            prop_assume!(x < 0.9);
            prop_assert!(x < 0.9);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "assume-condition is too narrow")]
    fn unsatisfiable_assume_aborts() {
        Config::with_cases(10).run(&(0.0..1.0f64), |&x| {
            prop_assume!(x > 2.0);
            Ok(())
        });
    }

    #[test]
    fn vec_strategy_respects_length_spec() {
        Config::with_cases(100).run(&vec(0.0..1.0f64, 0..8), |v| {
            prop_assert!(v.len() < 8);
            Ok(())
        });
        Config::with_cases(20).run(&vec(0.0..1.0f64, 5usize), |v| {
            prop_assert_eq!(v.len(), 5);
            Ok(())
        });
    }

    #[test]
    fn oneof_and_select_stay_in_domain() {
        Config::with_cases(200).run(
            &oneof(vec![(-10.0..-5.0f64).boxed(), (5.0..10.0f64).boxed()]),
            |&x| {
                prop_assert!((-10.0..-5.0).contains(&x) || (5.0..10.0).contains(&x));
                Ok(())
            },
        );
        Config::with_cases(50).run(&select(std::vec![1u64, 3, 7]), |&x| {
            prop_assert!(x == 1 || x == 3 || x == 7);
            Ok(())
        });
    }

    #[test]
    fn map_applies_transform() {
        Config::with_cases(50).run(&(1.0..2.0f64).prop_map(|x| x * x), |&y| {
            prop_assert!((1.0..4.0).contains(&y));
            Ok(())
        });
    }

    #[test]
    fn tuple_shrink_components_stay_in_range() {
        let s = (5.0..6.0f64, 10u64..20, any_bool());
        let mut rng = TestRng::seed_from_u64(1);
        let v = s.sample(&mut rng);
        for cand in s.shrink(&v) {
            assert!((5.0..6.0).contains(&cand.0));
            assert!((10..20).contains(&cand.1));
        }
    }
}
