//! A criterion-free micro-benchmark harness.
//!
//! Each benchmark is calibrated (iterations per sample sized so one
//! sample takes roughly [`BenchOptions::target_sample_time`]), warmed up,
//! then timed over [`BenchOptions::sample_count`] samples. Reported
//! statistics are per-iteration nanoseconds: mean, median, p95, min, max.
//!
//! Results print as an aligned table and are additionally emitted as JSON
//! — both to stdout and to a `BENCH_<name>.json` file — so successive
//! runs can be tracked longitudinally.
//!
//! ```no_run
//! use mis_testkit::bench::{black_box, Harness};
//!
//! let mut h = Harness::from_args("example");
//! h.bench("sum_1000", || (0..1000u64).fold(0, |a, b| black_box(a + b)));
//! h.finish();
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Time spent running the routine before measurement begins.
    pub warmup_time: Duration,
    /// Number of timed samples per benchmark.
    pub sample_count: usize,
    /// Desired wall-clock duration of one sample; iterations per sample
    /// are calibrated to hit it.
    pub target_sample_time: Duration,
    /// Upper bound on iterations per sample (also bounds the number of
    /// pre-built inputs a batched benchmark holds in memory).
    pub max_iters_per_sample: u64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            warmup_time: Duration::from_millis(300),
            sample_count: 30,
            target_sample_time: Duration::from_millis(5),
            max_iters_per_sample: 4096,
        }
    }
}

impl BenchOptions {
    /// CI-scale options: one short warmup, few samples.
    #[must_use]
    pub fn quick() -> Self {
        BenchOptions {
            warmup_time: Duration::from_millis(20),
            sample_count: 10,
            target_sample_time: Duration::from_millis(1),
            max_iters_per_sample: 512,
        }
    }
}

/// Per-iteration timing statistics of one benchmark, in nanoseconds.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Iterations timed per sample (calibration result).
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Median over samples.
    pub median_ns: f64,
    /// 95th percentile over samples.
    pub p95_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

impl Stats {
    /// Computes statistics from per-sample totals.
    ///
    /// # Panics
    ///
    /// Panics when `sample_totals` is empty or `iters_per_sample` is 0.
    #[must_use]
    pub fn from_sample_totals(sample_totals: &[Duration], iters_per_sample: u64) -> Self {
        assert!(!sample_totals.is_empty() && iters_per_sample > 0);
        let mut per_iter: Vec<f64> = sample_totals
            .iter()
            .map(|d| d.as_secs_f64() * 1e9 / iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = per_iter.len();
        Stats {
            iters_per_sample,
            samples: n,
            mean_ns: per_iter.iter().sum::<f64>() / n as f64,
            median_ns: percentile(&per_iter, 50.0),
            p95_ns: percentile(&per_iter, 95.0),
            min_ns: per_iter[0],
            max_ns: per_iter[n - 1],
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// One named benchmark and its statistics.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark identifier (unique within a harness).
    pub id: String,
    /// Measured statistics.
    pub stats: Stats,
}

/// Collects and reports a group of benchmarks.
#[derive(Debug)]
pub struct Harness {
    name: String,
    opts: BenchOptions,
    quick: bool,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates a harness with explicit options.
    #[must_use]
    pub fn new(name: &str, opts: BenchOptions) -> Self {
        Harness {
            name: name.to_owned(),
            opts,
            quick: false,
            filter: None,
            results: Vec::new(),
        }
    }

    /// Creates a harness configured from the command line and environment,
    /// the entry point for `harness = false` bench targets.
    ///
    /// Recognized: `--quick` (or env `TESTKIT_BENCH_QUICK=1`) for CI-scale
    /// runs, and a positional substring filter for benchmark ids. Flags
    /// cargo passes through (e.g. `--bench`) are ignored.
    #[must_use]
    pub fn from_args(name: &str) -> Self {
        let mut quick = std::env::var("TESTKIT_BENCH_QUICK").is_ok_and(|v| v != "0");
        let mut filter = None;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--quick" => quick = true,
                s if !s.starts_with('-') => filter = Some(s.to_owned()),
                _ => {}
            }
        }
        let opts = if quick {
            BenchOptions::quick()
        } else {
            BenchOptions::default()
        };
        let mut h = Harness::new(name, opts);
        h.quick = quick;
        h.filter = filter;
        h
    }

    /// Whether `id` passes the command-line filter.
    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Benchmarks `routine` called back-to-back.
    pub fn bench<R>(&mut self, id: &str, mut routine: impl FnMut() -> R) {
        if !self.selected(id) {
            return;
        }
        let iters = self.calibrate(&mut routine);
        // Warmup.
        let start = Instant::now();
        while start.elapsed() < self.opts.warmup_time {
            black_box(routine());
        }
        // Timed samples.
        let totals: Vec<Duration> = (0..self.opts.sample_count)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                t0.elapsed()
            })
            .collect();
        self.push(id, Stats::from_sample_totals(&totals, iters));
    }

    /// Benchmarks `routine` with a fresh input per call; `setup` runs
    /// outside the timed region (the equivalent of criterion's
    /// `iter_batched`).
    pub fn bench_batched<I, R>(
        &mut self,
        id: &str,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        if !self.selected(id) {
            return;
        }
        let mut with_setup = || routine(setup());
        let iters = self.calibrate(&mut with_setup);
        let start = Instant::now();
        while start.elapsed() < self.opts.warmup_time {
            black_box(routine(setup()));
        }
        let totals: Vec<Duration> = (0..self.opts.sample_count)
            .map(|_| {
                let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
                let t0 = Instant::now();
                for input in inputs {
                    black_box(routine(input));
                }
                t0.elapsed()
            })
            .collect();
        self.push(id, Stats::from_sample_totals(&totals, iters));
    }

    /// Sizes iterations-per-sample so one sample lasts about
    /// `target_sample_time`. (For batched benchmarks calibration times
    /// setup + routine, slightly under-filling the sample — harmless, the
    /// reported per-iteration figures come from the timed region only.)
    fn calibrate<R>(&self, routine: &mut impl FnMut() -> R) -> u64 {
        let mut n: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.opts.target_sample_time / 2 || n >= self.opts.max_iters_per_sample {
                let per_iter = elapsed.as_secs_f64() / n as f64;
                let target = self.opts.target_sample_time.as_secs_f64();
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let ideal = (target / per_iter.max(1e-9)).ceil() as u64;
                return ideal.clamp(1, self.opts.max_iters_per_sample);
            }
            n = n.saturating_mul(2);
        }
    }

    fn push(&mut self, id: &str, stats: Stats) {
        println!(
            "{:<40} median {:>12.1} ns   p95 {:>12.1} ns   ({} iters x {} samples)",
            format!("{}/{}", self.name, id),
            stats.median_ns,
            stats.p95_ns,
            stats.iters_per_sample,
            stats.samples
        );
        self.results.push(BenchResult {
            id: id.to_owned(),
            stats,
        });
    }

    /// Renders all results as a JSON document (schema:
    /// `{"bench", "mode": "quick"|"full", "results": [{"id",
    /// "iters_per_sample", "samples", "mean_ns", "median_ns", "p95_ns",
    /// "min_ns", "max_ns"}]}`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(s, "\"bench\":{}", json_string(&self.name));
        let _ = write!(
            s,
            ",\"mode\":\"{}\"",
            if self.quick { "quick" } else { "full" }
        );
        s.push_str(",\"results\":[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"id\":{},\"iters_per_sample\":{},\"samples\":{},\
                 \"mean_ns\":{},\"median_ns\":{},\"p95_ns\":{},\
                 \"min_ns\":{},\"max_ns\":{}}}",
                json_string(&r.id),
                r.stats.iters_per_sample,
                r.stats.samples,
                json_f64(r.stats.mean_ns),
                json_f64(r.stats.median_ns),
                json_f64(r.stats.p95_ns),
                json_f64(r.stats.min_ns),
                json_f64(r.stats.max_ns),
            );
        }
        s.push_str("]}");
        s
    }

    /// Prints the JSON report to stdout and writes `BENCH_<name>.json`,
    /// returning the collected results.
    ///
    /// The file lands in `TESTKIT_BENCH_DIR` when set, else the workspace
    /// root (two levels above the bench crate's `CARGO_MANIFEST_DIR`),
    /// else the current directory. Filtered runs never write a file (a
    /// partial id set would shadow the full result set wherever it
    /// lands). Quick runs skip the file too, so a low-resolution result
    /// set never clobbers the full longitudinal baseline — **unless**
    /// `TESTKIT_BENCH_DIR` is set explicitly: an explicit directory is a
    /// scratch target (CI regression checks diff quick-mode output there
    /// against the committed baseline), not the baseline itself.
    pub fn finish(self) -> Vec<BenchResult> {
        let json = self.to_json();
        println!("{json}");
        let explicit_dir = std::env::var("TESTKIT_BENCH_DIR").ok();
        // A filtered run is always partial: writing it anywhere would
        // shadow ids of the full result set, so it never produces a file.
        if let Some(f) = &self.filter {
            println!("filter {f:?} active: not writing BENCH_{}.json", self.name);
            return self.results;
        }
        if self.quick && explicit_dir.is_none() {
            println!(
                "quick mode: not overwriting BENCH_{}.json (its baseline uses full sampling)",
                self.name
            );
            return self.results;
        }
        let dir = explicit_dir
            .or_else(|| {
                std::env::var("CARGO_MANIFEST_DIR")
                    .ok()
                    .map(|m| format!("{m}/../.."))
            })
            .unwrap_or_else(|| String::from("."));
        let path = format!("{dir}/BENCH_{}.json", self.name);
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
        self.results
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a timing as JSON (finite; fixed precision keeps files diffable).
fn json_f64(v: f64) -> String {
    assert!(v.is_finite(), "non-finite timing statistic");
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> BenchOptions {
        BenchOptions {
            warmup_time: Duration::from_micros(200),
            sample_count: 5,
            target_sample_time: Duration::from_micros(200),
            max_iters_per_sample: 64,
        }
    }

    #[test]
    fn stats_of_constant_samples_are_flat() {
        let totals = vec![Duration::from_micros(100); 8];
        let s = Stats::from_sample_totals(&totals, 100);
        assert!((s.mean_ns - 1000.0).abs() < 1e-6);
        assert_eq!(s.median_ns, 1000.0);
        assert_eq!(s.p95_ns, 1000.0);
        assert_eq!(s.min_ns, s.max_ns);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let totals: Vec<Duration> = (1..=10).map(Duration::from_nanos).collect();
        let s = Stats::from_sample_totals(&totals, 1);
        assert_eq!(s.median_ns, 5.0);
        assert_eq!(s.p95_ns, 10.0);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 10.0);
    }

    #[test]
    fn harness_runs_and_orders_results() {
        let mut h = Harness::new("selftest", tiny_opts());
        h.bench("fast", || black_box(1u64 + 1));
        h.bench_batched("batched", || vec![1u64; 64], |v| v.iter().sum::<u64>());
        assert_eq!(h.results.len(), 2);
        assert_eq!(h.results[0].id, "fast");
        assert!(h.results.iter().all(|r| r.stats.median_ns > 0.0));
        assert!(h
            .results
            .iter()
            .all(|r| r.stats.min_ns <= r.stats.median_ns && r.stats.median_ns <= r.stats.max_ns));
    }

    #[test]
    fn json_schema_has_all_keys() {
        let mut h = Harness::new("schema \"check\"", tiny_opts());
        h.bench("a", || black_box(0u8));
        let json = h.to_json();
        for key in [
            "\"bench\":",
            "\"mode\":",
            "\"results\":",
            "\"id\":",
            "\"iters_per_sample\":",
            "\"samples\":",
            "\"mean_ns\":",
            "\"median_ns\":",
            "\"p95_ns\":",
            "\"min_ns\":",
            "\"max_ns\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The quoted name must be escaped into valid JSON.
        assert!(json.contains("schema \\\"check\\\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn filter_skips_unmatched_ids() {
        let mut h = Harness::new("filtered", tiny_opts());
        h.filter = Some(String::from("keep"));
        h.bench("keep_this", || black_box(1u8));
        h.bench("drop_this", || black_box(1u8));
        assert_eq!(h.results.len(), 1);
        assert_eq!(h.results[0].id, "keep_this");
    }
}
