//! Interpolated delay-surface tables.
//!
//! A [`DelaySurface`] stores one characterized MIS delay curve `δ(Δ)` on a
//! non-uniform, refinement-chosen Δ grid and reconstructs intermediate
//! values with a *monotone* cubic (PCHIP, [`mis_num::interp`]). Shape
//! preservation is what keeps the reconstruction physical: the curve has a
//! sharp extremum near `Δ = 0`, and the interpolant never under- or
//! overshoots past the characterized samples — in particular it cannot dip
//! below the minimum delay `δ_min`-shifted floor of the table.
//!
//! A [`SurfaceFamily`] stacks several surfaces indexed by a frozen
//! internal-node voltage (the `V_N` the gate held when mode `(1,1)` was
//! entered), linearly interpolated between slices. A family with a single
//! slice is state-independent (the falling NOR side).

use mis_num::interp::MonotoneCubic;

use crate::CharError;

/// One characterized delay curve `δ(Δ)` with monotone-cubic
/// reconstruction and clamped (constant) extrapolation beyond the grid —
/// outside the characterized range the curve has saturated to its SIS
/// limits, so the boundary ordinate is the physically correct answer.
#[derive(Debug, Clone, PartialEq)]
pub struct DelaySurface {
    curve: MonotoneCubic,
}

impl DelaySurface {
    /// Builds a surface from `(Δ, δ)` samples. `deltas` must be strictly
    /// increasing and everything finite; at least two samples.
    ///
    /// # Errors
    ///
    /// Returns [`CharError::Num`] for invalid tables.
    pub fn from_samples(deltas: Vec<f64>, delays: Vec<f64>) -> Result<Self, CharError> {
        Ok(DelaySurface {
            curve: MonotoneCubic::new(deltas, delays)?,
        })
    }

    /// The interpolated delay at input separation `delta`, in seconds.
    #[must_use]
    pub fn eval(&self, delta: f64) -> f64 {
        self.curve.eval(delta)
    }

    /// The characterized separations.
    #[must_use]
    pub fn deltas(&self) -> &[f64] {
        self.curve.xs()
    }

    /// The characterized delays.
    #[must_use]
    pub fn delays(&self) -> &[f64] {
        self.curve.ys()
    }

    /// Number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.curve.xs().len()
    }

    /// Whether the table is empty (never true for a constructed surface).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.curve.xs().is_empty()
    }

    /// The characterized `Δ` range `(lo, hi)`.
    #[must_use]
    pub fn delta_range(&self) -> (f64, f64) {
        let xs = self.curve.xs();
        (xs[0], xs[xs.len() - 1])
    }

    /// The sample extrema `(min δ, max δ)` of the table. Because the
    /// monotone-cubic reconstruction never under- or overshoots past its
    /// samples and extrapolation clamps to the boundary ordinates, these
    /// bound [`DelaySurface::eval`] over **all** inputs — the per-cell
    /// delay bounds static timing analysis propagates.
    #[must_use]
    pub fn delay_bounds(&self) -> (f64, f64) {
        let ys = self.curve.ys();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &y in ys {
            lo = lo.min(y);
            hi = hi.max(y);
        }
        (lo, hi)
    }
}

/// A stack of [`DelaySurface`] slices indexed by a frozen internal-node
/// voltage, with linear interpolation between slices and clamping outside
/// the characterized voltage range.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceFamily {
    /// Strictly increasing slice voltages, in volts.
    voltages: Vec<f64>,
    /// One surface per voltage.
    slices: Vec<DelaySurface>,
}

impl SurfaceFamily {
    /// Builds a family. `voltages` must be strictly increasing and match
    /// `slices` in length; a single slice makes the family
    /// state-independent.
    ///
    /// # Errors
    ///
    /// Returns [`CharError::InvalidInput`] on mismatched or unordered
    /// inputs.
    pub fn new(voltages: Vec<f64>, slices: Vec<DelaySurface>) -> Result<Self, CharError> {
        if voltages.is_empty() || voltages.len() != slices.len() {
            return Err(CharError::InvalidInput {
                reason: format!(
                    "family needs matching non-empty voltage/slice lists ({} vs {})",
                    voltages.len(),
                    slices.len()
                ),
            });
        }
        if voltages.windows(2).any(|w| !(w[1] > w[0])) {
            return Err(CharError::InvalidInput {
                reason: "family voltages not strictly increasing".into(),
            });
        }
        if voltages.iter().any(|v| !v.is_finite()) {
            return Err(CharError::InvalidInput {
                reason: "non-finite family voltage".into(),
            });
        }
        Ok(SurfaceFamily { voltages, slices })
    }

    /// A single-slice (state-independent) family.
    ///
    /// # Errors
    ///
    /// Never fails for a constructed surface; the `Result` mirrors
    /// [`SurfaceFamily::new`].
    pub fn single(surface: DelaySurface) -> Result<Self, CharError> {
        SurfaceFamily::new(vec![0.0], vec![surface])
    }

    /// The interpolated delay at separation `delta` for a frozen
    /// internal-node voltage `v` (ignored by single-slice families;
    /// clamped to the characterized voltage range otherwise).
    #[must_use]
    pub fn eval(&self, delta: f64, v: f64) -> f64 {
        let n = self.voltages.len();
        if n == 1 || v <= self.voltages[0] {
            return self.slices[0].eval(delta);
        }
        if v >= self.voltages[n - 1] {
            return self.slices[n - 1].eval(delta);
        }
        let hi = self.voltages.partition_point(|&x| x <= v);
        let lo = hi - 1;
        let t = (v - self.voltages[lo]) / (self.voltages[hi] - self.voltages[lo]);
        let a = self.slices[lo].eval(delta);
        let b = self.slices[hi].eval(delta);
        a + t * (b - a)
    }

    /// The slice voltages.
    #[must_use]
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// The slices, parallel to [`SurfaceFamily::voltages`].
    #[must_use]
    pub fn slices(&self) -> &[DelaySurface] {
        &self.slices
    }

    /// The common characterized `Δ` range (intersection over slices).
    #[must_use]
    pub fn delta_range(&self) -> (f64, f64) {
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        for s in &self.slices {
            let (a, b) = s.delta_range();
            lo = lo.max(a);
            hi = hi.min(b);
        }
        (lo, hi)
    }

    /// The sample extrema `(min δ, max δ)` over every slice. The voltage
    /// blend is a convex combination of two slice evaluations and each
    /// slice evaluation stays within its own sample extrema (see
    /// [`DelaySurface::delay_bounds`]), so these bound
    /// [`SurfaceFamily::eval`] over all `(Δ, v)`.
    #[must_use]
    pub fn delay_bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in &self.slices {
            let (a, b) = s.delay_bounds();
            lo = lo.min(a);
            hi = hi.max(b);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vee(offset: f64) -> DelaySurface {
        let deltas = vec![-2.0, -1.0, 0.0, 1.0, 2.0];
        let delays = deltas.iter().map(|d: &f64| d.abs() + offset).collect();
        DelaySurface::from_samples(deltas, delays).unwrap()
    }

    #[test]
    fn surface_interpolates_and_clamps() {
        let s = vee(1.0);
        assert_eq!(s.eval(0.0), 1.0);
        assert_eq!(s.eval(-5.0), 3.0, "clamped to the left boundary");
        assert_eq!(s.eval(9.0), 3.0, "clamped to the right boundary");
        assert!(s.eval(0.5) >= 1.0, "monotone interpolant never undershoots");
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.delta_range(), (-2.0, 2.0));
    }

    #[test]
    fn surface_rejects_bad_tables() {
        assert!(DelaySurface::from_samples(vec![0.0], vec![1.0]).is_err());
        assert!(DelaySurface::from_samples(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn family_lerps_between_slices() {
        let fam = SurfaceFamily::new(vec![0.0, 1.0], vec![vee(1.0), vee(2.0)]).unwrap();
        assert_eq!(fam.eval(0.0, 0.0), 1.0);
        assert_eq!(fam.eval(0.0, 1.0), 2.0);
        assert!((fam.eval(0.0, 0.5) - 1.5).abs() < 1e-15);
        // Voltage clamping.
        assert_eq!(fam.eval(0.0, -3.0), 1.0);
        assert_eq!(fam.eval(0.0, 7.0), 2.0);
        assert_eq!(fam.delta_range(), (-2.0, 2.0));
    }

    #[test]
    fn single_slice_family_ignores_voltage() {
        let fam = SurfaceFamily::single(vee(1.0)).unwrap();
        assert_eq!(fam.eval(0.5, -100.0), fam.eval(0.5, 100.0));
        assert_eq!(fam.voltages(), &[0.0]);
        assert_eq!(fam.slices().len(), 1);
    }

    #[test]
    fn delay_bounds_cover_eval_everywhere() {
        let s = vee(1.0);
        assert_eq!(s.delay_bounds(), (1.0, 3.0));
        let fam = SurfaceFamily::new(vec![0.0, 1.0], vec![vee(1.0), vee(2.0)]).unwrap();
        let (lo, hi) = fam.delay_bounds();
        assert_eq!((lo, hi), (1.0, 4.0));
        // Dense probe, including clamped extrapolation in Δ and v.
        for i in -40..=40 {
            let d = 0.1 * f64::from(i);
            for j in -5..=15 {
                let v = 0.1 * f64::from(j);
                let y = fam.eval(d, v);
                assert!(
                    (lo..=hi).contains(&y),
                    "eval({d}, {v}) = {y} outside bounds"
                );
            }
        }
    }

    #[test]
    fn family_rejects_mismatched_input() {
        assert!(SurfaceFamily::new(vec![0.0, 1.0], vec![vee(1.0)]).is_err());
        assert!(SurfaceFamily::new(vec![], vec![]).is_err());
        assert!(SurfaceFamily::new(vec![1.0, 0.0], vec![vee(1.0), vee(2.0)]).is_err());
        assert!(SurfaceFamily::new(vec![0.0, f64::NAN], vec![vee(1.0), vee(2.0)]).is_err());
    }
}
