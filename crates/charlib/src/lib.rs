//! **mis-charlib** — gate characterization for the hybrid delay model: a
//! lookup layer between the exact analytic model (`mis-core`) and the
//! event-driven simulator (`mis-digital`).
//!
//! The paper's hybrid channel re-solves the two-exponential delay
//! equation on every input event, which makes it an order of magnitude
//! slower than trivial channels at circuit scale. Industrial timing flows
//! avoid exactly this by *characterizing* each gate once into lookup
//! tables. This crate does the same for the MIS delay functions:
//!
//! 1. [`CharLib::nor`] / [`CharLib::nand`] sweep a gate's `δ↓(Δ)` /
//!    `δ↑(Δ)` curves with the exact `mis-core` solvers over an adaptively
//!    refined Δ grid ([`CharConfig::budget`] caps the interpolation
//!    error, [`build`] clusters grid points around the `Δ ≈ 0` kink);
//! 2. the resulting [`DelaySurface`] tables reconstruct delays with a
//!    *monotone* cubic (never undershooting the physical minimum delay)
//!    and clamp to the saturated SIS limits outside the grid; the
//!    state-dependent side (frozen internal-node voltage) is a
//!    [`SurfaceFamily`] interpolated across voltage slices;
//! 3. [`CharLib::to_text`] / [`CharLib::from_text`] serialize a
//!    characterized library to a diffable text form that reloads
//!    bit-identically, so libraries can be committed and reused without
//!    re-sweeping.
//!
//! `mis-digital`'s `CachedHybridChannel` consumes these tables to get
//! hybrid-model accuracy at near-inertial event cost.
//!
//! # Examples
//!
//! ```
//! use mis_charlib::{CharConfig, CharLib};
//! use mis_core::{delay, NorParams};
//! use mis_waveform::units::ps;
//!
//! # fn main() -> Result<(), mis_charlib::CharError> {
//! let params = NorParams::paper_table1();
//! let cfg = CharConfig {
//!     delta_lo: ps(-80.0),
//!     delta_hi: ps(80.0),
//!     initial_points: 9,
//!     budget: ps(0.25),
//!     ..CharConfig::default()
//! };
//! let lib = CharLib::nor(&params, &cfg)?;
//! let exact = delay::falling_delay(&params, ps(12.5)).unwrap();
//! let fast = lib.falling_delay(ps(12.5), 0.0);
//! assert!((fast - exact).abs() <= cfg.budget);
//!
//! // Commit the characterized library, reload it elsewhere:
//! let reloaded = CharLib::from_text(&lib.to_text())?;
//! assert_eq!(reloaded, lib);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod build;
mod error;
mod surface;
mod textio;

pub use build::{CharConfig, CharGate, CharLib};
pub use error::CharError;
pub use surface::{DelaySurface, SurfaceFamily};
