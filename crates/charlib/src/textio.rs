//! Zero-dependency text serialization of characterized libraries.
//!
//! The format is line-oriented and human-diffable so characterized
//! libraries can be committed next to the code and reloaded without
//! re-sweeping. Floats are written with Rust's shortest-round-trip
//! formatting, so `build → save → load` reproduces every sample (and
//! therefore every interpolant tangent) bit for bit.
//!
//! ```text
//! mis-charlib 1
//! gate nor
//! budget 1e-13
//! params <r1> <r2> <r3> <r4> <cn> <co> <vdd> <vth> <delta_min>
//! policy gnd
//! falling 1
//! slice 0e0 65
//! <delta> <delay>
//! ...
//! rising 5
//! slice 0e0 81
//! ...
//! end
//! ```

use std::fmt::Write as _;

use mis_core::{NorParams, RisingInitialVn};

use crate::{CharError, CharGate, CharLib, DelaySurface, SurfaceFamily};

const MAGIC: &str = "mis-charlib";
const VERSION: &str = "1";

impl CharLib {
    /// Renders the library as its committed text form.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC} {VERSION}");
        let _ = writeln!(s, "gate {}", self.gate);
        let _ = writeln!(s, "budget {:e}", self.budget);
        let p = &self.params;
        let _ = writeln!(
            s,
            "params {:e} {:e} {:e} {:e} {:e} {:e} {:e} {:e} {:e}",
            p.r1, p.r2, p.r3, p.r4, p.cn, p.co, p.vdd, p.vth, p.delta_min
        );
        match p.vn_policy {
            RisingInitialVn::Gnd => s.push_str("policy gnd\n"),
            RisingInitialVn::HalfVdd => s.push_str("policy half\n"),
            RisingInitialVn::Vdd => s.push_str("policy vdd\n"),
            RisingInitialVn::Tracked => s.push_str("policy tracked\n"),
            RisingInitialVn::Explicit(v) => {
                let _ = writeln!(s, "policy explicit {v:e}");
            }
        }
        write_family(&mut s, "falling", &self.falling);
        write_family(&mut s, "rising", &self.rising);
        s.push_str("end\n");
        s
    }

    /// Parses a library from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`CharError::Parse`] with a 1-based line number for any
    /// structural or numeric violation, and propagates table/parameter
    /// validation failures.
    pub fn from_text(text: &str) -> Result<Self, CharError> {
        let mut lines = text.lines().enumerate();
        let (header_no, header) = next_line(&mut lines)?;
        let mut it = header.split_whitespace();
        if it.next() != Some(MAGIC) || it.next() != Some(VERSION) || it.next().is_some() {
            return Err(parse_err(header_no, "expected header 'mis-charlib 1'"));
        }
        let (gate_no, gate_line) = next_line(&mut lines)?;
        let gate = match strip_keyword(gate_line, "gate") {
            Some("nor") => CharGate::Nor,
            Some("nand") => CharGate::Nand,
            _ => return Err(parse_err(gate_no, "expected 'gate nor' or 'gate nand'")),
        };
        let (budget_no, budget_line) = next_line(&mut lines)?;
        let budget = strip_keyword(budget_line, "budget")
            .ok_or_else(|| parse_err(budget_no, "expected 'budget <seconds>'"))
            .and_then(|t| parse_f64(t, budget_no))?;
        let (pline_no, pline) = next_line(&mut lines)?;
        let mut pit = pline.split_whitespace();
        if pit.next() != Some("params") {
            return Err(parse_err(pline_no, "expected 'params' line"));
        }
        let mut nine = [0.0_f64; 9];
        for slot in &mut nine {
            *slot = pit
                .next()
                .ok_or_else(|| parse_err(pline_no, "params needs nine values"))
                .and_then(|t| parse_f64(t, pline_no))?;
        }
        if pit.next().is_some() {
            return Err(parse_err(pline_no, "trailing tokens on params line"));
        }
        let (pol_no, pol_line) = next_line(&mut lines)?;
        let mut pol = pol_line.split_whitespace();
        if pol.next() != Some("policy") {
            return Err(parse_err(pol_no, "expected 'policy' line"));
        }
        let vn_policy = match pol.next() {
            Some("gnd") => RisingInitialVn::Gnd,
            Some("half") => RisingInitialVn::HalfVdd,
            Some("vdd") => RisingInitialVn::Vdd,
            Some("tracked") => RisingInitialVn::Tracked,
            Some("explicit") => {
                let v = pol
                    .next()
                    .ok_or_else(|| parse_err(pol_no, "explicit policy needs a voltage"))
                    .and_then(|t| parse_f64(t, pol_no))?;
                RisingInitialVn::Explicit(v)
            }
            _ => return Err(parse_err(pol_no, "unknown policy")),
        };
        let params = NorParams {
            r1: nine[0],
            r2: nine[1],
            r3: nine[2],
            r4: nine[3],
            cn: nine[4],
            co: nine[5],
            vdd: nine[6],
            vth: nine[7],
            delta_min: nine[8],
            vn_policy,
        };
        params.validate()?;
        if !(budget > 0.0) || !budget.is_finite() {
            return Err(CharError::InvalidInput {
                reason: "budget must be positive and finite".into(),
            });
        }
        let falling = read_family(&mut lines, "falling")?;
        let rising = read_family(&mut lines, "rising")?;
        let (end_no, end) = next_line(&mut lines)?;
        if end != "end" {
            return Err(parse_err(end_no, "expected 'end'"));
        }
        Ok(CharLib {
            gate,
            params,
            budget,
            falling,
            rising,
        })
    }
}

type Lines<'a> = std::iter::Enumerate<std::str::Lines<'a>>;

fn write_family(s: &mut String, name: &str, fam: &SurfaceFamily) {
    let _ = writeln!(s, "{name} {}", fam.slices().len());
    for (v, slice) in fam.voltages().iter().zip(fam.slices()) {
        let _ = writeln!(s, "slice {v:e} {}", slice.len());
        for (d, y) in slice.deltas().iter().zip(slice.delays()) {
            let _ = writeln!(s, "{d:e} {y:e}");
        }
    }
}

fn read_family(lines: &mut Lines<'_>, name: &str) -> Result<SurfaceFamily, CharError> {
    let (head_no, head) = next_line(lines)?;
    let n_slices = strip_keyword(head, name)
        .ok_or_else(|| parse_err(head_no, &format!("expected '{name} <slices>'")))
        .and_then(|t| parse_usize(t, head_no))?;
    if n_slices == 0 {
        return Err(parse_err(head_no, "a family needs at least one slice"));
    }
    let mut voltages = Vec::with_capacity(n_slices);
    let mut slices = Vec::with_capacity(n_slices);
    for _ in 0..n_slices {
        let (sl_no, sl) = next_line(lines)?;
        let mut it = sl.split_whitespace();
        if it.next() != Some("slice") {
            return Err(parse_err(sl_no, "expected 'slice <voltage> <points>'"));
        }
        let v = it
            .next()
            .ok_or_else(|| parse_err(sl_no, "slice needs a voltage"))
            .and_then(|t| parse_f64(t, sl_no))?;
        let n_points = it
            .next()
            .ok_or_else(|| parse_err(sl_no, "slice needs a point count"))
            .and_then(|t| parse_usize(t, sl_no))?;
        if it.next().is_some() {
            return Err(parse_err(sl_no, "trailing tokens on slice line"));
        }
        let mut deltas = Vec::with_capacity(n_points);
        let mut delays = Vec::with_capacity(n_points);
        for _ in 0..n_points {
            let (row_no, row) = next_line(lines)?;
            let mut rit = row.split_whitespace();
            let d = rit
                .next()
                .ok_or_else(|| parse_err(row_no, "sample row needs two values"))
                .and_then(|t| parse_f64(t, row_no))?;
            let y = rit
                .next()
                .ok_or_else(|| parse_err(row_no, "sample row needs two values"))
                .and_then(|t| parse_f64(t, row_no))?;
            if rit.next().is_some() {
                return Err(parse_err(row_no, "trailing tokens on sample row"));
            }
            deltas.push(d);
            delays.push(y);
        }
        voltages.push(v);
        slices.push(DelaySurface::from_samples(deltas, delays)?);
    }
    SurfaceFamily::new(voltages, slices)
}

fn next_line<'a>(lines: &mut Lines<'a>) -> Result<(usize, &'a str), CharError> {
    for (no, raw) in lines.by_ref() {
        let t = raw.trim();
        if !t.is_empty() {
            return Ok((no, t));
        }
    }
    Err(CharError::Parse {
        line: 0,
        reason: "unexpected end of input".into(),
    })
}

/// Returns the remainder of `line` after `key` and whitespace, if `line`
/// starts with `key`.
fn strip_keyword<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(key)?;
    let trimmed = rest.trim_start();
    if trimmed.len() == rest.len() && !rest.is_empty() {
        return None; // keyword not followed by whitespace
    }
    Some(trimmed)
}

fn parse_err(line0: usize, reason: &str) -> CharError {
    CharError::Parse {
        line: line0 + 1,
        reason: reason.to_owned(),
    }
}

fn parse_f64(tok: &str, line0: usize) -> Result<f64, CharError> {
    tok.parse::<f64>()
        .map_err(|_| parse_err(line0, &format!("bad float '{tok}'")))
}

fn parse_usize(tok: &str, line0: usize) -> Result<usize, CharError> {
    tok.parse::<usize>()
        .map_err(|_| parse_err(line0, &format!("bad count '{tok}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CharConfig;
    use mis_waveform::units::ps;

    fn tiny_lib() -> CharLib {
        let cfg = CharConfig {
            delta_lo: ps(-60.0),
            delta_hi: ps(60.0),
            initial_points: 5,
            max_points: 129,
            budget: ps(0.5),
            vn_fractions: vec![0.0, 1.0],
        };
        CharLib::nor(&NorParams::paper_table1(), &cfg).unwrap()
    }

    #[test]
    fn round_trip_is_identity() {
        let lib = tiny_lib();
        let text = lib.to_text();
        let loaded = CharLib::from_text(&text).unwrap();
        assert_eq!(lib, loaded, "build → save → load must be the identity");
        // And re-serialization is stable.
        assert_eq!(text, loaded.to_text());
    }

    #[test]
    fn loaded_library_evaluates_identically() {
        let lib = tiny_lib();
        let loaded = CharLib::from_text(&lib.to_text()).unwrap();
        for i in 0..=50 {
            let d = ps(-70.0) + ps(140.0) * i as f64 / 50.0;
            assert_eq!(lib.falling_delay(d, 0.0), loaded.falling_delay(d, 0.0));
            assert_eq!(lib.rising_delay(d, 0.3), loaded.rising_delay(d, 0.3));
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert!(matches!(
            CharLib::from_text("bogus"),
            Err(CharError::Parse { line: 1, .. })
        ));
        let mut text = tiny_lib().to_text();
        text = text.replacen("budget", "budgie", 1);
        assert!(matches!(
            CharLib::from_text(&text),
            Err(CharError::Parse { line: 3, .. })
        ));
        let mut text = tiny_lib().to_text();
        text = text.replace("end", "");
        assert!(CharLib::from_text(&text).is_err());
    }

    #[test]
    fn corrupted_samples_are_rejected() {
        let lib = tiny_lib();
        let text = lib.to_text();
        // Break a float in the first sample row after the first slice line.
        let broken: String = text
            .lines()
            .map(|l| {
                if l.starts_with("slice") {
                    l.to_owned()
                } else {
                    l.replacen("e-1", "e-1x", 1)
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        if broken != text {
            assert!(CharLib::from_text(&broken).is_err());
        }
        // Truncated body.
        let half: String = text.lines().take(8).collect::<Vec<_>>().join("\n");
        assert!(CharLib::from_text(&half).is_err());
    }

    #[test]
    fn explicit_policy_round_trips() {
        let mut lib = tiny_lib();
        lib.params.vn_policy = RisingInitialVn::Explicit(0.3141592653589793);
        let loaded = CharLib::from_text(&lib.to_text()).unwrap();
        assert_eq!(loaded.params().vn_policy, lib.params.vn_policy);
    }
}
