//! One-time gate characterization: sweep the exact hybrid-model delay
//! functions over an adaptively refined Δ grid until a configurable
//! interpolation-error budget is met.
//!
//! The builder is deliberately *exact-solver-agnostic about cost*: it
//! memoizes every exact evaluation, probes each grid interval at its
//! quarter points and midpoint, and splits intervals whose probes miss the
//! budget. Refinement therefore clusters points around the `Δ ≈ 0` kink
//! of the MIS curves and leaves the saturated SIS tails coarse.

use std::collections::HashMap;

use mis_core::nand::NandParams;
use mis_core::{delay, NorParams, RisingInitialVn};
use mis_waveform::units::ps;

use crate::{CharError, DelaySurface, SurfaceFamily};

/// Which gate a characterized library describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CharGate {
    /// 2-input CMOS NOR (the paper's gate).
    Nor,
    /// 2-input CMOS NAND via the exact electrical duality.
    Nand,
}

impl std::fmt::Display for CharGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CharGate::Nor => write!(f, "nor"),
            CharGate::Nand => write!(f, "nand"),
        }
    }
}

/// Configuration of a characterization sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CharConfig {
    /// Left edge of the characterized separation range, seconds.
    pub delta_lo: f64,
    /// Right edge of the characterized separation range, seconds.
    pub delta_hi: f64,
    /// Uniform starting grid size (refinement adds points as needed).
    pub initial_points: usize,
    /// Per-surface cap on grid points; refinement failing to meet the
    /// budget under this cap is an error.
    pub max_points: usize,
    /// Maximum tolerated |interpolated − exact| delay error, seconds.
    pub budget: f64,
    /// Frozen internal-node voltage grid for the state-dependent side,
    /// as fractions of `V_DD` (strictly increasing, within `[0, 1]`).
    pub vn_fractions: Vec<f64>,
}

impl Default for CharConfig {
    fn default() -> Self {
        CharConfig {
            delta_lo: ps(-300.0),
            delta_hi: ps(300.0),
            initial_points: 17,
            max_points: 513,
            budget: ps(0.1),
            vn_fractions: vec![0.0, 0.25, 0.5, 0.75, 1.0],
        }
    }
}

impl CharConfig {
    /// A coarse, fast configuration for tests and smoke runs: few
    /// starting grid points, a loose 1 ps budget, and rail-only `V_N`
    /// slices. Characterizes in a few milliseconds where
    /// [`CharConfig::default`] takes hundreds; accuracy is only good
    /// enough for structural checks, not for delay comparisons against
    /// the exact model.
    #[must_use]
    pub fn quick() -> Self {
        CharConfig {
            initial_points: 5,
            budget: ps(1.0),
            vn_fractions: vec![0.0, 1.0],
            ..CharConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CharError::InvalidInput`] for reversed ranges, grids that
    /// cannot interpolate, a non-positive budget, or a bad voltage grid.
    pub fn validate(&self) -> Result<(), CharError> {
        if !(self.delta_hi > self.delta_lo)
            || !self.delta_lo.is_finite()
            || !self.delta_hi.is_finite()
        {
            return Err(CharError::InvalidInput {
                reason: "characterization needs delta_hi > delta_lo (finite)".into(),
            });
        }
        if self.initial_points < 3 || self.max_points < self.initial_points {
            return Err(CharError::InvalidInput {
                reason: "need initial_points >= 3 and max_points >= initial_points".into(),
            });
        }
        if !(self.budget > 0.0) || !self.budget.is_finite() {
            return Err(CharError::InvalidInput {
                reason: "error budget must be positive and finite".into(),
            });
        }
        if self.vn_fractions.is_empty()
            || self.vn_fractions.windows(2).any(|w| !(w[1] > w[0]))
            || self.vn_fractions.iter().any(|&f| !(0.0..=1.0).contains(&f))
        {
            return Err(CharError::InvalidInput {
                reason: "vn_fractions must be strictly increasing within [0, 1]".into(),
            });
        }
        Ok(())
    }
}

/// A characterized gate library: both delay surfaces plus the provenance
/// needed to rebuild or serialize it.
#[derive(Debug, Clone, PartialEq)]
pub struct CharLib {
    pub(crate) gate: CharGate,
    pub(crate) params: NorParams,
    pub(crate) budget: f64,
    pub(crate) falling: SurfaceFamily,
    pub(crate) rising: SurfaceFamily,
}

impl CharLib {
    /// Characterizes a NOR gate from its hybrid-model parameters.
    ///
    /// The falling surface is state-independent (single slice); the rising
    /// surface is a family over the frozen `V_N` hypotheses of
    /// `cfg.vn_fractions`.
    ///
    /// # Errors
    ///
    /// Propagates exact-solver failures and [`CharError::BudgetNotMet`].
    pub fn nor(params: &NorParams, cfg: &CharConfig) -> Result<Self, CharError> {
        params.validate()?;
        cfg.validate()?;
        let falling = SurfaceFamily::single(refine_surface(cfg, |d| {
            Ok(delay::falling_delay(params, d)?)
        })?)?;
        let voltages: Vec<f64> = cfg.vn_fractions.iter().map(|f| f * params.vdd).collect();
        let mut slices = Vec::with_capacity(voltages.len());
        for &x in &voltages {
            slices.push(refine_surface(cfg, |d| {
                Ok(delay::rising_delay(
                    params,
                    d,
                    RisingInitialVn::Explicit(x),
                )?)
            })?);
        }
        Ok(CharLib {
            gate: CharGate::Nor,
            params: *params,
            budget: cfg.budget,
            falling,
            rising: SurfaceFamily::new(voltages, slices)?,
        })
    }

    /// Characterizes a NAND gate (via the exact duality of
    /// [`mis_core::nand`]): here the *falling* output is the
    /// state-dependent side (series stack, frozen `V_M` hypotheses) and
    /// the rising surface is state-independent.
    ///
    /// # Errors
    ///
    /// Propagates exact-solver failures and [`CharError::BudgetNotMet`].
    pub fn nand(params: &NandParams, cfg: &CharConfig) -> Result<Self, CharError> {
        params.validate()?;
        cfg.validate()?;
        let vdd = params.dual().vdd;
        let voltages: Vec<f64> = cfg.vn_fractions.iter().map(|f| f * vdd).collect();
        let mut slices = Vec::with_capacity(voltages.len());
        for &x in &voltages {
            slices.push(refine_surface(cfg, |d| {
                Ok(params.falling_delay(d, RisingInitialVn::Explicit(x))?)
            })?);
        }
        let rising = SurfaceFamily::single(refine_surface(cfg, |d| Ok(params.rising_delay(d)?))?)?;
        Ok(CharLib {
            gate: CharGate::Nand,
            params: *params.dual(),
            budget: cfg.budget,
            falling: SurfaceFamily::new(voltages, slices)?,
            rising,
        })
    }

    /// The gate this library characterizes.
    #[must_use]
    pub fn gate(&self) -> CharGate {
        self.gate
    }

    /// The hybrid-model parameters the sweep used (for NAND libraries,
    /// the *dual* NOR parameter set).
    #[must_use]
    pub fn params(&self) -> &NorParams {
        &self.params
    }

    /// The interpolation-error budget the surfaces were refined to.
    #[must_use]
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The falling-output surface family (single slice for NOR).
    #[must_use]
    pub fn falling(&self) -> &SurfaceFamily {
        &self.falling
    }

    /// The rising-output surface family (single slice for NAND).
    #[must_use]
    pub fn rising(&self) -> &SurfaceFamily {
        &self.rising
    }

    /// Interpolated falling-output delay at separation `delta`; `state_v`
    /// is the frozen internal-node voltage (ignored where
    /// state-independent).
    #[must_use]
    pub fn falling_delay(&self, delta: f64, state_v: f64) -> f64 {
        self.falling.eval(delta, state_v)
    }

    /// Interpolated rising-output delay at separation `delta`; `state_v`
    /// as in [`CharLib::falling_delay`].
    #[must_use]
    pub fn rising_delay(&self, delta: f64, state_v: f64) -> f64 {
        self.rising.eval(delta, state_v)
    }
}

/// Builds one surface by adaptive refinement against `exact`, probing
/// every interval at `1/4`, `1/2` and `3/4` and splitting at the midpoint
/// until every probe is within the budget (with a small internal safety
/// factor so *off-probe* separations stay within the declared budget too).
fn refine_surface<F>(cfg: &CharConfig, mut exact: F) -> Result<DelaySurface, CharError>
where
    F: FnMut(f64) -> Result<f64, CharError>,
{
    let target = 0.9 * cfg.budget;
    let mut memo: HashMap<u64, f64> = HashMap::new();
    let mut eval = |x: f64, memo: &mut HashMap<u64, f64>| -> Result<f64, CharError> {
        if let Some(&v) = memo.get(&x.to_bits()) {
            return Ok(v);
        }
        let v = exact(x)?;
        if !v.is_finite() {
            return Err(CharError::InvalidInput {
                reason: format!("exact solver returned non-finite delay at Δ = {x:e}"),
            });
        }
        memo.insert(x.to_bits(), v);
        Ok(v)
    };

    // Uniform start grid; force Δ = 0 onto the grid when in range so the
    // curve's kink sits on a knot rather than inside an interval.
    let n0 = cfg.initial_points;
    let mut grid: Vec<f64> = (0..n0)
        .map(|i| cfg.delta_lo + (cfg.delta_hi - cfg.delta_lo) * i as f64 / (n0 - 1) as f64)
        .collect();
    if cfg.delta_lo < 0.0 && cfg.delta_hi > 0.0 && grid.iter().all(|&x| x != 0.0) {
        grid.push(0.0);
        grid.sort_by(|a, b| a.partial_cmp(b).expect("finite grid"));
    }
    let mut vals = Vec::with_capacity(grid.len());
    for &x in &grid {
        vals.push(eval(x, &mut memo)?);
    }

    loop {
        let surface = DelaySurface::from_samples(grid.clone(), vals.clone())?;
        let mut inserts: Vec<(f64, f64)> = Vec::new();
        let mut worst = 0.0_f64;
        for w in grid.windows(2) {
            let (a, b) = (w[0], w[1]);
            let mut violated = false;
            for frac in [0.25, 0.5, 0.75] {
                let x = a + frac * (b - a);
                if x <= a || x >= b {
                    continue; // interval at floating-point resolution
                }
                let v = eval(x, &mut memo)?;
                let err = (surface.eval(x) - v).abs();
                worst = worst.max(err);
                if err > target {
                    violated = true;
                }
            }
            if violated {
                let mid = a + 0.5 * (b - a);
                if mid > a && mid < b {
                    inserts.push((mid, eval(mid, &mut memo)?));
                }
            }
        }
        if inserts.is_empty() {
            return Ok(surface);
        }
        if grid.len() + inserts.len() > cfg.max_points {
            return Err(CharError::BudgetNotMet {
                achieved: worst,
                budget: cfg.budget,
                points: grid.len(),
            });
        }
        for (x, v) in inserts {
            let pos = grid.partition_point(|&g| g < x);
            grid.insert(pos, x);
            vals.insert(pos, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CharConfig {
        CharConfig {
            delta_lo: ps(-120.0),
            delta_hi: ps(120.0),
            initial_points: 9,
            max_points: 257,
            budget: ps(0.2),
            vn_fractions: vec![0.0, 0.5, 1.0],
        }
    }

    #[test]
    fn config_validation() {
        assert!(CharConfig::default().validate().is_ok());
        let mut c = CharConfig::default();
        c.delta_hi = c.delta_lo;
        assert!(c.validate().is_err());
        let c = CharConfig {
            budget: 0.0,
            ..CharConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CharConfig {
            initial_points: 2,
            ..CharConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CharConfig {
            vn_fractions: vec![0.5, 0.5],
            ..CharConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CharConfig {
            vn_fractions: vec![-0.1, 0.5],
            ..CharConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn nor_library_meets_budget_on_dense_grid() {
        let p = NorParams::paper_table1();
        let cfg = quick_cfg();
        let lib = CharLib::nor(&p, &cfg).unwrap();
        assert_eq!(lib.gate(), CharGate::Nor);
        assert_eq!(lib.budget(), cfg.budget);
        // Dense sweep strictly inside the characterized range.
        for i in 0..=200 {
            let d = ps(-120.0) + ps(240.0) * i as f64 / 200.0;
            let exact = delay::falling_delay(&p, d).unwrap();
            let got = lib.falling_delay(d, 0.0);
            assert!(
                (got - exact).abs() <= cfg.budget,
                "falling at Δ = {:.1} ps: {:e} vs {:e}",
                d / 1e-12,
                got,
                exact
            );
        }
        for &x in &[0.0, 0.5 * p.vdd, p.vdd] {
            for i in 0..=200 {
                let d = ps(-120.0) + ps(240.0) * i as f64 / 200.0;
                let exact = delay::rising_delay(&p, d, RisingInitialVn::Explicit(x)).unwrap();
                let got = lib.rising_delay(d, x);
                assert!(
                    (got - exact).abs() <= cfg.budget,
                    "rising at Δ = {:.1} ps, X = {x}: {got:e} vs {exact:e}",
                    d / 1e-12
                );
            }
        }
    }

    #[test]
    fn refinement_clusters_points_near_the_kink() {
        let p = NorParams::paper_table1();
        let lib = CharLib::nor(&p, &quick_cfg()).unwrap();
        let deltas = lib.falling().slices()[0].deltas();
        let near: usize = deltas.iter().filter(|d| d.abs() < ps(30.0)).count();
        let far: usize = deltas.iter().filter(|d| d.abs() >= ps(90.0)).count();
        assert!(
            near > far,
            "refinement should concentrate near Δ = 0: {near} near vs {far} far \
             (grid size {})",
            deltas.len()
        );
    }

    #[test]
    fn unreachable_budget_reports_budget_not_met() {
        let p = NorParams::paper_table1();
        let cfg = CharConfig {
            budget: 1e-18, // one attosecond: unreachable under the cap
            max_points: 24,
            initial_points: 9,
            ..quick_cfg()
        };
        match CharLib::nor(&p, &cfg) {
            Err(CharError::BudgetNotMet {
                achieved, points, ..
            }) => {
                assert!(achieved > 1e-18);
                assert!(points <= 24);
            }
            other => panic!("expected BudgetNotMet, got {other:?}"),
        }
    }

    #[test]
    fn nand_library_mirrors_duality() {
        let nand = NandParams::from_dual(NorParams::paper_table1());
        let cfg = CharConfig {
            vn_fractions: vec![0.0, 1.0],
            ..quick_cfg()
        };
        let lib = CharLib::nand(&nand, &cfg).unwrap();
        assert_eq!(lib.gate(), CharGate::Nand);
        // Rising NAND == falling NOR (exact duality), so the interpolated
        // rising surface must track the NOR falling delay within budget.
        for &d in &[ps(-80.0), ps(-10.0), 0.0, ps(35.0), ps(110.0)] {
            let exact = delay::falling_delay(&NorParams::paper_table1(), d).unwrap();
            assert!((lib.rising_delay(d, 0.0) - exact).abs() <= cfg.budget);
        }
        // Falling NAND at V_M = GND == rising NOR at X = VDD.
        for &d in &[ps(-60.0), 0.0, ps(60.0)] {
            let exact = nand.falling_delay(d, RisingInitialVn::Gnd).unwrap();
            assert!((lib.falling_delay(d, 0.0) - exact).abs() <= cfg.budget);
        }
    }
}
