use mis_core::ModelError;
use mis_num::NumError;

/// Errors of the characterization subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum CharError {
    /// The exact delay model rejected a query or parameter set.
    Model(ModelError),
    /// A numerical routine (interpolation, root finding) failed.
    Num(NumError),
    /// A characterization config or surface table violates an invariant.
    InvalidInput {
        /// What was wrong.
        reason: String,
    },
    /// Grid refinement hit the point cap before meeting the error budget.
    BudgetNotMet {
        /// Worst interpolation error observed at the probe points, seconds.
        achieved: f64,
        /// The requested budget, seconds.
        budget: f64,
        /// Grid size when refinement gave up.
        points: usize,
    },
    /// The text form of a characterized library could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for CharError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CharError::Model(e) => write!(f, "model error: {e}"),
            CharError::Num(e) => write!(f, "numerics error: {e}"),
            CharError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            CharError::BudgetNotMet {
                achieved,
                budget,
                points,
            } => write!(
                f,
                "refinement stopped at {points} points with error {achieved:e} s \
                 (budget {budget:e} s)"
            ),
            CharError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CharError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CharError::Model(e) => Some(e),
            CharError::Num(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CharError {
    fn from(e: ModelError) -> Self {
        CharError::Model(e)
    }
}

impl From<NumError> for CharError {
    fn from(e: NumError) -> Self {
        CharError::Num(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = CharError::InvalidInput { reason: "x".into() };
        assert!(e.to_string().contains("invalid input"));
        let e = CharError::BudgetNotMet {
            achieved: 1e-12,
            budget: 1e-13,
            points: 257,
        };
        assert!(e.to_string().contains("257 points"));
        let e = CharError::Parse {
            line: 3,
            reason: "bad float".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn conversions_wrap_sources() {
        let m: CharError = ModelError::InvalidParams { reason: "r".into() }.into();
        assert!(matches!(m, CharError::Model(_)));
        let n: CharError = NumError::InvalidInput { reason: "n".into() }.into();
        assert!(matches!(n, CharError::Num(_)));
    }
}
