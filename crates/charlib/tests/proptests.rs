//! Property-based tests for `mis-charlib`, on the in-repo `mis-testkit`
//! harness: interpolated delays must honor the declared error budget for
//! *arbitrary* in-grid separations (not just the builder's own probe
//! points), and serialization must be a lossless round trip.

use std::sync::OnceLock;

use mis_charlib::{CharConfig, CharLib};
use mis_core::nand::NandParams;
use mis_core::{delay, NorParams, RisingInitialVn};
use mis_testkit::prelude::*;
use mis_waveform::units::ps;

fn cfg() -> CharConfig {
    CharConfig {
        delta_lo: ps(-150.0),
        delta_hi: ps(150.0),
        initial_points: 13,
        max_points: 513,
        budget: ps(0.15),
        vn_fractions: vec![0.0, 0.25, 0.5, 0.75, 1.0],
    }
}

fn nor_lib() -> &'static CharLib {
    static LIB: OnceLock<CharLib> = OnceLock::new();
    LIB.get_or_init(|| CharLib::nor(&NorParams::paper_table1(), &cfg()).expect("characterization"))
}

#[test]
fn falling_surface_within_budget_at_random_separations() {
    let lib = nor_lib();
    let p = NorParams::paper_table1();
    let budget = lib.budget();
    Config::with_cases(96).run(&(-150.0..150.0f64), |&d_ps| {
        let d = ps(d_ps);
        let exact = delay::falling_delay(&p, d).expect("exact delay");
        let got = lib.falling_delay(d, 0.0);
        prop_assert!(
            (got - exact).abs() <= budget,
            "Δ = {} ps: |{:e} − {:e}| > {:e}",
            d_ps,
            got,
            exact,
            budget
        );
        Ok(())
    });
}

#[test]
fn rising_slices_within_budget_at_random_separations() {
    let lib = nor_lib();
    let p = NorParams::paper_table1();
    let budget = lib.budget();
    // Random Δ on each characterized V_N slice: the per-slice guarantee
    // of the refinement loop, checked off the builder's probe points.
    Config::with_cases(64).run(&(-150.0..150.0f64, 0..5u32), |&(d_ps, xi)| {
        let d = ps(d_ps);
        let x = [0.0, 0.25, 0.5, 0.75, 1.0][xi as usize] * p.vdd;
        let exact = delay::rising_delay(&p, d, RisingInitialVn::Explicit(x)).expect("exact");
        let got = lib.rising_delay(d, x);
        prop_assert!(
            (got - exact).abs() <= budget,
            "Δ = {} ps, X = {} V: |{:e} − {:e}| > {:e}",
            d_ps,
            x,
            got,
            exact,
            budget
        );
        Ok(())
    });
}

#[test]
fn rising_family_between_slices_stays_close() {
    // Between characterized V_N slices the family interpolates linearly;
    // the combined (grid + slice) error must stay within a small multiple
    // of the budget — the slice spacing, not the Δ grid, dominates here.
    let lib = nor_lib();
    let p = NorParams::paper_table1();
    let tol = 4.0 * lib.budget();
    Config::with_cases(48).run(&(-150.0..150.0f64, 0.0..1.0f64), |&(d_ps, xf)| {
        let d = ps(d_ps);
        let x = xf * p.vdd;
        let exact = delay::rising_delay(&p, d, RisingInitialVn::Explicit(x)).expect("exact");
        let got = lib.rising_delay(d, x);
        prop_assert!(
            (got - exact).abs() <= tol,
            "Δ = {} ps, X = {} V: |{:e} − {:e}| > {:e}",
            d_ps,
            x,
            got,
            exact,
            tol
        );
        Ok(())
    });
}

#[test]
fn serializer_round_trip_preserves_surfaces_bit_for_bit() {
    let lib = nor_lib();
    let text = lib.to_text();
    let loaded = CharLib::from_text(&text).expect("parse");
    assert_eq!(*lib, loaded, "build → save → load must be the identity");
    assert_eq!(text, loaded.to_text(), "re-serialization must be stable");
    // Bitwise sample identity, slice by slice.
    for (a, b) in lib.rising().slices().iter().zip(loaded.rising().slices()) {
        for (x, y) in a.deltas().iter().zip(b.deltas()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.delays().iter().zip(b.delays()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    // And the loaded library evaluates identically at random points.
    Config::with_cases(64).run(&(-200.0..200.0f64, 0.0..0.8f64), |&(d_ps, x)| {
        let d = ps(d_ps);
        prop_assert!(lib.falling_delay(d, x) == loaded.falling_delay(d, x));
        prop_assert!(lib.rising_delay(d, x) == loaded.rising_delay(d, x));
        Ok(())
    });
}

#[test]
fn nand_duality_round_trip() {
    // A NAND library characterizes the dual curves; serialization must
    // round-trip it just like the NOR one.
    let nand = NandParams::from_dual(NorParams::paper_table1());
    let quick = CharConfig {
        delta_lo: ps(-80.0),
        delta_hi: ps(80.0),
        initial_points: 9,
        max_points: 257,
        budget: ps(0.3),
        vn_fractions: vec![0.0, 0.5, 1.0],
    };
    let lib = CharLib::nand(&nand, &quick).expect("nand characterization");
    let loaded = CharLib::from_text(&lib.to_text()).expect("parse");
    assert_eq!(lib, loaded);
    // Spot-check duality through the table: rising NAND == falling NOR.
    let exact = delay::falling_delay(&NorParams::paper_table1(), ps(7.0)).unwrap();
    assert!((lib.rising_delay(ps(7.0), 0.0) - exact).abs() <= quick.budget);
}
