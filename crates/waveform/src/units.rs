//! Unit helpers: the workspace computes in SI (seconds, volts, ohms,
//! farads); the paper's plots are in picoseconds. These free functions keep
//! conversions explicit and greppable.

/// Seconds per picosecond.
pub const PS: f64 = 1e-12;

/// Seconds per nanosecond.
pub const NS: f64 = 1e-9;

/// Farads per attofarad.
pub const AF: f64 = 1e-18;

/// Farads per femtofarad.
pub const FF: f64 = 1e-15;

/// Ohms per kiloohm.
pub const KOHM: f64 = 1e3;

/// Converts picoseconds to seconds.
///
/// # Examples
///
/// ```
/// assert_eq!(mis_waveform::units::ps(18.0), 18.0e-12);
/// ```
#[must_use]
pub fn ps(x: f64) -> f64 {
    x * PS
}

/// Converts seconds to picoseconds.
///
/// # Examples
///
/// ```
/// assert_eq!(mis_waveform::units::to_ps(18.0e-12), 18.0);
/// ```
#[must_use]
pub fn to_ps(x: f64) -> f64 {
    x / PS
}

/// Converts nanoseconds to seconds.
#[must_use]
pub fn ns(x: f64) -> f64 {
    x * NS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(to_ps(ps(123.456)), 123.456);
        assert_eq!(ns(1.0), 1000.0 * ps(1.0));
        assert_eq!(1.5 * KOHM, 1500.0);
        assert_eq!(2.0 * FF, 2000.0 * AF);
    }
}
