use crate::{AnalogWaveform, WaveformError};

/// A single transition of a binary signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Time of the threshold crossing, in seconds.
    pub time: f64,
    /// `true` for a rising (0→1) transition.
    pub rising: bool,
}

/// A binary signal: an initial value plus a strictly increasing,
/// polarity-alternating edge list.
///
/// This is the exchange format between the digital timing simulator, the
/// digitized analog reference, and the deviation-area metric.
///
/// # Examples
///
/// ```
/// use mis_waveform::DigitalTrace;
///
/// # fn main() -> Result<(), mis_waveform::WaveformError> {
/// let t = DigitalTrace::with_edges(false, vec![(1.0, true), (3.0, false)])?;
/// assert!(!t.value_at(0.5));
/// assert!(t.value_at(2.0));
/// assert!(!t.value_at(4.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DigitalTrace {
    initial: bool,
    edges: Vec<Edge>,
}

impl DigitalTrace {
    /// A constant trace with no transitions.
    #[must_use]
    pub fn constant(value: bool) -> Self {
        DigitalTrace {
            initial: value,
            edges: Vec::new(),
        }
    }

    /// Builds a trace from `(time, rising)` pairs.
    ///
    /// # Errors
    ///
    /// * [`WaveformError::NotMonotonic`] — times not strictly increasing,
    ///   or polarities fail to alternate starting from `initial`.
    /// * [`WaveformError::NonFinite`] — NaN/inf edge time.
    pub fn with_edges(initial: bool, edges: Vec<(f64, bool)>) -> Result<Self, WaveformError> {
        let mut trace = DigitalTrace::constant(initial);
        for (i, (time, rising)) in edges.into_iter().enumerate() {
            trace.push_edge(time, rising).map_err(|e| match e {
                WaveformError::NotMonotonic { reason, .. } => {
                    WaveformError::NotMonotonic { index: i, reason }
                }
                WaveformError::NonFinite { .. } => WaveformError::NonFinite { index: i },
                other => other,
            })?;
        }
        Ok(trace)
    }

    /// Appends an edge, enforcing monotonic time and alternating polarity.
    ///
    /// # Errors
    ///
    /// * [`WaveformError::NotMonotonic`] — `time` not after the last edge,
    ///   or `rising` equal to the current final value.
    /// * [`WaveformError::NonFinite`] — NaN/inf time.
    pub fn push_edge(&mut self, time: f64, rising: bool) -> Result<(), WaveformError> {
        if !time.is_finite() {
            return Err(WaveformError::NonFinite {
                index: self.edges.len(),
            });
        }
        if let Some(last) = self.edges.last() {
            if !(time > last.time) {
                return Err(WaveformError::NotMonotonic {
                    index: self.edges.len(),
                    reason: format!("edge at {time} not after previous edge at {}", last.time),
                });
            }
        }
        if rising == self.final_value() {
            return Err(WaveformError::NotMonotonic {
                index: self.edges.len(),
                reason: format!(
                    "edge polarity {} does not alternate (signal already {})",
                    if rising { "rising" } else { "falling" },
                    if self.final_value() { "high" } else { "low" },
                ),
            });
        }
        self.edges.push(Edge { time, rising });
        Ok(())
    }

    /// The signal value before the first edge.
    #[must_use]
    pub fn initial_value(&self) -> bool {
        self.initial
    }

    /// The signal value after the last edge.
    #[must_use]
    pub fn final_value(&self) -> bool {
        self.edges.last().map_or(self.initial, |e| e.rising)
    }

    /// The edge list.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The signal value at time `t`. Edges take effect *at* their
    /// timestamp: `value_at(e.time) == e.rising`.
    #[must_use]
    pub fn value_at(&self, t: f64) -> bool {
        // Index of the first edge strictly after t.
        let n_before = self.edges.partition_point(|e| e.time <= t);
        if n_before == 0 {
            self.initial
        } else {
            self.edges[n_before - 1].rising
        }
    }

    /// Number of transitions.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over pulse widths: the durations between consecutive edges.
    pub fn pulse_widths(&self) -> impl Iterator<Item = f64> + '_ {
        self.edges.windows(2).map(|w| w[1].time - w[0].time)
    }

    /// Removes pulses shorter than `min_width` (an *inertial* filter),
    /// returning the filtered trace. Cancellation cascades: removing a
    /// glitch may merge its neighbours into a pulse that is itself too
    /// short, matching the semantics of inertial delay channels.
    ///
    /// Implemented as a single stack pass (no clone of the edge vector,
    /// no revalidation): a new edge forming a too-short pulse with the
    /// last surviving edge annihilates together with it, re-exposing the
    /// edge before — exactly the cascade of the iterative formulation.
    /// Removing adjacent pairs preserves monotonicity and alternation, so
    /// the result is constructed directly.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidInput`] for negative `min_width`.
    pub fn filter_short_pulses(&self, min_width: f64) -> Result<DigitalTrace, WaveformError> {
        if min_width < 0.0 {
            return Err(WaveformError::InvalidInput {
                reason: "min_width must be non-negative".into(),
            });
        }
        let mut edges: Vec<Edge> = Vec::with_capacity(self.edges.len());
        for &e in &self.edges {
            if edges.last().is_some_and(|p| e.time - p.time < min_width) {
                edges.pop();
            } else {
                edges.push(e);
            }
        }
        Ok(DigitalTrace {
            initial: self.initial,
            edges,
        })
    }

    /// Constructs a trace from pre-validated parts: `edges` must be
    /// strictly increasing, finite, and alternating starting from
    /// `initial` (checked in debug builds only). Used by the SoA arena
    /// layer, whose representation guarantees the invariants.
    #[must_use]
    pub(crate) fn from_sorted_edges(initial: bool, edges: Vec<Edge>) -> Self {
        debug_assert!(edges
            .windows(2)
            .all(|w| w[0].time < w[1].time && w[0].rising != w[1].rising));
        debug_assert!(edges
            .first()
            .is_none_or(|e| e.time.is_finite() && e.rising != initial));
        DigitalTrace { initial, edges }
    }

    /// Shifts every edge by `dt`.
    #[must_use]
    pub fn shifted(&self, dt: f64) -> DigitalTrace {
        DigitalTrace {
            initial: self.initial,
            edges: self
                .edges
                .iter()
                .map(|e| Edge {
                    time: e.time + dt,
                    rising: e.rising,
                })
                .collect(),
        }
    }

    /// Renders the trace as an analog waveform with linear edges of the
    /// given `slew` (full 0→`vdd` transition time), centred on each edge so
    /// the 50 % crossing coincides with the edge time. Used to drive the
    /// analog simulator's inputs from generated digital traces.
    ///
    /// # Errors
    ///
    /// * [`WaveformError::InvalidInput`] — non-positive `slew` or `vdd`,
    ///   reversed time window, or edges closer together than `slew` (the
    ///   caller must pre-filter such traces).
    pub fn render_analog(
        &self,
        vdd: f64,
        slew: f64,
        t0: f64,
        t1: f64,
    ) -> Result<AnalogWaveform, WaveformError> {
        if !(slew > 0.0) || !(vdd > 0.0) {
            return Err(WaveformError::InvalidInput {
                reason: "slew and vdd must be positive".into(),
            });
        }
        if !(t1 > t0) {
            return Err(WaveformError::InvalidInput {
                reason: "t1 must exceed t0".into(),
            });
        }
        let level = |high: bool| if high { vdd } else { 0.0 };
        let mut ts = Vec::with_capacity(2 * self.edges.len() + 2);
        let mut vs = Vec::with_capacity(ts.capacity());
        let first_edge_start = self
            .edges
            .first()
            .map_or(f64::INFINITY, |e| e.time - slew / 2.0);
        ts.push(t0.min(first_edge_start) - slew);
        vs.push(level(self.initial));
        for (i, e) in self.edges.iter().enumerate() {
            let start = e.time - slew / 2.0;
            let end = e.time + slew / 2.0;
            if let Some(&last_t) = ts.last() {
                if start <= last_t {
                    return Err(WaveformError::InvalidInput {
                        reason: format!(
                            "edge {i} at {} overlaps previous ramp (slew {slew})",
                            e.time
                        ),
                    });
                }
            }
            ts.push(start);
            vs.push(level(!e.rising));
            ts.push(end);
            vs.push(level(e.rising));
        }
        let t_last = *ts.last().expect("at least the initial sample");
        ts.push(t1.max(t_last + slew));
        vs.push(level(self.final_value()));
        AnalogWaveform::from_samples(ts, vs)
    }
}

/// The deviation area between two traces over `[t0, t1]`: the total time
/// during which they disagree (the integral of `|a(t) − b(t)|` for 0/1
/// signals), the accuracy metric of the paper's Fig. 7.
///
/// # Errors
///
/// Returns [`WaveformError::InvalidInput`] when `t1 <= t0`.
///
/// # Examples
///
/// ```
/// use mis_waveform::{deviation_area, DigitalTrace};
///
/// # fn main() -> Result<(), mis_waveform::WaveformError> {
/// let a = DigitalTrace::with_edges(false, vec![(1.0, true), (2.0, false)])?;
/// let b = DigitalTrace::with_edges(false, vec![(1.5, true), (2.0, false)])?;
/// // They disagree on [1.0, 1.5).
/// assert!((deviation_area(&a, &b, 0.0, 3.0)? - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn deviation_area(
    a: &DigitalTrace,
    b: &DigitalTrace,
    t0: f64,
    t1: f64,
) -> Result<f64, WaveformError> {
    if !(t1 > t0) {
        return Err(WaveformError::InvalidInput {
            reason: "t1 must exceed t0".into(),
        });
    }
    // Merge the edge times inside the window into one sorted breakpoint
    // list; between consecutive breakpoints both traces are constant.
    let mut breaks: Vec<f64> = Vec::with_capacity(a.edges.len() + b.edges.len() + 2);
    breaks.push(t0);
    breaks.extend(
        a.edges
            .iter()
            .chain(b.edges.iter())
            .map(|e| e.time)
            .filter(|&t| t > t0 && t < t1),
    );
    breaks.push(t1);
    breaks.sort_by(|x, y| x.partial_cmp(y).expect("finite edge times"));
    breaks.dedup();

    let mut area = 0.0;
    for w in breaks.windows(2) {
        let mid = 0.5 * (w[0] + w[1]);
        if a.value_at(mid) != b.value_at(mid) {
            area += w[1] - w[0];
        }
    }
    Ok(area)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse(t_up: f64, t_down: f64) -> DigitalTrace {
        DigitalTrace::with_edges(false, vec![(t_up, true), (t_down, false)]).unwrap()
    }

    #[test]
    fn construction_enforces_alternation() {
        assert!(DigitalTrace::with_edges(false, vec![(1.0, true), (2.0, true)]).is_err());
        assert!(DigitalTrace::with_edges(true, vec![(1.0, true)]).is_err());
        assert!(DigitalTrace::with_edges(false, vec![(1.0, true), (1.0, false)]).is_err());
        assert!(DigitalTrace::with_edges(false, vec![(f64::NAN, true)]).is_err());
    }

    #[test]
    fn value_at_boundaries() {
        let t = pulse(1.0, 2.0);
        assert!(!t.value_at(0.999_999));
        assert!(t.value_at(1.0), "edge takes effect at its timestamp");
        assert!(t.value_at(1.999_999));
        assert!(!t.value_at(2.0));
        assert!(!t.final_value());
        assert_eq!(t.transition_count(), 2);
    }

    #[test]
    fn pulse_widths_iterator() {
        let t =
            DigitalTrace::with_edges(false, vec![(1.0, true), (3.0, false), (7.0, true)]).unwrap();
        let w: Vec<f64> = t.pulse_widths().collect();
        assert_eq!(w, vec![2.0, 4.0]);
    }

    #[test]
    fn filter_short_pulses_removes_glitch() {
        let t = DigitalTrace::with_edges(
            false,
            vec![(1.0, true), (1.1, false), (5.0, true), (9.0, false)],
        )
        .unwrap();
        let f = t.filter_short_pulses(0.5).unwrap();
        assert_eq!(f.transition_count(), 2);
        assert_eq!(f.edges()[0].time, 5.0);
    }

    #[test]
    fn filter_short_pulses_cascades() {
        // Removing the middle glitch merges its neighbours into a pulse
        // that is itself long enough to survive.
        let t = DigitalTrace::with_edges(
            false,
            vec![(0.0, true), (2.0, false), (2.1, true), (4.0, false)],
        )
        .unwrap();
        let f = t.filter_short_pulses(0.5).unwrap();
        assert_eq!(f.transition_count(), 2);
        assert_eq!(f.edges()[0].time, 0.0);
        assert_eq!(f.edges()[1].time, 4.0);
    }

    #[test]
    fn filter_rejects_negative_width() {
        assert!(pulse(0.0, 1.0).filter_short_pulses(-1.0).is_err());
    }

    #[test]
    fn deviation_area_identical_is_zero() {
        let t = pulse(1.0, 2.0);
        assert_eq!(deviation_area(&t, &t, 0.0, 3.0).unwrap(), 0.0);
    }

    #[test]
    fn deviation_area_shifted_pulse() {
        let a = pulse(1.0, 2.0);
        let b = pulse(1.25, 2.25);
        let d = deviation_area(&a, &b, 0.0, 3.0).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deviation_area_is_symmetric() {
        let a = pulse(1.0, 2.0);
        let b = pulse(0.5, 2.75);
        let ab = deviation_area(&a, &b, 0.0, 3.0).unwrap();
        let ba = deviation_area(&b, &a, 0.0, 3.0).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn deviation_area_missing_pulse_counts_full_width() {
        let a = pulse(1.0, 2.0);
        let b = DigitalTrace::constant(false);
        assert!((deviation_area(&a, &b, 0.0, 3.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deviation_area_respects_window() {
        let a = pulse(1.0, 2.0);
        let b = DigitalTrace::constant(false);
        // Window covers only half the pulse.
        assert!((deviation_area(&a, &b, 0.0, 1.5).unwrap() - 0.5).abs() < 1e-12);
        assert!(deviation_area(&a, &b, 1.0, 1.0).is_err());
    }

    #[test]
    fn deviation_area_opposite_constants() {
        let a = DigitalTrace::constant(true);
        let b = DigitalTrace::constant(false);
        assert_eq!(deviation_area(&a, &b, 0.0, 5.0).unwrap(), 5.0);
    }

    #[test]
    fn shifted_moves_edges() {
        let t = pulse(1.0, 2.0).shifted(0.5);
        assert_eq!(t.edges()[0].time, 1.5);
        assert_eq!(t.edges()[1].time, 2.5);
    }

    #[test]
    fn render_analog_crosses_half_vdd_at_edges() {
        let t = pulse(1.0, 2.0);
        let w = t.render_analog(0.8, 0.1, 0.0, 3.0).unwrap();
        let c = w.crossings(0.4).unwrap();
        assert_eq!(c.len(), 2);
        assert!((c[0].0 - 1.0).abs() < 1e-12);
        assert!((c[1].0 - 2.0).abs() < 1e-12);
        // Round trip: digitizing recovers the original edges.
        let d = w.digitize(0.4).unwrap();
        assert_eq!(d.transition_count(), 2);
        assert!((d.edges()[0].time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_analog_rejects_overlapping_ramps() {
        let t = pulse(1.0, 1.05);
        assert!(t.render_analog(0.8, 0.2, 0.0, 3.0).is_err());
    }

    #[test]
    fn render_analog_rejects_bad_args() {
        let t = pulse(1.0, 2.0);
        assert!(t.render_analog(0.8, 0.0, 0.0, 3.0).is_err());
        assert!(t.render_analog(0.0, 0.1, 0.0, 3.0).is_err());
        assert!(t.render_analog(0.8, 0.1, 3.0, 0.0).is_err());
    }
}
