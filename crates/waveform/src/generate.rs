//! Random input-trace generation matching the paper's waveform
//! configurations (Section VI).
//!
//! The paper drives the NOR gate with randomized transition streams
//! described as `µ/σ – LOCAL` or `µ/σ – GLOBAL`:
//!
//! * **LOCAL** — each input receives its own stream; successive
//!   transitions on one input are separated by `N(µ, σ²)`-distributed
//!   intervals. With small µ the two inputs constantly switch in close
//!   temporal proximity, stressing the MIS region of the delay functions.
//! * **GLOBAL** — a single global stream of transition instants (intervals
//!   again `N(µ, σ²)`) is generated and each instant is assigned to one
//!   input at random. Consecutive transitions on *different* inputs are
//!   then typically far apart, probing the SIS tails (`|Δ| ≫ 0`).
//!
//! Intervals are clamped below at `min_gap` to keep traces physical
//! (the normal distribution has unbounded support; SPICE decks need
//! positive, non-overlapping edges).

use mis_testkit::rng::TestRng;

use crate::{DigitalTrace, WaveformError};

/// Whether transition streams are generated per input or shared globally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Assignment {
    /// Independent interval stream per input (`LOCAL` in the paper).
    Local,
    /// One global interval stream, each event assigned to a random input
    /// (`GLOBAL` in the paper).
    Global,
}

/// Configuration of a random two-input trace pair.
///
/// # Examples
///
/// The paper's `100/50 - LOCAL` configuration with 500 transitions:
///
/// ```
/// use mis_waveform::generate::{Assignment, TraceConfig};
/// use mis_waveform::units::ps;
///
/// # fn main() -> Result<(), mis_waveform::WaveformError> {
/// let cfg = TraceConfig::new(ps(100.0), ps(50.0), Assignment::Local, 500);
/// let pair = cfg.generate(42)?;
/// assert_eq!(pair.a.transition_count() + pair.b.transition_count(), 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Mean inter-transition interval, in seconds.
    pub mu: f64,
    /// Standard deviation of the interval, in seconds.
    pub sigma: f64,
    /// LOCAL or GLOBAL stream assignment.
    pub assignment: Assignment,
    /// Total number of transitions across both inputs.
    pub transitions: usize,
    /// Time of the first possible transition, in seconds.
    pub start_time: f64,
    /// Smallest allowed interval between consecutive transitions of one
    /// stream, in seconds.
    pub min_gap: f64,
}

impl TraceConfig {
    /// Creates a configuration with the paper's defaults for start time
    /// (100 ps of settled inputs) and minimum gap (1 ps).
    #[must_use]
    pub fn new(mu: f64, sigma: f64, assignment: Assignment, transitions: usize) -> Self {
        TraceConfig {
            mu,
            sigma,
            assignment,
            transitions,
            start_time: 100e-12,
            min_gap: 1e-12,
        }
    }

    /// Human-readable label matching the paper's captions, e.g.
    /// `"100/50 - LOCAL"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{:.0}/{:.0} - {}",
            self.mu / 1e-12,
            self.sigma / 1e-12,
            match self.assignment {
                Assignment::Local => "LOCAL",
                Assignment::Global => "GLOBAL",
            }
        )
    }

    /// Generates a reproducible trace pair from `seed`.
    ///
    /// Both inputs start low (the NOR output therefore starts high), which
    /// is the settled state the paper's SPICE decks use.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidInput`] for non-positive `mu`,
    /// negative `sigma`, or zero transitions.
    pub fn generate(&self, seed: u64) -> Result<TracePair, WaveformError> {
        if !(self.mu > 0.0) || self.sigma < 0.0 {
            return Err(WaveformError::InvalidInput {
                reason: "mu must be positive and sigma non-negative".into(),
            });
        }
        if self.transitions == 0 {
            return Err(WaveformError::InvalidInput {
                reason: "at least one transition required".into(),
            });
        }
        let mut rng = TestRng::seed_from_u64(seed);
        let mut a = DigitalTrace::constant(false);
        let mut b = DigitalTrace::constant(false);

        match self.assignment {
            Assignment::Local => {
                // Each input gets ~half the transitions on its own clock.
                let n_a = self.transitions / 2 + self.transitions % 2;
                let n_b = self.transitions / 2;
                let mut t = self.start_time;
                let mut val = false;
                for _ in 0..n_a {
                    t += self.interval(&mut rng);
                    val = !val;
                    a.push_edge(t, val).expect("monotone by construction");
                }
                // Offset B's stream start by an independent draw so the two
                // streams are not phase locked.
                let mut t = self.start_time + 0.5 * self.interval(&mut rng);
                let mut val = false;
                for _ in 0..n_b {
                    t += self.interval(&mut rng);
                    val = !val;
                    b.push_edge(t, val).expect("monotone by construction");
                }
            }
            Assignment::Global => {
                let mut t = self.start_time;
                for _ in 0..self.transitions {
                    t += self.interval(&mut rng);
                    if rng.gen_bool(0.5) {
                        let v = !a.final_value();
                        a.push_edge(t, v).expect("monotone by construction");
                    } else {
                        let v = !b.final_value();
                        b.push_edge(t, v).expect("monotone by construction");
                    }
                }
            }
        }
        let horizon = a
            .edges()
            .last()
            .map_or(self.start_time, |e| e.time)
            .max(b.edges().last().map_or(self.start_time, |e| e.time))
            + 4.0 * self.mu;
        Ok(TracePair { a, b, horizon })
    }

    /// Draws one `N(µ, σ²)` interval, clamped at `min_gap`
    /// (Box–Muller; the testkit PRNG is uniform-only, and exactly two
    /// uniform draws per sample keep the stream reproducible).
    fn interval(&self, rng: &mut TestRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).max(self.min_gap)
    }
}

/// A generated pair of input traces plus a simulation horizon comfortably
/// covering the last transition.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePair {
    /// Input A.
    pub a: DigitalTrace,
    /// Input B.
    pub b: DigitalTrace,
    /// Suggested end of simulation, in seconds.
    pub horizon: f64,
}

/// The four waveform configurations evaluated in the paper's Fig. 7, with
/// the stated transition counts (500, except 250 for `5000/5 - GLOBAL`).
#[must_use]
pub fn paper_configurations() -> Vec<TraceConfig> {
    use crate::units::ps;
    vec![
        TraceConfig::new(ps(100.0), ps(50.0), Assignment::Local, 500),
        TraceConfig::new(ps(200.0), ps(100.0), Assignment::Local, 500),
        TraceConfig::new(ps(2000.0), ps(1000.0), Assignment::Global, 500),
        TraceConfig::new(ps(5000.0), ps(5.0), Assignment::Global, 250),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::ps;

    #[test]
    fn generation_is_reproducible() {
        let cfg = TraceConfig::new(ps(100.0), ps(50.0), Assignment::Local, 100);
        let p1 = cfg.generate(7).unwrap();
        let p2 = cfg.generate(7).unwrap();
        assert_eq!(p1, p2);
        let p3 = cfg.generate(8).unwrap();
        assert_ne!(p1, p3);
    }

    #[test]
    fn local_splits_transitions_between_inputs() {
        let cfg = TraceConfig::new(ps(100.0), ps(50.0), Assignment::Local, 501);
        let p = cfg.generate(1).unwrap();
        assert_eq!(p.a.transition_count(), 251);
        assert_eq!(p.b.transition_count(), 250);
    }

    #[test]
    fn global_total_matches() {
        let cfg = TraceConfig::new(ps(2000.0), ps(1000.0), Assignment::Global, 500);
        let p = cfg.generate(1).unwrap();
        assert_eq!(p.a.transition_count() + p.b.transition_count(), 500);
        // Randomness should give both inputs a reasonable share.
        assert!(p.a.transition_count() > 150);
        assert!(p.b.transition_count() > 150);
    }

    #[test]
    fn intervals_respect_min_gap() {
        // σ ≫ µ forces many clamped draws.
        let cfg = TraceConfig::new(ps(10.0), ps(100.0), Assignment::Local, 400);
        let p = cfg.generate(3).unwrap();
        for w in p.a.pulse_widths() {
            assert!(w >= cfg.min_gap - 1e-24);
        }
    }

    #[test]
    fn mean_interval_is_near_mu() {
        let cfg = TraceConfig::new(ps(1000.0), ps(10.0), Assignment::Local, 2000);
        let p = cfg.generate(11).unwrap();
        let widths: Vec<f64> = p.a.pulse_widths().collect();
        let mean = widths.iter().sum::<f64>() / widths.len() as f64;
        assert!(
            (mean - ps(1000.0)).abs() < ps(20.0),
            "mean interval {mean:e} far from 1000 ps"
        );
    }

    #[test]
    fn global_mixes_inputs_with_large_separations() {
        // In GLOBAL mode with µ = 5000 ps, consecutive events on different
        // inputs should essentially never be within 100 ps.
        let cfg = TraceConfig::new(ps(5000.0), ps(5.0), Assignment::Global, 250);
        let p = cfg.generate(5).unwrap();
        let mut all: Vec<(f64, char)> =
            p.a.edges()
                .iter()
                .map(|e| (e.time, 'a'))
                .chain(p.b.edges().iter().map(|e| (e.time, 'b')))
                .collect();
        all.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        let close_cross_pairs = all
            .windows(2)
            .filter(|w| w[0].1 != w[1].1 && (w[1].0 - w[0].0) < ps(100.0))
            .count();
        assert_eq!(close_cross_pairs, 0);
    }

    #[test]
    fn horizon_covers_all_edges() {
        let cfg = TraceConfig::new(ps(100.0), ps(50.0), Assignment::Local, 100);
        let p = cfg.generate(9).unwrap();
        let last =
            p.a.edges()
                .last()
                .unwrap()
                .time
                .max(p.b.edges().last().unwrap().time);
        assert!(p.horizon > last);
    }

    #[test]
    fn labels_match_paper_captions() {
        let labels: Vec<String> = paper_configurations().iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "100/50 - LOCAL",
                "200/100 - LOCAL",
                "2000/1000 - GLOBAL",
                "5000/5 - GLOBAL"
            ]
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(TraceConfig::new(0.0, ps(1.0), Assignment::Local, 10)
            .generate(0)
            .is_err());
        assert!(TraceConfig::new(ps(1.0), -ps(1.0), Assignment::Local, 10)
            .generate(0)
            .is_err());
        assert!(TraceConfig::new(ps(1.0), ps(1.0), Assignment::Local, 0)
            .generate(0)
            .is_err());
    }
}
