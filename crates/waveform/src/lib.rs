//! Waveforms, traces, digitization and the deviation-area accuracy metric.
//!
//! This crate is the shared signal vocabulary of the workspace:
//!
//! * [`AnalogWaveform`] — a sampled voltage-vs-time curve, as produced by
//!   the analog simulator (`mis-analog`) and consumed for threshold
//!   extraction and digitization.
//! * [`DigitalTrace`] — a binary signal as an initial value plus a strictly
//!   increasing, alternating edge list; the unit of exchange of the digital
//!   timing simulator (`mis-digital`).
//! * [`deviation_area`] — the paper's Fig. 7 accuracy metric: the integral
//!   of the absolute difference between two digitized traces.
//! * [`generate`] — random input-trace generation matching the paper's
//!   `µ/σ – LOCAL/GLOBAL` waveform configurations.
//! * [`arena`] — structure-of-arrays trace storage ([`TraceArena`],
//!   [`EdgeBuf`], [`TraceRef`]) for the allocation-free simulation hot
//!   path of `mis-digital`.
//!
//! # Examples
//!
//! Digitizing an analog ramp and measuring a deviation area:
//!
//! ```
//! use mis_waveform::{AnalogWaveform, DigitalTrace, deviation_area};
//!
//! # fn main() -> Result<(), mis_waveform::WaveformError> {
//! let ramp = AnalogWaveform::from_samples(vec![0.0, 1e-9], vec![0.0, 0.8])?;
//! let trace = ramp.digitize(0.4)?;           // crosses V_th at 0.5 ns
//! assert_eq!(trace.edges().len(), 1);
//!
//! let ideal = DigitalTrace::with_edges(false, vec![(0.5e-9, true)])?;
//! assert!(deviation_area(&trace, &ideal, 0.0, 1e-9)? < 1e-15);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod analog;
pub mod arena;
mod digital;
mod error;
pub mod generate;
pub mod units;

pub use analog::AnalogWaveform;
pub use arena::{ArenaTraces, EdgeBuf, TraceArena, TraceRef};
pub use digital::{deviation_area, DigitalTrace, Edge};
pub use error::WaveformError;
