//! Structure-of-arrays trace storage for allocation-free simulation.
//!
//! [`crate::DigitalTrace`] is the *exchange* format of the workspace: an
//! owned, self-validating edge list, convenient at API boundaries but
//! expensive on a simulation hot path, where every gate evaluation would
//! allocate a fresh `Vec<Edge>`. This module provides the *engine*
//! format:
//!
//! * [`TraceRef`] — a borrowed view of a trace as a flat `&[f64]` of edge
//!   times plus an initial value. Because a well-formed trace strictly
//!   alternates polarity, the polarity of edge `k` is implied by the
//!   initial value and the parity of `k`; no per-edge flag is stored,
//!   and logical inversion ([`TraceRef::inverted`]) is free.
//! * [`EdgeBuf`] — a reusable, growable output buffer with the same
//!   implicit-polarity representation, supporting stack-style push/pop
//!   (the shape of every cancellation rule in the delay channels) and an
//!   in-place inertial pulse filter.
//! * [`TraceArena`] — per-signal spans over one shared flat time array,
//!   plus two staging buffers, so an entire multi-gate network evaluation
//!   reuses the same storage run after run: after a warm-up run sizes the
//!   buffers, the steady state performs **zero** heap allocations.
//!
//! # Reuse contract
//!
//! An arena is reset (not shrunk) at the start of every run; capacity is
//! retained, so repeated runs over inputs of similar edge counts never
//! reallocate. Sealed spans are immutable for the rest of the run and are
//! read through [`ArenaTraces`], which borrows only the sealed storage —
//! leaving the staging buffers free to be written simultaneously.
//!
//! # Examples
//!
//! ```
//! use mis_waveform::{DigitalTrace, TraceArena};
//!
//! # fn main() -> Result<(), mis_waveform::WaveformError> {
//! let t = DigitalTrace::with_edges(false, vec![(1.0, true), (3.0, false)])?;
//! let mut arena = TraceArena::new();
//! let id = arena.push_trace(&t);
//! assert_eq!(arena.trace(id).times(), &[1.0, 3.0]);
//! assert!(arena.trace(id).rising(0));
//! assert_eq!(arena.to_trace(id), t);
//! # Ok(())
//! # }
//! ```

use crate::digital::DigitalTrace;
use crate::{Edge, WaveformError};

/// A borrowed structure-of-arrays view of a digital trace: an initial
/// value plus a strictly increasing slice of edge times. Edge polarities
/// are implied: a well-formed trace alternates, so edge `k` is rising iff
/// `k` is even and the initial value is low (and vice versa).
#[derive(Debug, Clone, Copy)]
pub struct TraceRef<'a> {
    initial: bool,
    times: &'a [f64],
}

impl<'a> TraceRef<'a> {
    /// Wraps raw parts. The caller asserts `times` is strictly
    /// increasing and finite (checked in debug builds only).
    #[must_use]
    pub fn new(initial: bool, times: &'a [f64]) -> Self {
        debug_assert!(
            times.windows(2).all(|w| w[0] < w[1]) && times.iter().all(|t| t.is_finite()),
            "TraceRef times must be finite and strictly increasing"
        );
        TraceRef { initial, times }
    }

    /// The signal value before the first edge.
    #[inline]
    #[must_use]
    pub fn initial_value(self) -> bool {
        self.initial
    }

    /// The edge times.
    #[inline]
    #[must_use]
    pub fn times(self) -> &'a [f64] {
        self.times
    }

    /// Number of edges.
    #[inline]
    #[must_use]
    pub fn len(self) -> usize {
        self.times.len()
    }

    /// Whether the trace has no edges.
    #[inline]
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.times.is_empty()
    }

    /// The polarity of edge `k` (implied by parity).
    #[inline]
    #[must_use]
    pub fn rising(self, k: usize) -> bool {
        k.is_multiple_of(2) ^ self.initial
    }

    /// The signal value after the last edge.
    #[inline]
    #[must_use]
    pub fn final_value(self) -> bool {
        (self.times.len() % 2 == 1) ^ self.initial
    }

    /// The logical NOT of this trace — same times, flipped initial value.
    /// Free, by the implicit-polarity representation.
    #[inline]
    #[must_use]
    pub fn inverted(self) -> TraceRef<'a> {
        TraceRef {
            initial: !self.initial,
            times: self.times,
        }
    }

    /// Materializes the view as an owned [`DigitalTrace`] (allocates).
    #[must_use]
    pub fn to_trace(self) -> DigitalTrace {
        let edges = self
            .times
            .iter()
            .enumerate()
            .map(|(k, &time)| Edge {
                time,
                rising: self.rising(k),
            })
            .collect();
        DigitalTrace::from_sorted_edges(self.initial, edges)
    }
}

/// A reusable output buffer for building one trace in SoA form.
///
/// Cleared (with a new initial value) rather than dropped between uses,
/// so its backing storage amortizes to zero allocations. Push enforces
/// the trace invariants (finite, strictly increasing times, alternating
/// polarity) exactly like [`DigitalTrace::push_edge`].
#[derive(Debug, Clone, Default)]
pub struct EdgeBuf {
    initial: bool,
    times: Vec<f64>,
}

impl EdgeBuf {
    /// Creates an empty buffer (initial value low).
    #[must_use]
    pub fn new() -> Self {
        EdgeBuf::default()
    }

    /// Creates a buffer with pre-reserved edge capacity.
    #[must_use]
    pub fn with_capacity(edges: usize) -> Self {
        EdgeBuf {
            initial: false,
            times: Vec::with_capacity(edges),
        }
    }

    /// Drops all edges and restarts from `initial`, keeping capacity.
    #[inline]
    pub fn clear(&mut self, initial: bool) {
        self.initial = initial;
        self.times.clear();
    }

    /// The signal value before the first edge.
    #[inline]
    #[must_use]
    pub fn initial_value(&self) -> bool {
        self.initial
    }

    /// The signal value after the last edge.
    #[inline]
    #[must_use]
    pub fn final_value(&self) -> bool {
        (self.times.len() % 2 == 1) ^ self.initial
    }

    /// Number of edges.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the buffer holds no edges.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The time of the most recently pushed edge.
    #[inline]
    #[must_use]
    pub fn last_time(&self) -> Option<f64> {
        self.times.last().copied()
    }

    /// Appends an edge whose polarity is implied by parity, enforcing
    /// finite, strictly increasing times.
    ///
    /// # Errors
    ///
    /// * [`WaveformError::NonFinite`] — NaN/inf time.
    /// * [`WaveformError::NotMonotonic`] — `time` not after the last edge.
    #[inline]
    pub fn push_time(&mut self, time: f64) -> Result<(), WaveformError> {
        if !time.is_finite() {
            return Err(WaveformError::NonFinite {
                index: self.times.len(),
            });
        }
        if let Some(&last) = self.times.last() {
            if !(time > last) {
                return Err(WaveformError::NotMonotonic {
                    index: self.times.len(),
                    reason: format!("edge at {time} not after previous edge at {last}"),
                });
            }
        }
        self.times.push(time);
        Ok(())
    }

    /// Appends an edge with an explicit polarity, additionally checking
    /// that it alternates (the [`DigitalTrace::push_edge`] contract).
    ///
    /// # Errors
    ///
    /// As [`EdgeBuf::push_time`], plus [`WaveformError::NotMonotonic`]
    /// when `rising` equals the current final value.
    #[inline]
    pub fn push(&mut self, time: f64, rising: bool) -> Result<(), WaveformError> {
        if rising == self.final_value() {
            return Err(WaveformError::NotMonotonic {
                index: self.times.len(),
                reason: format!(
                    "edge polarity {} does not alternate (signal already {})",
                    if rising { "rising" } else { "falling" },
                    if self.final_value() { "high" } else { "low" },
                ),
            });
        }
        self.push_time(time)
    }

    /// Removes and returns the most recent edge time (stack-style
    /// cancellation).
    #[inline]
    pub fn pop_time(&mut self) -> Option<f64> {
        self.times.pop()
    }

    /// Logical NOT in place: flips the initial value; the edge times are
    /// unchanged and every parity-implied polarity flips with it. Free,
    /// like [`TraceRef::inverted`].
    #[inline]
    pub fn invert(&mut self) {
        self.initial = !self.initial;
    }

    /// A borrowed view of the current contents.
    #[inline]
    #[must_use]
    pub fn as_ref(&self) -> TraceRef<'_> {
        TraceRef {
            initial: self.initial,
            times: &self.times,
        }
    }

    /// Replaces the contents with a copy of `trace` (no allocation once
    /// capacity suffices).
    pub fn copy_trace(&mut self, trace: &DigitalTrace) {
        self.clear(trace.initial_value());
        self.times.extend(trace.edges().iter().map(|e| e.time));
    }

    /// Replaces the contents with a copy of `view`.
    pub fn copy_ref(&mut self, view: TraceRef<'_>) {
        self.clear(view.initial_value());
        self.times.extend_from_slice(view.times());
    }

    /// Materializes the buffer as an owned [`DigitalTrace`] (allocates).
    #[must_use]
    pub fn to_trace(&self) -> DigitalTrace {
        self.as_ref().to_trace()
    }

    /// Removes pulses shorter than `min_width` in place — the inertial
    /// rejection rule, identical in semantics to
    /// [`DigitalTrace::filter_short_pulses`] but allocation-free: a
    /// single stack pass compacting the time array behind the read
    /// cursor. Cancelling an adjacent pair preserves alternation, so the
    /// implicit polarities stay valid.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidInput`] for negative `min_width`.
    pub fn filter_short_pulses_in_place(&mut self, min_width: f64) -> Result<(), WaveformError> {
        if min_width < 0.0 {
            return Err(WaveformError::InvalidInput {
                reason: "min_width must be non-negative".into(),
            });
        }
        let ts = &mut self.times;
        let mut kept = 0usize;
        for r in 0..ts.len() {
            let t = ts[r];
            if kept > 0 && t - ts[kept - 1] < min_width {
                // The pulse formed with the previous surviving edge is too
                // short: both vanish, re-exposing the edge before it (the
                // next iteration compares against it, which is exactly the
                // cascade rule of the iterative formulation).
                kept -= 1;
            } else {
                ts[kept] = t;
                kept += 1;
            }
        }
        ts.truncate(kept);
        Ok(())
    }
}

/// Span of one sealed trace inside a [`TraceArena`].
#[derive(Debug, Clone, Copy)]
struct Span {
    start: usize,
    len: usize,
    initial: bool,
}

/// Structure-of-arrays storage for a whole network evaluation: one flat
/// time array holding every signal's edges as contiguous spans, plus two
/// staging buffers (`out` for the trace being built, `scratch` for the
/// fused ideal-gate pass). See the module docs for the reuse contract.
#[derive(Debug, Clone, Default)]
pub struct TraceArena {
    times: Vec<f64>,
    spans: Vec<Span>,
    out: EdgeBuf,
    scratch: EdgeBuf,
}

/// Read-only access to the sealed spans of a [`TraceArena`], borrowed
/// disjointly from the staging buffers by [`TraceArena::stage`].
#[derive(Debug, Clone, Copy)]
pub struct ArenaTraces<'a> {
    times: &'a [f64],
    spans: &'a [Span],
}

impl<'a> ArenaTraces<'a> {
    /// The number of sealed traces.
    #[inline]
    #[must_use]
    pub fn len(self) -> usize {
        self.spans.len()
    }

    /// Whether no trace has been sealed yet.
    #[inline]
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.spans.is_empty()
    }

    /// A view of the `i`-th sealed trace.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[inline]
    #[must_use]
    pub fn trace(self, i: usize) -> TraceRef<'a> {
        let s = self.spans[i];
        TraceRef {
            initial: s.initial,
            times: &self.times[s.start..s.start + s.len],
        }
    }
}

impl TraceArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        TraceArena::default()
    }

    /// Creates an arena pre-sized for `signals` traces of about
    /// `edges_per_signal` edges each.
    #[must_use]
    pub fn with_capacity(signals: usize, edges_per_signal: usize) -> Self {
        TraceArena {
            times: Vec::with_capacity(signals * edges_per_signal),
            spans: Vec::with_capacity(signals),
            out: EdgeBuf::with_capacity(edges_per_signal),
            scratch: EdgeBuf::with_capacity(edges_per_signal),
        }
    }

    /// Drops all sealed traces and staging content, keeping capacity.
    pub fn reset(&mut self) {
        self.times.clear();
        self.spans.clear();
        self.out.clear(false);
        self.scratch.clear(false);
    }

    /// The number of sealed traces.
    #[inline]
    #[must_use]
    pub fn trace_count(&self) -> usize {
        self.spans.len()
    }

    /// Total number of edges across all sealed traces.
    #[inline]
    #[must_use]
    pub fn total_edges(&self) -> usize {
        self.times.len()
    }

    /// A view of the `i`-th sealed trace.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[inline]
    #[must_use]
    pub fn trace(&self, i: usize) -> TraceRef<'_> {
        ArenaTraces {
            times: &self.times,
            spans: &self.spans,
        }
        .trace(i)
    }

    /// Materializes the `i`-th sealed trace as an owned
    /// [`DigitalTrace`] (allocates).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn to_trace(&self, i: usize) -> DigitalTrace {
        self.trace(i).to_trace()
    }

    /// Copies an owned trace into the arena as the next sealed span,
    /// returning its index.
    pub fn push_trace(&mut self, trace: &DigitalTrace) -> usize {
        let start = self.times.len();
        self.times.extend(trace.edges().iter().map(|e| e.time));
        self.seal_span(start, trace.initial_value())
    }

    /// Copies a borrowed view into the arena as the next sealed span,
    /// returning its index. The view may live in *another* arena — this
    /// is how the `mis-sim` parallel engine merges worker-owned arenas
    /// into one result arena without materializing owned traces.
    pub fn push_view(&mut self, view: TraceRef<'_>) -> usize {
        let start = self.times.len();
        self.times.extend_from_slice(view.times());
        self.seal_span(start, view.initial_value())
    }

    /// Seals a copy of an already-sealed span (optionally inverted — the
    /// zero-time BUF/NOT gates), returning the new index.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn push_duplicate(&mut self, i: usize, invert: bool) -> usize {
        let s = self.spans[i];
        let start = self.times.len();
        self.times.extend_from_within(s.start..s.start + s.len);
        self.seal_span(start, s.initial ^ invert)
    }

    /// Splits the arena into the sealed read-only storage and the two
    /// staging buffers `(sealed, out, scratch)` — the shape of one fused
    /// gate + channel pass: inputs are read from `sealed`, the ideal
    /// gate output streams through `scratch`, the channel writes `out`.
    #[inline]
    pub fn stage(&mut self) -> (ArenaTraces<'_>, &mut EdgeBuf, &mut EdgeBuf) {
        (
            ArenaTraces {
                times: &self.times,
                spans: &self.spans,
            },
            &mut self.out,
            &mut self.scratch,
        )
    }

    /// Seals the current contents of the `out` staging buffer as the next
    /// trace span (one `memcpy` into the flat array), clears `out`, and
    /// returns the new index.
    pub fn seal_out(&mut self) -> usize {
        let start = self.times.len();
        self.times.extend_from_slice(self.out.as_ref().times());
        let initial = self.out.initial_value();
        self.out.clear(false);
        self.seal_span(start, initial)
    }

    fn seal_span(&mut self, start: usize, initial: bool) -> usize {
        self.spans.push(Span {
            start,
            len: self.times.len() - start,
            initial,
        });
        self.spans.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse(t0: f64, t1: f64) -> DigitalTrace {
        DigitalTrace::with_edges(false, vec![(t0, true), (t1, false)]).unwrap()
    }

    #[test]
    fn trace_ref_round_trips_polarity_by_parity() {
        let t =
            DigitalTrace::with_edges(true, vec![(1.0, false), (2.0, true), (4.0, false)]).unwrap();
        let mut buf = EdgeBuf::new();
        buf.copy_trace(&t);
        let v = buf.as_ref();
        assert!(!v.rising(0));
        assert!(v.rising(1));
        assert!(!v.rising(2));
        assert!(!v.final_value());
        assert_eq!(v.to_trace(), t);
    }

    #[test]
    fn inverted_view_is_logical_not() {
        let t = pulse(1.0, 2.0);
        let mut buf = EdgeBuf::new();
        buf.copy_trace(&t);
        let inv = buf.as_ref().inverted().to_trace();
        assert!(inv.initial_value());
        assert!(!inv.edges()[0].rising);
        assert_eq!(inv.edges()[0].time, 1.0);
        assert_eq!(inv.edges()[1].time, 2.0);
    }

    #[test]
    fn edgebuf_push_enforces_trace_invariants() {
        let mut buf = EdgeBuf::new();
        buf.clear(false);
        buf.push(1.0, true).unwrap();
        assert!(buf.push(2.0, true).is_err(), "polarity must alternate");
        assert!(buf.push(0.5, false).is_err(), "time must increase");
        assert!(buf.push_time(f64::NAN).is_err());
        buf.push(2.0, false).unwrap();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.last_time(), Some(2.0));
        assert_eq!(buf.pop_time(), Some(2.0));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn in_place_filter_matches_owned_filter() {
        let cases: Vec<(bool, Vec<f64>)> = vec![
            (false, vec![]),
            (false, vec![1.0, 1.1, 5.0, 9.0]),
            (false, vec![0.0, 2.0, 2.1, 4.0]),
            (true, vec![0.0, 0.2, 0.3, 0.6, 5.0]),
            (false, vec![0.0, 0.6, 0.9, 1.0]),
        ];
        for (init, times) in cases {
            let trace = TraceRef::new(init, &times).to_trace();
            let want = trace.filter_short_pulses(0.5).unwrap();
            let mut buf = EdgeBuf::new();
            buf.copy_trace(&trace);
            buf.filter_short_pulses_in_place(0.5).unwrap();
            assert_eq!(buf.to_trace(), want, "times {times:?}");
        }
        let mut buf = EdgeBuf::new();
        assert!(buf.filter_short_pulses_in_place(-1.0).is_err());
    }

    #[test]
    fn arena_spans_and_duplicates() {
        let mut arena = TraceArena::new();
        let a = arena.push_trace(&pulse(1.0, 2.0));
        let b = arena.push_trace(&DigitalTrace::constant(true));
        assert_eq!(arena.trace_count(), 2);
        assert_eq!(arena.trace(a).len(), 2);
        assert!(arena.trace(b).is_empty());
        assert!(arena.trace(b).initial_value());
        let c = arena.push_duplicate(a, true);
        assert!(arena.trace(c).initial_value());
        assert_eq!(arena.trace(c).times(), arena.trace(a).times());
        assert_eq!(arena.total_edges(), 4);
    }

    #[test]
    fn push_view_copies_across_arenas() {
        let mut src = TraceArena::new();
        let a = src.push_trace(&pulse(1.0, 2.0));
        let mut dst = TraceArena::new();
        dst.push_trace(&DigitalTrace::constant(true));
        let b = dst.push_view(src.trace(a).inverted());
        assert_eq!(dst.trace(b).times(), &[1.0, 2.0]);
        assert!(dst.trace(b).initial_value());
        assert_eq!(dst.to_trace(b), src.trace(a).inverted().to_trace());
    }

    #[test]
    fn arena_stage_and_seal() {
        let mut arena = TraceArena::new();
        arena.push_trace(&pulse(1.0, 4.0));
        {
            let (sealed, out, scratch) = arena.stage();
            assert_eq!(sealed.len(), 1);
            out.clear(true);
            // Shift the sealed input by 0.5 through the staging buffer.
            for &t in sealed.trace(0).times() {
                out.push_time(t + 0.5).unwrap();
            }
            scratch.clear(false); // staging buffers are independent
        }
        let id = arena.seal_out();
        assert_eq!(arena.trace(id).times(), &[1.5, 4.5]);
        assert!(arena.trace(id).initial_value());
    }

    #[test]
    fn arena_reset_keeps_capacity_and_drops_content() {
        let mut arena = TraceArena::with_capacity(4, 16);
        arena.push_trace(&pulse(1.0, 2.0));
        arena.reset();
        assert_eq!(arena.trace_count(), 0);
        assert_eq!(arena.total_edges(), 0);
    }
}
