use mis_num::interp;

use crate::{DigitalTrace, WaveformError};

/// A sampled analog voltage waveform: strictly increasing times with one
/// voltage per sample, interpreted piecewise-linearly between samples and
/// as constant outside them.
///
/// # Examples
///
/// ```
/// use mis_waveform::AnalogWaveform;
///
/// # fn main() -> Result<(), mis_waveform::WaveformError> {
/// let w = AnalogWaveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 0.8, 0.0])?;
/// assert_eq!(w.value_at(0.5), 0.4);
/// assert_eq!(w.value_at(-1.0), 0.0); // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogWaveform {
    ts: Vec<f64>,
    vs: Vec<f64>,
}

impl AnalogWaveform {
    /// Builds a waveform from parallel sample vectors.
    ///
    /// # Errors
    ///
    /// * [`WaveformError::Empty`] — no samples.
    /// * [`WaveformError::InvalidInput`] — length mismatch.
    /// * [`WaveformError::NotMonotonic`] — times not strictly increasing.
    /// * [`WaveformError::NonFinite`] — NaN/inf in either vector.
    pub fn from_samples(ts: Vec<f64>, vs: Vec<f64>) -> Result<Self, WaveformError> {
        if ts.is_empty() {
            return Err(WaveformError::Empty);
        }
        if ts.len() != vs.len() {
            return Err(WaveformError::InvalidInput {
                reason: format!("{} times but {} voltages", ts.len(), vs.len()),
            });
        }
        for (i, (&t, &v)) in ts.iter().zip(&vs).enumerate() {
            if !t.is_finite() || !v.is_finite() {
                return Err(WaveformError::NonFinite { index: i });
            }
        }
        if let Some(i) = (1..ts.len()).find(|&i| !(ts[i] > ts[i - 1])) {
            return Err(WaveformError::NotMonotonic {
                index: i,
                reason: format!("t[{i}] = {} <= t[{}] = {}", ts[i], i - 1, ts[i - 1]),
            });
        }
        Ok(AnalogWaveform { ts, vs })
    }

    /// A constant waveform, useful as a tied-high/tied-low input.
    ///
    /// # Examples
    ///
    /// ```
    /// let w = mis_waveform::AnalogWaveform::constant(0.8, 0.0, 1e-9);
    /// assert_eq!(w.value_at(0.5e-9), 0.8);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `t1 <= t0` or any argument is non-finite (programmer
    /// error, not data).
    #[must_use]
    pub fn constant(v: f64, t0: f64, t1: f64) -> Self {
        assert!(t1 > t0 && v.is_finite(), "invalid constant waveform");
        AnalogWaveform {
            ts: vec![t0, t1],
            vs: vec![v, v],
        }
    }

    /// Sample times.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.ts
    }

    /// Sample voltages.
    #[must_use]
    pub fn voltages(&self) -> &[f64] {
        &self.vs
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Always `false`: construction rejects empty waveforms.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Start of the sampled domain.
    #[must_use]
    pub fn t_start(&self) -> f64 {
        self.ts[0]
    }

    /// End of the sampled domain.
    #[must_use]
    pub fn t_end(&self) -> f64 {
        self.ts[self.ts.len() - 1]
    }

    /// Piecewise-linear value at `t` (constant extrapolation outside the
    /// sampled domain).
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        interp::lerp_table_unchecked(&self.ts, &self.vs, t)
    }

    /// All crossings of `level`, as `(time, rising)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::Numeric`] if the underlying table scan
    /// fails (cannot happen for a validly constructed waveform).
    pub fn crossings(&self, level: f64) -> Result<Vec<(f64, bool)>, WaveformError> {
        Ok(interp::level_crossings(&self.ts, &self.vs, level)?)
    }

    /// First crossing of `level` at or after `t_from`, if any.
    ///
    /// # Errors
    ///
    /// Same as [`AnalogWaveform::crossings`].
    pub fn first_crossing_after(
        &self,
        level: f64,
        t_from: f64,
    ) -> Result<Option<(f64, bool)>, WaveformError> {
        Ok(self
            .crossings(level)?
            .into_iter()
            .find(|&(t, _)| t >= t_from))
    }

    /// Digitizes against a threshold: the output trace is high whenever the
    /// waveform is above `threshold`, with edges at the interpolated
    /// crossing times. The initial value is taken from the first sample.
    ///
    /// # Errors
    ///
    /// Propagates crossing-extraction failures; returns
    /// [`WaveformError::NotMonotonic`] if the crossing list is degenerate
    /// (repeated crossing times from pathological data).
    pub fn digitize(&self, threshold: f64) -> Result<DigitalTrace, WaveformError> {
        let initial = self.vs[0] > threshold;
        let crossings = self.crossings(threshold)?;
        // Keep only polarity-consistent crossings: digitization of a real
        // waveform can report duplicate same-direction crossings when the
        // curve grazes the threshold; collapse them.
        let mut edges = Vec::with_capacity(crossings.len());
        let mut state = initial;
        for (t, rising) in crossings {
            if rising != state {
                edges.push((t, rising));
                state = rising;
            }
        }
        DigitalTrace::with_edges(initial, edges)
    }

    /// Measures the transition slew between `lo_frac` and `hi_frac` of the
    /// swing `[v_lo, v_hi]` around the crossing nearest `t_near`.
    /// Returns `None` when the waveform never spans the requested fractions
    /// around that crossing.
    #[must_use]
    pub fn slew_near(
        &self,
        t_near: f64,
        v_lo: f64,
        v_hi: f64,
        lo_frac: f64,
        hi_frac: f64,
    ) -> Option<f64> {
        let lo_level = v_lo + lo_frac * (v_hi - v_lo);
        let hi_level = v_lo + hi_frac * (v_hi - v_lo);
        let lo = self.crossings(lo_level).ok()?;
        let hi = self.crossings(hi_level).ok()?;
        let nearest = |v: &[(f64, bool)]| {
            v.iter()
                .min_by(|a, b| {
                    (a.0 - t_near)
                        .abs()
                        .partial_cmp(&(b.0 - t_near).abs())
                        .expect("finite times")
                })
                .map(|&(t, _)| t)
        };
        let tl = nearest(&lo)?;
        let th = nearest(&hi)?;
        Some((th - tl).abs())
    }

    /// Restricts the waveform to `[t0, t1]`, adding interpolated boundary
    /// samples.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidInput`] when the window is reversed
    /// or does not intersect the sampled domain.
    pub fn window(&self, t0: f64, t1: f64) -> Result<AnalogWaveform, WaveformError> {
        if !(t1 > t0) {
            return Err(WaveformError::InvalidInput {
                reason: "window must satisfy t1 > t0".into(),
            });
        }
        let mut ts = vec![t0];
        let mut vs = vec![self.value_at(t0)];
        for (&t, &v) in self.ts.iter().zip(&self.vs) {
            if t > t0 && t < t1 {
                ts.push(t);
                vs.push(v);
            }
        }
        ts.push(t1);
        vs.push(self.value_at(t1));
        AnalogWaveform::from_samples(ts, vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> AnalogWaveform {
        AnalogWaveform::from_samples(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            AnalogWaveform::from_samples(vec![], vec![]),
            Err(WaveformError::Empty)
        ));
        assert!(AnalogWaveform::from_samples(vec![0.0], vec![]).is_err());
        assert!(matches!(
            AnalogWaveform::from_samples(vec![0.0, 0.0], vec![1.0, 2.0]),
            Err(WaveformError::NotMonotonic { index: 1, .. })
        ));
        assert!(matches!(
            AnalogWaveform::from_samples(vec![0.0, 1.0], vec![1.0, f64::NAN]),
            Err(WaveformError::NonFinite { index: 1 })
        ));
    }

    #[test]
    fn value_interpolates_and_clamps() {
        let w = ramp();
        assert_eq!(w.value_at(0.25), 0.25);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(2.0), 1.0);
    }

    #[test]
    fn crossings_on_ramp() {
        let c = ramp().crossings(0.4).unwrap();
        assert_eq!(c.len(), 1);
        assert!((c[0].0 - 0.4).abs() < 1e-15);
        assert!(c[0].1);
    }

    #[test]
    fn first_crossing_after_skips_earlier() {
        let w = AnalogWaveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]).unwrap();
        let c = w.first_crossing_after(0.5, 1.0).unwrap().unwrap();
        assert!((c.0 - 1.5).abs() < 1e-15);
        assert!(!c.1, "the later crossing is falling");
    }

    #[test]
    fn digitize_pulse() {
        let w = AnalogWaveform::from_samples(
            vec![0.0, 1.0, 2.0, 3.0, 4.0],
            vec![0.0, 1.0, 1.0, 0.0, 0.0],
        )
        .unwrap();
        let d = w.digitize(0.5).unwrap();
        assert!(!d.initial_value());
        assert_eq!(d.edges().len(), 2);
        assert!((d.edges()[0].time - 0.5).abs() < 1e-15);
        assert!((d.edges()[1].time - 2.5).abs() < 1e-15);
    }

    #[test]
    fn digitize_initially_high() {
        let w = AnalogWaveform::from_samples(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap();
        let d = w.digitize(0.5).unwrap();
        assert!(d.initial_value());
        assert_eq!(d.edges().len(), 1);
        assert!(!d.edges()[0].rising);
    }

    #[test]
    fn digitize_constant_has_no_edges() {
        let w = AnalogWaveform::constant(0.8, 0.0, 1.0);
        let d = w.digitize(0.4).unwrap();
        assert!(d.initial_value());
        assert!(d.edges().is_empty());
    }

    #[test]
    fn slew_measures_20_80() {
        // Linear 0→1 over 1 s: 20–80 % slew is 0.6 s.
        let s = ramp().slew_near(0.5, 0.0, 1.0, 0.2, 0.8).unwrap();
        assert!((s - 0.6).abs() < 1e-12);
    }

    #[test]
    fn window_clips_and_interpolates() {
        let w = AnalogWaveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]).unwrap();
        let win = w.window(0.5, 1.5).unwrap();
        assert_eq!(win.t_start(), 0.5);
        assert_eq!(win.t_end(), 1.5);
        assert_eq!(win.value_at(0.5), 0.5);
        assert_eq!(win.value_at(1.0), 1.0);
        assert!(w.window(1.0, 1.0).is_err());
    }
}
