use std::error::Error;
use std::fmt;

/// Errors produced by waveform and trace construction or analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WaveformError {
    /// Sample or edge times are not strictly increasing, or a trace's edge
    /// polarities do not alternate.
    NotMonotonic {
        /// Index of the offending sample/edge.
        index: usize,
        /// Description of the violation.
        reason: String,
    },
    /// Empty input where at least one sample/edge is required.
    Empty,
    /// Inconsistent argument combination (mismatched lengths, reversed
    /// windows, non-positive slew, ...).
    InvalidInput {
        /// Description of the problem.
        reason: String,
    },
    /// A numeric value was NaN or infinite.
    NonFinite {
        /// Index of the offending value.
        index: usize,
    },
    /// An underlying numeric routine failed.
    Numeric(mis_num::NumError),
}

impl fmt::Display for WaveformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveformError::NotMonotonic { index, reason } => {
                write!(f, "non-monotonic data at index {index}: {reason}")
            }
            WaveformError::Empty => write!(f, "empty waveform or trace"),
            WaveformError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            WaveformError::NonFinite { index } => {
                write!(f, "non-finite value at index {index}")
            }
            WaveformError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl Error for WaveformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WaveformError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mis_num::NumError> for WaveformError {
    fn from(e: mis_num::NumError) -> Self {
        WaveformError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(WaveformError::Empty.to_string().contains("empty"));
        let e = WaveformError::NotMonotonic {
            index: 4,
            reason: "t[4] <= t[3]".into(),
        };
        assert!(e.to_string().contains("index 4"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<WaveformError>();
    }
}
