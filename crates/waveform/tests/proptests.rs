//! Property-based tests for traces, digitization and the deviation-area
//! metric, on the in-repo `mis-testkit` harness (offline replacement for
//! `proptest`).

use mis_testkit::prelude::*;
use mis_waveform::generate::{Assignment, TraceConfig};
use mis_waveform::units::ps;
use mis_waveform::{deviation_area, AnalogWaveform, DigitalTrace};

/// Strategy: a well-formed digital trace with up to 8 alternating edges.
fn trace() -> impl Strategy<Value = DigitalTrace> {
    (any_bool(), vec(0.01..10.0f64, 0..8)).prop_map(|(init, gaps)| {
        let mut t = 0.0;
        let mut v = init;
        let mut trace = DigitalTrace::constant(init);
        for g in gaps {
            t += g;
            v = !v;
            trace.push_edge(t, v).expect("monotone by construction");
        }
        trace
    })
}

#[test]
fn deviation_area_is_a_pseudometric() {
    Config::default().run(&(trace(), trace(), trace()), |(a, b, c)| {
        let t1 = 100.0;
        let d_ab = deviation_area(a, b, 0.0, t1).unwrap();
        let d_ba = deviation_area(b, a, 0.0, t1).unwrap();
        let d_ac = deviation_area(a, c, 0.0, t1).unwrap();
        let d_cb = deviation_area(c, b, 0.0, t1).unwrap();
        let d_aa = deviation_area(a, a, 0.0, t1).unwrap();
        prop_assert_eq!(d_aa, 0.0);
        prop_assert_eq!(d_ab, d_ba);
        prop_assert!(d_ab <= d_ac + d_cb + 1e-12, "triangle inequality");
        prop_assert!(d_ab >= 0.0 && d_ab <= t1);
        Ok(())
    });
}

#[test]
fn shifting_changes_area_by_at_most_shift_per_edge() {
    Config::default().run(&(trace(), 0.0..0.5f64), |(a, dt)| {
        let shifted = a.shifted(*dt);
        let d = deviation_area(a, &shifted, 0.0, 200.0).unwrap();
        let bound = dt * a.transition_count() as f64 + 1e-12;
        prop_assert!(d <= bound, "area {d} exceeds bound {bound}");
        Ok(())
    });
}

#[test]
fn render_digitize_round_trip() {
    Config::default().run(&trace(), |a| {
        // Render with a slew smaller than the minimum gap, then digitize:
        // the original edge times must be recovered.
        let min_gap = a.pulse_widths().fold(f64::INFINITY, f64::min);
        let slew = if min_gap.is_finite() {
            (min_gap * 0.5).min(0.005)
        } else {
            0.005
        };
        prop_assume!(slew > 1e-9);
        let w = a.render_analog(1.0, slew, -1.0, 100.0).unwrap();
        let d = w.digitize(0.5).unwrap();
        prop_assert_eq!(d.transition_count(), a.transition_count());
        for (e1, e2) in a.edges().iter().zip(d.edges()) {
            prop_assert!((e1.time - e2.time).abs() < 1e-9);
            prop_assert_eq!(e1.rising, e2.rising);
        }
        Ok(())
    });
}

#[test]
fn filter_short_pulses_is_idempotent() {
    Config::default().run(&(trace(), 0.0..2.0f64), |(a, w)| {
        let once = a.filter_short_pulses(*w).unwrap();
        let twice = once.filter_short_pulses(*w).unwrap();
        prop_assert_eq!(&once, &twice);
        // And never yields a pulse shorter than the window.
        for pw in once.pulse_widths() {
            prop_assert!(pw >= w - 1e-15);
        }
        Ok(())
    });
}

#[test]
fn value_at_consistent_with_edges() {
    Config::default().run(&trace(), |a| {
        prop_assert_eq!(a.value_at(-1.0), a.initial_value());
        prop_assert_eq!(a.value_at(1e9), a.final_value());
        for e in a.edges() {
            prop_assert_eq!(a.value_at(e.time), e.rising);
        }
        Ok(())
    });
}

#[test]
fn generated_traces_are_wellformed() {
    Config::default().run(
        &(0u64..500, any_bool(), 1usize..120),
        |&(seed, local, transitions)| {
            let assignment = if local {
                Assignment::Local
            } else {
                Assignment::Global
            };
            let cfg = TraceConfig::new(ps(200.0), ps(80.0), assignment, transitions);
            let pair = cfg.generate(seed).unwrap();
            prop_assert_eq!(
                pair.a.transition_count() + pair.b.transition_count(),
                transitions
            );
            // Both traces start low; edge lists are validated by construction,
            // but re-check monotonicity to guard the generator.
            for t in [&pair.a, &pair.b] {
                prop_assert!(!t.initial_value());
                for w in t.edges().windows(2) {
                    prop_assert!(w[1].time > w[0].time);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn analog_crossings_alternate() {
    Config::default().run(&vec(-1.0..2.0f64, 2..40), |samples| {
        let ts: Vec<f64> = (0..samples.len()).map(|i| i as f64).collect();
        let w = AnalogWaveform::from_samples(ts, samples.clone()).unwrap();
        let d = w.digitize(0.5).unwrap();
        // Digitization must produce a well-formed (alternating) trace —
        // with_edges would have rejected it otherwise; check value
        // consistency with the waveform at segment midpoints far from
        // crossings.
        let mut prev = d.initial_value();
        for e in d.edges() {
            prop_assert_ne!(e.rising, prev);
            prev = e.rising;
        }
        Ok(())
    });
}
