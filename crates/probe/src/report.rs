//! Deterministic rendering of a [`crate::Probe`] snapshot: a text
//! table for humans and a single JSON line for machines.

use std::fmt;
use std::fmt::Write as _;

use crate::json;

/// The snapshot value of one registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's current count.
    Counter(u64),
    /// A gauge's current value.
    Gauge(u64),
    /// A span timer's aggregates.
    Timer {
        /// Closed spans.
        count: u64,
        /// Total nanoseconds across spans.
        total_ns: u64,
        /// Longest single span, nanoseconds.
        max_ns: u64,
    },
    /// A histogram's aggregates (quantiles are bucket-midpoint
    /// estimates; `None` with no samples).
    Histogram {
        /// Recorded samples.
        count: u64,
        /// Median estimate.
        p50: Option<u64>,
        /// 90th-percentile estimate.
        p90: Option<u64>,
        /// 99th-percentile estimate.
        p99: Option<u64>,
    },
}

impl MetricValue {
    /// The metric kind's stable name (JSON `"kind"` field).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Timer { .. } => "timer",
            MetricValue::Histogram { .. } => "histogram",
        }
    }

    /// The scalar value of a counter or gauge; `None` for the
    /// aggregate kinds. The `sim_profile --expect` gate compares
    /// against this.
    #[must_use]
    pub fn scalar(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }
}

/// One snapshot row: a metric name and its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportRow {
    /// The registered metric name.
    pub name: String,
    /// The snapshot value.
    pub value: MetricValue,
}

/// A sorted snapshot of every metric in a [`crate::Probe`] registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReport {
    rows: Vec<ReportRow>,
}

impl ProbeReport {
    /// Wraps pre-sorted rows (the [`crate::Probe::report`] output).
    #[must_use]
    pub fn new(rows: Vec<ReportRow>) -> Self {
        ProbeReport { rows }
    }

    /// The rows, ascending by name.
    #[must_use]
    pub fn rows(&self) -> &[ReportRow] {
        &self.rows
    }

    /// Looks a metric up by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.rows.iter().find(|r| r.name == name).map(|r| &r.value)
    }

    /// Renders the snapshot as one JSON line:
    /// `{"probe":{"<name>":{"kind":...,...},...}}`, keys ascending —
    /// byte-deterministic for a given snapshot.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut s = String::from("{\"probe\":{");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{{\"kind\":\"{}\"",
                json::json_string(&r.name),
                r.value.kind()
            );
            match &r.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = write!(s, ",\"value\":{v}");
                }
                MetricValue::Timer {
                    count,
                    total_ns,
                    max_ns,
                } => {
                    let _ = write!(
                        s,
                        ",\"count\":{count},\"total_ns\":{total_ns},\"max_ns\":{max_ns}"
                    );
                }
                MetricValue::Histogram {
                    count,
                    p50,
                    p90,
                    p99,
                } => {
                    let opt = |v: &Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
                    let _ = write!(
                        s,
                        ",\"count\":{count},\"p50\":{},\"p90\":{},\"p99\":{}",
                        opt(p50),
                        opt(p90),
                        opt(p99)
                    );
                }
            }
            s.push('}');
        }
        s.push_str("}}");
        debug_assert!(json::is_wellformed(&s), "renderer emitted malformed JSON");
        s
    }
}

impl fmt::Display for ProbeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "probe report ({} metrics)", self.rows.len())?;
        let width = self.rows.iter().map(|r| r.name.len()).max().unwrap_or(0);
        for r in &self.rows {
            write!(f, "  {:width$}  ", r.name)?;
            match &r.value {
                MetricValue::Counter(v) => writeln!(f, "counter    {v}")?,
                MetricValue::Gauge(v) => writeln!(f, "gauge      {v}")?,
                MetricValue::Timer {
                    count,
                    total_ns,
                    max_ns,
                } => writeln!(
                    f,
                    "timer      count {count}  total {total_ns} ns  max {max_ns} ns"
                )?,
                MetricValue::Histogram {
                    count,
                    p50,
                    p90,
                    p99,
                } => {
                    let opt = |v: &Option<u64>| v.map_or("-".to_string(), |v| v.to_string());
                    writeln!(
                        f,
                        "histogram  count {count}  p50 {}  p90 {}  p99 {}",
                        opt(p50),
                        opt(p90),
                        opt(p99)
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Probe;

    fn sample_probe() -> Probe {
        let p = Probe::new();
        p.counter("sim.events").add(42);
        p.gauge("sim.heap_hw").record_max(9);
        p.timer("par.merge")
            .record(std::time::Duration::from_nanos(1500));
        let h = p.histogram("sim.edges_per_gate");
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        p
    }

    #[test]
    fn report_is_sorted_and_queryable() {
        let report = sample_probe().report();
        let names: Vec<&str> = report.rows().iter().map(|r| r.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(report.get("sim.events"), Some(&MetricValue::Counter(42)));
        assert_eq!(report.get("sim.events").unwrap().scalar(), Some(42));
        assert!(report.get("missing").is_none());
    }

    #[test]
    fn json_line_is_wellformed_single_line_and_deterministic() {
        let report = sample_probe().report();
        let line = report.to_json_line();
        assert!(!line.contains('\n'));
        assert!(crate::json::is_wellformed(&line), "{line}");
        assert!(line.starts_with("{\"probe\":{"));
        assert!(line.contains("\"sim.events\":{\"kind\":\"counter\",\"value\":42}"));
        assert!(line.contains(
            "\"par.merge\":{\"kind\":\"timer\",\"count\":1,\"total_ns\":1500,\"max_ns\":1500}"
        ));
        assert_eq!(line, report.to_json_line());
    }

    #[test]
    fn empty_histogram_renders_nulls_and_dashes() {
        let p = Probe::new();
        let _ = p.histogram("empty");
        let report = p.report();
        let line = report.to_json_line();
        assert!(line.contains(
            "\"empty\":{\"kind\":\"histogram\",\"count\":0,\"p50\":null,\"p90\":null,\"p99\":null}"
        ));
        assert!(report.to_string().contains("count 0  p50 -"));
    }

    #[test]
    fn text_report_lists_every_metric() {
        let text = sample_probe().report().to_string();
        assert!(text.starts_with("probe report (4 metrics)"));
        for name in [
            "par.merge",
            "sim.edges_per_gate",
            "sim.events",
            "sim.heap_hw",
        ] {
            assert!(text.contains(name), "{text}");
        }
    }
}
