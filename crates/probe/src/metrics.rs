//! The metrics core: atomic metric cells, recording handles, and the
//! [`Probe`] registry. See the crate docs for the registry model and
//! the disabled-mode guarantee.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::report::{MetricValue, ProbeReport, ReportRow};

/// Number of histogram buckets: bucket `0` holds the value `0`, bucket
/// `i ≥ 1` holds values with `ilog2(v) == i - 1`, i.e. the half-open
/// range `[2^(i-1), 2^i)` (the last bucket's upper edge is `u64::MAX`).
pub(crate) const HIST_BUCKETS: usize = 65;

/// The storage cell of a histogram: one atomic per log2 bucket.
#[derive(Debug)]
struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The storage cell of a span timer.
#[derive(Debug)]
struct TimerCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// One registered metric's shared storage.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCell>),
    Timer(Arc<TimerCell>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Timer(_) => "timer",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    metric: Metric,
}

#[derive(Debug)]
struct Shared {
    enabled: bool,
    registry: Mutex<Vec<Entry>>,
}

/// A named-metric registry — the handle an engine receives at
/// construction and registers its instrumentation against. Cloning
/// shares the registry; see the crate docs for the cold-registration /
/// hot-recording split and the disabled-mode guarantee.
#[derive(Debug, Clone)]
pub struct Probe {
    shared: Arc<Shared>,
}

impl Probe {
    /// An enabled probe: record calls land, [`Probe::report`] renders
    /// them.
    #[must_use]
    pub fn new() -> Self {
        Probe {
            shared: Arc::new(Shared {
                enabled: true,
                registry: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The no-op mode: registration still hands out working handles
    /// (so instrumented code is written once, unconditionally), but
    /// every hot-path record call reduces to one branch on a
    /// pre-loaded flag. [`Gauge::set`] still stores — see the crate
    /// docs.
    #[must_use]
    pub fn disabled() -> Self {
        Probe {
            shared: Arc::new(Shared {
                enabled: false,
                registry: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Whether record calls through this probe's handles land.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled
    }

    /// Looks `name` up in the registry, inserting via `make` when
    /// absent.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric
    /// kind — a programming error, not a runtime condition.
    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut reg = self
            .shared
            .registry
            .lock()
            .expect("probe registry poisoned");
        if let Some(e) = reg.iter().find(|e| e.name == name) {
            let metric = make();
            assert_eq!(
                e.metric.kind(),
                metric.kind(),
                "metric '{name}' registered as both {} and {}",
                e.metric.kind(),
                metric.kind()
            );
            return e.metric.clone();
        }
        let metric = make();
        reg.push(Entry {
            name: name.to_string(),
            metric: metric.clone(),
        });
        metric
    }

    /// Registers (or re-opens) the counter `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || Metric::Counter(Arc::new(AtomicU64::new(0)))) {
            Metric::Counter(cell) => Counter {
                enabled: self.shared.enabled,
                cell,
            },
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Registers (or re-opens) the gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Arc::new(AtomicU64::new(0)))) {
            Metric::Gauge(cell) => Gauge {
                enabled: self.shared.enabled,
                cell,
            },
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Registers (or re-opens) the histogram `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, || Metric::Histogram(Arc::new(HistCell::new()))) {
            Metric::Histogram(cell) => Histogram {
                enabled: self.shared.enabled,
                cell,
            },
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Registers (or re-opens) the span timer `name`.
    #[must_use]
    pub fn timer(&self, name: &str) -> SpanTimer {
        match self.register(name, || {
            Metric::Timer(Arc::new(TimerCell {
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
            }))
        }) {
            Metric::Timer(cell) => SpanTimer {
                enabled: self.shared.enabled,
                cell,
            },
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Snapshots every registered metric, sorted by name — the
    /// deterministic basis of both renderers.
    #[must_use]
    pub fn report(&self) -> ProbeReport {
        let reg = self
            .shared
            .registry
            .lock()
            .expect("probe registry poisoned");
        let mut rows: Vec<ReportRow> = reg
            .iter()
            .map(|e| ReportRow {
                name: e.name.clone(),
                value: match &e.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Metric::Gauge(c) => MetricValue::Gauge(c.load(Ordering::Relaxed)),
                    Metric::Histogram(h) => {
                        let snap = HistogramSnapshot::from_cell(h);
                        MetricValue::Histogram {
                            count: snap.count(),
                            p50: snap.quantile(0.50),
                            p90: snap.quantile(0.90),
                            p99: snap.quantile(0.99),
                        }
                    }
                    Metric::Timer(t) => MetricValue::Timer {
                        count: t.count.load(Ordering::Relaxed),
                        total_ns: t.total_ns.load(Ordering::Relaxed),
                        max_ns: t.max_ns.load(Ordering::Relaxed),
                    },
                },
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        ProbeReport::new(rows)
    }
}

impl Default for Probe {
    fn default() -> Self {
        Probe::new()
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: bool,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one (no-op when the probe is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op when the probe is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Whether record calls land.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// A last-set / high-water value.
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: bool,
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Stores `v` **unconditionally** — the cold-path write for
    /// configuration facts (partition sizes, worker loads) that
    /// accessors read back through the registry even with profiling
    /// off. Never call this from a hot loop.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if larger — the hot-path high-water
    /// write (no-op when the probe is disabled).
    #[inline]
    pub fn record_max(&self, v: u64) {
        if self.enabled {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 histogram of `u64` samples: bucket `0` holds
/// zeros, bucket `i ≥ 1` the range `[2^(i-1), 2^i)`. Quantile
/// estimates come from bucket midpoints, so an estimate is always
/// within a factor of two of the true order statistic (property-tested
/// in `tests/histogram.rs`).
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: bool,
    cell: Arc<HistCell>,
}

/// The bucket index of sample `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        v.ilog2() as usize + 1
    }
}

/// The inclusive value range `[lo, hi]` of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i == HIST_BUCKETS - 1 {
        (1 << (i - 1), u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

impl Histogram {
    /// Records one sample (no-op when the probe is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled {
            self.cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::from_cell(&self.cell)
    }
}

/// An owned copy of a histogram's bucket counts: mergeable (bucket-wise
/// addition — exactly associative and commutative) and queryable for
/// quantile estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; HIST_BUCKETS],
}

impl HistogramSnapshot {
    /// The empty snapshot (merge identity).
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
        }
    }

    fn from_cell(cell: &HistCell) -> Self {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| cell.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// A snapshot holding the given samples — the test-friendly
    /// constructor.
    #[must_use]
    pub fn of_samples(samples: &[u64]) -> Self {
        let mut s = Self::empty();
        for &v in samples {
            s.buckets[bucket_index(v)] += 1;
        }
        s
    }

    /// Total recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucket-wise sum — associative and commutative by construction.
    #[must_use]
    pub fn merge(mut self, other: &HistogramSnapshot) -> Self {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self
    }

    /// The bucket midpoint estimate of the `q`-quantile (`q` clamped
    /// to `[0, 1]`), or `None` with no samples. The estimate lies in
    /// the same bucket as the true order statistic of rank
    /// `ceil(q · count)`, hence within a factor of two of it.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let (lo, hi) = bucket_bounds(i);
                return Some(lo + (hi - lo) / 2);
            }
        }
        unreachable!("rank ≤ count ≤ cumulative total")
    }
}

/// A monotonic wall-clock span timer (count / total / max
/// nanoseconds). Spans are measured with [`Instant`]; a disabled probe
/// skips the clock reads entirely.
#[derive(Debug, Clone)]
pub struct SpanTimer {
    enabled: bool,
    cell: Arc<TimerCell>,
}

impl SpanTimer {
    /// Runs `f` inside a timed span.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = self.start();
        let r = f();
        self.stop(t0);
        r
    }

    /// Opens a span: `Some(now)` when enabled, `None` when disabled
    /// (no clock read). Pass the token to [`SpanTimer::stop`].
    #[inline]
    #[must_use]
    pub fn start(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Closes a span opened by [`SpanTimer::start`].
    #[inline]
    pub fn stop(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.record(t0.elapsed());
        }
    }

    /// Records an already-measured duration.
    pub fn record(&self, d: Duration) {
        if !self.enabled {
            return;
        }
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        self.cell.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.cell.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Closed spans so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Total nanoseconds across closed spans.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.cell.total_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record_when_enabled() {
        let p = Probe::new();
        let c = p.counter("a.count");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        let g = p.gauge("a.hw");
        g.record_max(7);
        g.record_max(3);
        assert_eq!(g.value(), 7);
        g.set(2);
        assert_eq!(g.value(), 2);
        // Re-opening by name shares storage.
        assert_eq!(p.counter("a.count").value(), 5);
    }

    #[test]
    fn disabled_probe_drops_records_but_keeps_sets() {
        let p = Probe::disabled();
        assert!(!p.is_enabled());
        let c = p.counter("x");
        c.inc();
        c.add(10);
        assert_eq!(c.value(), 0);
        let g = p.gauge("y");
        g.record_max(5);
        assert_eq!(g.value(), 0);
        g.set(5);
        assert_eq!(g.value(), 5, "set is the cold-path exception");
        let h = p.histogram("z");
        h.record(3);
        assert_eq!(h.snapshot().count(), 0);
        let t = p.timer("w");
        assert!(t.start().is_none());
        t.time(|| ());
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Probe::new().histogram("h");
        for v in [0u64, 1, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        // Median of {0,1,1,2,3,4,1000}: rank 4 → sample 2, bucket [2,3].
        assert_eq!(s.quantile(0.5), Some(2));
        // Max-ish quantile lands in 1000's bucket [512, 1023].
        let p100 = s.quantile(1.0).unwrap();
        assert!((512..=1023).contains(&p100));
    }

    #[test]
    fn timer_records_spans() {
        let t = Probe::new().timer("t");
        t.time(|| std::hint::black_box(1 + 1));
        let tok = t.start();
        t.stop(tok);
        assert_eq!(t.count(), 2);
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn kind_mismatch_panics() {
        let p = Probe::new();
        let _c = p.counter("same");
        let _g = p.gauge("same");
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        let (lo, hi) = bucket_bounds(HIST_BUCKETS - 1);
        assert_eq!(lo, 1 << 63);
        assert_eq!(hi, u64::MAX);
    }
}
