//! Structured event tracing: fixed-size POD trace events captured into
//! preallocated per-track ring buffers, exported as deterministic
//! Chrome Trace Format JSON.
//!
//! Where the [`crate::Probe`] registry answers *how much* (counts,
//! distributions, totals), a [`TraceSink`] answers *where and when*:
//! each recorded [`TraceEvent`] is a timestamped span, instant or
//! counter sample on a named track — one track per engine or worker
//! thread — and the whole capture renders as a timeline any
//! `chrome://tracing` / Perfetto-compatible viewer can load
//! ([`TraceSnapshot::to_chrome_json`]).
//!
//! # The recording model
//!
//! A [`TraceSink`] is the tracing analogue of [`crate::Probe`]: a
//! registry handed to an engine at construction. The engine registers
//! the tracks it will record on ([`TraceSink::track`], a cold-path
//! operation that allocates the track's ring buffer once) and keeps the
//! returned [`TraceTrack`] handles. *Recording* through a handle never
//! allocates: an event is written into the track's **preallocated ring
//! buffer** (one uncontended mutex lock — each track is recorded by one
//! thread at a time), and when the ring is full the oldest event is
//! overwritten and counted in the track's `dropped` tally. A traced
//! steady-state engine run therefore stays allocation-free, the same
//! guarantee the metric cells give (asserted in
//! `crates/sim/tests/alloc.rs`).
//!
//! # The disabled-mode contract
//!
//! [`TraceSink::disabled`] mirrors [`crate::Probe::disabled`]: track
//! registration still hands out working handles, but every record call
//! reduces to one branch on a pre-loaded bool — no clock reads, no
//! locking, no ring writes. [`TraceTrack::start`] returns `None` on a
//! disabled track, so span instrumentation skips *both* clock reads.
//! Engines take a sink unconditionally and pay nothing measurable when
//! nobody is tracing.
//!
//! # Determinism
//!
//! Timestamps are wall-clock and vary run to run, but everything else
//! is a pure function of the capture: tracks are exported sorted by
//! name, events in ring (chronological) order, with a fixed field
//! order, fixed `pid`/`tid` assignment, and fixed number formatting —
//! so two captures of the same deterministic workload differ only in
//! `"ts"`/`"dur"` values. [`normalize_timestamps`] rewrites exactly
//! those fields to `0.000`, which is what lets CI pin a golden Chrome
//! trace byte-for-byte (see `crates/sim/tests/trace.rs`).

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json;

/// Default per-track ring capacity, in events (32 bytes each): deep
/// enough for every committed fixture's full event stream with slack,
/// small enough that a dozen tracks stay in the low megabytes.
pub const DEFAULT_TRACK_CAPACITY: usize = 1 << 16;

/// What one [`TraceEvent`] describes. The discriminant is part of the
/// export format — see [`EventKind::name`] for the stable names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// One whole engine evaluation (span; `a` = run ordinal).
    Run,
    /// One gate evaluation (span; `a` = signal index, `b` = output
    /// edges sealed).
    Gate,
    /// An input span sealed into the arena (instant; `a` = signal
    /// index, `b` = edge count).
    Seal,
    /// A worker's busy interval (span; `a` = worker index).
    Busy,
    /// The parallel engine's signal-order merge (span).
    Merge,
    /// One wavefront level evaluated (span; `a` = level, `b` = level
    /// width in signals).
    Level,
    /// A fault-campaign chunk (span; `a` = chunk index, `b` = faults in
    /// the chunk).
    Chunk,
    /// One faulty replay inside a campaign chunk (span; `a` = global
    /// fault index, `b` = outcome: 0 undetected, 1 detected, 2
    /// budget-tripped).
    FaultRun,
    /// A run budget tripped (instant; `a` = resource code).
    Budget,
    /// A coverage-over-time sample (counter; `b` = this worker's
    /// cumulative detected faults).
    Coverage,
}

impl EventKind {
    /// The stable Chrome-trace event name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Run => "run",
            EventKind::Gate => "gate",
            EventKind::Seal => "seal",
            EventKind::Busy => "busy",
            EventKind::Merge => "merge",
            EventKind::Level => "level",
            EventKind::Chunk => "chunk",
            EventKind::FaultRun => "fault_run",
            EventKind::Budget => "budget",
            EventKind::Coverage => "coverage",
        }
    }

    /// The Chrome-trace phase: `X` (complete span), `i` (instant) or
    /// `C` (counter sample).
    #[must_use]
    pub fn phase(self) -> char {
        match self {
            EventKind::Run
            | EventKind::Gate
            | EventKind::Busy
            | EventKind::Merge
            | EventKind::Level
            | EventKind::Chunk
            | EventKind::FaultRun => 'X',
            EventKind::Seal | EventKind::Budget => 'i',
            EventKind::Coverage => 'C',
        }
    }

    /// The export names of the `a` and `b` payload fields.
    #[must_use]
    pub fn arg_names(self) -> (&'static str, &'static str) {
        match self {
            EventKind::Run => ("run", "b"),
            EventKind::Gate | EventKind::Seal => ("signal", "edges"),
            EventKind::Busy => ("worker", "b"),
            EventKind::Merge => ("a", "b"),
            EventKind::Level => ("level", "width"),
            EventKind::Chunk => ("chunk", "faults"),
            EventKind::FaultRun => ("fault", "outcome"),
            EventKind::Budget => ("resource", "b"),
            EventKind::Coverage => ("worker", "detected"),
        }
    }
}

/// One fixed-size POD trace record: a kind, two kind-specific `u32`
/// payload fields, and a `[t0, t1]` nanosecond interval relative to the
/// owning sink's epoch (`t0 == t1` for instants and counter samples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// First payload field — see the [`EventKind`] variants.
    pub a: u32,
    /// Second payload field — see the [`EventKind`] variants.
    pub b: u32,
    /// Span start, nanoseconds since the sink epoch.
    pub t0_ns: u64,
    /// Span end, nanoseconds since the sink epoch (`== t0_ns` for
    /// non-span events).
    pub t1_ns: u64,
}

impl TraceEvent {
    /// The span duration in nanoseconds (0 for instants and counters).
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.t1_ns.saturating_sub(self.t0_ns)
    }
}

/// The preallocated event store of one track: a wrap-around ring that
/// keeps the most recent `capacity` events and counts overwrites.
#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    /// Next write position once the ring has wrapped.
    next: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
    capacity: usize,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(capacity),
            next: 0,
            dropped: 0,
            capacity,
        }
    }

    /// Records `e`, overwriting the oldest event when full. Never
    /// allocates: the buffer was sized at construction.
    fn push(&mut self, e: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// The retained events, oldest first.
    fn in_order(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }
}

#[derive(Debug)]
struct TrackEntry {
    name: String,
    cell: Arc<Mutex<Ring>>,
}

#[derive(Debug)]
struct SinkShared {
    enabled: bool,
    epoch: Instant,
    capacity: usize,
    tracks: Mutex<Vec<TrackEntry>>,
}

/// A named-track event-trace registry — the tracing counterpart of
/// [`crate::Probe`]. Cloning shares the sink; see the module docs for
/// the recording model and the disabled-mode contract.
#[derive(Debug, Clone)]
pub struct TraceSink {
    shared: Arc<SinkShared>,
}

impl TraceSink {
    /// An enabled sink with the default per-track ring capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACK_CAPACITY)
    }

    /// An enabled sink whose tracks each hold at most `capacity` events
    /// (at least 1), preallocated at registration.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            shared: Arc::new(SinkShared {
                enabled: true,
                epoch: Instant::now(),
                capacity: capacity.max(1),
                tracks: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The no-op sink: registration hands out working handles whose
    /// record calls reduce to one branch on a pre-loaded flag — no
    /// clock reads, no ring writes. A disabled track's ring is not
    /// preallocated (it will never be written).
    #[must_use]
    pub fn disabled() -> Self {
        TraceSink {
            shared: Arc::new(SinkShared {
                enabled: false,
                epoch: Instant::now(),
                capacity: 0,
                tracks: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Whether record calls through this sink's tracks land.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled
    }

    /// Registers (or re-opens) the track `name`: same name, same ring —
    /// two engines tracing onto one track interleave their events,
    /// exactly like same-name metric cells accumulate.
    #[must_use]
    pub fn track(&self, name: &str) -> TraceTrack {
        let mut tracks = self
            .shared
            .tracks
            .lock()
            .expect("trace sink registry poisoned");
        let cell = match tracks.iter().find(|t| t.name == name) {
            Some(t) => Arc::clone(&t.cell),
            None => {
                let cell = Arc::new(Mutex::new(Ring::with_capacity(self.shared.capacity)));
                tracks.push(TrackEntry {
                    name: name.to_string(),
                    cell: Arc::clone(&cell),
                });
                cell
            }
        };
        TraceTrack {
            enabled: self.shared.enabled,
            epoch: self.shared.epoch,
            cell,
        }
    }

    /// Nanoseconds since the sink epoch (0 on a disabled sink — no
    /// clock read).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        if self.shared.enabled {
            ns_since(self.shared.epoch)
        } else {
            0
        }
    }

    /// A point-in-time copy of every track, sorted by track name — the
    /// deterministic basis of the exporter.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        let tracks = self
            .shared
            .tracks
            .lock()
            .expect("trace sink registry poisoned");
        let mut out: Vec<TrackSnapshot> = tracks
            .iter()
            .map(|t| {
                let ring = t.cell.lock().expect("trace ring poisoned");
                TrackSnapshot {
                    name: t.name.clone(),
                    events: ring.in_order(),
                    dropped: ring.dropped,
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        TraceSnapshot { tracks: out }
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

/// Saturating nanoseconds since `epoch`.
fn ns_since(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A recording handle onto one track of a [`TraceSink`]. Handles are
/// cheap to clone; each is intended to be recorded from one thread at a
/// time (the ring mutex stays uncontended), though concurrent use is
/// safe — events just interleave.
#[derive(Debug, Clone)]
pub struct TraceTrack {
    enabled: bool,
    epoch: Instant,
    cell: Arc<Mutex<Ring>>,
}

impl TraceTrack {
    /// Whether record calls land.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span: nanoseconds-since-epoch when enabled, `None` when
    /// disabled (no clock read). Pass the token to [`TraceTrack::span`].
    #[inline]
    #[must_use]
    pub fn start(&self) -> Option<u64> {
        self.enabled.then(|| ns_since(self.epoch))
    }

    /// Closes a span opened by [`TraceTrack::start`] and records it
    /// (no-op on a `None` token, i.e. when disabled).
    #[inline]
    pub fn span(&self, kind: EventKind, a: u32, b: u32, started: Option<u64>) {
        if let Some(t0_ns) = started {
            let t1_ns = ns_since(self.epoch).max(t0_ns);
            self.push(TraceEvent {
                kind,
                a,
                b,
                t0_ns,
                t1_ns,
            });
        }
    }

    /// Records an instantaneous event (no-op when disabled).
    #[inline]
    pub fn instant(&self, kind: EventKind, a: u32, b: u32) {
        if self.enabled {
            let t = ns_since(self.epoch);
            self.push(TraceEvent {
                kind,
                a,
                b,
                t0_ns: t,
                t1_ns: t,
            });
        }
    }

    /// Records a counter sample (no-op when disabled). By convention
    /// the sampled value lives in `b`.
    #[inline]
    pub fn sample(&self, kind: EventKind, a: u32, value: u32) {
        self.instant(kind, a, value);
    }

    /// The ring write: one uncontended lock, never an allocation.
    fn push(&self, e: TraceEvent) {
        self.cell.lock().expect("trace ring poisoned").push(e);
    }
}

/// One exported track: its name, retained events (oldest first) and how
/// many older events the ring overwrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackSnapshot {
    /// The registered track name (becomes the Chrome thread name).
    pub name: String,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events overwritten after the ring filled.
    pub dropped: u64,
}

/// A point-in-time copy of a whole [`TraceSink`], tracks sorted by
/// name — the input of the Chrome-trace exporter and of
/// `mis_analyze`'s per-level attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// The captured tracks, ascending by name.
    pub tracks: Vec<TrackSnapshot>,
}

/// `ns` as a Chrome-trace microsecond timestamp with fixed millisecond
/// precision (`"123.456"`) — deterministic formatting, full nanosecond
/// resolution.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

impl TraceSnapshot {
    /// Total retained events across tracks.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// All events of every track whose name equals `name`.
    #[must_use]
    pub fn track(&self, name: &str) -> Option<&TrackSnapshot> {
        self.tracks.iter().find(|t| t.name == name)
    }

    /// Renders the capture in Chrome Trace Format (the JSON object
    /// form, loadable by `chrome://tracing` and Perfetto): one
    /// `thread_name` metadata record per track (`tid` = 1-based
    /// position in the name-sorted track list) followed by the events
    /// in track order. Deterministic except for the `"ts"`/`"dur"`
    /// values — see the module docs and [`normalize_timestamps`].
    ///
    /// The output is always well-formed JSON
    /// ([`crate::json::is_wellformed`]); the CLI emitters re-validate
    /// before writing, same as every other renderer in the workspace.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut s = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        let mut first = true;
        let mut push_line = |line: &str, first: &mut bool| {
            if !*first {
                s.push_str(",\n");
            }
            *first = false;
            s.push_str(line);
        };
        push_line(
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"mis-delay\"}}",
            &mut first,
        );
        for (i, t) in self.tracks.iter().enumerate() {
            let tid = i + 1;
            let mut meta = format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json::json_string(&t.name)
            );
            push_line(&meta, &mut first);
            if t.dropped > 0 {
                meta = format!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"dropped_events\",\
                     \"args\":{{\"count\":{}}}}}",
                    t.dropped
                );
                push_line(&meta, &mut first);
            }
            for e in &t.events {
                let (ka, kb) = e.kind.arg_names();
                let mut line = format!(
                    "{{\"ph\":\"{}\",\"pid\":0,\"tid\":{tid},\"name\":\"{}\",\
                     \"cat\":\"mis\",\"ts\":{}",
                    e.kind.phase(),
                    e.kind.name(),
                    ts_us(e.t0_ns)
                );
                match e.kind.phase() {
                    'X' => {
                        let _ = write!(
                            line,
                            ",\"dur\":{},\"args\":{{\"{ka}\":{},\"{kb}\":{}}}}}",
                            ts_us(e.duration_ns()),
                            e.a,
                            e.b
                        );
                    }
                    'i' => {
                        let _ = write!(
                            line,
                            ",\"s\":\"t\",\"args\":{{\"{ka}\":{},\"{kb}\":{}}}}}",
                            e.a, e.b
                        );
                    }
                    _ => {
                        // Counter sample: Chrome plots each args series.
                        let _ = write!(line, ",\"args\":{{\"{kb}\":{}}}}}", e.b);
                    }
                }
                push_line(&line, &mut first);
            }
        }
        s.push_str("\n]}");
        debug_assert!(json::is_wellformed(&s), "exporter emitted malformed JSON");
        s
    }
}

/// Rewrites every `"ts"` and `"dur"` value in a Chrome-trace JSON
/// string to `0.000` — the normalization under which two captures of
/// the same deterministic workload are byte-identical (the golden-file
/// pin in `crates/sim/tests/trace.rs` rests on this).
#[must_use]
pub fn normalize_timestamps(chrome_json: &str) -> String {
    let mut out = String::with_capacity(chrome_json.len());
    let mut rest = chrome_json;
    loop {
        let hit = ["\"ts\":", "\"dur\":"]
            .iter()
            .filter_map(|k| rest.find(k).map(|p| (p, k.len())))
            .min();
        match hit {
            None => {
                out.push_str(rest);
                return out;
            }
            Some((pos, klen)) => {
                out.push_str(&rest[..pos + klen]);
                out.push_str("0.000");
                let tail = &rest[pos + klen..];
                let end = tail
                    .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')
                    .unwrap_or(tail.len());
                rest = &tail[end..];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing_and_reads_no_clock() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        let t = sink.track("sim");
        assert!(!t.is_enabled());
        assert_eq!(t.start(), None);
        t.span(EventKind::Run, 0, 0, t.start());
        t.instant(EventKind::Seal, 1, 2);
        t.sample(EventKind::Coverage, 0, 5);
        assert_eq!(sink.now_ns(), 0);
        let snap = sink.snapshot();
        assert_eq!(snap.event_count(), 0);
        assert_eq!(snap.tracks.len(), 1, "registration still lands");
    }

    #[test]
    fn spans_instants_and_samples_record_in_order() {
        let sink = TraceSink::new();
        let t = sink.track("sim");
        let tok = t.start();
        assert!(tok.is_some());
        t.span(EventKind::Run, 7, 0, tok);
        t.instant(EventKind::Seal, 3, 4);
        t.sample(EventKind::Coverage, 0, 9);
        let snap = sink.snapshot();
        let track = snap.track("sim").unwrap();
        assert_eq!(track.dropped, 0);
        let kinds: Vec<EventKind> = track.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Run, EventKind::Seal, EventKind::Coverage]
        );
        let run = &track.events[0];
        assert_eq!(run.a, 7);
        assert!(run.t1_ns >= run.t0_ns);
        let seal = &track.events[1];
        assert_eq!((seal.a, seal.b), (3, 4));
        assert_eq!(seal.t0_ns, seal.t1_ns);
    }

    #[test]
    fn same_name_shares_a_ring_and_the_snapshot_sorts_tracks() {
        let sink = TraceSink::new();
        let a = sink.track("zeta");
        let b = sink.track("alpha");
        let a2 = sink.track("zeta");
        a.instant(EventKind::Seal, 0, 0);
        a2.instant(EventKind::Seal, 1, 0);
        b.instant(EventKind::Seal, 2, 0);
        let snap = sink.snapshot();
        let names: Vec<&str> = snap.tracks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(snap.track("zeta").unwrap().events.len(), 2);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let sink = TraceSink::with_capacity(3);
        let t = sink.track("sim");
        for i in 0..5u32 {
            t.instant(EventKind::Seal, i, 0);
        }
        let snap = sink.snapshot();
        let track = snap.track("sim").unwrap();
        assert_eq!(track.dropped, 2);
        let kept: Vec<u32> = track.events.iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![2, 3, 4], "ring keeps the most recent events");
    }

    #[test]
    fn chrome_export_is_wellformed_and_structurally_deterministic() {
        let sink = TraceSink::new();
        let t = sink.track("sim");
        t.span(EventKind::Gate, 5, 2, t.start());
        t.instant(EventKind::Budget, 1, 0);
        sink.track("par.w0").sample(EventKind::Coverage, 0, 3);
        let snap = sink.snapshot();
        let json = snap.to_chrome_json();
        assert!(crate::json::is_wellformed(&json), "{json}");
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"gate\""));
        assert!(json.contains("\"ph\":\"C\""));
        // Normalization wipes only timestamps; re-normalizing is stable.
        let norm = normalize_timestamps(&json);
        assert!(crate::json::is_wellformed(&norm), "{norm}");
        assert!(norm.contains("\"ts\":0.000"));
        assert_eq!(norm, normalize_timestamps(&norm));
        // Two exports of the same snapshot are byte-identical.
        assert_eq!(json, snap.to_chrome_json());
    }

    #[test]
    fn dropped_events_surface_in_the_export() {
        let sink = TraceSink::with_capacity(1);
        let t = sink.track("sim");
        t.instant(EventKind::Seal, 0, 0);
        t.instant(EventKind::Seal, 1, 0);
        let json = sink.snapshot().to_chrome_json();
        assert!(json.contains("\"dropped_events\""));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn timestamp_formatting_is_fixed_width_fractional() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(1), "0.001");
        assert_eq!(ts_us(1_234), "1.234");
        assert_eq!(ts_us(1_000_042), "1000.042");
    }

    #[test]
    fn normalizer_handles_adjacent_fields() {
        let s = "{\"ts\":12.345,\"dur\":6.789,\"x\":1}";
        assert_eq!(
            normalize_timestamps(s),
            "{\"ts\":0.000,\"dur\":0.000,\"x\":1}"
        );
    }
}
