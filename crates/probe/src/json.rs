//! The workspace's shared JSON renderer conventions: string escaping,
//! float formatting, and a minimal well-formedness validator.
//!
//! Every machine-readable line the workspace emits (the probe report,
//! `sim_profile --json`, `lint_bench --json`) goes through these
//! helpers, so the emitters cannot silently drift apart — and each
//! binary validates its own output with [`is_wellformed`] before
//! printing, which is what the CI gate's "malformed JSON fails"
//! promise rests on.

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal (quotes included).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON value: scientific notation for finite
/// values (`1.5e-10` is a valid JSON number), `null` otherwise —
/// infinities and NaN have no JSON representation.
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// A minimal recursive-descent JSON syntax check: `true` iff `s` is
/// one complete, well-formed JSON value. Validates structure only (no
/// number range or unicode-escape semantics beyond hex digits) —
/// enough to catch a broken renderer, which is its one job.
#[must_use]
pub fn is_wellformed(s: &str) -> bool {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    match parse_value(b, pos, 0) {
        Some(next) => {
            pos = skip_ws(b, next);
            pos == b.len()
        }
        None => false,
    }
}

/// Nesting depth cap — a structural validator needs no 10k-deep trees,
/// and the cap keeps recursion bounded.
const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

/// Parses one JSON value at `pos`, returning the position after it.
fn parse_value(b: &[u8], pos: usize, depth: usize) -> Option<usize> {
    if depth > MAX_DEPTH {
        return None;
    }
    match b.get(pos)? {
        b'{' => parse_object(b, pos + 1, depth + 1),
        b'[' => parse_array(b, pos + 1, depth + 1),
        b'"' => parse_string(b, pos + 1),
        b't' => parse_lit(b, pos, b"true"),
        b'f' => parse_lit(b, pos, b"false"),
        b'n' => parse_lit(b, pos, b"null"),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => None,
    }
}

fn parse_lit(b: &[u8], pos: usize, lit: &[u8]) -> Option<usize> {
    b.get(pos..pos + lit.len())
        .filter(|s| *s == lit)
        .map(|_| pos + lit.len())
}

/// `pos` is just past the opening quote.
fn parse_string(b: &[u8], mut pos: usize) -> Option<usize> {
    loop {
        match b.get(pos)? {
            b'"' => return Some(pos + 1),
            b'\\' => match b.get(pos + 1)? {
                b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => pos += 2,
                b'u' => {
                    let hex = b.get(pos + 2..pos + 6)?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return None;
                    }
                    pos += 6;
                }
                _ => return None,
            },
            0x00..=0x1f => return None,
            _ => pos += 1,
        }
    }
}

fn parse_number(b: &[u8], mut pos: usize) -> Option<usize> {
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let int_start = pos;
    while pos < b.len() && b[pos].is_ascii_digit() {
        pos += 1;
    }
    if pos == int_start {
        return None;
    }
    // Leading zeros: "0" alone is fine, "01" is not.
    if b[int_start] == b'0' && pos > int_start + 1 {
        return None;
    }
    if b.get(pos) == Some(&b'.') {
        pos += 1;
        let frac_start = pos;
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == frac_start {
            return None;
        }
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        let exp_start = pos;
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == exp_start {
            return None;
        }
    }
    Some(pos)
}

/// `pos` is just past `{`.
fn parse_object(b: &[u8], pos: usize, depth: usize) -> Option<usize> {
    let mut pos = skip_ws(b, pos);
    if b.get(pos) == Some(&b'}') {
        return Some(pos + 1);
    }
    loop {
        if *b.get(pos)? != b'"' {
            return None;
        }
        pos = parse_string(b, pos + 1)?;
        pos = skip_ws(b, pos);
        if *b.get(pos)? != b':' {
            return None;
        }
        pos = skip_ws(b, pos + 1);
        pos = parse_value(b, pos, depth)?;
        pos = skip_ws(b, pos);
        match b.get(pos)? {
            b',' => pos = skip_ws(b, pos + 1),
            b'}' => return Some(pos + 1),
            _ => return None,
        }
    }
}

/// `pos` is just past `[`.
fn parse_array(b: &[u8], pos: usize, depth: usize) -> Option<usize> {
    let mut pos = skip_ws(b, pos);
    if b.get(pos) == Some(&b']') {
        return Some(pos + 1);
    }
    loop {
        pos = parse_value(b, pos, depth)?;
        pos = skip_ws(b, pos);
        match b.get(pos)? {
            b',' => pos = skip_ws(b, pos + 1),
            b']' => return Some(pos + 1),
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_the_validator() {
        for s in ["plain", "with \"quotes\"", "back\\slash", "ctrl\nchars\t"] {
            let lit = json_string(s);
            assert!(is_wellformed(&lit), "{lit}");
        }
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("\n"), "\"\\u000a\"");
    }

    #[test]
    fn float_formatting_is_json_safe() {
        for v in [0.0, 1.0, -2.5, 1.5e-10, 3.2e12] {
            let s = json_f64(v);
            assert!(is_wellformed(&s), "{v} -> {s}");
        }
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn validator_accepts_wellformed() {
        for s in [
            "null",
            "true",
            "-12.5e-3",
            "\"str\"",
            "[]",
            "{}",
            "[1,2,[3,{\"a\":null}]]",
            "{\"a\":{\"b\":[1,2]},\"c\":\"d\"}",
            " { \"a\" : 1 } ",
            "0",
            "1e0",
        ] {
            assert!(is_wellformed(s), "{s}");
        }
    }

    #[test]
    fn validator_rejects_malformed() {
        for s in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\escape\\x\"",
            "truefalse",
            "{} {}",
            "[1 2]",
            "nul",
        ] {
            assert!(!is_wellformed(s), "{s} should be rejected");
        }
    }

    #[test]
    fn depth_cap_rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(!is_wellformed(&deep));
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(is_wellformed(&ok));
    }
}
