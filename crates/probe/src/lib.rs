//! Zero-overhead observability for the mis-delay engines: a metrics
//! registry, deterministic report renderers, and a VCD waveform export.
//!
//! # The registry model
//!
//! A [`Probe`] is a named-metric registry handed to an engine at
//! construction. The engine registers the metrics it will record —
//! [`Counter`]s, high-water [`Gauge`]s, fixed-bucket log2
//! [`Histogram`]s, monotonic [`SpanTimer`]s — and keeps the returned
//! handles. Registration is a cold-path operation (it locks the
//! registry and may allocate); *recording* through a handle is an
//! atomic update with no locking and no allocation, so instrumented
//! hot paths keep the workspace's steady-state zero-allocation
//! guarantees (asserted under the `mis-testkit` counting allocator).
//!
//! # The disabled-mode guarantee
//!
//! [`Probe::disabled`] yields a probe whose *record* calls
//! ([`Counter::inc`]/[`Counter::add`], [`Gauge::record_max`],
//! [`Histogram::record`], the [`SpanTimer`] span operations) reduce to
//! one predictable branch on a pre-loaded flag — no atomics, no clock
//! reads — so engines can take instrumentation unconditionally and pay
//! nothing hot-path-measurable when nobody is watching. [`Gauge::set`]
//! is the deliberate exception: it stores unconditionally, because it
//! records cold-path *configuration facts* (worker loads, partition
//! sizes) that accessors like
//! `ParallelSimulator::worker_loads` read back through the registry
//! even when profiling is off.
//!
//! # Reports
//!
//! [`Probe::report`] snapshots every registered metric, sorted by
//! name, into a [`ProbeReport`] that renders as a deterministic text
//! table (`Display`) and as one machine-readable JSON line
//! ([`ProbeReport::to_json_line`]); the [`json`] module holds the
//! shared renderer conventions (string escaping, float formatting, a
//! minimal well-formedness validator) that the workspace's other JSON
//! emitters reuse.
//!
//! # VCD export
//!
//! The [`vcd`] module serializes named [`mis_waveform::TraceRef`]
//! views — a simulator result set — as a Value Change Dump for
//! standard waveform viewers, mapping the workspace's parity-implied
//! edge polarity to explicit `0`/`1` value changes.
//!
//! # Event tracing
//!
//! The [`trace`] module is the registry's timeline counterpart: a
//! [`TraceSink`] of fixed-size POD [`TraceEvent`]s captured into
//! preallocated per-track ring buffers under the same
//! one-bool disabled-mode contract, exported as deterministic Chrome
//! Trace Format JSON ([`TraceSnapshot::to_chrome_json`]) loadable by
//! `chrome://tracing` and Perfetto.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
mod metrics;
mod report;
pub mod trace;
pub mod vcd;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Probe, SpanTimer};
pub use report::{MetricValue, ProbeReport, ReportRow};
pub use trace::{EventKind, TraceEvent, TraceSink, TraceSnapshot, TraceTrack, TrackSnapshot};
