//! Value Change Dump (VCD) export of simulator result sets.
//!
//! A [`VcdSignal`] pairs a signal name (from the netlist) with a
//! borrowed [`TraceRef`] view; [`write_vcd`] serializes a set of them
//! as an IEEE-1364 VCD file that standard waveform viewers (GTKWave
//! and friends) open directly.
//!
//! # Polarity and time mapping
//!
//! The workspace stores traces as an initial value plus a sorted edge
//! *time* list, with polarities implied by parity (edge `k` rises iff
//! `k` even XOR initial). VCD wants explicit values, so the writer
//! walks each trace toggling from the initial value and emits `0`/`1`
//! value changes. Times (seconds, `f64`) are quantized to the
//! **1 fs** timescale by rounding ([`quantize_edges`]); a pulse whose
//! two edges round to the same femtosecond tick is unrepresentable at
//! that timescale and is dropped — pairwise, so the parity/polarity
//! correspondence survives, exactly like an inertial rejection with a
//! 1 fs window. (The engines' monotonicity nudge is 1e-18 s, three
//! decimal orders below the tick, so nudged edges are the one place
//! this fires in practice.)

use std::fmt;
use std::io;

use mis_waveform::TraceRef;

/// Femtoseconds per second — the fixed `$timescale 1 fs` of the export.
pub const FS_PER_SECOND: f64 = 1e15;

/// One named signal to dump.
#[derive(Debug, Clone, Copy)]
pub struct VcdSignal<'a> {
    /// The declared wire name (netlist signal name).
    pub name: &'a str,
    /// The signal's trace view.
    pub trace: TraceRef<'a>,
}

/// Why a VCD export failed.
#[derive(Debug)]
pub enum VcdError {
    /// The underlying writer failed.
    Io(io::Error),
    /// A signal name is empty or contains non-printable/whitespace
    /// characters (VCD identifiers are whitespace-delimited tokens).
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// An edge time is negative, non-finite, or too large for the
    /// femtosecond tick range.
    BadTime {
        /// The signal whose trace holds the edge.
        signal: String,
        /// The offending time, seconds.
        time: f64,
    },
}

impl fmt::Display for VcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcdError::Io(e) => write!(f, "vcd write failed: {e}"),
            VcdError::InvalidName { name } => {
                write!(
                    f,
                    "invalid vcd signal name {name:?} (empty or non-printable)"
                )
            }
            VcdError::BadTime { signal, time } => write!(
                f,
                "signal '{signal}': edge time {time:e} s not representable at the 1 fs timescale"
            ),
        }
    }
}

impl std::error::Error for VcdError {}

impl From<io::Error> for VcdError {
    fn from(e: io::Error) -> Self {
        VcdError::Io(e)
    }
}

/// Quantizes a sorted edge-time list (seconds) to femtosecond ticks,
/// dropping — pairwise, stack-style — adjacent edges that round to the
/// same tick (a sub-tick pulse is unrepresentable; removing both edges
/// preserves the alternating parity polarity). Returns `Err(t)` for
/// the first time that is negative, non-finite, or beyond the `u64`
/// tick range.
///
/// # Errors
///
/// `Err(time)` with the first unrepresentable edge time.
pub fn quantize_edges(times: &[f64]) -> Result<Vec<u64>, f64> {
    let mut ticks: Vec<u64> = Vec::with_capacity(times.len());
    for &t in times {
        // The comparison also rejects NaN. 2^63 fs ≈ 2.5 hours of
        // simulated time — far past any trace here; the guard keeps the
        // cast lossless rather than saturating silently.
        let scaled = (t * FS_PER_SECOND).round();
        if !(t >= 0.0) || !(scaled <= 9.2e18) {
            return Err(t);
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let tick = scaled as u64;
        if ticks.last() == Some(&tick) {
            ticks.pop();
        } else {
            ticks.push(tick);
        }
    }
    Ok(ticks)
}

/// The printable-ASCII identifier code of wire `i` (base-94 over
/// `'!'..='~'`, least-significant digit first).
#[must_use]
pub fn id_code(i: usize) -> String {
    let mut code = String::new();
    let mut i = i;
    loop {
        #[allow(clippy::cast_possible_truncation)]
        let digit = (i % 94) as u8;
        code.push((b'!' + digit) as char);
        i /= 94;
        if i == 0 {
            return code;
        }
        i -= 1; // Bijective numeration: "!!" must differ from "!".
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty() && name.chars().all(|c| c.is_ascii_graphic())
}

/// Writes `signals` as one VCD module scope (`top`) at a 1 fs
/// timescale. Deterministic: the output depends only on the signal
/// list (declaration order = list order; value changes sorted by tick,
/// then by list index).
///
/// # Errors
///
/// [`VcdError::InvalidName`] / [`VcdError::BadTime`] on
/// unrepresentable inputs, [`VcdError::Io`] when the writer fails.
pub fn write_vcd<W: io::Write>(w: &mut W, signals: &[VcdSignal<'_>]) -> Result<(), VcdError> {
    // Quantize every trace first: errors surface before any output.
    let mut quantized: Vec<Vec<u64>> = Vec::with_capacity(signals.len());
    for s in signals {
        if !valid_name(s.name) {
            return Err(VcdError::InvalidName {
                name: s.name.to_string(),
            });
        }
        let ticks = quantize_edges(s.trace.times()).map_err(|t| VcdError::BadTime {
            signal: s.name.to_string(),
            time: t,
        })?;
        quantized.push(ticks);
    }

    writeln!(w, "$version mis-probe vcd export $end")?;
    writeln!(w, "$timescale 1 fs $end")?;
    writeln!(w, "$scope module top $end")?;
    for (i, s) in signals.iter().enumerate() {
        writeln!(w, "$var wire 1 {} {} $end", id_code(i), s.name)?;
    }
    writeln!(w, "$upscope $end")?;
    writeln!(w, "$enddefinitions $end")?;
    writeln!(w, "$dumpvars")?;
    for (i, s) in signals.iter().enumerate() {
        writeln!(w, "{}{}", u8::from(s.trace.initial_value()), id_code(i))?;
    }
    writeln!(w, "$end")?;

    // Merge all value changes by (tick, declaration index). Each
    // surviving edge toggles its signal's value, starting from the
    // initial value (pairwise cancellation preserved alternation).
    let mut events: Vec<(u64, u32, bool)> = Vec::new();
    for (i, (s, ticks)) in signals.iter().zip(&quantized).enumerate() {
        let mut value = s.trace.initial_value();
        for &tick in ticks {
            value = !value;
            #[allow(clippy::cast_possible_truncation)]
            events.push((tick, i as u32, value));
        }
    }
    events.sort_unstable_by_key(|&(tick, idx, _)| (tick, idx));
    let mut last_tick = None;
    for (tick, idx, value) in events {
        if last_tick != Some(tick) {
            writeln!(w, "#{tick}")?;
            last_tick = Some(tick);
        }
        writeln!(w, "{}{}", u8::from(value), id_code(idx as usize))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: f64) -> f64 {
        v * 1e-12
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let code = id_code(i);
            assert!(code.chars().all(|c| c.is_ascii_graphic()), "{code:?}");
            assert!(seen.insert(code), "collision at {i}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
    }

    #[test]
    fn quantization_rounds_and_cancels_subtick_pulses() {
        assert_eq!(quantize_edges(&[ps(1.0), ps(2.0)]), Ok(vec![1000, 2000]));
        // Two edges 1e-18 s apart round to one tick: both vanish.
        let t = ps(1.0);
        assert_eq!(quantize_edges(&[t, t + 1e-18, ps(3.0)]), Ok(vec![3000]));
        assert!(quantize_edges(&[-1e-12]).is_err());
        assert!(quantize_edges(&[f64::NAN]).is_err());
        assert!(quantize_edges(&[1e6]).is_err());
    }

    #[test]
    fn writes_a_small_deterministic_dump() {
        let a_times = [ps(1.0), ps(3.0)];
        let b_times = [ps(1.0)];
        let signals = [
            VcdSignal {
                name: "a",
                trace: TraceRef::new(false, &a_times),
            },
            VcdSignal {
                name: "b",
                trace: TraceRef::new(true, &b_times),
            },
        ];
        let mut out = Vec::new();
        write_vcd(&mut out, &signals).unwrap();
        let text = String::from_utf8(out).unwrap();
        let want = "$version mis-probe vcd export $end\n\
                    $timescale 1 fs $end\n\
                    $scope module top $end\n\
                    $var wire 1 ! a $end\n\
                    $var wire 1 \" b $end\n\
                    $upscope $end\n\
                    $enddefinitions $end\n\
                    $dumpvars\n\
                    0!\n\
                    1\"\n\
                    $end\n\
                    #1000\n\
                    1!\n\
                    0\"\n\
                    #3000\n\
                    0!\n";
        assert_eq!(text, want);
    }

    #[test]
    fn rejects_bad_names() {
        let flat = TraceRef::new(false, &[]);
        for name in ["", "has space", "tab\tbed"] {
            let s = [VcdSignal { name, trace: flat }];
            assert!(matches!(
                write_vcd(&mut Vec::new(), &s),
                Err(VcdError::InvalidName { .. })
            ));
        }
        // The lowering's temp names ('#t0' suffixes) are printable and fine.
        let s = [VcdSignal {
            name: "g5#t0",
            trace: flat,
        }];
        assert!(write_vcd(&mut Vec::new(), &s).is_ok());
    }
}
