//! Edge-case coverage the unit suites skirt: JSON escaping of hostile
//! metric names end-to-end through the report renderer, and concurrent
//! accumulation into *same-named* metrics from many threads — the
//! registry-sharing contract the parallel engine's per-worker probes
//! lean on.

use std::thread;

use mis_probe::json::{is_wellformed, json_string};
use mis_probe::{MetricValue, Probe};

#[test]
fn json_string_escapes_every_control_char() {
    for c in 0u32..0x20 {
        let c = char::from_u32(c).unwrap();
        let escaped = json_string(&format!("x{c}y"));
        // Control chars must never appear raw inside the literal.
        assert!(
            escaped.chars().all(|e| e as u32 >= 0x20),
            "raw control char survived in {escaped:?}"
        );
        assert!(is_wellformed(&escaped), "{escaped:?}");
    }
    // The common ones take the \uXXXX form (no short-form table).
    assert_eq!(json_string("a\nb"), "\"a\\u000ab\"");
    assert_eq!(json_string("a\tb"), "\"a\\u0009b\"");
    assert_eq!(json_string("a\rb"), "\"a\\u000db\"");
}

#[test]
fn json_string_escapes_quotes_and_backslashes_only_once() {
    assert_eq!(json_string(r#"say "hi""#), r#""say \"hi\"""#);
    assert_eq!(json_string(r"a\b"), r#""a\\b""#);
    // A backslash before a quote must yield four escape chars, not a
    // mangled \\" sequence the validator would misparse.
    assert_eq!(json_string(r#"\""#), r#""\\\"""#);
    assert!(is_wellformed(&json_string(r#"\""#)));
}

#[test]
fn json_string_passes_non_ascii_through_unescaped() {
    for s in ["délai", "温度", "λ.eval", "nor₂.τ", "🜁.edge"] {
        let escaped = json_string(s);
        assert_eq!(escaped, format!("\"{s}\""));
        assert!(is_wellformed(&escaped), "{escaped:?}");
    }
}

#[test]
fn hostile_metric_names_survive_the_full_report_path() {
    let probe = Probe::new();
    let names = [
        "ctrl\nchar.name",
        "quote\".name",
        "back\\slash.name",
        "non-ascii.délai.温度",
        "tab\tand\rreturn",
    ];
    for (i, name) in names.iter().enumerate() {
        probe.counter(name).add(i as u64 + 1);
    }
    let report = probe.report();
    let line = report.to_json_line();
    assert!(is_wellformed(&line), "{line}");
    for (i, name) in names.iter().enumerate() {
        assert_eq!(
            report.get(name),
            Some(&MetricValue::Counter(i as u64 + 1)),
            "lookup by raw (unescaped) name must still work"
        );
        // The escaped form, not the raw bytes, is what the line holds.
        assert!(line.contains(&json_string(name)), "{line}");
    }
}

#[test]
fn counters_accumulate_across_threads_on_the_same_name() {
    const THREADS: usize = 8;
    const INCS: u64 = 10_000;
    let probe = Probe::new();
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let probe = probe.clone();
            scope.spawn(move || {
                // Each thread registers the same name itself — the
                // registry must hand every one the same cell.
                let c = probe.counter("cell.nor4.evals");
                for _ in 0..INCS {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(
        probe.counter("cell.nor4.evals").value(),
        THREADS as u64 * INCS
    );
}

#[test]
fn histograms_accumulate_across_threads_on_the_same_name() {
    const THREADS: u64 = 8;
    const SAMPLES: u64 = 1_000;
    let probe = Probe::new();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let probe = probe.clone();
            scope.spawn(move || {
                let h = probe.histogram("cell.nor4.eval_ns");
                for s in 0..SAMPLES {
                    // Distinct per-thread offsets so a lost batch
                    // would shift the quantiles, not just the count.
                    h.record(t * 1_000 + s);
                }
            });
        }
    });
    let snap = probe.histogram("cell.nor4.eval_ns").snapshot();
    assert_eq!(snap.count(), THREADS * SAMPLES);
    let p50 = snap.quantile(0.5).expect("samples recorded");
    // True median is ~4000; bucket-midpoint estimates stay well inside
    // an order of magnitude.
    assert!((1_000..=8_000).contains(&p50), "p50 = {p50}");
}

#[test]
fn mixed_kind_metrics_from_threads_render_one_wellformed_line() {
    let probe = Probe::new();
    thread::scope(|scope| {
        for t in 0..4u64 {
            let probe = probe.clone();
            scope.spawn(move || {
                probe.counter("mix.count").add(t + 1);
                probe.histogram("mix.hist").record(t * 10);
                probe.gauge("mix.gauge").record_max(t);
            });
        }
    });
    let report = probe.report();
    assert_eq!(report.get("mix.count"), Some(&MetricValue::Counter(10)));
    assert_eq!(report.get("mix.gauge"), Some(&MetricValue::Gauge(3)));
    match report.get("mix.hist") {
        Some(MetricValue::Histogram { count: 4, .. }) => {}
        other => panic!("expected 4-sample histogram, got {other:?}"),
    }
    assert!(is_wellformed(&report.to_json_line()));
}
