//! Property tests for the log2 histogram: quantile estimates stay
//! within the documented factor-2 bound of the exact order statistic,
//! merge is exactly associative/commutative, and the no-sample case
//! yields `None` rather than a fabricated value.

use mis_probe::HistogramSnapshot;

/// A tiny deterministic LCG (Numerical Recipes constants) — the
/// workspace ships no external property-testing crate, so the tests
/// draw their own reproducible sample sets.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    /// Uniform-ish in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The exact order statistic matching `quantile`'s rank definition:
/// the sample at 1-based rank `ceil(q * n)`, clamped to `[1, n]`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[usize::try_from(rank - 1).unwrap()]
}

#[test]
fn quantile_estimates_stay_within_a_factor_of_two() {
    let mut rng = Lcg(0x5eed_0001);
    for round in 0..50 {
        // Mix magnitudes: small counts, mid-range, and wide values, so
        // every bucket regime gets exercised.
        let n = 1 + rng.below(300) as usize;
        let mut samples: Vec<u64> = (0..n)
            .map(|_| match rng.below(3) {
                0 => rng.below(16),
                1 => rng.below(10_000),
                _ => rng.below(u64::MAX / 2),
            })
            .collect();
        let snap = HistogramSnapshot::of_samples(&samples);
        samples.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = snap.quantile(q).expect("non-empty histogram");
            let exact = exact_quantile(&samples, q);
            if exact == 0 {
                assert_eq!(est, 0, "round {round} q {q}: zero maps to bucket 0");
            } else {
                // est and exact share a [2^(i-1), 2^i) bucket, so the
                // midpoint estimate is off by less than 2x either way.
                assert!(
                    est <= exact.saturating_mul(2) && exact <= est.saturating_mul(2),
                    "round {round} q {q}: est {est} vs exact {exact} breaks the 2x bound"
                );
            }
        }
    }
}

#[test]
fn merge_is_associative_commutative_and_count_additive() {
    let mut rng = Lcg(0x5eed_0002);
    for _ in 0..30 {
        let draw = |rng: &mut Lcg| {
            let n = rng.below(100) as usize;
            let samples: Vec<u64> = (0..n).map(|_| rng.below(1 << 40)).collect();
            HistogramSnapshot::of_samples(&samples)
        };
        let (a, b, c) = (draw(&mut rng), draw(&mut rng), draw(&mut rng));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).count(), a.count() + b.count());
        assert_eq!(a.merge(&HistogramSnapshot::empty()), a);
    }
}

#[test]
fn merged_quantiles_match_pooled_samples() {
    // Merging two snapshots must answer quantiles exactly as if the
    // sample sets had been recorded into one histogram.
    let mut rng = Lcg(0x5eed_0003);
    for _ in 0..20 {
        let xs: Vec<u64> = (0..rng.below(80)).map(|_| rng.below(1 << 20)).collect();
        let ys: Vec<u64> = (0..rng.below(80)).map(|_| rng.below(1 << 52)).collect();
        let merged = HistogramSnapshot::of_samples(&xs).merge(&HistogramSnapshot::of_samples(&ys));
        let mut pooled = xs.clone();
        pooled.extend_from_slice(&ys);
        let direct = HistogramSnapshot::of_samples(&pooled);
        assert_eq!(merged, direct);
        for q in [0.1, 0.5, 0.95] {
            assert_eq!(merged.quantile(q), direct.quantile(q));
        }
    }
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let empty = HistogramSnapshot::empty();
    assert_eq!(empty.count(), 0);
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(empty.quantile(q), None);
    }
}
