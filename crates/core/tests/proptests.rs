//! Property-based tests of the hybrid model's analytic core: closed-form
//! trajectories vs independent numerical integration, continuity across
//! mode switches, and structural delay-function properties over random
//! (physical) parameter sets. On the in-repo `mis-testkit` harness
//! (offline replacement for `proptest`).

use mis_core::{delay, HybridTrajectory, Mode, ModeSwitch, ModeSystem, NorParams, RisingInitialVn};
use mis_testkit::prelude::*;
use mis_waveform::units::ps;

/// The original proptest suite ran these properties at 64 cases each.
const CASES: u32 = 64;

/// Strategy: physically plausible parameter sets around the Table I scale.
fn params() -> impl Strategy<Value = NorParams> {
    (
        10e3..120e3f64,       // r1
        10e3..120e3f64,       // r2
        10e3..120e3f64,       // r3
        10e3..120e3f64,       // r4
        10e-18..300e-18f64,   // cn
        200e-18..1200e-18f64, // co
    )
        .prop_map(|(r1, r2, r3, r4, cn, co)| {
            NorParams::builder()
                .r1(r1)
                .r2(r2)
                .r3(r3)
                .r4(r4)
                .cn(cn)
                .co(co)
                .delta_min(0.0)
                .build()
                .expect("strategy stays in the valid domain")
        })
}

fn mode() -> impl Strategy<Value = Mode> {
    select(vec![Mode::S00, Mode::S01, Mode::S10, Mode::S11])
}

#[test]
fn analytic_trajectory_matches_rk45() {
    Config::with_cases(CASES).run(
        &(
            params(),
            mode(),
            0.0..0.8f64,
            0.0..0.8f64,
            1e-12..200e-12f64,
        ),
        |&(ref p, m, vn0, vo0, t)| {
            let sys = ModeSystem::new(p, m).unwrap();
            let traj = sys.trajectory([vn0, vo0]);
            let a = sys.matrix();
            let g = sys.drive();
            let samples = mis_num::ode::integrate_adaptive(
                |_t, y, dy| {
                    dy[0] = a[0][0] * y[0] + a[0][1] * y[1] + g[0];
                    dy[1] = a[1][0] * y[0] + a[1][1] * y[1] + g[1];
                },
                0.0,
                t,
                &[vn0, vo0],
                &mis_num::ode::AdaptiveOptions::default(),
            )
            .unwrap();
            let numeric = &samples.last().unwrap().y;
            let analytic = traj.eval(t);
            prop_assert!(
                (analytic[0] - numeric[0]).abs() < 1e-6,
                "V_N: {} vs {}",
                analytic[0],
                numeric[0]
            );
            prop_assert!(
                (analytic[1] - numeric[1]).abs() < 1e-6,
                "V_O: {} vs {}",
                analytic[1],
                numeric[1]
            );
            Ok(())
        },
    );
}

#[test]
fn state_is_continuous_across_random_switch_sequences() {
    Config::with_cases(CASES).run(
        &(params(), vec(mode(), 1..5), vec(1e-12..60e-12f64, 1..5)),
        |(p, modes, gaps)| {
            let n = modes.len().min(gaps.len());
            prop_assume!(n > 0);
            let mut t_acc = 0.0;
            let switches: Vec<ModeSwitch> = (0..n)
                .map(|i| {
                    t_acc += gaps[i];
                    ModeSwitch {
                        at: t_acc,
                        to: modes[i],
                    }
                })
                .collect();
            let traj = HybridTrajectory::new(p, Mode::S00, [p.vdd, p.vdd], 0.0, &switches).unwrap();
            // Tolerance must cover the legitimate slope over the ±1e-18 s
            // probe offsets: |dV/dt| is bounded by a few × V_DD / τ_min.
            let tau_min = [p.r1, p.r2, p.r3, p.r4]
                .iter()
                .fold(f64::INFINITY, |m, &r| m.min(r))
                * p.cn.min(p.co);
            let tol = 1e-9 + 10.0 * p.vdd / tau_min * 2e-18;
            for sw in &switches {
                let before = traj.eval(sw.at - 1e-18);
                let after = traj.eval(sw.at + 1e-18);
                prop_assert!(
                    (before[0] - after[0]).abs() < tol,
                    "V_N jump at {:e}",
                    sw.at
                );
                prop_assert!(
                    (before[1] - after[1]).abs() < tol,
                    "V_O jump at {:e}",
                    sw.at
                );
            }
            Ok(())
        },
    );
}

#[test]
fn voltages_stay_within_rails() {
    Config::with_cases(CASES).run(&(params(), mode(), 0.0..500e-12f64), |&(ref p, m, t)| {
        // From rail-bounded initial conditions, every mode's trajectory
        // stays within [0, V_DD] (passive RC network, no overshoot for
        // real eigenvalues).
        let sys = ModeSystem::new(p, m).unwrap();
        let traj = sys.trajectory([p.vdd, 0.0]);
        let x = traj.eval(t);
        prop_assert!(x[0] >= -1e-9 && x[0] <= p.vdd + 1e-9, "V_N = {}", x[0]);
        prop_assert!(x[1] >= -1e-9 && x[1] <= p.vdd + 1e-9, "V_O = {}", x[1]);
        Ok(())
    });
}

#[test]
fn falling_delay_minimum_is_at_simultaneous_switching() {
    Config::with_cases(CASES).run(&(params(), 1e-12..100e-12f64), |&(ref p, d)| {
        // δ↓(0) ≤ δ↓(±d): simultaneous switching is always fastest (the
        // parallel pull-down only gets weaker when one transistor lags).
        let d0 = delay::falling_delay(p, 0.0).unwrap();
        let dp = delay::falling_delay(p, d).unwrap();
        let dm = delay::falling_delay(p, -d).unwrap();
        prop_assert!(d0 <= dp + 1e-15, "δ(0)={d0:e} > δ(+{d:e})={dp:e}");
        prop_assert!(d0 <= dm + 1e-15, "δ(0)={d0:e} > δ(−{d:e})={dm:e}");
        Ok(())
    });
}

#[test]
fn falling_delay_monotone_in_separation() {
    Config::with_cases(CASES).run(
        &(params(), 0.0..80e-12f64, 0.0..80e-12f64),
        |&(ref p, d1, d2)| {
            // On each branch the falling delay grows with |Δ| (speed-up decays).
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            let a = delay::falling_delay(p, lo).unwrap();
            let b = delay::falling_delay(p, hi).unwrap();
            prop_assert!(
                a <= b + 1e-15,
                "positive branch: δ({lo:e})={a:e} > δ({hi:e})={b:e}"
            );
            let am = delay::falling_delay(p, -lo).unwrap();
            let bm = delay::falling_delay(p, -hi).unwrap();
            prop_assert!(am <= bm + 1e-15, "negative branch");
            Ok(())
        },
    );
}

#[test]
fn eq8_eq9_hold_for_all_parameters() {
    Config::with_cases(CASES).run(&params(), |p| {
        use std::f64::consts::LN_2;
        let d0 = delay::falling_delay(p, 0.0).unwrap();
        let r_par = p.r3 * p.r4 / (p.r3 + p.r4);
        prop_assert!((d0 - LN_2 * p.co * r_par).abs() < 1e-9 * d0);
        let (dm, _) = delay::falling_sis(p).unwrap();
        prop_assert!((dm - LN_2 * p.co * p.r4).abs() < 1e-9 * dm);
        Ok(())
    });
}

#[test]
fn rising_delay_decreasing_in_initial_vn() {
    Config::with_cases(CASES).run(
        &(params(), -60e-12..0.0f64, 0.0..0.8f64, 0.0..0.8f64),
        |&(ref p, d, x1, x2)| {
            // More precharge on N can only help the rising transition.
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            let slow =
                delay::rising_delay(p, d, RisingInitialVn::Explicit(lo * p.vdd / 0.8)).unwrap();
            let fast =
                delay::rising_delay(p, d, RisingInitialVn::Explicit(hi * p.vdd / 0.8)).unwrap();
            prop_assert!(fast <= slow + 1e-14, "X={hi}: {fast:e} vs X={lo}: {slow:e}");
            Ok(())
        },
    );
}

#[test]
fn pure_delay_is_a_uniform_shift() {
    Config::with_cases(CASES).run(
        &(params(), -80e-12..80e-12f64, 0.0..30e-12f64),
        |&(ref p, d, dmin)| {
            let mut shifted = *p;
            shifted.delta_min = dmin;
            let base_f = delay::falling_delay(p, d).unwrap();
            let with_f = delay::falling_delay(&shifted, d).unwrap();
            prop_assert!((with_f - base_f - dmin).abs() < 1e-15);
            let base_r = delay::rising_delay(p, d, RisingInitialVn::Gnd).unwrap();
            let with_r = delay::rising_delay(&shifted, d, RisingInitialVn::Gnd).unwrap();
            prop_assert!((with_r - base_r - dmin).abs() < 1e-15);
            Ok(())
        },
    );
}

#[test]
fn charlie_formulas_match_numeric_for_random_params() {
    Config::with_cases(CASES).run(&params(), |p| {
        let approx = mis_core::charlie::fall_plus_inf_approx_auto(p).unwrap();
        let exact = mis_core::charlie::fall_plus_inf_exact_numeric(p).unwrap();
        prop_assert!((approx - exact).abs() < ps(0.5), "{approx:e} vs {exact:e}");
        Ok(())
    });
}

#[test]
fn nand_duality_identities() {
    Config::with_cases(CASES).run(&(params(), -50e-12..50e-12f64), |&(ref p, d)| {
        let nand = mis_core::nand::NandParams::from_dual(*p);
        let rise = nand.rising_delay(d).unwrap();
        let nor_fall = delay::falling_delay(p, d).unwrap();
        prop_assert!((rise - nor_fall).abs() < 1e-18);
        Ok(())
    });
}
