//! NAND gate delay modeling by **duality** — an extension beyond the
//! paper (its Section VII anticipates generalizing the channel model).
//!
//! A 2-input CMOS NAND is the exact electrical dual of the NOR: series
//! nMOS (output → internal node `M` → GND, gates A and B) with parallel
//! pMOS pull-ups. Mapping every voltage through `v ↦ V_DD − v` and every
//! input through logical inversion turns the NAND's RC networks into the
//! NOR's, mode for mode:
//!
//! ```text
//! NAND mode (a, b)    ≙  NOR mode (¬a, ¬b)
//! V_M^NAND = V_DD − V_N^NOR,   V_O^NAND = V_DD − V_O^NOR
//! δ↓_NAND(Δ)          =  δ↑_NOR(Δ)   (both inputs rise; series stack)
//! δ↑_NAND(Δ | V_M)    =  δ↓_NOR(Δ)   — wait, see below
//! ```
//!
//! Concretely: a NAND output *falls* when both inputs have risen (series
//! pull-down — the dual of the NOR's rising transition through the series
//! pull-up), so the NAND inherits the NOR's rising-side MIS **slow-down**
//! on falling outputs, including the frozen-internal-node ambiguity; and
//! it *rises* as soon as one input falls (parallel pull-up — dual of the
//! NOR's falling transition), inheriting the MIS **speed-up**.
//!
//! `R1/R2` of the wrapped parameter set are the series *nMOS*
//! on-resistances here (GND side and M–O), `R3/R4` the parallel pMOS, and
//! `C_N` is the series-stack internal node capacitance `C_M`.

use crate::{delay, ModelError, NorParams, RisingInitialVn};

/// Parameters of the dual NAND model: a [`NorParams`] reinterpreted
/// through the duality map.
///
/// # Examples
///
/// ```
/// use mis_core::nand::NandParams;
/// use mis_waveform::units::ps;
///
/// # fn main() -> Result<(), mis_core::ModelError> {
/// let nand = NandParams::from_dual(mis_core::NorParams::paper_table1());
/// // Rising output (parallel pull-up): MIS speed-up, the dual of the
/// // NOR's falling behaviour.
/// let d0 = nand.rising_delay(0.0)?;
/// let dm = nand.rising_delay(ps(-300.0))?;
/// assert!(d0 < dm);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NandParams {
    dual: NorParams,
}

impl NandParams {
    /// Builds a NAND model from its dual NOR parameter set. `r1`/`r2` of
    /// the dual become the series nMOS resistances, `r3`/`r4` the
    /// parallel pMOS, `cn` the internal node `M`.
    #[must_use]
    pub fn from_dual(dual: NorParams) -> Self {
        NandParams { dual }
    }

    /// The underlying dual NOR parameters.
    #[must_use]
    pub fn dual(&self) -> &NorParams {
        &self.dual
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Propagates [`NorParams::validate`].
    pub fn validate(&self) -> Result<(), ModelError> {
        self.dual.validate()
    }

    /// The NAND's falling-output MIS delay `δ↓(Δ)` (both inputs rise;
    /// the output discharges through the series nMOS stack).
    ///
    /// `initial_vm` is the internal stack node's voltage hypothesis when
    /// the gate had been sitting with both inputs *low* (the
    /// state that freezes `M` — dual of the NOR's `(1,1)`), expressed in
    /// NAND-world volts: `Gnd` means `M` discharged.
    ///
    /// By duality this equals the dual NOR's rising delay with
    /// `X = V_DD − V_M`.
    ///
    /// # Errors
    ///
    /// Propagates [`delay::rising_delay`] failures.
    pub fn falling_delay(
        &self,
        delta: f64,
        initial_vm: RisingInitialVn,
    ) -> Result<f64, ModelError> {
        // NAND-world V_M ↦ NOR-world X = V_DD − V_M.
        let x_nand = initial_vm.voltage(self.dual.vdd);
        let x_nor = self.dual.vdd - x_nand;
        delay::rising_delay(&self.dual, delta, RisingInitialVn::Explicit(x_nor))
    }

    /// The NAND's rising-output MIS delay `δ↑(Δ)` (both inputs fall; the
    /// parallel pMOS charge the output — the dual of the NOR's falling
    /// transition, inheriting its MIS *speed-up*).
    ///
    /// # Errors
    ///
    /// Propagates [`delay::falling_delay`] failures.
    pub fn rising_delay(&self, delta: f64) -> Result<f64, ModelError> {
        delay::falling_delay(&self.dual, delta)
    }

    /// Rising SIS limits `(δ↑(−∞), δ↑(+∞))`.
    ///
    /// # Errors
    ///
    /// Propagates [`delay::falling_sis`] failures.
    pub fn rising_sis(&self) -> Result<(f64, f64), ModelError> {
        delay::falling_sis(&self.dual)
    }

    /// Falling SIS limits `(δ↓(−∞), δ↓(+∞))`.
    ///
    /// # Errors
    ///
    /// Propagates [`delay::rising_sis`] failures.
    pub fn falling_sis(&self) -> Result<(f64, f64), ModelError> {
        delay::rising_sis(&self.dual)
    }

    /// The Boolean NAND of two inputs — convenience mirroring
    /// [`crate::Mode::nor_output`].
    #[must_use]
    pub fn output(a: bool, b: bool) -> bool {
        !(a && b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_linalg::approx_eq;
    use mis_waveform::units::ps;

    fn nand() -> NandParams {
        NandParams::from_dual(NorParams::paper_table1())
    }

    #[test]
    fn truth_table() {
        assert!(NandParams::output(false, false));
        assert!(NandParams::output(true, false));
        assert!(NandParams::output(false, true));
        assert!(!NandParams::output(true, true));
    }

    #[test]
    fn rising_inherits_nor_falling_speed_up() {
        // Parallel pull-up: simultaneous falling inputs charge the output
        // twice as fast — the dual of the NOR's Fig. 2b speed-up.
        let g = nand();
        let d0 = g.rising_delay(0.0).unwrap();
        let (dm, dp) = g.rising_sis().unwrap();
        assert!(
            d0 < dm && d0 < dp,
            "MIS speed-up: {d0:e} vs ({dm:e}, {dp:e})"
        );
        // Exact duality: identical numbers to the NOR falling delay.
        let nor0 = delay::falling_delay(&NorParams::paper_table1(), 0.0).unwrap();
        assert!(approx_eq(d0, nor0, 1e-15));
    }

    #[test]
    fn falling_inherits_nor_rising_behaviour() {
        let g = nand();
        // δ↓_NAND(Δ | M discharged) == δ↑_NOR(Δ | N at VDD)? No: the
        // duality maps NAND M=GND to NOR X = VDD.
        let nand_d = g.falling_delay(ps(-20.0), RisingInitialVn::Gnd).unwrap();
        let nor_d =
            delay::rising_delay(&NorParams::paper_table1(), ps(-20.0), RisingInitialVn::Vdd)
                .unwrap();
        assert!(approx_eq(nand_d, nor_d, 1e-15));
        // And the VDD-frozen M maps to NOR's GND worst case.
        let nand_v = g.falling_delay(ps(-20.0), RisingInitialVn::Vdd).unwrap();
        let nor_g =
            delay::rising_delay(&NorParams::paper_table1(), ps(-20.0), RisingInitialVn::Gnd)
                .unwrap();
        assert!(approx_eq(nand_v, nor_g, 1e-15));
    }

    #[test]
    fn falling_sis_asymmetry_mirrors_nor() {
        let g = nand();
        let (fm, fp) = g.falling_sis().unwrap();
        let (rm, rp) = delay::rising_sis(&NorParams::paper_table1()).unwrap();
        assert!(approx_eq(fm, rm, 1e-15));
        assert!(approx_eq(fp, rp, 1e-15));
    }

    #[test]
    fn internal_node_hypothesis_matters_for_falling() {
        let g = nand();
        let a = g.falling_delay(ps(-15.0), RisingInitialVn::Gnd).unwrap();
        let b = g.falling_delay(ps(-15.0), RisingInitialVn::Vdd).unwrap();
        assert!((a - b).abs() > ps(0.05), "{a:e} vs {b:e}");
    }

    #[test]
    fn validation_delegates() {
        let mut p = NorParams::paper_table1();
        p.r2 = -1.0;
        assert!(NandParams::from_dual(p).validate().is_err());
        assert!(nand().validate().is_ok());
    }
}
