use crate::ModelError;

/// Policy for the internal-node voltage `V_N` when the model enters mode
/// `(1,1)` (both inputs high, output low) without a tracked history.
///
/// Mode `(1,1)` freezes `V_N` (node `N` is isolated between two open pMOS
/// switches), so rising-output delays depend on the value `V_N` froze at —
/// the paper's Fig. 6 shows all three fixed guesses together with the
/// observation that the true value depends on switching history. `Tracked`
/// is this crate's extension: the stateful [`crate::channel`] simply keeps
/// the continuously simulated `V_N`, removing the guesswork.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RisingInitialVn {
    /// `V_N = GND` — the paper's worst case, used for its Section VI
    /// evaluation and for parametrization (matches `δ↑(±∞)` best).
    #[default]
    Gnd,
    /// `V_N = V_DD/2`.
    HalfVdd,
    /// `V_N = V_DD`.
    Vdd,
    /// An explicit voltage in volts.
    Explicit(f64),
    /// Use the continuously tracked state (channel simulation only; in
    /// stateless delay queries this falls back to `Gnd`).
    Tracked,
}

impl RisingInitialVn {
    /// Resolves the policy to a concrete voltage for a supply `vdd`.
    #[must_use]
    pub fn voltage(self, vdd: f64) -> f64 {
        match self {
            RisingInitialVn::Gnd | RisingInitialVn::Tracked => 0.0,
            RisingInitialVn::HalfVdd => vdd / 2.0,
            RisingInitialVn::Vdd => vdd,
            RisingInitialVn::Explicit(v) => v,
        }
    }
}

/// Parameters of the hybrid NOR model: the switch-on resistances of the
/// four transistors, the two capacitances, the rails, and the pure delay.
///
/// `r1`/`r2` are the series pMOS on-resistances (V_DD → N → O), `r3`/`r4`
/// the parallel nMOS on-resistances (O → GND); `cn` is the parasitic
/// capacitance of the internal node `N` and `co` the output load. All
/// values are SI (ohms, farads, volts, seconds).
///
/// # Examples
///
/// ```
/// use mis_core::NorParams;
///
/// let p = NorParams::paper_table1();
/// assert_eq!(p.vdd, 0.8);
/// assert!((p.r3 - 45.150e3).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NorParams {
    /// On-resistance of pMOS `T1` (V_DD side), in ohms.
    pub r1: f64,
    /// On-resistance of pMOS `T2` (N–O), in ohms.
    pub r2: f64,
    /// On-resistance of nMOS `T3` (input A), in ohms.
    pub r3: f64,
    /// On-resistance of nMOS `T4` (input B), in ohms.
    pub r4: f64,
    /// Internal node capacitance `C_N`, in farads.
    pub cn: f64,
    /// Output load capacitance `C_O`, in farads.
    pub co: f64,
    /// Supply voltage, in volts.
    pub vdd: f64,
    /// Discretization threshold, in volts (the paper fixes `V_DD/2`).
    pub vth: f64,
    /// Pure delay `δ_min` added to every model delay, in seconds
    /// (Section V: 18 ps; set 0 for the "HM without δ_min" ablation).
    pub delta_min: f64,
    /// `V_N` policy when entering mode `(1,1)` without history.
    pub vn_policy: RisingInitialVn,
}

impl NorParams {
    /// The empirically fitted parameter values of the paper's Table I,
    /// with `V_DD = 0.8 V` (15 nm FreePDK15) and `δ_min = 18 ps`.
    #[must_use]
    pub fn paper_table1() -> Self {
        NorParams {
            r1: 37.088e3,
            r2: 44.926e3,
            r3: 45.150e3,
            r4: 48.761e3,
            cn: 59.486e-18,
            co: 617.259e-18,
            vdd: 0.8,
            vth: 0.4,
            delta_min: 18e-12,
            vn_policy: RisingInitialVn::Gnd,
        }
    }

    /// A parameter set scaled to the time constants of the authors'
    /// legacy 65 nm / 1.2 V validation technology (footnote 2 and the
    /// constants baked into eqs. (10)–(12)): resistances ×2, capacitances
    /// ×4, so RC products are ×8 (delays of one to a few hundred ps, where
    /// the published probe times `w = 1–2·10⁻¹⁰ s` sit near the crossings),
    /// with the 1.2 V supply the published formulas assume.
    #[must_use]
    pub fn legacy_65nm_like() -> Self {
        let t1 = NorParams::paper_table1();
        NorParams {
            r1: 2.0 * t1.r1,
            r2: 2.0 * t1.r2,
            r3: 2.0 * t1.r3,
            r4: 2.0 * t1.r4,
            cn: 4.0 * t1.cn,
            co: 4.0 * t1.co,
            vdd: 1.2,
            vth: 0.6,
            delta_min: 0.0,
            vn_policy: RisingInitialVn::Gnd,
        }
    }

    /// Starts a builder pre-populated with the Table I values.
    #[must_use]
    pub fn builder() -> NorParamsBuilder {
        NorParamsBuilder {
            params: NorParams::paper_table1(),
        }
    }

    /// A copy with the pure delay removed (the paper's "HM without δ_min"
    /// configuration in Figs. 7 and 8).
    #[must_use]
    pub fn without_pure_delay(mut self) -> Self {
        self.delta_min = 0.0;
        self
    }

    /// Validates physical constraints.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParams`] when any R/C is non-positive
    /// or non-finite, the supply is non-positive, the threshold is outside
    /// `(0, vdd)`, or `delta_min` is negative.
    pub fn validate(&self) -> Result<(), ModelError> {
        let positives = [
            ("r1", self.r1),
            ("r2", self.r2),
            ("r3", self.r3),
            ("r4", self.r4),
            ("cn", self.cn),
            ("co", self.co),
            ("vdd", self.vdd),
        ];
        for (name, v) in positives {
            if !(v > 0.0) || !v.is_finite() {
                return Err(ModelError::InvalidParams {
                    reason: format!("{name} must be positive and finite (got {v:e})"),
                });
            }
        }
        if !(self.vth > 0.0 && self.vth < self.vdd) {
            return Err(ModelError::InvalidParams {
                reason: format!(
                    "vth must lie strictly between the rails (got {} for vdd {})",
                    self.vth, self.vdd
                ),
            });
        }
        if !(self.delta_min >= 0.0) || !self.delta_min.is_finite() {
            return Err(ModelError::InvalidParams {
                reason: format!("delta_min must be non-negative (got {:e})", self.delta_min),
            });
        }
        Ok(())
    }

    /// The slowest RC time constant among the four modes, used to scale
    /// crossing-search horizons.
    #[must_use]
    pub fn slowest_time_constant(&self) -> f64 {
        // Conservative bound: every mode's eigenvalues are at least as fast
        // as the weakest single-RC product formed from the largest R and C.
        let r_max = self.r1.max(self.r2).max(self.r3).max(self.r4);
        let c_sum = self.cn + self.co;
        2.0 * r_max * c_sum
    }
}

impl Default for NorParams {
    fn default() -> Self {
        NorParams::paper_table1()
    }
}

/// Builder for [`NorParams`], starting from the Table I values.
///
/// # Examples
///
/// ```
/// use mis_core::NorParams;
///
/// # fn main() -> Result<(), mis_core::ModelError> {
/// let p = NorParams::builder()
///     .r3(40.0e3)
///     .r4(40.0e3)
///     .delta_min(0.0)
///     .build()?;
/// assert_eq!(p.r3, 40.0e3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NorParamsBuilder {
    params: NorParams,
}

macro_rules! builder_setter {
    ($(#[$doc:meta])* $name:ident: f64) => {
        $(#[$doc])*
        #[must_use]
        pub fn $name(mut self, value: f64) -> Self {
            self.params.$name = value;
            self
        }
    };
}

impl NorParamsBuilder {
    builder_setter!(
        /// Sets `R1` (pMOS `T1`), ohms.
        r1: f64
    );
    builder_setter!(
        /// Sets `R2` (pMOS `T2`), ohms.
        r2: f64
    );
    builder_setter!(
        /// Sets `R3` (nMOS `T3`), ohms.
        r3: f64
    );
    builder_setter!(
        /// Sets `R4` (nMOS `T4`), ohms.
        r4: f64
    );
    builder_setter!(
        /// Sets `C_N`, farads.
        cn: f64
    );
    builder_setter!(
        /// Sets `C_O`, farads.
        co: f64
    );
    builder_setter!(
        /// Sets the supply voltage, volts. Does not move `vth`; set that
        /// explicitly when changing rails.
        vdd: f64
    );
    builder_setter!(
        /// Sets the threshold voltage, volts.
        vth: f64
    );
    builder_setter!(
        /// Sets the pure delay `δ_min`, seconds.
        delta_min: f64
    );

    /// Sets the `V_N` policy for history-less entries into mode `(1,1)`.
    #[must_use]
    pub fn vn_policy(mut self, policy: RisingInitialVn) -> Self {
        self.params.vn_policy = policy;
        self
    }

    /// Validates and returns the parameter set.
    ///
    /// # Errors
    ///
    /// Propagates [`NorParams::validate`] failures.
    pub fn build(self) -> Result<NorParams, ModelError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_valid() {
        NorParams::paper_table1().validate().unwrap();
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(NorParams::default(), NorParams::paper_table1());
    }

    #[test]
    fn builder_overrides_and_validates() {
        let p = NorParams::builder().r1(10e3).build().unwrap();
        assert_eq!(p.r1, 10e3);
        assert!(NorParams::builder().r1(-1.0).build().is_err());
        assert!(NorParams::builder().cn(0.0).build().is_err());
        assert!(NorParams::builder().vth(1.0).build().is_err());
        assert!(NorParams::builder().vth(0.0).build().is_err());
        assert!(NorParams::builder().delta_min(-1e-12).build().is_err());
        assert!(NorParams::builder().co(f64::NAN).build().is_err());
    }

    #[test]
    fn without_pure_delay_zeroes_only_delta_min() {
        let p = NorParams::paper_table1().without_pure_delay();
        assert_eq!(p.delta_min, 0.0);
        assert_eq!(p.r1, NorParams::paper_table1().r1);
    }

    #[test]
    fn vn_policy_voltages() {
        assert_eq!(RisingInitialVn::Gnd.voltage(0.8), 0.0);
        assert_eq!(RisingInitialVn::HalfVdd.voltage(0.8), 0.4);
        assert_eq!(RisingInitialVn::Vdd.voltage(0.8), 0.8);
        assert_eq!(RisingInitialVn::Explicit(0.3).voltage(0.8), 0.3);
        assert_eq!(RisingInitialVn::Tracked.voltage(0.8), 0.0);
        assert_eq!(RisingInitialVn::default(), RisingInitialVn::Gnd);
    }

    #[test]
    fn slowest_time_constant_scale() {
        let p = NorParams::paper_table1();
        let tau = p.slowest_time_constant();
        // ~2 · 48.8 kΩ · 677 aF ≈ 66 ps.
        assert!(tau > 10e-12 && tau < 1e-9, "tau = {tau:e}");
    }
}
