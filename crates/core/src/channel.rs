//! A stateful, event-driven view of the hybrid model — the engine behind
//! the two-input NOR delay *channel* used in digital timing simulation
//! (paper Section VI).
//!
//! [`NorGateModel`] tracks the continuous state `[V_N, V_O]` between input
//! events. Each input event advances the state analytically, switches the
//! mode, and the next output threshold crossing can be queried (and
//! re-queried after every event, which is how the digital simulator
//! implements cancellation of obsolete output predictions).
//!
//! The pure delay `δ_min` is *not* applied here — it belongs to the
//! channel wrapper in `mis-digital`, which defers input events before
//! handing them to this model. Keeping the ODE core pure-delay-free
//! matches the paper's decomposition.

use crate::{InputId, Mode, ModeSystem, ModeTrajectory, ModelError, NorParams};

/// Continuous-state NOR gate model for event-driven simulation.
///
/// # Examples
///
/// A falling MIS event pair, queried for the resulting output crossing:
///
/// ```
/// use mis_core::channel::NorGateModel;
/// use mis_core::{InputId, NorParams};
/// use mis_waveform::units::ps;
///
/// # fn main() -> Result<(), mis_core::ModelError> {
/// let p = NorParams::paper_table1();
/// let mut gate = NorGateModel::new(&p, false, false)?; // output high
/// gate.set_input(ps(100.0), InputId::A, true)?;
/// gate.set_input(ps(110.0), InputId::B, true)?;        // Δ = 10 ps
/// let (t_cross, rising) = gate.next_output_crossing()?.expect("output falls");
/// assert!(!rising);
/// assert!(t_cross > ps(110.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NorGateModel {
    params: NorParams,
    mode: Mode,
    trajectory: ModeTrajectory,
    /// Absolute time at which the current trajectory was anchored.
    t_anchor: f64,
}

impl NorGateModel {
    /// Creates a gate settled in the steady state of inputs `(a, b)`.
    ///
    /// For `(1,1)` the output is settled at GND but `V_N` is genuinely
    /// ambiguous (the mode freezes it); the parameter set's
    /// [`crate::RisingInitialVn`] policy provides the value.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParams`] for invalid parameters.
    pub fn new(params: &NorParams, a: bool, b: bool) -> Result<Self, ModelError> {
        params.validate()?;
        let mode = Mode::from_inputs(a, b);
        let sys = ModeSystem::new(params, mode)?;
        let x0 = match mode {
            Mode::S11 => [params.vn_policy.voltage(params.vdd), 0.0],
            other => {
                let _ = other;
                sys.steady_state([params.vdd, params.vdd])
            }
        };
        Ok(NorGateModel {
            params: *params,
            mode,
            trajectory: sys.trajectory(x0),
            t_anchor: 0.0,
        })
    }

    /// The currently active mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The continuous state `[V_N, V_O]` at absolute time `t`
    /// (`t >= anchor`; earlier queries return the anchor state).
    #[must_use]
    pub fn state_at(&self, t: f64) -> [f64; 2] {
        self.trajectory.eval((t - self.t_anchor).max(0.0))
    }

    /// The absolute time of the current trajectory anchor (the last event).
    #[must_use]
    pub fn anchor_time(&self) -> f64 {
        self.t_anchor
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &NorParams {
        &self.params
    }

    /// Applies an input event at absolute time `t`: the state is advanced
    /// analytically to `t`, then the mode switches according to the new
    /// input value. Events must be processed in non-decreasing time order.
    ///
    /// Re-asserting the current value of an input re-anchors the
    /// trajectory without changing the mode (harmless).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParams`] when `t` precedes the last
    /// event.
    pub fn set_input(&mut self, t: f64, input: InputId, value: bool) -> Result<(), ModelError> {
        if !(t >= self.t_anchor) {
            return Err(ModelError::InvalidParams {
                reason: format!(
                    "event at {t:e} precedes the previous event at {:e}",
                    self.t_anchor
                ),
            });
        }
        let x_at = self.state_at(t);
        let new_mode = self.mode.with_input(input, value);
        let sys = ModeSystem::new(&self.params, new_mode)?;
        self.trajectory = sys.trajectory(x_at);
        self.mode = new_mode;
        self.t_anchor = t;
        Ok(())
    }

    /// The next output threshold crossing strictly after the anchor, as
    /// `(absolute time, rising)` — or `None` if the output stays on its
    /// side of the threshold in the current mode.
    ///
    /// Must be re-queried after every [`NorGateModel::set_input`]: a mode
    /// switch invalidates earlier predictions (this is how glitch
    /// cancellation emerges in the digital channel).
    ///
    /// # Errors
    ///
    /// Propagates crossing-solver failures.
    pub fn next_output_crossing(&self) -> Result<Option<(f64, bool)>, ModelError> {
        let horizon = 60.0 * self.params.slowest_time_constant();
        let crossings = self.trajectory.vo_crossings(self.params.vth, horizon)?;
        for tc in crossings {
            if tc > 0.0 {
                let rising = self.trajectory.vo_derivative(tc) > 0.0;
                return Ok(Some((self.t_anchor + tc, rising)));
            }
        }
        Ok(None)
    }

    /// Whether the analog output is above the threshold at time `t`.
    #[must_use]
    pub fn output_high_at(&self, t: f64) -> bool {
        self.state_at(t)[1] > self.params.vth
    }

    /// *All* output threshold crossings strictly after the anchor in the
    /// current mode, as `(absolute time, rising)` pairs, sorted. A
    /// two-exponential trajectory can graze the threshold twice (a bump),
    /// producing two genuine output transitions from a single mode switch.
    ///
    /// # Errors
    ///
    /// Propagates crossing-solver failures.
    pub fn output_crossings(&self) -> Result<Vec<(f64, bool)>, ModelError> {
        let horizon = 60.0 * self.params.slowest_time_constant();
        let crossings = self.trajectory.vo_crossings(self.params.vth, horizon)?;
        Ok(crossings
            .into_iter()
            .filter(|&t| t > 0.0)
            .map(|t| (self.t_anchor + t, self.trajectory.vo_derivative(t) > 0.0))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{delay, RisingInitialVn};
    use mis_linalg::approx_eq;
    use mis_waveform::units::ps;

    fn p() -> NorParams {
        NorParams::paper_table1().without_pure_delay()
    }

    #[test]
    fn settled_states() {
        let par = p();
        let g = NorGateModel::new(&par, false, false).unwrap();
        assert_eq!(g.mode(), Mode::S00);
        assert!(approx_eq(g.state_at(0.0)[1], par.vdd, 1e-12));
        let g = NorGateModel::new(&par, true, true).unwrap();
        assert_eq!(g.mode(), Mode::S11);
        assert!(approx_eq(g.state_at(0.0)[1], 0.0, 1e-12));
        assert_eq!(g.state_at(0.0)[0], 0.0, "Gnd policy default");
    }

    #[test]
    fn vn_policy_respected_at_construction() {
        let par = NorParams::builder()
            .delta_min(0.0)
            .vn_policy(RisingInitialVn::Vdd)
            .build()
            .unwrap();
        let g = NorGateModel::new(&par, true, true).unwrap();
        assert!(approx_eq(g.state_at(0.0)[0], par.vdd, 1e-12));
    }

    #[test]
    fn mis_event_sequence_matches_delay_function() {
        // Channel semantics must agree with the stateless delay query. The
        // driver mimics the digital simulator: it re-queries the predicted
        // crossing after each event and keeps predictions that committed
        // before the next event.
        let par = p();
        for &delta in &[ps(-30.0), ps(-5.0), 0.0, ps(5.0), ps(30.0)] {
            let mut g = NorGateModel::new(&par, false, false).unwrap();
            let (t_first, first, t_second, second) = if delta >= 0.0 {
                (ps(100.0), InputId::A, ps(100.0) + delta, InputId::B)
            } else {
                (ps(100.0), InputId::B, ps(100.0) - delta, InputId::A)
            };
            g.set_input(t_first, first, true).unwrap();
            let prediction = g.next_output_crossing().unwrap();
            let committed = match prediction {
                Some((tc, _)) if tc <= t_second => Some(tc),
                _ => None,
            };
            let t_cross = match committed {
                Some(tc) => tc,
                None => {
                    g.set_input(t_second, second, true).unwrap();
                    let (tc, rising) = g.next_output_crossing().unwrap().expect("output falls");
                    assert!(!rising);
                    tc
                }
            };
            let expected = delay::falling_delay(&par, delta).unwrap() + t_first;
            assert!(
                approx_eq(t_cross, expected, 1e-9),
                "Δ = {delta:e}: {t_cross:e} vs {expected:e}"
            );
        }
    }

    #[test]
    fn rising_event_sequence_matches_delay_function() {
        let par = p();
        for &delta in &[ps(-20.0), 0.0, ps(20.0)] {
            let mut g = NorGateModel::new(&par, true, true).unwrap();
            let (ta, tb) = if delta >= 0.0 {
                (ps(200.0), ps(200.0) + delta)
            } else {
                (ps(200.0) - delta, ps(200.0))
            };
            if ta <= tb {
                g.set_input(ta, InputId::A, false).unwrap();
                g.set_input(tb, InputId::B, false).unwrap();
            } else {
                g.set_input(tb, InputId::B, false).unwrap();
                g.set_input(ta, InputId::A, false).unwrap();
            }
            let (t_cross, rising) = g.next_output_crossing().unwrap().expect("rises");
            assert!(rising);
            let expected =
                delay::rising_delay(&par, delta, RisingInitialVn::Gnd).unwrap() + ta.max(tb);
            assert!(
                approx_eq(t_cross, expected, 1e-9),
                "Δ = {delta:e}: {t_cross:e} vs {expected:e}"
            );
        }
    }

    #[test]
    fn tracked_vn_differs_from_memoryless_on_second_pulse() {
        // After a falling-output episode that leaves V_N partially
        // discharged, the *tracked* state produces a different rising
        // delay than a freshly constructed (memoryless) gate — the paper's
        // main identified artefact, removed by our stateful channel.
        let par = p();
        let mut g = NorGateModel::new(&par, false, false).unwrap();
        g.set_input(ps(100.0), InputId::A, true).unwrap(); // S10: N discharges partially
        g.set_input(ps(112.0), InputId::B, true).unwrap(); // S11: N frozen mid-discharge
        let vn_frozen = g.state_at(ps(112.0))[0];
        assert!(
            vn_frozen > 0.01 * par.vdd && vn_frozen < 0.99 * par.vdd,
            "V_N frozen at an intermediate value: {vn_frozen}"
        );
        // Both inputs fall simultaneously.
        g.set_input(ps(400.0), InputId::A, false).unwrap();
        g.set_input(ps(400.0), InputId::B, false).unwrap();
        let t_tracked = g.next_output_crossing().unwrap().unwrap().0 - ps(400.0);
        let t_memoryless = delay::rising_delay(&par, 0.0, RisingInitialVn::Gnd).unwrap();
        assert!(
            (t_tracked - t_memoryless).abs() > ps(0.05),
            "tracked {t_tracked:e} vs memoryless {t_memoryless:e}"
        );
    }

    #[test]
    fn glitch_prediction_cancelled_by_reverting_input() {
        // A brief input pulse: after the input reverts before the output
        // crossing, the new prediction may disappear (short-pulse
        // suppression emerges from the dynamics).
        let par = p();
        let mut g = NorGateModel::new(&par, false, false).unwrap();
        g.set_input(ps(100.0), InputId::A, true).unwrap();
        let first = g.next_output_crossing().unwrap().expect("predicted fall");
        // Revert A well before the predicted crossing.
        let revert_at = ps(100.0) + 0.2 * (first.0 - ps(100.0));
        g.set_input(revert_at, InputId::A, false).unwrap();
        // The output had barely moved; in S00 it recovers towards VDD and
        // never crosses the threshold.
        assert!(g.next_output_crossing().unwrap().is_none());
    }

    #[test]
    fn out_of_order_events_rejected() {
        let par = p();
        let mut g = NorGateModel::new(&par, false, false).unwrap();
        g.set_input(ps(50.0), InputId::A, true).unwrap();
        assert!(g.set_input(ps(10.0), InputId::B, true).is_err());
    }

    #[test]
    fn output_high_at_tracks_crossing() {
        let par = p();
        let mut g = NorGateModel::new(&par, false, false).unwrap();
        g.set_input(ps(100.0), InputId::A, true).unwrap();
        g.set_input(ps(100.0), InputId::B, true).unwrap();
        let (tc, _) = g.next_output_crossing().unwrap().unwrap();
        assert!(g.output_high_at(tc - ps(1.0)));
        assert!(!g.output_high_at(tc + ps(1.0)));
    }

    #[test]
    fn reasserting_input_value_is_harmless() {
        let par = p();
        let mut g = NorGateModel::new(&par, false, false).unwrap();
        g.set_input(ps(10.0), InputId::A, false).unwrap(); // no-op value
        assert_eq!(g.mode(), Mode::S00);
        assert!(approx_eq(g.state_at(ps(20.0))[1], par.vdd, 1e-9));
    }
}
