use crate::{Mode, ModelError, NorParams};

/// The analytic constants of the two *coupled* modes — `α`, `β`, `γ` and
/// the eigenvalues `λ₁,₂` of the system matrix (paper eqs. (1)–(3) for mode
/// `(1,0)` and (4)–(7) for mode `(0,0)`).
///
/// Both coupled modes share the eigenvector structure
/// `v₁ = [1/(C_N·R₂), α+β]`, `v₂ = [1/(C_N·R₂), α−β]`.
///
/// # Examples
///
/// ```
/// use mis_core::{Mode, ModeConstants, NorParams};
///
/// let p = NorParams::paper_table1();
/// let k = ModeConstants::for_mode(&p, Mode::S10).expect("coupled mode");
/// assert!(k.lambda1 < 0.0 && k.lambda2 < k.lambda1, "over-damped decay");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeConstants {
    /// `α` — eq. (1) / (4).
    pub alpha: f64,
    /// `β` — eq. (2) / (5); strictly positive for physical parameters.
    pub beta: f64,
    /// `γ` — half the matrix trace; eq. (6) (and implicitly in (3)).
    pub gamma: f64,
    /// Fast/slow eigenvalues `λ₁ = γ + β`, `λ₂ = γ − β` — eq. (3) / (7).
    pub lambda1: f64,
    /// See [`ModeConstants::lambda1`].
    pub lambda2: f64,
}

impl ModeConstants {
    /// Computes the constants for a coupled mode (`S10` or `S00`).
    /// Returns `None` for the decoupled modes `S01`/`S11`, whose dynamics
    /// are plain single exponentials.
    #[must_use]
    pub fn for_mode(p: &NorParams, mode: Mode) -> Option<Self> {
        match mode {
            Mode::S10 => {
                // Eqs. (1)–(3): N discharges through R2 into O, O through R3.
                let denom = 2.0 * p.co * p.cn * p.r2 * p.r3;
                let alpha = (p.co * p.r3 - p.cn * (p.r2 + p.r3)) / denom;
                let sum = p.co * p.r3 + p.cn * (p.r2 + p.r3);
                let beta = (sum * sum - 4.0 * p.co * p.cn * p.r2 * p.r3).sqrt() / denom;
                let gamma = -sum / denom;
                Some(ModeConstants {
                    alpha,
                    beta,
                    gamma,
                    lambda1: gamma + beta,
                    lambda2: gamma - beta,
                })
            }
            Mode::S00 => {
                // Eqs. (4)–(7): both capacitances charge from VDD via R1, R2.
                let denom = 2.0 * p.co * p.cn * p.r1 * p.r2;
                let alpha = (p.co * (p.r1 + p.r2) - p.cn * p.r1) / denom;
                let sum = p.cn * p.r1 + p.co * (p.r1 + p.r2);
                let beta = (sum * sum - 4.0 * p.co * p.cn * p.r1 * p.r2).sqrt() / denom;
                let gamma = -sum / denom;
                Some(ModeConstants {
                    alpha,
                    beta,
                    gamma,
                    lambda1: gamma + beta,
                    lambda2: gamma - beta,
                })
            }
            Mode::S01 | Mode::S11 => None,
        }
    }
}

/// One mode's affine ODE system `V' = A·V + g` over `V = [V_N, V_O]`.
///
/// Provides both the raw matrix form (for cross-validation against generic
/// eigen-solvers and numerical integrators) and the closed-form
/// [`ModeTrajectory`] used by the delay computations.
#[derive(Debug, Clone, Copy)]
pub struct ModeSystem {
    params: NorParams,
    mode: Mode,
}

impl ModeSystem {
    /// Builds the system for `mode` under `params`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParams`] if the parameters fail
    /// [`NorParams::validate`].
    pub fn new(params: &NorParams, mode: Mode) -> Result<Self, ModelError> {
        params.validate()?;
        Ok(ModeSystem {
            params: *params,
            mode,
        })
    }

    /// The mode this system describes.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The system matrix `A` (row-major, state `[V_N, V_O]`).
    #[must_use]
    pub fn matrix(&self) -> [[f64; 2]; 2] {
        let p = &self.params;
        match self.mode {
            Mode::S00 => [
                [
                    -(1.0 / (p.cn * p.r1) + 1.0 / (p.cn * p.r2)),
                    1.0 / (p.cn * p.r2),
                ],
                [1.0 / (p.co * p.r2), -1.0 / (p.co * p.r2)],
            ],
            Mode::S01 => [[-1.0 / (p.cn * p.r1), 0.0], [0.0, -1.0 / (p.co * p.r4)]],
            Mode::S10 => [
                [-1.0 / (p.cn * p.r2), 1.0 / (p.cn * p.r2)],
                [
                    1.0 / (p.co * p.r2),
                    -(1.0 / (p.co * p.r2) + 1.0 / (p.co * p.r3)),
                ],
            ],
            Mode::S11 => [
                [0.0, 0.0],
                [0.0, -(1.0 / (p.co * p.r3) + 1.0 / (p.co * p.r4))],
            ],
        }
    }

    /// The constant drive `g`.
    #[must_use]
    pub fn drive(&self) -> [f64; 2] {
        let p = &self.params;
        match self.mode {
            Mode::S00 | Mode::S01 => [p.vdd / (p.cn * p.r1), 0.0],
            Mode::S10 | Mode::S11 => [0.0, 0.0],
        }
    }

    /// The state the mode converges to as `t → ∞`, given the entry state
    /// `x0` (needed because mode `(1,1)` freezes `V_N` at its entry value).
    #[must_use]
    pub fn steady_state(&self, x0: [f64; 2]) -> [f64; 2] {
        let p = &self.params;
        match self.mode {
            Mode::S00 => [p.vdd, p.vdd],
            Mode::S01 => [p.vdd, 0.0],
            Mode::S10 => [0.0, 0.0],
            Mode::S11 => [x0[0], 0.0],
        }
    }

    /// The closed-form trajectory from entry state `x0` (paper Section III).
    #[must_use]
    pub fn trajectory(&self, x0: [f64; 2]) -> ModeTrajectory {
        let p = &self.params;
        let [vn0, vo0] = x0;
        match self.mode {
            Mode::S11 => {
                // V_N frozen; V_O discharges through R3 ∥ R4.
                let l = -(1.0 / p.r3 + 1.0 / p.r4) / p.co;
                ModeTrajectory {
                    mode: self.mode,
                    l1: l,
                    l2: 0.0,
                    kn: [0.0, 0.0],
                    ko: [vo0, 0.0],
                    n_inf: vn0,
                    o_inf: 0.0,
                }
            }
            Mode::S01 => {
                // Decoupled: V_N charges to VDD via R1, V_O discharges via R4.
                let ln = -1.0 / (p.cn * p.r1);
                let lo = -1.0 / (p.co * p.r4);
                ModeTrajectory {
                    mode: self.mode,
                    l1: ln,
                    l2: lo,
                    kn: [vn0 - p.vdd, 0.0],
                    ko: [0.0, vo0],
                    n_inf: p.vdd,
                    o_inf: 0.0,
                }
            }
            Mode::S10 => {
                let k = ModeConstants::for_mode(p, Mode::S10).expect("S10 is coupled");
                let (c1, c2) = coupled_coefficients(p, &k, vn0, vo0);
                ModeTrajectory {
                    mode: self.mode,
                    l1: k.lambda1,
                    l2: k.lambda2,
                    kn: [c1 / (p.cn * p.r2), c2 / (p.cn * p.r2)],
                    ko: [c1 * (k.alpha + k.beta), c2 * (k.alpha - k.beta)],
                    n_inf: 0.0,
                    o_inf: 0.0,
                }
            }
            Mode::S00 => {
                let k = ModeConstants::for_mode(p, Mode::S00).expect("S00 is coupled");
                // Shift by the particular solution [VDD, VDD].
                let (c1, c2) = coupled_coefficients(p, &k, vn0 - p.vdd, vo0 - p.vdd);
                ModeTrajectory {
                    mode: self.mode,
                    l1: k.lambda1,
                    l2: k.lambda2,
                    kn: [c1 / (p.cn * p.r2), c2 / (p.cn * p.r2)],
                    ko: [c1 * (k.alpha + k.beta), c2 * (k.alpha - k.beta)],
                    n_inf: p.vdd,
                    o_inf: p.vdd,
                }
            }
        }
    }
}

/// Solves for the eigenbasis coefficients `(c₁, c₂)` of a coupled mode from
/// the (particular-solution-shifted) entry state, using the shared
/// eigenvector structure `vᵢ = [1/(C_N·R₂), α±β]`.
fn coupled_coefficients(p: &NorParams, k: &ModeConstants, dn0: f64, do0: f64) -> (f64, f64) {
    let s = dn0 * p.cn * p.r2; // c1 + c2
    let d = (do0 - s * k.alpha) / k.beta; // c1 − c2
    (0.5 * (s + d), 0.5 * (s - d))
}

/// Closed-form state evolution inside one mode:
/// `V_N(t) = kn₁·e^{λ₁t} + kn₂·e^{λ₂t} + n∞` and likewise for `V_O`,
/// with `t` measured from mode entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeTrajectory {
    mode: Mode,
    l1: f64,
    l2: f64,
    kn: [f64; 2],
    ko: [f64; 2],
    n_inf: f64,
    o_inf: f64,
}

impl ModeTrajectory {
    /// The mode this trajectory lives in.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// State `[V_N, V_O]` at time `t` after mode entry.
    #[must_use]
    pub fn eval(&self, t: f64) -> [f64; 2] {
        [self.vn(t), self.vo(t)]
    }

    /// Internal node voltage at `t`.
    #[must_use]
    pub fn vn(&self, t: f64) -> f64 {
        self.kn[0] * (self.l1 * t).exp() + self.kn[1] * (self.l2 * t).exp() + self.n_inf
    }

    /// Output voltage at `t`.
    #[must_use]
    pub fn vo(&self, t: f64) -> f64 {
        self.ko[0] * (self.l1 * t).exp() + self.ko[1] * (self.l2 * t).exp() + self.o_inf
    }

    /// Time derivative of the output voltage at `t`.
    #[must_use]
    pub fn vo_derivative(&self, t: f64) -> f64 {
        self.ko[0] * self.l1 * (self.l1 * t).exp() + self.ko[1] * self.l2 * (self.l2 * t).exp()
    }

    /// All times in `[0, t_max]` at which `V_O` crosses `level`, sorted.
    ///
    /// Exact (analytically bracketed) — crossings cannot be missed by
    /// sampling. At most two can exist for a two-exponential trajectory.
    ///
    /// # Errors
    ///
    /// Propagates invalid-input failures from the root finder (e.g.
    /// non-positive `t_max`).
    pub fn vo_crossings(&self, level: f64, t_max: f64) -> Result<Vec<f64>, ModelError> {
        Ok(mis_num::exproots::exp2_crossings(
            self.ko[0],
            self.l1,
            self.ko[1],
            self.l2,
            level - self.o_inf,
            t_max,
        )?)
    }

    /// First strictly positive crossing of `level` within `t_max`, if any.
    /// A crossing exactly at `t = 0` (entry state on the threshold) is
    /// reported only when the trajectory actually departs the level.
    ///
    /// # Errors
    ///
    /// See [`ModeTrajectory::vo_crossings`].
    pub fn first_vo_crossing(&self, level: f64, t_max: f64) -> Result<Option<f64>, ModelError> {
        let roots = self.vo_crossings(level, t_max)?;
        Ok(roots.into_iter().find(|&t| t > 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_linalg::approx_eq;

    fn p() -> NorParams {
        NorParams::paper_table1()
    }

    #[test]
    fn constants_exist_only_for_coupled_modes() {
        assert!(ModeConstants::for_mode(&p(), Mode::S10).is_some());
        assert!(ModeConstants::for_mode(&p(), Mode::S00).is_some());
        assert!(ModeConstants::for_mode(&p(), Mode::S01).is_none());
        assert!(ModeConstants::for_mode(&p(), Mode::S11).is_none());
    }

    #[test]
    fn constants_match_matrix_eigenvalues() {
        // λ₁,₂ from the paper's formulas must be the eigenvalues of A.
        for mode in [Mode::S10, Mode::S00] {
            let sys = ModeSystem::new(&p(), mode).unwrap();
            let k = ModeConstants::for_mode(&p(), mode).unwrap();
            let a = sys.matrix();
            let tr = a[0][0] + a[1][1];
            let det = a[0][0] * a[1][1] - a[0][1] * a[1][0];
            assert!(approx_eq(k.lambda1 + k.lambda2, tr, 1e-10), "{mode}: trace");
            assert!(
                approx_eq(k.lambda1 * k.lambda2, det, 1e-8),
                "{mode}: determinant"
            );
            assert!(approx_eq(2.0 * k.gamma, tr, 1e-10), "{mode}: γ = tr/2");
            assert!(k.beta > 0.0, "{mode}: β strictly positive");
        }
    }

    #[test]
    fn trajectory_matches_initial_state() {
        for mode in Mode::ALL {
            let sys = ModeSystem::new(&p(), mode).unwrap();
            let x0 = [0.3, 0.7];
            let tr = sys.trajectory(x0);
            let x = tr.eval(0.0);
            assert!(approx_eq(x[0], x0[0], 1e-10), "{mode}: V_N(0)");
            assert!(approx_eq(x[1], x0[1], 1e-10), "{mode}: V_O(0)");
        }
    }

    #[test]
    fn trajectory_satisfies_its_ode() {
        // d/dt of the closed form must equal A·x + g along the trajectory.
        for mode in Mode::ALL {
            let sys = ModeSystem::new(&p(), mode).unwrap();
            let tr = sys.trajectory([0.1, 0.75]);
            let a = sys.matrix();
            let g = sys.drive();
            for &t in &[0.0, 5e-12, 20e-12, 100e-12] {
                let x = tr.eval(t);
                let vo_dot = tr.vo_derivative(t);
                let rhs_o = a[1][0] * x[0] + a[1][1] * x[1] + g[1];
                // Scale: voltages ~1 V over ~1e-11 s → derivatives ~1e11.
                assert!(
                    (vo_dot - rhs_o).abs() < 1e-2 * (1.0 + rhs_o.abs()),
                    "{mode} at t={t:e}: {vo_dot:e} vs {rhs_o:e}"
                );
            }
        }
    }

    #[test]
    fn trajectory_converges_to_steady_state() {
        let far = 100.0 * p().slowest_time_constant();
        for mode in Mode::ALL {
            let sys = ModeSystem::new(&p(), mode).unwrap();
            let x0 = [0.8, 0.8];
            let tr = sys.trajectory(x0);
            let ss = sys.steady_state(x0);
            let x = tr.eval(far);
            assert!(approx_eq(x[0], ss[0], 1e-6), "{mode}: V_N(∞)");
            assert!(approx_eq(x[1], ss[1], 1e-6), "{mode}: V_O(∞)");
        }
    }

    #[test]
    fn s11_freezes_vn() {
        let sys = ModeSystem::new(&p(), Mode::S11).unwrap();
        let tr = sys.trajectory([0.37, 0.8]);
        for &t in &[0.0, 1e-12, 1e-10, 1e-9] {
            assert_eq!(tr.vn(t), 0.37);
        }
    }

    #[test]
    fn s11_discharge_half_life_matches_parallel_resistance() {
        let par = p();
        let sys = ModeSystem::new(&par, Mode::S11).unwrap();
        let tr = sys.trajectory([0.0, par.vdd]);
        let t = tr
            .first_vo_crossing(par.vth, 1e-9)
            .unwrap()
            .expect("crossing");
        let r_par = par.r3 * par.r4 / (par.r3 + par.r4);
        let expected = std::f64::consts::LN_2 * par.co * r_par; // eq. (8)
        assert!(approx_eq(t, expected, 1e-10), "{t:e} vs {expected:e}");
    }

    #[test]
    fn s01_discharge_is_single_rc() {
        let par = p();
        let sys = ModeSystem::new(&par, Mode::S01).unwrap();
        let tr = sys.trajectory([par.vdd, par.vdd]);
        let t = tr
            .first_vo_crossing(par.vth, 1e-9)
            .unwrap()
            .expect("crossing");
        let expected = std::f64::consts::LN_2 * par.co * par.r4; // eq. (9)
        assert!(approx_eq(t, expected, 1e-10));
    }

    #[test]
    fn matches_generic_eigensolver() {
        // The specialized closed forms must agree with the independent
        // generic affine solver from mis-linalg in every mode.
        for mode in Mode::ALL {
            let sys = ModeSystem::new(&p(), mode).unwrap();
            let x0 = [0.25, 0.65];
            let tr = sys.trajectory(x0);
            let generic = mis_linalg::Eigen2::new(sys.matrix())
                .solve_affine(x0, sys.drive())
                .unwrap();
            for &t in &[0.0, 3e-12, 17e-12, 64e-12, 300e-12] {
                let a = tr.eval(t);
                let b = generic.eval(t);
                assert!(approx_eq(a[0], b[0], 1e-8), "{mode} V_N at {t:e}");
                assert!(approx_eq(a[1], b[1], 1e-8), "{mode} V_O at {t:e}");
            }
        }
    }

    #[test]
    fn crossing_absent_when_level_unreachable() {
        let par = p();
        let sys = ModeSystem::new(&par, Mode::S00).unwrap();
        // Output rises from 0 towards VDD: it never crosses above VDD.
        let tr = sys.trajectory([0.0, 0.0]);
        assert!(tr
            .first_vo_crossing(par.vdd * 1.01, 1e-9)
            .unwrap()
            .is_none());
        // But it does cross the threshold.
        assert!(tr.first_vo_crossing(par.vth, 1e-9).unwrap().is_some());
    }

    #[test]
    fn invalid_params_rejected_at_system_construction() {
        let mut bad = p();
        bad.r2 = -5.0;
        assert!(ModeSystem::new(&bad, Mode::S10).is_err());
    }
}
