use std::error::Error;
use std::fmt;

/// Errors produced by the hybrid NOR gate model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A parameter set violated its physical domain (non-positive R/C,
    /// threshold outside the rails, ...).
    InvalidParams {
        /// Description of the violated constraint.
        reason: String,
    },
    /// The output never crosses the threshold in the analyzed situation
    /// (e.g. asking for a falling delay while both inputs stay low).
    NoCrossing {
        /// Description of the situation.
        context: String,
    },
    /// A fit could not be performed (inconsistent targets, empty data, or
    /// an infeasible constraint such as the paper's δ↓(−∞)/δ↓(0) ratio).
    FitFailed {
        /// Description of the failure.
        reason: String,
    },
    /// An underlying numeric routine failed.
    Numeric(mis_num::NumError),
    /// An underlying linear-algebra routine failed.
    Linalg(mis_linalg::LinalgError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParams { reason } => write!(f, "invalid parameters: {reason}"),
            ModelError::NoCrossing { context } => {
                write!(f, "output never crosses the threshold: {context}")
            }
            ModelError::FitFailed { reason } => write!(f, "fit failed: {reason}"),
            ModelError::Numeric(e) => write!(f, "numeric failure: {e}"),
            ModelError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Numeric(e) => Some(e),
            ModelError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mis_num::NumError> for ModelError {
    fn from(e: mis_num::NumError) -> Self {
        ModelError::Numeric(e)
    }
}

impl From<mis_linalg::LinalgError> for ModelError {
    fn from(e: mis_linalg::LinalgError) -> Self {
        ModelError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ModelError::InvalidParams {
            reason: "r1 must be positive".into(),
        };
        assert!(e.to_string().contains("r1"));
        let e = ModelError::NoCrossing {
            context: "mode (0,0) from VDD".into(),
        };
        assert!(e.to_string().contains("never crosses"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error as _;
        let e = ModelError::from(mis_num::NumError::NonFiniteValue { at: 0.0 });
        assert!(e.source().is_some());
    }
}
