use mis_waveform::AnalogWaveform;

use crate::{Mode, ModeSystem, ModeTrajectory, ModelError, NorParams};

/// One entry of a mode-switch schedule: at absolute time `at`, the inputs
/// assume the state of `to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeSwitch {
    /// Absolute switch time, in seconds.
    pub at: f64,
    /// Mode entered at [`ModeSwitch::at`].
    pub to: Mode,
}

/// A continuous piecewise trajectory of the hybrid model across an
/// arbitrary sequence of mode switches.
///
/// This is the machinery behind the paper's Fig. 4 (per-mode switching
/// waveforms), the MIS delay computations (two-switch schedules) and the
/// event-driven channel (incremental switching). Continuity of
/// `V = [V_N, V_O]` at each switch is guaranteed by construction: each
/// segment starts from the previous segment's end state.
///
/// # Examples
///
/// Reproducing one MIS scenario by hand — both inputs rise 10 ps apart:
///
/// ```
/// use mis_core::{HybridTrajectory, Mode, ModeSwitch, NorParams};
/// use mis_waveform::units::ps;
///
/// # fn main() -> Result<(), mis_core::ModelError> {
/// let p = NorParams::paper_table1();
/// let traj = HybridTrajectory::new(
///     &p,
///     Mode::S00,
///     [p.vdd, p.vdd],
///     0.0,
///     &[
///         ModeSwitch { at: 0.0, to: Mode::S10 },
///         ModeSwitch { at: ps(10.0), to: Mode::S11 },
///     ],
/// )?;
/// let t_cross = traj.first_output_crossing(p.vth, ps(500.0))?.expect("falls");
/// assert!(t_cross > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HybridTrajectory {
    /// Segment start times (absolute), parallel to `segments`.
    starts: Vec<f64>,
    segments: Vec<ModeTrajectory>,
    /// End of the last segment's validity (`f64::INFINITY`).
    params: NorParams,
}

impl HybridTrajectory {
    /// Builds a trajectory that starts in `initial_mode` with state `x0` at
    /// absolute time `t0` and then applies `switches` in order.
    ///
    /// Switches earlier than `t0` or out of order are rejected. A switch to
    /// the current mode is allowed and re-anchors the segment (no state
    /// change — useful for uniform schedules).
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidParams`] — parameter validation failure.
    /// * [`ModelError::FitFailed`] is never returned here; scheduling
    ///   violations surface as [`ModelError::InvalidParams`] with a
    ///   descriptive reason.
    pub fn new(
        params: &NorParams,
        initial_mode: Mode,
        x0: [f64; 2],
        t0: f64,
        switches: &[ModeSwitch],
    ) -> Result<Self, ModelError> {
        params.validate()?;
        let mut starts = vec![t0];
        let mut segments = vec![ModeSystem::new(params, initial_mode)?.trajectory(x0)];
        let mut t_prev = t0;
        for (i, sw) in switches.iter().enumerate() {
            if !(sw.at >= t_prev) {
                return Err(ModelError::InvalidParams {
                    reason: format!(
                        "switch {i} at {:e} precedes previous segment start {:e}",
                        sw.at, t_prev
                    ),
                });
            }
            let last = segments.last().expect("at least the initial segment");
            let x_at = last.eval(sw.at - starts[starts.len() - 1]);
            segments.push(ModeSystem::new(params, sw.to)?.trajectory(x_at));
            starts.push(sw.at);
            t_prev = sw.at;
        }
        Ok(HybridTrajectory {
            starts,
            segments,
            params: *params,
        })
    }

    /// The state `[V_N, V_O]` at absolute time `t` (clamped to the first
    /// segment's start).
    #[must_use]
    pub fn eval(&self, t: f64) -> [f64; 2] {
        let idx = self.segment_index(t);
        self.segments[idx].eval((t - self.starts[idx]).max(0.0))
    }

    /// The mode active at absolute time `t`.
    #[must_use]
    pub fn mode_at(&self, t: f64) -> Mode {
        self.segments[self.segment_index(t)].mode()
    }

    /// First time `> after` at which the output crosses `level`, searching
    /// up to `horizon` past the last switch.
    ///
    /// # Errors
    ///
    /// Propagates crossing-solver failures (non-positive horizon).
    pub fn first_output_crossing(
        &self,
        level: f64,
        horizon: f64,
    ) -> Result<Option<f64>, ModelError> {
        for (i, seg) in self.segments.iter().enumerate() {
            let t_start = self.starts[i];
            let t_end = if i + 1 < self.starts.len() {
                self.starts[i + 1]
            } else {
                self.starts[i] + horizon
            };
            let span = t_end - t_start;
            if !(span > 0.0) {
                continue;
            }
            if let Some(tc) = seg.first_vo_crossing(level, span)? {
                // A crossing exactly at a segment boundary belongs to the
                // next segment (the switch happens first).
                if tc < span || i + 1 == self.segments.len() {
                    return Ok(Some(t_start + tc));
                }
            }
        }
        Ok(None)
    }

    /// Samples the trajectory on `n` uniform points over `[t0, t1]` as a
    /// pair of analog waveforms `(V_N, V_O)` — the paper's Fig. 4 format.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParams`] for a reversed window or
    /// `n < 2`; waveform construction errors are impossible for a uniform
    /// grid but still propagate defensively.
    pub fn sample(
        &self,
        t0: f64,
        t1: f64,
        n: usize,
    ) -> Result<(AnalogWaveform, AnalogWaveform), ModelError> {
        if !(t1 > t0) || n < 2 {
            return Err(ModelError::InvalidParams {
                reason: "sampling needs t1 > t0 and n >= 2".into(),
            });
        }
        let mut ts = Vec::with_capacity(n);
        let mut vn = Vec::with_capacity(n);
        let mut vo = Vec::with_capacity(n);
        for i in 0..n {
            let t = t0 + (t1 - t0) * i as f64 / (n - 1) as f64;
            let x = self.eval(t);
            ts.push(t);
            vn.push(x[0]);
            vo.push(x[1]);
        }
        let wn = AnalogWaveform::from_samples(ts.clone(), vn).map_err(|e| {
            ModelError::InvalidParams {
                reason: format!("V_N sampling failed: {e}"),
            }
        })?;
        let wo = AnalogWaveform::from_samples(ts, vo).map_err(|e| ModelError::InvalidParams {
            reason: format!("V_O sampling failed: {e}"),
        })?;
        Ok((wn, wo))
    }

    /// The parameter set this trajectory was built with.
    #[must_use]
    pub fn params(&self) -> &NorParams {
        &self.params
    }

    fn segment_index(&self, t: f64) -> usize {
        // Last segment whose start is <= t (segments take effect at their
        // start instant).
        self.starts.iter().rposition(|&s| s <= t).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_linalg::approx_eq;
    use mis_waveform::units::ps;

    fn p() -> NorParams {
        NorParams::paper_table1()
    }

    #[test]
    fn continuity_at_switches() {
        let par = p();
        let traj = HybridTrajectory::new(
            &par,
            Mode::S00,
            [par.vdd, par.vdd],
            0.0,
            &[
                ModeSwitch {
                    at: ps(5.0),
                    to: Mode::S10,
                },
                ModeSwitch {
                    at: ps(25.0),
                    to: Mode::S11,
                },
                ModeSwitch {
                    at: ps(60.0),
                    to: Mode::S00,
                },
            ],
        )
        .unwrap();
        for &ts in &[ps(5.0), ps(25.0), ps(60.0)] {
            let before = traj.eval(ts - 1e-18);
            let after = traj.eval(ts + 1e-18);
            assert!(approx_eq(before[0], after[0], 1e-6), "V_N jump at {ts:e}");
            assert!(approx_eq(before[1], after[1], 1e-6), "V_O jump at {ts:e}");
        }
    }

    #[test]
    fn mode_at_respects_schedule() {
        let par = p();
        let traj = HybridTrajectory::new(
            &par,
            Mode::S00,
            [par.vdd, par.vdd],
            0.0,
            &[ModeSwitch {
                at: ps(10.0),
                to: Mode::S11,
            }],
        )
        .unwrap();
        assert_eq!(traj.mode_at(ps(5.0)), Mode::S00);
        assert_eq!(traj.mode_at(ps(10.0)), Mode::S11);
        assert_eq!(traj.mode_at(ps(100.0)), Mode::S11);
    }

    #[test]
    fn rejects_out_of_order_switches() {
        let par = p();
        let r = HybridTrajectory::new(
            &par,
            Mode::S00,
            [par.vdd, par.vdd],
            0.0,
            &[
                ModeSwitch {
                    at: ps(10.0),
                    to: Mode::S10,
                },
                ModeSwitch {
                    at: ps(5.0),
                    to: Mode::S11,
                },
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn crossing_found_across_segment_boundary() {
        // Switch to S11 before the S10 crossing would occur; the crossing
        // must be found inside the S11 segment.
        let par = p();
        let traj = HybridTrajectory::new(
            &par,
            Mode::S00,
            [par.vdd, par.vdd],
            0.0,
            &[
                ModeSwitch {
                    at: 0.0,
                    to: Mode::S10,
                },
                ModeSwitch {
                    at: ps(5.0),
                    to: Mode::S11,
                },
            ],
        )
        .unwrap();
        let tc = traj
            .first_output_crossing(par.vth, ps(1000.0))
            .unwrap()
            .expect("output must fall");
        assert!(tc > ps(5.0), "crossing after the second switch: {tc:e}");
        let vo = traj.eval(tc)[1];
        assert!(approx_eq(vo, par.vth, 1e-9));
    }

    #[test]
    fn crossing_in_first_segment_when_switch_is_late() {
        let par = p();
        let traj = HybridTrajectory::new(
            &par,
            Mode::S00,
            [par.vdd, par.vdd],
            0.0,
            &[
                ModeSwitch {
                    at: 0.0,
                    to: Mode::S10,
                },
                ModeSwitch {
                    at: ps(500.0),
                    to: Mode::S11,
                },
            ],
        )
        .unwrap();
        let tc = traj
            .first_output_crossing(par.vth, ps(1000.0))
            .unwrap()
            .expect("crossing");
        assert!(tc < ps(500.0), "SIS crossing precedes the second switch");
    }

    #[test]
    fn no_crossing_when_output_stays_high() {
        let par = p();
        let traj = HybridTrajectory::new(&par, Mode::S00, [par.vdd, par.vdd], 0.0, &[]).unwrap();
        assert!(traj
            .first_output_crossing(par.vth, ps(1000.0))
            .unwrap()
            .is_none());
    }

    #[test]
    fn sample_produces_fig4_style_waveforms() {
        let par = p();
        // Fig. 4 initial conditions: V_N(0)=V_O(0)=VDD except (0,0) from
        // GND and (1,1) with V_N = VDD/2.
        let traj = HybridTrajectory::new(&par, Mode::S00, [0.0, 0.0], 0.0, &[]).unwrap();
        let (wn, wo) = traj.sample(0.0, ps(150.0), 151).unwrap();
        assert_eq!(wn.len(), 151);
        // (0,0) charges both nodes towards VDD.
        assert!(wo.value_at(ps(150.0)) > 0.9 * par.vdd);
        assert!(wn.value_at(ps(150.0)) > 0.9 * par.vdd);
        assert!(traj.sample(1.0, 0.0, 10).is_err());
        assert!(traj.sample(0.0, 1.0, 1).is_err());
    }

    #[test]
    fn matches_adaptive_integration_across_switches() {
        // Integrate the raw piecewise ODE numerically and compare at the end.
        let par = p();
        let schedule = [
            ModeSwitch {
                at: ps(4.0),
                to: Mode::S10,
            },
            ModeSwitch {
                at: ps(19.0),
                to: Mode::S11,
            },
        ];
        let traj =
            HybridTrajectory::new(&par, Mode::S00, [par.vdd, par.vdd], 0.0, &schedule).unwrap();
        let mut x = [par.vdd, par.vdd];
        let mut t = 0.0;
        let times = [ps(4.0), ps(19.0), ps(80.0)];
        let modes = [Mode::S00, Mode::S10, Mode::S11];
        for (&t_end, &mode) in times.iter().zip(&modes) {
            let sys = ModeSystem::new(&par, mode).unwrap();
            let a = sys.matrix();
            let g = sys.drive();
            let samples = mis_num::ode::integrate_adaptive(
                |_tt, y, dy| {
                    dy[0] = a[0][0] * y[0] + a[0][1] * y[1] + g[0];
                    dy[1] = a[1][0] * y[0] + a[1][1] * y[1] + g[1];
                },
                t,
                t_end,
                &x,
                &mis_num::ode::AdaptiveOptions::default(),
            )
            .unwrap();
            let last = samples.last().unwrap();
            x = [last.y[0], last.y[1]];
            t = t_end;
        }
        let analytic = traj.eval(ps(80.0));
        assert!(approx_eq(analytic[0], x[0], 1e-6), "V_N");
        assert!(approx_eq(analytic[1], x[1], 1e-6), "V_O");
    }
}
