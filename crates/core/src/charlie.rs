//! Characteristic Charlie delays (paper Section V, eqs. (8)–(12)).
//!
//! The six *characteristic* values — `δ↓(−∞), δ↓(0), δ↓(∞)` and
//! `δ↑(−∞), δ↑(0), δ↑(∞)` — pin down the shape of the MIS delay curves and
//! drive the parametrization. The paper derives:
//!
//! * **exact closed forms** for `δ↓(0)` (eq. (8)) and `δ↓(−∞)` (eq. (9)) —
//!   pure single-RC discharges;
//! * **first-order linearized approximations** for the remaining values
//!   (eqs. (10)–(12)): the trajectory is Taylor-expanded at a probe time
//!   `w` and the linearization solved for the threshold crossing, giving
//!   `t ≈ w + (V_th − V_O(w)) / V_O'(w)` with error `O((t−w)²)`.
//!
//! ### A note on the published constants
//!
//! The printed eqs. (10)–(12) hard-code `0.6` where `V_th` belongs and
//! scale the `c`-coefficients as if `V_DD = 1.2 V` (the authors' legacy
//! 65 nm validation supply), while the evaluation elsewhere uses
//! `V_DD = 0.8 V`; eq. (12) also contains an undefined symbol `D`
//! (dimensional analysis identifies it as `C_N`). This module implements
//! the formulas symbolically in `V_DD`/`V_th`, so they agree with the
//! numerically exact delays for any supply; [`paper_constant_l`]
//! demonstrates that the paper's convoluted constant `l` reduces to
//! exactly `V_DD`.
//!
//! All values returned here are *raw ODE delays* — the pure delay
//! `δ_min` is **not** added, matching the role these quantities play in
//! fitting (where `δ_min` is subtracted from the measured targets).

use crate::{
    delay, HybridTrajectory, Mode, ModeConstants, ModeSwitch, ModeSystem, ModelError, NorParams,
    RisingInitialVn,
};

/// The paper's probe time for falling-transition approximations
/// (`w = 10⁻¹⁰ s` in eq. (10)).
///
/// The literal value is calibrated to the ~100 ps time constants of the
/// authors' legacy 65 nm / 1.2 V setup (see the module docs and
/// [`NorParams::legacy_65nm_like`]); for the 15 nm Table I parameters the
/// linearization point must sit near the actual crossing — use the
/// `_auto` variants, which place it there by fixed-point iteration.
pub const PAPER_W_FALL: f64 = 1e-10;

/// The paper's probe time for rising-transition approximations
/// (`w = 2·10⁻¹⁰ s` in eq. (11); eq. (12) uses `10⁻¹⁰ s`).
pub const PAPER_W_RISE: f64 = 2e-10;

/// Fixed-point iterations used by the `_auto` approximations: each round
/// re-linearizes at the previous estimate (Newton-on-the-trajectory).
const AUTO_PROBE_ROUNDS: usize = 3;

/// The six characteristic Charlie delays of a parameter set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacteristicDelays {
    /// `δ↓(−∞)` — falling output, only input B rises.
    pub fall_minus_inf: f64,
    /// `δ↓(0)` — falling output, simultaneous inputs.
    pub fall_zero: f64,
    /// `δ↓(+∞)` — falling output, only input A rises.
    pub fall_plus_inf: f64,
    /// `δ↑(−∞)` — rising output, B fell long before A.
    pub rise_minus_inf: f64,
    /// `δ↑(0)` — rising output, simultaneous inputs (`V_N = GND`).
    pub rise_zero: f64,
    /// `δ↑(+∞)` — rising output, A fell long before B.
    pub rise_plus_inf: f64,
}

impl CharacteristicDelays {
    /// Numerically exact characteristic delays of the model (raw ODE
    /// crossings, no `δ_min`), using the paper's `V_N = GND` convention
    /// for `δ↑(0)`.
    ///
    /// # Errors
    ///
    /// Propagates delay-computation failures.
    pub fn of_model(params: &NorParams) -> Result<Self, ModelError> {
        let raw = params.without_pure_delay();
        let (fall_m, fall_p) = delay::falling_sis(&raw)?;
        let (rise_m, rise_p) = delay::rising_sis(&raw)?;
        Ok(CharacteristicDelays {
            fall_minus_inf: fall_m,
            fall_zero: delay::falling_delay(&raw, 0.0)?,
            fall_plus_inf: fall_p,
            rise_minus_inf: rise_m,
            rise_zero: delay::rising_delay(&raw, 0.0, RisingInitialVn::Gnd)?,
            rise_plus_inf: rise_p,
        })
    }

    /// The delays as a fixed-order array
    /// `[δ↓(−∞), δ↓(0), δ↓(∞), δ↑(−∞), δ↑(0), δ↑(∞)]`.
    #[must_use]
    pub fn as_array(&self) -> [f64; 6] {
        [
            self.fall_minus_inf,
            self.fall_zero,
            self.fall_plus_inf,
            self.rise_minus_inf,
            self.rise_zero,
            self.rise_plus_inf,
        ]
    }

    /// Builds from the fixed-order array (inverse of
    /// [`CharacteristicDelays::as_array`]).
    #[must_use]
    pub fn from_array(a: [f64; 6]) -> Self {
        CharacteristicDelays {
            fall_minus_inf: a[0],
            fall_zero: a[1],
            fall_plus_inf: a[2],
            rise_minus_inf: a[3],
            rise_zero: a[4],
            rise_plus_inf: a[5],
        }
    }
}

/// Eq. (8): the exact simultaneous falling delay
/// `δ↓(0) = ln 2 · C_O · R₃R₄/(R₃+R₄)` (parallel nMOS discharge).
///
/// # Examples
///
/// ```
/// use mis_core::{charlie, NorParams};
/// let p = NorParams::paper_table1();
/// let d = charlie::fall_zero_exact(&p);
/// assert!(d > 9e-12 && d < 11e-12, "≈ 10 ps for Table I");
/// ```
#[must_use]
pub fn fall_zero_exact(params: &NorParams) -> f64 {
    let r_par = params.r3 * params.r4 / (params.r3 + params.r4);
    // ln(V_DD / V_th) generalizes the paper's ln 2 (= V_th = V_DD/2).
    (params.vdd / params.vth).ln() * params.co * r_par
}

/// Eq. (9): the exact B-only falling delay `δ↓(−∞) = ln 2 · C_O · R₄`.
#[must_use]
pub fn fall_minus_inf_exact(params: &NorParams) -> f64 {
    (params.vdd / params.vth).ln() * params.co * params.r4
}

/// Eq. (10): the linearized A-only falling delay `δ↓(+∞)`, obtained by
/// Taylor-inverting the mode `(1,0)` trajectory from `[V_DD, V_DD]` at
/// probe time `w` (paper default [`PAPER_W_FALL`]).
///
/// # Errors
///
/// Returns [`ModelError::InvalidParams`] for a non-positive `w` or
/// parameters failing validation.
pub fn fall_plus_inf_approx(params: &NorParams, w: f64) -> Result<f64, ModelError> {
    if !(w > 0.0) {
        return Err(ModelError::InvalidParams {
            reason: "probe time w must be positive".into(),
        });
    }
    let sys = ModeSystem::new(params, Mode::S10)?;
    let traj = sys.trajectory([params.vdd, params.vdd]);
    Ok(linearized_crossing(&traj, params.vth, w))
}

/// Eqs. (11)/(12): the linearized rising delay `δ↑(Δ)` for initial
/// internal-node voltage `x` (the paper's `X`), Taylor-inverted on the
/// final `(0,0)` segment at *global* probe time `w` (paper defaults
/// [`PAPER_W_RISE`] for `Δ ≥ 0` and [`PAPER_W_FALL`] for `Δ < 0`).
///
/// The returned delay is measured from the later input
/// (`δ↑ = t_O − max(t_A, t_B)`), matching [`delay::rising_delay`] without
/// `δ_min`.
///
/// # Errors
///
/// * [`ModelError::InvalidParams`] — `w` not beyond the second switch
///   (`w <= |Δ|`), or invalid parameters.
pub fn rise_approx(params: &NorParams, delta: f64, x: f64, w: f64) -> Result<f64, ModelError> {
    let ts = delta.abs();
    if !(w > ts) {
        return Err(ModelError::InvalidParams {
            reason: format!("probe time w = {w:e} must exceed |Δ| = {ts:e}"),
        });
    }
    let first_mode = if delta >= 0.0 { Mode::S01 } else { Mode::S10 };
    // Phase 1: evolve [x, 0] through the first mode for ts.
    let phase1 = ModeSystem::new(params, first_mode)?.trajectory([x, 0.0]);
    let x_at_ts = phase1.eval(ts);
    // Phase 2: the (0,0) charge, linearized at local time (w − ts).
    let phase2 = ModeSystem::new(params, Mode::S00)?.trajectory(x_at_ts);
    Ok(linearized_crossing(&phase2, params.vth, w - ts))
}

/// Eq. (10) with an automatically placed probe: starts from the eq. (8)
/// delay scale and re-linearizes `AUTO_PROBE_ROUNDS` times, so the probe
/// lands on the crossing regardless of technology time constants.
///
/// # Errors
///
/// Same as [`fall_plus_inf_approx`].
pub fn fall_plus_inf_approx_auto(params: &NorParams) -> Result<f64, ModelError> {
    let mut w = fall_zero_exact(params).max(1e-15);
    for _ in 0..AUTO_PROBE_ROUNDS {
        let t = fall_plus_inf_approx(params, w)?;
        if !(t > 0.0) || !t.is_finite() {
            break;
        }
        w = t;
    }
    fall_plus_inf_approx(params, w)
}

/// Eqs. (11)/(12) with an automatically placed probe (see
/// [`fall_plus_inf_approx_auto`]).
///
/// # Errors
///
/// Same as [`rise_approx`].
pub fn rise_approx_auto(params: &NorParams, delta: f64, x: f64) -> Result<f64, ModelError> {
    let ts = delta.abs();
    // Initial probe: one |Δ| plus the simultaneous-rise delay scale.
    let mut w = ts + fall_zero_exact(params).max(1e-15) * 2.0;
    for _ in 0..AUTO_PROBE_ROUNDS {
        let d = rise_approx(params, delta, x, w)?;
        let t_global = ts + d;
        if !(t_global > ts) || !t_global.is_finite() {
            break;
        }
        w = t_global;
    }
    rise_approx(params, delta, x, w)
}

/// First-order Taylor inversion of a trajectory's output crossing around
/// probe time `w`:
/// `t ≈ w + (level − V_O(w)) / V_O'(w)` — the algebraic core of the
/// paper's eqs. (10)–(12).
fn linearized_crossing(traj: &crate::ModeTrajectory, level: f64, w: f64) -> f64 {
    w + (level - traj.vo(w)) / traj.vo_derivative(w)
}

/// The paper's eq. (11) constant
/// `l = V_DD·(−α² + β²)·R₂ / (R₁·(γ² − β²))` for mode `(0,0)`.
///
/// Algebraically this is exactly `V_DD` (our crate's derivation shows
/// `β² − α² = 1/(C_N·C_O·R₂²)` and `γ² − β² = 1/(C_N·C_O·R₁·R₂)`); the
/// function exists so tests can demonstrate the identity and thereby
/// validate our reading of the published formula.
#[must_use]
pub fn paper_constant_l(params: &NorParams) -> f64 {
    let k = ModeConstants::for_mode(params, Mode::S00).expect("S00 is coupled");
    params.vdd * (-k.alpha * k.alpha + k.beta * k.beta) * params.r2
        / (params.r1 * (k.gamma * k.gamma - k.beta * k.beta))
}

/// The numerically exact counterpart of [`fall_plus_inf_approx`]: the true
/// `(1,0)` crossing from `[V_DD, V_DD]` (no linearization).
///
/// # Errors
///
/// Propagates crossing-solver failures; [`ModelError::NoCrossing`] if the
/// output cannot reach the threshold (impossible for valid parameters).
pub fn fall_plus_inf_exact_numeric(params: &NorParams) -> Result<f64, ModelError> {
    let sys = ModeSystem::new(params, Mode::S10)?;
    let traj = sys.trajectory([params.vdd, params.vdd]);
    let horizon = 60.0 * params.slowest_time_constant();
    traj.first_vo_crossing(params.vth, horizon)?
        .ok_or_else(|| ModelError::NoCrossing {
            context: "mode (1,0) from [VDD, VDD]".into(),
        })
}

/// The numerically exact counterpart of [`rise_approx`].
///
/// # Errors
///
/// Propagates [`delay::rising_delay`] failures.
pub fn rise_exact_numeric(params: &NorParams, delta: f64, x: f64) -> Result<f64, ModelError> {
    delay::rising_delay(
        &params.without_pure_delay(),
        delta,
        RisingInitialVn::Explicit(x),
    )
}

/// Convenience: the `(0,1)` internal-node charge curve
/// `V_N^{(0,1)}(Δ) = V_DD + (X − V_DD)·e^{−Δ/(C_N R₁)}` used by eq. (11).
#[must_use]
pub fn vn_after_01_phase(params: &NorParams, delta: f64, x: f64) -> f64 {
    params.vdd + (x - params.vdd) * (-delta / (params.cn * params.r1)).exp()
}

/// Sensitivity report: which parameters affect which characteristic delay
/// (paper Section V's qualitative analysis, quantified as relative
/// finite-difference sensitivities `∂ln δ / ∂ln p`).
///
/// Rows follow [`CharacteristicDelays::as_array`] order; columns are
/// `[R1, R2, R3, R4, C_N, C_O]`.
///
/// # Errors
///
/// Propagates delay-computation failures.
pub fn sensitivity_matrix(params: &NorParams) -> Result<[[f64; 6]; 6], ModelError> {
    let base = CharacteristicDelays::of_model(params)?.as_array();
    let rel_step = 1e-4;
    let mut out = [[0.0; 6]; 6];
    for (j, field) in [0usize, 1, 2, 3, 4, 5].iter().enumerate() {
        let mut bumped = *params;
        match field {
            0 => bumped.r1 *= 1.0 + rel_step,
            1 => bumped.r2 *= 1.0 + rel_step,
            2 => bumped.r3 *= 1.0 + rel_step,
            3 => bumped.r4 *= 1.0 + rel_step,
            4 => bumped.cn *= 1.0 + rel_step,
            _ => bumped.co *= 1.0 + rel_step,
        }
        let pert = CharacteristicDelays::of_model(&bumped)?.as_array();
        for i in 0..6 {
            out[i][j] = (pert[i] - base[i]) / (base[i] * rel_step);
        }
    }
    Ok(out)
}

/// Exact rising-delay crossing for the special schedule used in the
/// paper's Fig. 6 discussion, exposed for benchmarks: the full two-phase
/// trajectory object, so callers can sample it.
///
/// # Errors
///
/// Propagates trajectory-construction failures.
pub fn rising_trajectory(
    params: &NorParams,
    delta: f64,
    x: f64,
) -> Result<HybridTrajectory, ModelError> {
    let ts = delta.abs();
    let first_mode = if delta >= 0.0 { Mode::S01 } else { Mode::S10 };
    HybridTrajectory::new(
        params,
        Mode::S11,
        [x, 0.0],
        0.0,
        &[
            ModeSwitch {
                at: 0.0,
                to: first_mode,
            },
            ModeSwitch {
                at: ts,
                to: Mode::S00,
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_linalg::approx_eq;
    use mis_waveform::units::ps;
    use std::f64::consts::LN_2;

    fn p() -> NorParams {
        NorParams::paper_table1()
    }

    #[test]
    fn eq8_matches_numeric() {
        let par = p();
        let exact = fall_zero_exact(&par);
        let numeric = delay::falling_delay(&par.without_pure_delay(), 0.0).unwrap();
        assert!(approx_eq(exact, numeric, 1e-10));
    }

    #[test]
    fn eq9_matches_numeric() {
        let par = p();
        let exact = fall_minus_inf_exact(&par);
        let (numeric, _) = delay::falling_sis(&par.without_pure_delay()).unwrap();
        assert!(approx_eq(exact, numeric, 1e-10));
    }

    #[test]
    fn eq8_eq9_ratio_structure() {
        // δ↓(−∞)/δ↓(0) = (R3+R4)/R3 ≈ 2 for matched nMOS — the paper's
        // feasibility constraint.
        let par = p();
        let ratio = fall_minus_inf_exact(&par) / fall_zero_exact(&par);
        let expected = (par.r3 + par.r4) / par.r3;
        assert!(approx_eq(ratio, expected, 1e-12));
        assert!((1.9..=2.2).contains(&ratio), "Table I gives ≈ 2.08");
    }

    #[test]
    fn eq10_auto_probe_matches_exact_on_table1() {
        let par = p();
        let approx = fall_plus_inf_approx_auto(&par).unwrap();
        let exact = fall_plus_inf_exact_numeric(&par).unwrap();
        assert!(
            (approx - exact).abs() < ps(0.05),
            "approx {approx:e} vs exact {exact:e}"
        );
    }

    #[test]
    fn eq10_paper_probe_works_on_65nm_scale() {
        // The published w = 100 ps sits near the crossing for the legacy
        // 65 nm / 1.2 V time constants the formulas were written for.
        let par = NorParams::legacy_65nm_like();
        let approx = fall_plus_inf_approx(&par, PAPER_W_FALL).unwrap();
        let exact = fall_plus_inf_exact_numeric(&par).unwrap();
        assert!(
            (approx - exact).abs() < 0.2 * exact,
            "approx {approx:e} vs exact {exact:e}"
        );
    }

    #[test]
    fn eq11_rise_approx_positive_delta() {
        let par = p();
        for &d in &[0.0, ps(10.0), ps(40.0)] {
            let approx = rise_approx_auto(&par, d, 0.0).unwrap();
            let exact = rise_exact_numeric(&par, d, 0.0).unwrap();
            assert!(
                (approx - exact).abs() < ps(0.1),
                "Δ = {d:e}: {approx:e} vs {exact:e}"
            );
        }
        // Literal paper probe on the 65 nm-scale parameters.
        let legacy = NorParams::legacy_65nm_like();
        let approx = rise_approx(&legacy, 0.0, 0.0, PAPER_W_RISE).unwrap();
        let exact = rise_exact_numeric(&legacy, 0.0, 0.0).unwrap();
        assert!(
            (approx - exact).abs() < 0.25 * exact,
            "legacy: {approx:e} vs {exact:e}"
        );
    }

    #[test]
    fn eq12_rise_approx_negative_delta_all_x() {
        let par = p();
        for &x in &[0.0, par.vdd / 2.0, par.vdd] {
            let approx = rise_approx_auto(&par, ps(-20.0), x).unwrap();
            let exact = rise_exact_numeric(&par, ps(-20.0), x).unwrap();
            assert!(
                (approx - exact).abs() < ps(0.1),
                "X = {x}: {approx:e} vs {exact:e}"
            );
        }
    }

    #[test]
    fn rise_approx_error_shrinks_with_probe_distance() {
        let par = p();
        let exact = rise_exact_numeric(&par, ps(10.0), 0.0).unwrap();
        let err_far = (rise_approx(&par, ps(10.0), 0.0, PAPER_W_RISE).unwrap() - exact).abs();
        let err_near = (rise_approx(&par, ps(10.0), 0.0, ps(10.0) + exact).unwrap() - exact).abs();
        assert!(err_near <= err_far + 1e-18, "{err_near:e} vs {err_far:e}");
        assert!(err_near < ps(0.05));
    }

    #[test]
    fn paper_constant_l_is_vdd() {
        // The convoluted eq. (11) constant reduces to exactly V_DD.
        let par = p();
        assert!(approx_eq(paper_constant_l(&par), par.vdd, 1e-9));
        // ... for any parameter set, not just Table I.
        let other = NorParams::builder()
            .r1(10e3)
            .r2(80e3)
            .cn(200e-18)
            .co(900e-18)
            .build()
            .unwrap();
        assert!(approx_eq(paper_constant_l(&other), other.vdd, 1e-9));
    }

    #[test]
    fn vn_after_01_phase_limits() {
        let par = p();
        assert!(approx_eq(vn_after_01_phase(&par, 0.0, 0.3), 0.3, 1e-12));
        assert!(approx_eq(
            vn_after_01_phase(&par, 1.0, 0.3), // 1 s ≫ C_N·R_1
            par.vdd,
            1e-12
        ));
    }

    #[test]
    fn characteristic_delays_consistent_with_delay_module() {
        let par = p();
        let c = CharacteristicDelays::of_model(&par).unwrap();
        let raw = par.without_pure_delay();
        assert!(approx_eq(
            c.fall_zero,
            delay::falling_delay(&raw, 0.0).unwrap(),
            1e-12
        ));
        assert!(approx_eq(
            c.rise_zero,
            delay::rising_delay(&raw, 0.0, RisingInitialVn::Gnd).unwrap(),
            1e-12
        ));
        let arr = c.as_array();
        assert_eq!(CharacteristicDelays::from_array(arr), c);
    }

    #[test]
    fn sensitivities_match_paper_section_v() {
        // Paper: the falling characteristic delays are unaffected by R1;
        // δ↓(−∞) depends only on C_O and R4; δ↑(0) and δ↑(∞) are driven by
        // C_N, C_O, R1, R2.
        let par = p();
        let s = sensitivity_matrix(&par).unwrap();
        // Rows: [fall−∞, fall0, fall+∞, rise−∞, rise0, rise+∞]
        // Cols: [R1, R2, R3, R4, C_N, C_O]
        for (row, sens) in s.iter().take(3).enumerate() {
            assert!(
                sens[0].abs() < 1e-3,
                "falling delays must not depend on R1 (row {row}: {})",
                sens[0]
            );
        }
        // δ↓(−∞) = ln2·C_O·R4: unit sensitivity to R4 and C_O, none to R3.
        assert!(s[0][3] > 0.99 && s[0][3] < 1.01);
        assert!(s[0][5] > 0.99 && s[0][5] < 1.01);
        assert!(s[0][2].abs() < 1e-3);
        // Rising delays must not depend on R3 (nMOS off in (0,*) modes)…
        assert!(s[4][2].abs() < 1e-3, "rise0 vs R3: {}", s[4][2]);
        // …and δ↑(+∞) not on R4 either (B's pull-down long off).
        assert!(s[5][3].abs() < 1e-3, "rise+∞ vs R4: {}", s[5][3]);
        // δ↑(0) strongly positive in R1, R2, C_O.
        assert!(s[4][0] > 0.1 && s[4][1] > 0.1 && s[4][5] > 0.5);
    }

    #[test]
    fn rise_approx_rejects_probe_before_switch() {
        let par = p();
        assert!(rise_approx(&par, ps(300.0), 0.0, PAPER_W_RISE).is_err());
        assert!(fall_plus_inf_approx(&par, 0.0).is_err());
    }

    #[test]
    fn ln2_constant_is_special_case() {
        // With vth = vdd/2 the generalized log factor is exactly ln 2.
        let par = p();
        assert!(approx_eq((par.vdd / par.vth).ln(), LN_2, 1e-15));
    }
}
