use std::fmt;

/// Identifies one of the NOR gate's two inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputId {
    /// Input A — drives pMOS `T1` (top of the series stack) and nMOS `T3`.
    A,
    /// Input B — drives pMOS `T2` (N–O) and nMOS `T4`.
    B,
}

/// The four operating modes of the hybrid model, one per binary input
/// state `(A, B)`.
///
/// Each mode corresponds to a distinct RC network (paper Fig. 3) and hence
/// a distinct affine ODE system over `[V_N, V_O]`.
///
/// # Examples
///
/// ```
/// use mis_core::Mode;
///
/// assert_eq!(Mode::from_inputs(true, false), Mode::S10);
/// assert!(Mode::S00.nor_output()); // both inputs low → output high
/// assert!(!Mode::S10.nor_output());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// `(A,B) = (0,0)`: both pMOS closed — output charges via R1, R2.
    S00,
    /// `(A,B) = (0,1)`: T1 and T4 closed — N charges via R1, O discharges
    /// via R4; N and O are decoupled.
    S01,
    /// `(A,B) = (1,0)`: T2 and T3 closed — N discharges *through* O via
    /// R2, O discharges via R3.
    S10,
    /// `(A,B) = (1,1)`: both nMOS closed — O discharges via R3 ∥ R4, N
    /// floats (its voltage is frozen).
    S11,
}

impl Mode {
    /// All four modes in the paper's enumeration order.
    pub const ALL: [Mode; 4] = [Mode::S00, Mode::S01, Mode::S10, Mode::S11];

    /// The mode for a given pair of (boolean) input values.
    #[must_use]
    pub fn from_inputs(a: bool, b: bool) -> Mode {
        match (a, b) {
            (false, false) => Mode::S00,
            (false, true) => Mode::S01,
            (true, false) => Mode::S10,
            (true, true) => Mode::S11,
        }
    }

    /// The input values `(a, b)` of this mode.
    #[must_use]
    pub fn inputs(self) -> (bool, bool) {
        match self {
            Mode::S00 => (false, false),
            Mode::S01 => (false, true),
            Mode::S10 => (true, false),
            Mode::S11 => (true, true),
        }
    }

    /// The Boolean NOR of the mode's inputs — the *logical* output value,
    /// which the analog output voltage approaches as the mode persists.
    #[must_use]
    pub fn nor_output(self) -> bool {
        self == Mode::S00
    }

    /// The mode reached from `self` when `input` changes to `value`.
    #[must_use]
    pub fn with_input(self, input: InputId, value: bool) -> Mode {
        let (a, b) = self.inputs();
        match input {
            InputId::A => Mode::from_inputs(value, b),
            InputId::B => Mode::from_inputs(a, value),
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b) = self.inputs();
        write!(f, "({}, {})", u8::from(a), u8::from(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_inputs() {
        for m in Mode::ALL {
            let (a, b) = m.inputs();
            assert_eq!(Mode::from_inputs(a, b), m);
        }
    }

    #[test]
    fn nor_truth_table() {
        assert!(Mode::S00.nor_output());
        assert!(!Mode::S01.nor_output());
        assert!(!Mode::S10.nor_output());
        assert!(!Mode::S11.nor_output());
    }

    #[test]
    fn with_input_transitions() {
        assert_eq!(Mode::S00.with_input(InputId::A, true), Mode::S10);
        assert_eq!(Mode::S10.with_input(InputId::B, true), Mode::S11);
        assert_eq!(Mode::S11.with_input(InputId::A, false), Mode::S01);
        assert_eq!(Mode::S01.with_input(InputId::B, false), Mode::S00);
        // No-op change keeps the mode.
        assert_eq!(Mode::S10.with_input(InputId::A, true), Mode::S10);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Mode::S10.to_string(), "(1, 0)");
        assert_eq!(Mode::S00.to_string(), "(0, 0)");
    }
}
