//! The hybrid four-mode ODE delay model of a 2-input CMOS NOR gate —
//! the primary contribution of Ferdowsi, Maier, Öhlinger & Schmid,
//! *"A Simple Hybrid Model for Accurate Delay Modeling of a Multi-Input
//! Gate"*, DATE 2022 (arXiv:2111.11182).
//!
//! # The model
//!
//! Replace the four transistors of a CMOS NOR gate (series pMOS `T1`,`T2`
//! with internal node `N`; parallel nMOS `T3`,`T4`) by ideal switches that
//! open/close when the driving input crosses `V_th = V_DD/2`. For each
//! input state `(A,B) ∈ {(0,0),(0,1),(1,0),(1,1)}` the gate then reduces to
//! a linear RC network over the state vector `V = [V_N, V_O]`, governed by
//! a first-order affine ODE system `V' = A·V + g` with a closed-form
//! solution (paper eqs. (1)–(7)). Input threshold crossings switch modes
//! instantaneously while keeping `V` continuous; the gate delay is the time
//! at which `V_O` crosses `V_th`.
//!
//! # What lives where
//!
//! * [`NorParams`] — the six RC parameters (Table I defaults), supply and
//!   threshold voltages, and the pure delay `δ_min`.
//! * [`Mode`] / [`ModeSystem`] — the per-mode ODE systems and their
//!   analytic constants `α, β, γ, λ₁, λ₂`.
//! * [`ModeTrajectory`] / [`HybridTrajectory`] — closed-form state
//!   evolution inside a mode and across arbitrary mode-switch sequences
//!   (Fig. 4).
//! * [`delay`] — the MIS delay functions `δ↓(Δ)` and `δ↑(Δ | V_N)`
//!   (Figs. 5, 6, 8).
//! * [`charlie`] — characteristic Charlie delays: exact closed forms
//!   (eqs. (8), (9)), linearized approximations (eqs. (10)–(12)) and their
//!   numerically exact counterparts.
//! * [`fit`] — parametrization from measured characteristic delays,
//!   including the paper's pure-delay workaround (Section V / Table I).
//! * [`channel`] — a stateful event-driven NOR channel exposing the model
//!   to digital timing simulation (`mis-digital`).
//!
//! # Quickstart
//!
//! ```
//! use mis_core::{delay, NorParams};
//! use mis_waveform::units::{ps, to_ps};
//!
//! # fn main() -> Result<(), mis_core::ModelError> {
//! let params = NorParams::paper_table1();
//! // MIS speed-up: simultaneous rising inputs beat a lone input.
//! let d_sis = delay::falling_delay(&params, ps(-200.0))?; // B switches alone
//! let d_mis = delay::falling_delay(&params, 0.0)?;        // A and B together
//! assert!(d_mis < d_sis);
//! println!("δ↓(-∞) = {:.1} ps, δ↓(0) = {:.1} ps", to_ps(d_sis), to_ps(d_mis));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod charlie;
pub mod delay;
mod error;
pub mod fit;
mod mode;
pub mod nand;
mod params;
mod system;
mod trajectory;

pub use error::ModelError;
pub use mode::{InputId, Mode};
pub use params::{NorParams, NorParamsBuilder, RisingInitialVn};
pub use system::{ModeConstants, ModeSystem, ModeTrajectory};
pub use trajectory::{HybridTrajectory, ModeSwitch};
