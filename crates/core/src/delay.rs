//! MIS gate-delay functions of the hybrid model (paper Section IV).
//!
//! Conventions (matching the paper):
//!
//! * `Δ = t_B − t_A` is the input separation; `Δ > 0` means input A
//!   switches first.
//! * **Falling output** (inputs rise, NOR output falls): the *earlier*
//!   input already triggers the transition, so
//!   `δ↓(Δ) = t_O − min(t_A, t_B)`.
//! * **Rising output** (inputs fall, output rises): the gate switches only
//!   after *both* inputs fell, so `δ↑(Δ) = t_O − max(t_A, t_B)`.
//! * The model delay adds the pure delay: `δ_M(Δ) = t_O(Δ) + δ_min`
//!   (`δ_min` defers every mode switch, which shifts `t_O` by exactly
//!   `δ_min` relative to the undeferred computation).
//!
//! The SIS (single input switching) limits are available both as large-`|Δ|`
//! evaluations and as closed-path computations ([`falling_sis`],
//! [`rising_sis`]).

use crate::{HybridTrajectory, Mode, ModeSwitch, ModelError, NorParams, RisingInitialVn};

/// How far past the last mode switch to search for the output crossing,
/// in units of the slowest RC time constant.
const HORIZON_TAUS: f64 = 60.0;

/// The falling-output MIS delay `δ↓_M(Δ) = t_O + δ_min` for input
/// separation `delta = t_B − t_A` (both inputs rising; gate initially in
/// `(0,0)` steady state with `V_N = V_O = V_DD`).
///
/// # Errors
///
/// * [`ModelError::InvalidParams`] — invalid parameter set.
/// * [`ModelError::NoCrossing`] — cannot happen for valid falling
///   scenarios but is propagated defensively.
///
/// # Examples
///
/// The MIS speed-up: simultaneous switching halves the pull-down
/// resistance, so `δ↓(0) < δ↓(±∞)`:
///
/// ```
/// use mis_core::{delay, NorParams};
/// use mis_waveform::units::ps;
///
/// # fn main() -> Result<(), mis_core::ModelError> {
/// let p = NorParams::paper_table1();
/// assert!(delay::falling_delay(&p, 0.0)? < delay::falling_delay(&p, ps(300.0))?);
/// assert!(delay::falling_delay(&p, 0.0)? < delay::falling_delay(&p, ps(-300.0))?);
/// # Ok(())
/// # }
/// ```
pub fn falling_delay(params: &NorParams, delta: f64) -> Result<f64, ModelError> {
    params.validate()?;
    let ts = delta.abs();
    // First mode: (1,0) when A rises first (Δ >= 0), (0,1) when B first.
    let first_mode = if delta >= 0.0 { Mode::S10 } else { Mode::S01 };
    let switches = [
        ModeSwitch {
            at: 0.0,
            to: first_mode,
        },
        ModeSwitch {
            at: ts,
            to: Mode::S11,
        },
    ];
    let traj = HybridTrajectory::new(params, Mode::S00, [params.vdd, params.vdd], 0.0, &switches)?;
    let horizon = HORIZON_TAUS * params.slowest_time_constant();
    let t_o = traj
        .first_output_crossing(params.vth, horizon)?
        .ok_or_else(|| ModelError::NoCrossing {
            context: format!("falling transition, Δ = {delta:e} s"),
        })?;
    Ok(t_o + params.delta_min)
}

/// The rising-output MIS delay `δ↑_M(Δ) = (t_O − t_s) + δ_min` for input
/// separation `delta = t_B − t_A` (both inputs falling; gate initially in
/// `(1,1)` with `V_O = GND` and `V_N` given by `initial_vn`).
///
/// The paper's Fig. 6 evaluates `initial_vn ∈ {GND, V_DD/2, V_DD}`;
/// [`RisingInitialVn::Tracked`] falls back to `GND` here because a
/// stateless query has no history (use [`crate::channel`] for tracked
/// state).
///
/// # Errors
///
/// * [`ModelError::InvalidParams`] — invalid parameter set.
/// * [`ModelError::NoCrossing`] — propagated defensively.
pub fn rising_delay(
    params: &NorParams,
    delta: f64,
    initial_vn: RisingInitialVn,
) -> Result<f64, ModelError> {
    params.validate()?;
    let x = initial_vn.voltage(params.vdd);
    let ts = delta.abs();
    // First mode after the first falling input: (0,1) when A falls first
    // (Δ > 0), (1,0) when B falls first (Δ < 0).
    let first_mode = if delta >= 0.0 { Mode::S01 } else { Mode::S10 };
    let switches = [
        ModeSwitch {
            at: 0.0,
            to: first_mode,
        },
        ModeSwitch {
            at: ts,
            to: Mode::S00,
        },
    ];
    let traj = HybridTrajectory::new(params, Mode::S11, [x, 0.0], 0.0, &switches)?;
    let horizon = HORIZON_TAUS * params.slowest_time_constant();
    let t_o = traj
        .first_output_crossing(params.vth, horizon)?
        .ok_or_else(|| ModelError::NoCrossing {
            context: format!("rising transition, Δ = {delta:e} s, V_N(0) = {x}"),
        })?;
    Ok(t_o - ts + params.delta_min)
}

/// The falling SIS delay limits `(δ↓(−∞), δ↓(+∞))`, computed on the
/// single-mode paths rather than by saturating `Δ`.
///
/// `δ↓(−∞)` (only B rises) is the `(0,1)` discharge `ln 2 · C_O·R_4`;
/// `δ↓(+∞)` (only A rises) is the `(1,0)` crossing where `N` discharges
/// through the output. Both include `δ_min`.
///
/// # Errors
///
/// Same as [`falling_delay`].
pub fn falling_sis(params: &NorParams) -> Result<(f64, f64), ModelError> {
    params.validate()?;
    let horizon = HORIZON_TAUS * params.slowest_time_constant();
    let mut out = [0.0; 2];
    for (slot, mode) in [(0usize, Mode::S01), (1usize, Mode::S10)] {
        let traj = HybridTrajectory::new(
            params,
            Mode::S00,
            [params.vdd, params.vdd],
            0.0,
            &[ModeSwitch { at: 0.0, to: mode }],
        )?;
        out[slot] = traj
            .first_output_crossing(params.vth, horizon)?
            .ok_or_else(|| ModelError::NoCrossing {
                context: format!("falling SIS via {mode}"),
            })?
            + params.delta_min;
    }
    Ok((out[0], out[1]))
}

/// The rising SIS delay limits `(δ↑(−∞), δ↑(+∞))`.
///
/// For `Δ → −∞` the gate sat in `(1,0)` long enough to fully discharge
/// `N`, so the final `(0,0)` charge starts from `[0, 0]`. For `Δ → +∞` it
/// sat in `(0,1)`, which precharges `N` to `V_DD`, so `(0,0)` starts from
/// `[V_DD, 0]` — the paper's explanation for why an early transition on A
/// shortens the rising delay. Both include `δ_min`.
///
/// # Errors
///
/// Same as [`rising_delay`].
pub fn rising_sis(params: &NorParams) -> Result<(f64, f64), ModelError> {
    params.validate()?;
    let horizon = HORIZON_TAUS * params.slowest_time_constant();
    let mut out = [0.0; 2];
    for (slot, vn0) in [(0usize, 0.0), (1usize, params.vdd)] {
        let traj = HybridTrajectory::new(params, Mode::S00, [vn0, 0.0], 0.0, &[])?;
        out[slot] = traj
            .first_output_crossing(params.vth, horizon)?
            .ok_or_else(|| ModelError::NoCrossing {
                context: "rising SIS".into(),
            })?
            + params.delta_min;
    }
    Ok((out[0], out[1]))
}

/// A sampled MIS delay curve `δ(Δ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayCurve {
    /// Input separations `Δ`, in seconds.
    pub deltas: Vec<f64>,
    /// Delays `δ(Δ)`, in seconds.
    pub delays: Vec<f64>,
}

impl DelayCurve {
    /// The separation at which the delay is smallest.
    #[must_use]
    pub fn argmin(&self) -> Option<(f64, f64)> {
        self.deltas
            .iter()
            .zip(&self.delays)
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite delays"))
            .map(|(&d, &v)| (d, v))
    }

    /// The separation at which the delay is largest.
    #[must_use]
    pub fn argmax(&self) -> Option<(f64, f64)> {
        self.deltas
            .iter()
            .zip(&self.delays)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite delays"))
            .map(|(&d, &v)| (d, v))
    }
}

/// Sweeps [`falling_delay`] over `n` uniformly spaced separations in
/// `[delta_lo, delta_hi]` (the paper's Fig. 5 curve).
///
/// # Errors
///
/// Propagates [`falling_delay`] failures; rejects `n < 2` or a reversed
/// range via [`ModelError::InvalidParams`].
pub fn falling_curve(
    params: &NorParams,
    delta_lo: f64,
    delta_hi: f64,
    n: usize,
) -> Result<DelayCurve, ModelError> {
    sweep(delta_lo, delta_hi, n, |d| falling_delay(params, d))
}

/// Sweeps [`rising_delay`] (the paper's Fig. 6 curves, one per `V_N`
/// policy).
///
/// # Errors
///
/// Propagates [`rising_delay`] failures; rejects `n < 2` or a reversed
/// range.
pub fn rising_curve(
    params: &NorParams,
    delta_lo: f64,
    delta_hi: f64,
    n: usize,
    initial_vn: RisingInitialVn,
) -> Result<DelayCurve, ModelError> {
    sweep(delta_lo, delta_hi, n, |d| {
        rising_delay(params, d, initial_vn)
    })
}

fn sweep<F: FnMut(f64) -> Result<f64, ModelError>>(
    delta_lo: f64,
    delta_hi: f64,
    n: usize,
    mut f: F,
) -> Result<DelayCurve, ModelError> {
    if !(delta_hi > delta_lo) || n < 2 {
        return Err(ModelError::InvalidParams {
            reason: "sweep needs delta_hi > delta_lo and n >= 2".into(),
        });
    }
    let mut deltas = Vec::with_capacity(n);
    let mut delays = Vec::with_capacity(n);
    for i in 0..n {
        let d = delta_lo + (delta_hi - delta_lo) * i as f64 / (n - 1) as f64;
        deltas.push(d);
        delays.push(f(d)?);
    }
    Ok(DelayCurve { deltas, delays })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_linalg::approx_eq;
    use mis_waveform::units::ps;
    use std::f64::consts::LN_2;

    fn p() -> NorParams {
        NorParams::paper_table1()
    }

    fn p0() -> NorParams {
        NorParams::paper_table1().without_pure_delay()
    }

    #[test]
    fn falling_delta_zero_matches_eq8() {
        let par = p0();
        let d = falling_delay(&par, 0.0).unwrap();
        let r_par = par.r3 * par.r4 / (par.r3 + par.r4);
        assert!(approx_eq(d, LN_2 * par.co * r_par, 1e-9));
    }

    #[test]
    fn falling_minus_inf_matches_eq9() {
        let par = p0();
        let d = falling_delay(&par, ps(-200.0)).unwrap();
        assert!(approx_eq(d, LN_2 * par.co * par.r4, 1e-6));
        let (sis_m, _) = falling_sis(&par).unwrap();
        assert!(approx_eq(sis_m, LN_2 * par.co * par.r4, 1e-12));
    }

    #[test]
    fn falling_curve_has_minimum_at_zero() {
        let par = p();
        let curve = falling_curve(&par, ps(-60.0), ps(60.0), 41).unwrap();
        let (dmin, _) = curve.argmin().unwrap();
        assert!(
            dmin.abs() < ps(4.0),
            "minimum at Δ = {} ps, expected ≈ 0",
            dmin / 1e-12
        );
    }

    #[test]
    fn falling_speed_up_magnitude_is_paperlike() {
        // Paper Fig. 2b: ~ −28 % from δ↓(±∞) to δ↓(0). The fitted model
        // reproduces the −∞ side ratio δ↓(0)/δ↓(−∞) with the pure delay
        // included.
        let par = p();
        let d0 = falling_delay(&par, 0.0).unwrap();
        let (dm, dp) = falling_sis(&par).unwrap();
        let speedup_m = (d0 - dm) / dm;
        let speedup_p = (d0 - dp) / dp;
        assert!(
            (-0.40..=-0.15).contains(&speedup_m),
            "speed-up vs −∞: {speedup_m}"
        );
        assert!(
            (-0.40..=-0.10).contains(&speedup_p),
            "speed-up vs +∞: {speedup_p}"
        );
    }

    #[test]
    fn falling_saturates_to_sis_limits() {
        let par = p();
        let (dm, dp) = falling_sis(&par).unwrap();
        assert!(approx_eq(
            falling_delay(&par, ps(-400.0)).unwrap(),
            dm,
            1e-9
        ));
        assert!(approx_eq(falling_delay(&par, ps(400.0)).unwrap(), dp, 1e-9));
    }

    #[test]
    fn falling_sis_asymmetry_t2_effect() {
        // δ↓(∞) ≠ δ↓(−∞): with A-first, T2 connects N to O and the stored
        // charge of C_N slows the discharge (Section II's T2 explanation).
        let par = p0();
        let (dm, dp) = falling_sis(&par).unwrap();
        assert!(
            dp > dm,
            "A-first discharge should be slower: {dp:e} vs {dm:e}"
        );
    }

    #[test]
    fn rising_delta_zero_slowdown() {
        // MIS slow-down: δ↑(0) exceeds both SIS limits for V_N = GND.
        let par = p();
        let d0 = rising_delay(&par, 0.0, RisingInitialVn::Gnd).unwrap();
        let (dm, dp) = rising_sis(&par).unwrap();
        assert!(d0 >= dm, "δ↑(0) = {d0:e} vs δ↑(−∞) = {dm:e}");
        assert!(d0 >= dp, "δ↑(0) = {d0:e} vs δ↑(+∞) = {dp:e}");
    }

    #[test]
    fn rising_saturates_to_sis_limits() {
        let par = p();
        let (dm, dp) = rising_sis(&par).unwrap();
        let d_neg = rising_delay(&par, ps(-500.0), RisingInitialVn::Gnd).unwrap();
        let d_pos = rising_delay(&par, ps(500.0), RisingInitialVn::Gnd).unwrap();
        assert!(approx_eq(d_neg, dm, 1e-6), "{d_neg:e} vs {dm:e}");
        assert!(approx_eq(d_pos, dp, 1e-6), "{d_pos:e} vs {dp:e}");
    }

    #[test]
    fn rising_positive_side_insensitive_to_initial_vn_at_large_delta() {
        // For Δ ≫ 0 the (0,1) phase recharges N to VDD regardless of X —
        // the paper's argument for parametrizing from the Δ ≥ 0 branch.
        let par = p();
        let d_gnd = rising_delay(&par, ps(400.0), RisingInitialVn::Gnd).unwrap();
        let d_vdd = rising_delay(&par, ps(400.0), RisingInitialVn::Vdd).unwrap();
        assert!(approx_eq(d_gnd, d_vdd, 1e-6));
    }

    #[test]
    fn rising_negative_side_depends_on_initial_vn() {
        // For moderate Δ < 0 the frozen V_N matters (paper Fig. 6).
        let par = p();
        let d_gnd = rising_delay(&par, ps(-20.0), RisingInitialVn::Gnd).unwrap();
        let d_vdd = rising_delay(&par, ps(-20.0), RisingInitialVn::Vdd).unwrap();
        assert!(
            (d_gnd - d_vdd).abs() > ps(0.1),
            "V_N must matter: {d_gnd:e} vs {d_vdd:e}"
        );
    }

    #[test]
    fn rising_asymmetric_sis_delays() {
        // δ↑(∞) < δ↑(−∞): A-first precharges N via R1 (fast path).
        let par = p();
        let (dm, dp) = rising_sis(&par).unwrap();
        assert!(dp < dm, "precharged N must be faster: {dp:e} vs {dm:e}");
    }

    #[test]
    fn pure_delay_shifts_curves_uniformly() {
        let with = p();
        let without = p0();
        for &d in &[ps(-40.0), 0.0, ps(25.0)] {
            let a = falling_delay(&with, d).unwrap();
            let b = falling_delay(&without, d).unwrap();
            assert!(approx_eq(a - b, with.delta_min, 1e-12));
            let a = rising_delay(&with, d, RisingInitialVn::Gnd).unwrap();
            let b = rising_delay(&without, d, RisingInitialVn::Gnd).unwrap();
            assert!(approx_eq(a - b, with.delta_min, 1e-12));
        }
    }

    #[test]
    fn curves_validate_arguments() {
        let par = p();
        assert!(falling_curve(&par, ps(10.0), ps(-10.0), 5).is_err());
        assert!(falling_curve(&par, ps(-10.0), ps(10.0), 1).is_err());
        assert!(rising_curve(&par, 0.0, 0.0, 5, RisingInitialVn::Gnd).is_err());
    }

    #[test]
    fn delay_curve_extrema_helpers() {
        let c = DelayCurve {
            deltas: vec![-1.0, 0.0, 1.0],
            delays: vec![3.0, 1.0, 2.0],
        };
        assert_eq!(c.argmin().unwrap(), (0.0, 1.0));
        assert_eq!(c.argmax().unwrap(), (-1.0, 3.0));
    }

    #[test]
    fn delays_are_continuous_in_delta_near_zero() {
        // Crossing Δ = 0 changes which input is "first"; the delay value
        // must not jump (the two limits coincide at Δ = 0).
        let par = p();
        let eps = ps(0.01);
        let f_m = falling_delay(&par, -eps).unwrap();
        let f_p = falling_delay(&par, eps).unwrap();
        assert!((f_m - f_p).abs() < ps(0.1));
        let r_m = rising_delay(&par, -eps, RisingInitialVn::Gnd).unwrap();
        let r_p = rising_delay(&par, eps, RisingInitialVn::Gnd).unwrap();
        assert!((r_m - r_p).abs() < ps(0.1));
    }
}
