//! Boundary behavior of [`RunBudget`] on all three engines, against the
//! committed fixtures: the budget trips strictly *past* its limit
//! (exactly-enough succeeds, one-less errors), zero budgets trip on the
//! first unit of work, a tripped run leaves the engine and arena fully
//! reusable, and below-budget runs stay bit-identical to unbudgeted
//! ones at every worker count. The wavefront engine's shared atomic
//! meter makes its accounting *exact* (schedule-independent totals), so
//! its boundary tests run at every worker count, not just serially.

use std::path::PathBuf;
use std::time::Duration;

use mis_charlib::CharLib;
use mis_digital::{BudgetResource, InertialChannel, SimError};
use mis_sim::{
    BenchNetlist, CellLibrary, LoweredNetlist, ParallelSimulator, RunBudget, Simulator,
    WavefrontSimulator,
};
use mis_waveform::generate::{Assignment, TraceConfig};
use mis_waveform::units::ps;
use mis_waveform::{DigitalTrace, TraceArena};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn lowered(name: &str) -> LoweredNetlist {
    let text =
        std::fs::read_to_string(workspace_root().join("data/bench").join(name)).expect("fixture");
    let nl = BenchNetlist::parse(&text).expect("fixture parses");
    let lib_text = std::fs::read_to_string(workspace_root().join("data/charlib/nor_paper.mislib"))
        .expect("committed NOR library");
    let lib = CharLib::from_text(&lib_text).expect("library parses");
    let cells = CellLibrary::hybrid(
        &lib,
        Some(InertialChannel::symmetric(ps(50.0), ps(38.0)).expect("channel")),
    )
    .expect("cell library");
    nl.lower(&cells).expect("lowering")
}

fn traffic(n: usize, seed: u64) -> Vec<DigitalTrace> {
    (0..n)
        .map(|i| {
            let pair = TraceConfig::new(ps(400.0), ps(150.0), Assignment::Local, 40)
                .generate(seed + i as u64)
                .expect("trace generation");
            if i % 2 == 0 {
                pair.a
            } else {
                pair.b
            }
        })
        .collect()
}

/// What one unbudgeted run of `name` costs: (events, gate-emitted
/// edges), measured the same way the meter charges them — one event per
/// gate evaluation, the sealed span length per evaluated gate (inputs
/// are caller data and free).
fn run_cost(name: &str, seed: u64) -> (u64, u64) {
    let lowered = lowered(name);
    let inputs = traffic(lowered.inputs.len(), seed);
    let mut sim = Simulator::new(&lowered.net).expect("engine");
    let mut arena = TraceArena::new();
    sim.run_in(&inputs, &mut arena).expect("unbudgeted run");
    let events = (lowered.net.signal_count() - lowered.net.input_count()) as u64;
    let edges: u64 = (0..lowered.net.signal_count())
        .filter_map(|s| lowered.net.signal_id(s))
        .filter(|id| !lowered.inputs.contains(id))
        .map(|id| sim.trace(&arena, id).len() as u64)
        .sum();
    (events, edges)
}

#[test]
fn exact_event_budget_passes_and_one_less_trips() {
    for (file, seed) in [("c17.bench", 0xC17), ("c432.bench", 0x432)] {
        let (events, _) = run_cost(file, seed);
        let lowered = lowered(file);
        let inputs = traffic(lowered.inputs.len(), seed);
        let mut sim = Simulator::new(&lowered.net).expect("engine");
        let mut arena = TraceArena::new();
        sim.run_budgeted_in(
            &inputs,
            &mut arena,
            &RunBudget::UNLIMITED.with_max_events(events),
        )
        .expect("exactly-enough event budget must succeed");
        match sim.run_budgeted_in(
            &inputs,
            &mut arena,
            &RunBudget::UNLIMITED.with_max_events(events - 1),
        ) {
            Err(SimError::BudgetExceeded { resource, limit }) => {
                assert_eq!(resource, BudgetResource::Events, "{file}");
                assert_eq!(limit, events - 1, "{file}");
            }
            other => panic!("{file}: one-less event budget returned {other:?}"),
        }
    }
}

#[test]
fn exact_edge_budget_passes_and_one_less_trips() {
    for (file, seed) in [("c17.bench", 0xC17), ("c432.bench", 0x432)] {
        let (_, edges) = run_cost(file, seed);
        let lowered = lowered(file);
        let inputs = traffic(lowered.inputs.len(), seed);
        let mut sim = Simulator::new(&lowered.net).expect("engine");
        let mut arena = TraceArena::new();
        sim.run_budgeted_in(
            &inputs,
            &mut arena,
            &RunBudget::UNLIMITED.with_max_edges(edges),
        )
        .expect("exactly-enough edge budget must succeed");
        match sim.run_budgeted_in(
            &inputs,
            &mut arena,
            &RunBudget::UNLIMITED.with_max_edges(edges - 1),
        ) {
            Err(SimError::BudgetExceeded { resource, limit }) => {
                assert_eq!(resource, BudgetResource::Edges, "{file}");
                assert_eq!(limit, edges - 1, "{file}");
            }
            other => panic!("{file}: one-less edge budget returned {other:?}"),
        }
    }
}

#[test]
fn zero_budgets_trip_on_the_first_unit_of_work() {
    let lowered = lowered("c17.bench");
    let inputs = traffic(lowered.inputs.len(), 0xC17);
    let mut arena = TraceArena::new();
    let mut sim = Simulator::new(&lowered.net).expect("engine");
    for (budget, resource) in [
        (
            RunBudget::UNLIMITED.with_max_events(0),
            BudgetResource::Events,
        ),
        (
            RunBudget::UNLIMITED.with_max_edges(0),
            BudgetResource::Edges,
        ),
        (
            RunBudget::UNLIMITED.with_deadline(Duration::ZERO),
            BudgetResource::Deadline,
        ),
    ] {
        match sim.run_budgeted_in(&inputs, &mut arena, &budget) {
            Err(SimError::BudgetExceeded { resource: r, .. }) => assert_eq!(r, resource),
            other => panic!("zero {resource} budget returned {other:?}"),
        }
        let mut par = ParallelSimulator::new(&lowered.net, 3).expect("parallel engine");
        match par.run_budgeted_in(&inputs, &mut arena, &budget) {
            Err(SimError::BudgetExceeded { resource: r, .. }) => assert_eq!(r, resource),
            other => panic!("parallel zero {resource} budget returned {other:?}"),
        }
        let mut wave = WavefrontSimulator::new(&lowered.net, 3).expect("wavefront engine");
        match wave.run_budgeted_in(&inputs, &mut arena, &budget) {
            Err(SimError::BudgetExceeded { resource: r, .. }) => assert_eq!(r, resource),
            other => panic!("wavefront zero {resource} budget returned {other:?}"),
        }
    }
}

#[test]
fn wavefront_budget_boundaries_are_exact_at_every_worker_count() {
    // The wavefront engine charges one shared atomic meter, so its
    // charged totals are schedule-independent: exactly-enough passes and
    // one-less trips at *every* worker count and cutover — a stronger
    // contract than the per-cone engine's per-worker monotonicity.
    for (file, seed) in [("c17.bench", 0xC17), ("c432.bench", 0x432)] {
        let (events, edges) = run_cost(file, seed);
        let lowered = lowered(file);
        let inputs = traffic(lowered.inputs.len(), seed);
        for workers in [1usize, 3, 8] {
            for cutover in [0, usize::MAX] {
                let mut wave = WavefrontSimulator::new(&lowered.net, workers)
                    .expect("wavefront engine")
                    .with_cutover(cutover);
                let mut arena = TraceArena::new();
                wave.run_budgeted_in(
                    &inputs,
                    &mut arena,
                    &RunBudget::UNLIMITED.with_max_events(events),
                )
                .unwrap_or_else(|e| {
                    panic!("{file}: exact event budget at {workers}w/{cutover}: {e}")
                });
                assert!(
                    matches!(
                        wave.run_budgeted_in(
                            &inputs,
                            &mut arena,
                            &RunBudget::UNLIMITED.with_max_events(events - 1),
                        ),
                        Err(SimError::BudgetExceeded { .. })
                    ),
                    "{file}: one-less event budget must trip at {workers}w/{cutover}"
                );
                wave.run_budgeted_in(
                    &inputs,
                    &mut arena,
                    &RunBudget::UNLIMITED.with_max_edges(edges),
                )
                .unwrap_or_else(|e| {
                    panic!("{file}: exact edge budget at {workers}w/{cutover}: {e}")
                });
                assert!(
                    matches!(
                        wave.run_budgeted_in(
                            &inputs,
                            &mut arena,
                            &RunBudget::UNLIMITED.with_max_edges(edges - 1),
                        ),
                        Err(SimError::BudgetExceeded { .. })
                    ),
                    "{file}: one-less edge budget must trip at {workers}w/{cutover}"
                );
            }
        }
    }
}

#[test]
fn generous_deadline_does_not_trip() {
    let lowered = lowered("c432.bench");
    let inputs = traffic(lowered.inputs.len(), 0x432);
    let mut sim = Simulator::new(&lowered.net).expect("engine");
    let mut arena = TraceArena::new();
    sim.run_budgeted_in(
        &inputs,
        &mut arena,
        &RunBudget::UNLIMITED.with_deadline(Duration::from_secs(3600)),
    )
    .expect("an hour is enough for one C432 run");
}

#[test]
fn a_tripped_run_leaves_engine_and_arena_reusable() {
    let lowered = lowered("c432.bench");
    let inputs = traffic(lowered.inputs.len(), 0x432);
    let mut sim = Simulator::new(&lowered.net).expect("engine");
    let mut arena = TraceArena::new();
    // Reference edges from a clean engine+arena pair.
    let mut fresh = Simulator::new(&lowered.net).expect("engine");
    let mut fresh_arena = TraceArena::new();
    fresh.run_in(&inputs, &mut fresh_arena).expect("reference");
    // Trip mid-circuit (enough budget to do real work first), then run
    // unbudgeted with the same engine and arena: the result must match
    // the clean pair's bit for bit.
    for tripped_events in [1, 7, 50] {
        match sim.run_budgeted_in(
            &inputs,
            &mut arena,
            &RunBudget::UNLIMITED.with_max_events(tripped_events),
        ) {
            Err(SimError::BudgetExceeded { .. }) => {}
            other => panic!("budget of {tripped_events} events returned {other:?}"),
        }
        sim.run_in(&inputs, &mut arena).expect("run after a trip");
        assert_eq!(arena.total_edges(), fresh_arena.total_edges());
        for s in 0..lowered.net.signal_count() {
            let id = lowered.net.signal_id(s).expect("s < signal_count");
            let a = sim.trace(&arena, id);
            let b = fresh.trace(&fresh_arena, id);
            assert_eq!(a.initial_value(), b.initial_value(), "signal {s}");
            assert_eq!(a.times(), b.times(), "signal {s}");
        }
    }
}

#[test]
fn below_budget_runs_are_bit_identical_at_every_worker_count() {
    for (file, seed) in [("c432.bench", 0x432), ("c880.bench", 0x880)] {
        let (events, edges) = run_cost(file, seed);
        let lowered = lowered(file);
        let inputs = traffic(lowered.inputs.len(), seed);
        let budget = RunBudget::UNLIMITED
            .with_max_events(events)
            .with_max_edges(edges);
        let mut serial = Simulator::new(&lowered.net).expect("engine");
        let mut serial_arena = TraceArena::new();
        serial
            .run_budgeted_in(&inputs, &mut serial_arena, &budget)
            .expect("serial under exact budget");
        for workers in 1..=8 {
            let mut par = ParallelSimulator::new(&lowered.net, workers).expect("parallel engine");
            let mut arena = TraceArena::new();
            // The serial engine evaluates every gate of the network;
            // each worker's gate set is a subset, so a budget the
            // serial run fits in can never trip a worker (monotonicity
            // across engines).
            par.run_budgeted_in(&inputs, &mut arena, &budget)
                .unwrap_or_else(|e| panic!("{file}: {workers} workers under exact budget: {e}"));
            for s in 0..lowered.net.signal_count() {
                let id = lowered.net.signal_id(s).expect("s < signal_count");
                let a = serial.trace(&serial_arena, id);
                let b = par.trace(&arena, id);
                assert_eq!(a.initial_value(), b.initial_value(), "{file} s{s}");
                assert_eq!(a.times(), b.times(), "{file} s{s} at {workers} workers");
            }
        }
    }
}
