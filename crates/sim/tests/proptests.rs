//! Property-based tests for the `mis-sim` subsystem: bit-identity of the
//! event-queue engine against `Network::run` (on every
//! `mis_digital::netlists` topology and on randomized DAGs over all
//! channel kinds, empty traces included), `.bench` parse→write→parse
//! round trips with comment/whitespace torture, one malformed-input test
//! per parser error variant, and round trips of the committed
//! `data/charlib` text libraries. On the in-repo `mis-testkit` harness.

use std::path::PathBuf;
use std::sync::OnceLock;

use mis_charlib::{CharConfig, CharGate, CharLib};
use mis_core::NorParams;
use mis_digital::netlists::{self, CachedHybridFactory, ChannelPerGate};
use mis_digital::{
    CachedHybridChannel, CachedHybridNandChannel, ExpChannel, GateKind, InertialChannel, Network,
    PureDelayChannel, SumExpChannel, TraceTransform, TwoInputTransform,
};
use mis_sim::{BenchError, BenchFunc, BenchGate, BenchNetlist, CellLibrary, Simulator};
use mis_testkit::prelude::*;
use mis_testkit::rng::TestRng;
use mis_waveform::units::ps;
use mis_waveform::{DigitalTrace, TraceArena};

const CASES: u32 = 48;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Characterized NOR library (quick config — bit-identity tests compare
/// the same channel objects along two engine paths, not against the
/// exact model, so the loose budget is irrelevant).
fn shared_lib() -> &'static CharLib {
    static LIB: OnceLock<CharLib> = OnceLock::new();
    LIB.get_or_init(|| {
        CharLib::nor(&NorParams::paper_table1(), &CharConfig::quick()).expect("characterization")
    })
}

/// Random trace on a 5 ps grid, so exactly-simultaneous edges across
/// independently generated traces are common, including empty traces.
fn grid_trace(rng: &mut TestRng, max_edges: u64) -> DigitalTrace {
    let n = rng.gen_u64_below(max_edges + 1);
    let init = rng.gen_bool(0.5);
    let mut trace = DigitalTrace::constant(init);
    let mut ticks: u64 = 0;
    let mut v = init;
    for _ in 0..n {
        ticks += 1 + rng.gen_u64_below(40);
        v = !v;
        trace
            .push_edge(ps(100.0) + ticks as f64 * ps(5.0), v)
            .expect("monotone");
    }
    trace
}

/// Asserts the event engine reproduces `Network::run` bit for bit on
/// `net`, including a second run on the warm arena (reuse contract).
fn assert_engine_matches(net: &Network, inputs: &[DigitalTrace]) {
    let want = net.run(inputs).expect("reference run");
    let mut sim = Simulator::new(net);
    let got = sim.run(inputs).expect("event-queue run");
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g, w, "signal {i} ('{}')", {
            let id = net.signal_id(i).unwrap();
            net.signal_name(id).to_owned()
        });
    }
    let mut arena = TraceArena::new();
    sim.run_in(inputs, &mut arena).expect("warm-up");
    sim.run_in(inputs, &mut arena).expect("warm rerun");
    for (i, w) in want.iter().enumerate() {
        let id = net.signal_id(i).unwrap();
        assert_eq!(&sim.trace(&arena, id).to_trace(), w, "warm signal {i}");
    }
}

#[test]
fn engine_bit_identical_on_all_netlists_topologies() {
    let lib = shared_lib();
    let mut rng = TestRng::seed_from_u64(0x51B);
    let inertial = || {
        Some(
            Box::new(InertialChannel::symmetric(ps(50.0), ps(38.0)).unwrap())
                as Box<dyn TraceTransform>,
        )
    };
    let mut cached = CachedHybridFactory::new(lib).unwrap();
    let builds = vec![
        netlists::ripple_chain(GateKind::Nor, 8, &mut ChannelPerGate(inertial)).unwrap(),
        netlists::ripple_chain(GateKind::Nor, 8, &mut cached).unwrap(),
        netlists::ripple_chain(GateKind::Nand, 5, &mut cached).unwrap(),
        netlists::c17(&mut ChannelPerGate(inertial)).unwrap(),
        netlists::c17(&mut cached).unwrap(),
        netlists::fanout_tree(4, &mut inertial.clone()).unwrap(),
        netlists::fanout_tree(3, &mut || None).unwrap(),
    ];
    for built in &builds {
        let inputs: Vec<DigitalTrace> = (0..built.net.input_count())
            .map(|_| grid_trace(&mut rng, 14))
            .collect();
        assert_engine_matches(&built.net, &inputs);
    }
}

/// Channel palette index → fresh channel (`None` = zero-time).
fn spec_channel(ch: usize) -> Option<Box<dyn TraceTransform>> {
    match ch {
        0 => None,
        1 => Some(Box::new(PureDelayChannel::new(ps(7.0)).unwrap())),
        2 => Some(Box::new(
            InertialChannel::symmetric(ps(40.0), ps(30.0)).unwrap(),
        )),
        3 => Some(Box::new(
            ExpChannel::from_sis_delays(ps(50.0), ps(38.0), ps(15.0)).unwrap(),
        )),
        _ => Some(Box::new(
            SumExpChannel::from_sis_delay(ps(50.0), ps(15.0), 0.7, 3.0).unwrap(),
        )),
    }
}

/// Builds a random feed-forward network over every channel kind: unary
/// and binary zero-time gates with optional single-input channels, plus
/// cached hybrid NOR/NAND two-input channel gates.
fn random_network(rng: &mut TestRng) -> Network {
    const BINARY: [GateKind; 5] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
    ];
    let n_inputs = 1 + rng.gen_u64_below(3) as usize;
    let n_gates = 1 + rng.gen_u64_below(8) as usize;
    let mut net = Network::new();
    let mut ids = Vec::new();
    for i in 0..n_inputs {
        ids.push(net.add_input(&format!("in{i}")));
    }
    for g in 0..n_gates {
        let name = format!("g{g}");
        let pick = |rng: &mut TestRng| ids[rng.gen_u64_below(ids.len() as u64) as usize];
        let id = match rng.gen_u64_below(4) {
            0 => {
                let kind = if rng.gen_bool(0.5) {
                    GateKind::Not
                } else {
                    GateKind::Buf
                };
                let src = pick(rng);
                net.add_gate(
                    &name,
                    kind,
                    &[src],
                    spec_channel(rng.gen_u64_below(5) as usize),
                )
                .unwrap()
            }
            1 | 2 => {
                let kind = BINARY[rng.gen_u64_below(5) as usize];
                let (a, b) = (pick(rng), pick(rng));
                net.add_gate(
                    &name,
                    kind,
                    &[a, b],
                    spec_channel(rng.gen_u64_below(5) as usize),
                )
                .unwrap()
            }
            _ => {
                let channel: Box<dyn TwoInputTransform> = if rng.gen_bool(0.5) {
                    Box::new(CachedHybridNandChannel::from_dual(shared_lib()).unwrap())
                } else {
                    Box::new(CachedHybridChannel::new(shared_lib()).unwrap())
                };
                let (a, b) = (pick(rng), pick(rng));
                net.add_two_input_channel_gate(&name, [a, b], channel)
                    .unwrap()
            }
        };
        ids.push(id);
    }
    net
}

#[test]
fn engine_bit_identical_on_random_dags() {
    // The event-queue schedule must be invisible: for any acyclic wiring
    // and any channel kind, outputs equal the levelized sweep bit for
    // bit — on empty traces and exactly-simultaneous edges too.
    Config::with_cases(CASES).run(&(0u64..u64::MAX), |&seed| {
        let mut rng = TestRng::seed_from_u64(seed);
        let net = random_network(&mut rng);
        let inputs: Vec<DigitalTrace> = (0..net.input_count())
            .map(|_| grid_trace(&mut rng, 8))
            .collect();
        let want = net.run(&inputs).unwrap();
        let mut sim = Simulator::new(&net);
        let got = sim.run(&inputs).unwrap();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(g, w, "signal {i} diverged (seed {seed})");
        }
        Ok(())
    });
}

/// Random `.bench` netlist with safe names, wide gates, and forward
/// references (gates are emitted in reverse definition order half the
/// time).
fn random_bench(rng: &mut TestRng) -> BenchNetlist {
    const FUNCS: [BenchFunc; 8] = [
        BenchFunc::And,
        BenchFunc::Or,
        BenchFunc::Nand,
        BenchFunc::Nor,
        BenchFunc::Xor,
        BenchFunc::Xnor,
        BenchFunc::Not,
        BenchFunc::Buff,
    ];
    let n_inputs = 1 + rng.gen_u64_below(4) as usize;
    let n_gates = 1 + rng.gen_u64_below(8) as usize;
    let inputs: Vec<String> = (0..n_inputs).map(|i| format!("in{i}")).collect();
    let mut defined = inputs.clone();
    let mut gates = Vec::new();
    for g in 0..n_gates {
        let func = FUNCS[rng.gen_u64_below(8) as usize];
        let arity = if func.is_unary() {
            1
        } else {
            2 + rng.gen_u64_below(4) as usize
        };
        let ops: Vec<String> = (0..arity)
            .map(|_| defined[rng.gen_u64_below(defined.len() as u64) as usize].clone())
            .collect();
        // Lower-case names stay fixed under the torture test's random
        // line-case flips (only keywords are case-insensitive).
        let name = format!("s{g}");
        defined.push(name.clone());
        gates.push(BenchGate {
            output: name,
            func,
            inputs: ops,
        });
    }
    if rng.gen_bool(0.5) {
        gates.reverse(); // forward references stay legal
    }
    let n_out = 1 + rng.gen_u64_below(3) as usize;
    let outputs: Vec<String> = (0..n_out)
        .map(|_| defined[rng.gen_u64_below(defined.len() as u64) as usize].clone())
        .collect();
    BenchNetlist::new(inputs, outputs, gates).expect("generator emits valid netlists")
}

#[test]
fn bench_write_parse_round_trip_is_identity() {
    Config::with_cases(CASES).run(&(0u64..u64::MAX), |&seed| {
        let mut rng = TestRng::seed_from_u64(seed);
        let nl = random_bench(&mut rng);
        let text = nl.to_text();
        let parsed = BenchNetlist::parse(&text).expect("canonical text parses");
        prop_assert_eq!(&parsed, &nl, "round trip (seed {seed})");
        // The writer is idempotent through a parse.
        prop_assert_eq!(parsed.to_text(), text);
        Ok(())
    });
}

#[test]
fn bench_parse_survives_comment_and_whitespace_torture() {
    // Injecting comments, blank lines, indentation, trailing whitespace
    // and random keyword case changes nothing semantically.
    Config::with_cases(CASES).run(&(0u64..u64::MAX), |&seed| {
        let mut rng = TestRng::seed_from_u64(seed);
        let nl = random_bench(&mut rng);
        let mut tortured = String::from("# header comment\n\n");
        for line in nl.to_text().lines() {
            match rng.gen_u64_below(4) {
                0 => tortured.push_str("   \t\n"),
                1 => tortured.push_str("# interleaved comment, with (parens) = and , commas\n"),
                _ => {}
            }
            let line = if rng.gen_bool(0.3) {
                line.to_ascii_lowercase()
            } else {
                line.to_owned()
            };
            let line = line.replace('(', " ( ").replace(',', " ,\t");
            tortured.push('\t');
            tortured.push_str(&line);
            if rng.gen_bool(0.5) {
                tortured.push_str("  # trailing");
            }
            tortured.push('\n');
        }
        let parsed = BenchNetlist::parse(&tortured).expect("tortured text parses");
        prop_assert_eq!(&parsed, &nl, "torture changed the parse (seed {seed})");
        Ok(())
    });
}

// ---- one malformed-input test per parser error variant ----

#[test]
fn error_syntax() {
    for bad in [
        "INPUT(a)\nOUTPUT(a)\nbogus line",
        "INPUT(a)\ny = NOT(a",
        "INPUT(a)\ny = NOT(a) trailing",
        "INPUT(a)\ny = NOT()",
        "INPUT(a, b)\n",
        "INPUT(a)\nWIBBLE(a)\n",
        "INPUT(a)\nx y = NOT(a)",
    ] {
        assert!(
            matches!(BenchNetlist::parse(bad), Err(BenchError::Syntax { .. })),
            "expected Syntax error for {bad:?}, got {:?}",
            BenchNetlist::parse(bad)
        );
    }
}

#[test]
fn error_unknown_function() {
    let r = BenchNetlist::parse("INPUT(a)\nOUTPUT(y)\ny = DFF(a, a)");
    match r {
        Err(BenchError::UnknownFunction { line, name }) => {
            assert_eq!(line, 3);
            assert_eq!(name, "DFF");
        }
        other => panic!("expected UnknownFunction, got {other:?}"),
    }
}

#[test]
fn error_bad_arity() {
    for (bad, func) in [
        ("INPUT(a)\ny = NOT(a, a)", "NOT"),
        ("INPUT(a)\ny = BUFF(a, a)", "BUFF"),
        ("INPUT(a)\ny = NAND(a)", "NAND"),
        ("INPUT(a)\ny = XOR(a)", "XOR"),
    ] {
        match BenchNetlist::parse(bad) {
            Err(BenchError::BadArity { function, .. }) => assert_eq!(function, func),
            other => panic!("expected BadArity for {bad:?}, got {other:?}"),
        }
    }
}

#[test]
fn error_duplicate() {
    for bad in [
        "INPUT(a)\nINPUT(a)",
        "INPUT(a)\ny = NOT(a)\ny = BUFF(a)",
        "INPUT(a)\na = NOT(a)",
    ] {
        assert!(
            matches!(BenchNetlist::parse(bad), Err(BenchError::Duplicate { .. })),
            "expected Duplicate for {bad:?}"
        );
    }
}

#[test]
fn error_undefined() {
    match BenchNetlist::parse("INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)") {
        Err(BenchError::Undefined { name }) => assert_eq!(name, "ghost"),
        other => panic!("expected Undefined, got {other:?}"),
    }
    assert!(matches!(
        BenchNetlist::parse("INPUT(a)\nOUTPUT(nowhere)"),
        Err(BenchError::Undefined { .. })
    ));
}

#[test]
fn error_cycle() {
    let r = BenchNetlist::parse("INPUT(a)\nx = NAND(a, y)\ny = NAND(a, x)");
    assert!(matches!(r, Err(BenchError::Cycle { .. })), "got {r:?}");
    // Self-loop.
    assert!(matches!(
        BenchNetlist::parse("INPUT(a)\nx = NAND(a, x)"),
        Err(BenchError::Cycle { .. })
    ));
}

#[test]
fn error_empty() {
    assert!(matches!(BenchNetlist::parse(""), Err(BenchError::Empty)));
    assert!(matches!(
        BenchNetlist::parse("# only comments\n\n  # here\n"),
        Err(BenchError::Empty)
    ));
}

// ---- committed fixtures ----

#[test]
fn committed_charlib_text_libraries_round_trip() {
    for (file, gate) in [
        ("data/charlib/nor_paper.mislib", CharGate::Nor),
        ("data/charlib/nand_dual.mislib", CharGate::Nand),
    ] {
        let path = workspace_root().join(file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let lib = CharLib::from_text(&text).expect("committed library parses");
        assert_eq!(lib.gate(), gate, "{file}");
        // Loader round trip is the identity on the committed bytes, so
        // `load → save` can never silently reformat a committed library.
        assert_eq!(lib.to_text(), text, "{file} round trip");
        // And the loaded tables drive the cached fast path directly.
        if gate == CharGate::Nor {
            let cells = CellLibrary::hybrid(&lib, None).expect("loaded NOR library builds cells");
            assert!(cells.shared_tables().is_some());
        }
    }
}

#[test]
fn c17_fixture_matches_builtin_topology_bit_for_bit() {
    let text = std::fs::read_to_string(workspace_root().join("data/bench/c17.bench")).unwrap();
    let nl = BenchNetlist::parse(&text).expect("c17 fixture parses");
    assert_eq!(nl.inputs().len(), 5);
    assert_eq!(nl.outputs().len(), 2);
    assert_eq!(nl.gates().len(), 6);

    let ch = InertialChannel::symmetric(ps(50.0), ps(38.0)).unwrap();
    let lowered = nl.lower(&CellLibrary::inertial(ch.clone())).unwrap();
    let mut reference = ChannelPerGate(|| {
        Some(Box::new(InertialChannel::symmetric(ps(50.0), ps(38.0)).unwrap()) as Box<_>)
    });
    let builtin = netlists::c17(&mut reference).unwrap();

    let mut rng = TestRng::seed_from_u64(0xC17);
    for _ in 0..8 {
        let inputs: Vec<DigitalTrace> = (0..5).map(|_| grid_trace(&mut rng, 12)).collect();
        let want = builtin.net.run(&inputs).unwrap();
        let mut sim = Simulator::new(&lowered.net);
        let got = sim.run(&inputs).unwrap();
        for (k, out) in lowered.outputs.iter().enumerate() {
            assert_eq!(
                got[out.index()],
                want[builtin.outputs[k].index()],
                "output {k}"
            );
        }
    }
}

/// Constant-input reference model of the committed C432-scale circuit
/// (priority interrupt controller, see `make_data.rs`).
fn c432_reference(e: u16, a: u16, b: u16, c: u16) -> [bool; 7] {
    let va = a & e;
    let vb = b & e;
    let vc = c & e;
    let pa = va != 0;
    let pb = !pa && vb != 0;
    let pc = !pa && !pb && vc != 0;
    let r = if pa {
        va
    } else if pb {
        vb
    } else if pc {
        vc
    } else {
        0
    };
    let chan = if r == 0 { 0 } else { r.trailing_zeros() };
    [
        pa,
        pb,
        pc,
        chan & 8 != 0,
        chan & 4 != 0,
        chan & 2 != 0,
        chan & 1 != 0,
    ]
}

#[test]
fn c432_fixture_loads_runs_and_encodes_priorities() {
    let text = std::fs::read_to_string(workspace_root().join("data/bench/c432.bench")).unwrap();
    let nl = BenchNetlist::parse(&text).expect("c432 fixture parses");
    assert_eq!(nl.inputs().len(), 36);
    assert_eq!(nl.outputs().len(), 7);
    assert_eq!(nl.gates().len(), 132);

    let lowered = nl.lower(&CellLibrary::ideal()).unwrap();
    let mut sim = Simulator::new(&lowered.net);
    let mut rng = TestRng::seed_from_u64(0xC432);
    let mut check = |e: u16, a: u16, b: u16, c: u16| {
        let mut inputs = Vec::with_capacity(36);
        for mask in [e, a, b, c] {
            for i in 0..9 {
                inputs.push(DigitalTrace::constant(mask >> i & 1 == 1));
            }
        }
        let traces = sim.run(&inputs).unwrap();
        let want = c432_reference(e, a, b, c);
        for (k, out) in lowered.outputs.iter().enumerate() {
            assert_eq!(
                traces[out.index()].initial_value(),
                want[k],
                "output {k} for e={e:09b} a={a:09b} b={b:09b} c={c:09b}"
            );
        }
    };
    check(0, 0, 0, 0);
    check(0x1FF, 0x1FF, 0x1FF, 0x1FF);
    check(0x1FF, 0, 0, 0x100);
    check(0x0F0, 0x100, 0x0F0, 0);
    for _ in 0..60 {
        let m = |rng: &mut TestRng| (rng.next_u64() & 0x1FF) as u16;
        check(m(&mut rng), m(&mut rng), m(&mut rng), m(&mut rng));
    }
}

#[test]
fn c432_event_engine_matches_sweep_under_timed_cells() {
    let text = std::fs::read_to_string(workspace_root().join("data/bench/c432.bench")).unwrap();
    let nl = BenchNetlist::parse(&text).unwrap();
    let fallback = InertialChannel::symmetric(ps(50.0), ps(38.0)).unwrap();
    let cells = [
        CellLibrary::inertial(fallback.clone()),
        CellLibrary::hybrid(shared_lib(), Some(fallback)).unwrap(),
    ];
    let mut rng = TestRng::seed_from_u64(0x432);
    for cells in cells {
        let lowered = nl.lower(&cells).unwrap();
        let inputs: Vec<DigitalTrace> = (0..36).map(|_| grid_trace(&mut rng, 10)).collect();
        assert_engine_matches(&lowered.net, &inputs);
    }
}
