//! Property-based tests for the `mis-sim` subsystem: bit-identity of the
//! event-queue engine **and of the parallel per-cone and level-sliced
//! wavefront engines at worker counts 1–8** against `Network::run` (on
//! every `mis_digital::netlists` topology and on randomized DAGs over
//! all channel kinds, empty traces
//! included), `.bench` parse→write→parse round trips with comment/
//! whitespace/CRLF/BOM torture, one malformed-input test per parser
//! error variant, and round trips of the committed `data/charlib` text
//! libraries and `data/bench` fixtures (C432 and C880 against
//! independent reference models). On the in-repo `mis-testkit` harness.

use std::path::PathBuf;
use std::sync::OnceLock;

use mis_charlib::{CharConfig, CharGate, CharLib};
use mis_core::NorParams;
use mis_digital::netlists::{self, CachedHybridFactory, ChannelPerGate};
use mis_digital::{
    CachedHybridChannel, CachedHybridNandChannel, ExpChannel, GateKind, InertialChannel, Network,
    PureDelayChannel, SumExpChannel, TraceTransform, TwoInputTransform,
};
use mis_sim::{
    BenchError, BenchFunc, BenchGate, BenchNetlist, CellLibrary, ParallelSimulator, Simulator,
    WavefrontSimulator,
};
use mis_testkit::prelude::*;
use mis_testkit::rng::TestRng;
use mis_waveform::units::ps;
use mis_waveform::{DigitalTrace, TraceArena};

const CASES: u32 = 48;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Characterized NOR library (quick config — bit-identity tests compare
/// the same channel objects along two engine paths, not against the
/// exact model, so the loose budget is irrelevant).
fn shared_lib() -> &'static CharLib {
    static LIB: OnceLock<CharLib> = OnceLock::new();
    LIB.get_or_init(|| {
        CharLib::nor(&NorParams::paper_table1(), &CharConfig::quick()).expect("characterization")
    })
}

/// Random trace on a 5 ps grid, so exactly-simultaneous edges across
/// independently generated traces are common, including empty traces.
fn grid_trace(rng: &mut TestRng, max_edges: u64) -> DigitalTrace {
    let n = rng.gen_u64_below(max_edges + 1);
    let init = rng.gen_bool(0.5);
    let mut trace = DigitalTrace::constant(init);
    let mut ticks: u64 = 0;
    let mut v = init;
    for _ in 0..n {
        ticks += 1 + rng.gen_u64_below(40);
        v = !v;
        trace
            .push_edge(ps(100.0) + ticks as f64 * ps(5.0), v)
            .expect("monotone");
    }
    trace
}

/// Asserts the event engine — and the parallel per-cone and wavefront
/// engines at two worker counts (the wavefront at both serial-tail
/// extremes too) — reproduces `Network::run` bit for bit on `net`,
/// including a second run on the warm arena (reuse contract).
fn assert_engine_matches(net: &Network, inputs: &[DigitalTrace]) {
    let want = net.run(inputs).expect("reference run");
    let mut sim = Simulator::new(net).expect("engine construction");
    let got = sim.run(inputs).expect("event-queue run");
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g, w, "signal {i} ('{}')", {
            let id = net.signal_id(i).unwrap();
            net.signal_name(id).to_owned()
        });
    }
    let mut arena = TraceArena::new();
    sim.run_in(inputs, &mut arena).expect("warm-up");
    sim.run_in(inputs, &mut arena).expect("warm rerun");
    for (i, w) in want.iter().enumerate() {
        let id = net.signal_id(i).unwrap();
        assert_eq!(&sim.trace(&arena, id).to_trace(), w, "warm signal {i}");
    }
    for workers in [2, 5] {
        let mut par = ParallelSimulator::new(net, workers).expect("partitioning");
        let got = par.run(inputs).expect("parallel run");
        assert_eq!(got, want, "parallel engine, {workers} workers");
        // The wavefront engine must agree wherever the cutover lands:
        // 0 sends every gate front to the workers, `usize::MAX` keeps
        // everything on the coordinator's serial tail.
        for cutover in [0, usize::MAX] {
            let mut wave = WavefrontSimulator::new(net, workers)
                .expect("levelization")
                .with_cutover(cutover);
            let got = wave.run(inputs).expect("wavefront run");
            assert_eq!(
                got, want,
                "wavefront engine, {workers} workers, cutover {cutover}"
            );
        }
    }
}

#[test]
fn engine_bit_identical_on_all_netlists_topologies() {
    let lib = shared_lib();
    let mut rng = TestRng::seed_from_u64(0x51B);
    let inertial = || {
        Some(
            Box::new(InertialChannel::symmetric(ps(50.0), ps(38.0)).unwrap())
                as Box<dyn TraceTransform>,
        )
    };
    let mut cached = CachedHybridFactory::new(lib).unwrap();
    let builds = vec![
        netlists::ripple_chain(GateKind::Nor, 8, &mut ChannelPerGate(inertial)).unwrap(),
        netlists::ripple_chain(GateKind::Nor, 8, &mut cached).unwrap(),
        netlists::ripple_chain(GateKind::Nand, 5, &mut cached).unwrap(),
        netlists::c17(&mut ChannelPerGate(inertial)).unwrap(),
        netlists::c17(&mut cached).unwrap(),
        netlists::fanout_tree(4, &mut inertial.clone()).unwrap(),
        netlists::fanout_tree(3, &mut || None).unwrap(),
    ];
    for built in &builds {
        let inputs: Vec<DigitalTrace> = (0..built.net.input_count())
            .map(|_| grid_trace(&mut rng, 14))
            .collect();
        assert_engine_matches(&built.net, &inputs);
    }
}

/// Channel palette index → fresh channel (`None` = zero-time).
fn spec_channel(ch: usize) -> Option<Box<dyn TraceTransform>> {
    match ch {
        0 => None,
        1 => Some(Box::new(PureDelayChannel::new(ps(7.0)).unwrap())),
        2 => Some(Box::new(
            InertialChannel::symmetric(ps(40.0), ps(30.0)).unwrap(),
        )),
        3 => Some(Box::new(
            ExpChannel::from_sis_delays(ps(50.0), ps(38.0), ps(15.0)).unwrap(),
        )),
        _ => Some(Box::new(
            SumExpChannel::from_sis_delay(ps(50.0), ps(15.0), 0.7, 3.0).unwrap(),
        )),
    }
}

/// Builds a random feed-forward network over every channel kind: unary
/// and binary zero-time gates with optional single-input channels, plus
/// cached hybrid NOR/NAND two-input channel gates.
fn random_network(rng: &mut TestRng) -> Network {
    const BINARY: [GateKind; 5] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
    ];
    let n_inputs = 1 + rng.gen_u64_below(3) as usize;
    let n_gates = 1 + rng.gen_u64_below(8) as usize;
    let mut net = Network::new();
    let mut ids = Vec::new();
    for i in 0..n_inputs {
        ids.push(net.add_input(&format!("in{i}")));
    }
    for g in 0..n_gates {
        let name = format!("g{g}");
        let pick = |rng: &mut TestRng| ids[rng.gen_u64_below(ids.len() as u64) as usize];
        let id = match rng.gen_u64_below(4) {
            0 => {
                let kind = if rng.gen_bool(0.5) {
                    GateKind::Not
                } else {
                    GateKind::Buf
                };
                let src = pick(rng);
                net.add_gate(
                    &name,
                    kind,
                    &[src],
                    spec_channel(rng.gen_u64_below(5) as usize),
                )
                .unwrap()
            }
            1 | 2 => {
                let kind = BINARY[rng.gen_u64_below(5) as usize];
                let (a, b) = (pick(rng), pick(rng));
                net.add_gate(
                    &name,
                    kind,
                    &[a, b],
                    spec_channel(rng.gen_u64_below(5) as usize),
                )
                .unwrap()
            }
            _ => {
                let channel: Box<dyn TwoInputTransform> = if rng.gen_bool(0.5) {
                    Box::new(CachedHybridNandChannel::from_dual(shared_lib()).unwrap())
                } else {
                    Box::new(CachedHybridChannel::new(shared_lib()).unwrap())
                };
                let (a, b) = (pick(rng), pick(rng));
                net.add_two_input_channel_gate(&name, [a, b], channel)
                    .unwrap()
            }
        };
        ids.push(id);
    }
    net
}

#[test]
fn engine_bit_identical_on_random_dags() {
    // The event-queue schedule must be invisible: for any acyclic wiring
    // and any channel kind, outputs equal the levelized sweep bit for
    // bit — on empty traces and exactly-simultaneous edges too.
    Config::with_cases(CASES).run(&(0u64..u64::MAX), |&seed| {
        let mut rng = TestRng::seed_from_u64(seed);
        let net = random_network(&mut rng);
        let inputs: Vec<DigitalTrace> = (0..net.input_count())
            .map(|_| grid_trace(&mut rng, 8))
            .collect();
        let want = net.run(&inputs).unwrap();
        let mut sim = Simulator::new(&net).expect("engine construction");
        let got = sim.run(&inputs).unwrap();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(g, w, "signal {i} diverged (seed {seed})");
        }
        Ok(())
    });
}

#[test]
fn parallel_engine_bit_identical_at_worker_counts_1_through_8() {
    // The partition (and the thread interleaving it implies) must be
    // invisible: for any acyclic wiring, any channel kind, and any
    // worker count, the merged result equals the serial engines bit for
    // bit — empty traces and exactly-simultaneous edges included.
    Config::with_cases(CASES).run(&(0u64..u64::MAX), |&seed| {
        let mut rng = TestRng::seed_from_u64(seed);
        let net = random_network(&mut rng);
        let inputs: Vec<DigitalTrace> = (0..net.input_count())
            .map(|_| grid_trace(&mut rng, 8))
            .collect();
        let want = net.run(&inputs).unwrap();
        let workers = 1 + (seed % 8) as usize;
        let mut par = ParallelSimulator::new(&net, workers).unwrap();
        let got = par.run(&inputs).unwrap();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(g, w, "signal {i} diverged ({workers} workers, seed {seed})");
        }
        // Warm rerun into a reused arena (the reuse contract), spans in
        // signal order by the merge.
        let mut arena = TraceArena::new();
        par.run_in(&inputs, &mut arena).unwrap();
        par.run_in(&inputs, &mut arena).unwrap();
        for (i, w) in want.iter().enumerate() {
            let id = net.signal_id(i).unwrap();
            prop_assert_eq!(&par.trace(&arena, id).to_trace(), w, "warm signal {i}");
        }
        Ok(())
    });
}

#[test]
fn parallel_engine_every_worker_count_on_one_seed() {
    // The property test samples one worker count per seed; this pins the
    // full 1..=8 sweep on a fixed circuit so a worker-count-specific
    // regression cannot hide behind seed sampling.
    let mut rng = TestRng::seed_from_u64(0x1D1E);
    let net = random_network(&mut rng);
    let inputs: Vec<DigitalTrace> = (0..net.input_count())
        .map(|_| grid_trace(&mut rng, 10))
        .collect();
    let want = net.run(&inputs).unwrap();
    for workers in 1..=8 {
        let mut par = ParallelSimulator::new(&net, workers).unwrap();
        assert_eq!(par.run(&inputs).unwrap(), want, "{workers} workers");
    }
}

#[test]
fn wavefront_engine_bit_identical_at_worker_counts_1_through_8() {
    // The level slicing, the chunk boundaries and the serial-tail
    // cutover must all be invisible: for any acyclic wiring, any channel
    // kind, any worker count and any cutover, the merged fronts equal
    // the serial engines bit for bit — empty traces and
    // exactly-simultaneous edges included.
    Config::with_cases(CASES).run(&(0u64..u64::MAX), |&seed| {
        let mut rng = TestRng::seed_from_u64(seed);
        let net = random_network(&mut rng);
        let inputs: Vec<DigitalTrace> = (0..net.input_count())
            .map(|_| grid_trace(&mut rng, 8))
            .collect();
        let want = net.run(&inputs).unwrap();
        let workers = 1 + (seed % 8) as usize;
        let cutover = [0, 2, usize::MAX][(seed / 8 % 3) as usize];
        let mut wave = WavefrontSimulator::new(&net, workers)
            .unwrap()
            .with_cutover(cutover);
        let got = wave.run(&inputs).unwrap();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(
                g,
                w,
                "signal {i} diverged ({workers} workers, cutover {cutover}, seed {seed})"
            );
        }
        // The schedule is exactly-once at every shape.
        prop_assert_eq!(
            wave.worker_loads().iter().sum::<usize>(),
            net.signal_count()
        );
        // Warm rerun into a reused arena (the reuse contract).
        let mut arena = TraceArena::new();
        wave.run_in(&inputs, &mut arena).unwrap();
        wave.run_in(&inputs, &mut arena).unwrap();
        for (i, w) in want.iter().enumerate() {
            let id = net.signal_id(i).unwrap();
            prop_assert_eq!(&wave.trace(&arena, id).to_trace(), w, "warm signal {i}");
        }
        Ok(())
    });
}

#[test]
fn wavefront_engine_every_worker_count_on_one_seed() {
    // Full 1..=8 sweep at both cutover extremes on a fixed circuit, so a
    // worker-count- or cutover-specific regression cannot hide behind
    // seed sampling.
    let mut rng = TestRng::seed_from_u64(0x1D1E);
    let net = random_network(&mut rng);
    let inputs: Vec<DigitalTrace> = (0..net.input_count())
        .map(|_| grid_trace(&mut rng, 10))
        .collect();
    let want = net.run(&inputs).unwrap();
    for workers in 1..=8 {
        for cutover in [0, usize::MAX] {
            let mut wave = WavefrontSimulator::new(&net, workers)
                .unwrap()
                .with_cutover(cutover);
            assert_eq!(
                wave.run(&inputs).unwrap(),
                want,
                "{workers} workers, cutover {cutover}"
            );
        }
    }
}

/// Random `.bench` netlist with safe names, wide gates, and forward
/// references (gates are emitted in reverse definition order half the
/// time).
fn random_bench(rng: &mut TestRng) -> BenchNetlist {
    const FUNCS: [BenchFunc; 8] = [
        BenchFunc::And,
        BenchFunc::Or,
        BenchFunc::Nand,
        BenchFunc::Nor,
        BenchFunc::Xor,
        BenchFunc::Xnor,
        BenchFunc::Not,
        BenchFunc::Buff,
    ];
    let n_inputs = 1 + rng.gen_u64_below(4) as usize;
    let n_gates = 1 + rng.gen_u64_below(8) as usize;
    let inputs: Vec<String> = (0..n_inputs).map(|i| format!("in{i}")).collect();
    let mut defined = inputs.clone();
    let mut gates = Vec::new();
    for g in 0..n_gates {
        let func = FUNCS[rng.gen_u64_below(8) as usize];
        let arity = if func.is_unary() {
            1
        } else {
            2 + rng.gen_u64_below(4) as usize
        };
        let ops: Vec<String> = (0..arity)
            .map(|_| defined[rng.gen_u64_below(defined.len() as u64) as usize].clone())
            .collect();
        // Lower-case names stay fixed under the torture test's random
        // line-case flips (only keywords are case-insensitive).
        let name = format!("s{g}");
        defined.push(name.clone());
        gates.push(BenchGate {
            output: name,
            func,
            inputs: ops,
        });
    }
    if rng.gen_bool(0.5) {
        gates.reverse(); // forward references stay legal
    }
    let n_out = 1 + rng.gen_u64_below(3) as usize;
    let outputs: Vec<String> = (0..n_out)
        .map(|_| defined[rng.gen_u64_below(defined.len() as u64) as usize].clone())
        .collect();
    BenchNetlist::new(inputs, outputs, gates).expect("generator emits valid netlists")
}

#[test]
fn bench_write_parse_round_trip_is_identity() {
    Config::with_cases(CASES).run(&(0u64..u64::MAX), |&seed| {
        let mut rng = TestRng::seed_from_u64(seed);
        let nl = random_bench(&mut rng);
        let text = nl.to_text();
        let parsed = BenchNetlist::parse(&text).expect("canonical text parses");
        prop_assert_eq!(&parsed, &nl, "round trip (seed {seed})");
        // The writer is idempotent through a parse.
        prop_assert_eq!(parsed.to_text(), text);
        Ok(())
    });
}

#[test]
fn bench_parse_survives_comment_and_whitespace_torture() {
    // Injecting comments, blank lines, indentation, trailing whitespace
    // and random keyword case changes nothing semantically.
    Config::with_cases(CASES).run(&(0u64..u64::MAX), |&seed| {
        let mut rng = TestRng::seed_from_u64(seed);
        let nl = random_bench(&mut rng);
        let mut tortured = String::from("# header comment\n\n");
        for line in nl.to_text().lines() {
            match rng.gen_u64_below(4) {
                0 => tortured.push_str("   \t\n"),
                1 => tortured.push_str("# interleaved comment, with (parens) = and , commas\n"),
                _ => {}
            }
            let line = if rng.gen_bool(0.3) {
                line.to_ascii_lowercase()
            } else {
                line.to_owned()
            };
            let line = line.replace('(', " ( ").replace(',', " ,\t");
            tortured.push('\t');
            tortured.push_str(&line);
            if rng.gen_bool(0.5) {
                tortured.push_str("  # trailing");
            }
            tortured.push('\n');
        }
        let parsed = BenchNetlist::parse(&tortured).expect("tortured text parses");
        prop_assert_eq!(&parsed, &nl, "torture changed the parse (seed {seed})");
        Ok(())
    });
}

#[test]
fn bench_parse_survives_crlf_and_bom_torture() {
    // Files exported from Windows tooling arrive with a UTF-8 BOM and
    // CRLF line endings (sometimes mixed with bare LF after hand edits);
    // both must round-trip to the same netlist as the canonical text.
    Config::with_cases(CASES).run(&(0u64..u64::MAX), |&seed| {
        let mut rng = TestRng::seed_from_u64(seed);
        let nl = random_bench(&mut rng);
        let mut tortured = String::new();
        if rng.gen_bool(0.7) {
            tortured.push('\u{FEFF}');
        }
        for line in nl.to_text().lines() {
            tortured.push_str(line);
            // Mixed line-ending torture: CRLF mostly, bare LF sometimes,
            // and the occasional trailing whitespace before the ending.
            if rng.gen_bool(0.2) {
                tortured.push(' ');
            }
            if rng.gen_bool(0.8) {
                tortured.push_str("\r\n");
            } else {
                tortured.push('\n');
            }
        }
        if rng.gen_bool(0.3) {
            tortured.push('\r'); // stray final CR, no newline
        }
        let parsed = BenchNetlist::parse(&tortured).expect("CRLF/BOM text parses");
        prop_assert_eq!(
            &parsed,
            &nl,
            "CRLF/BOM torture changed the parse (seed {seed})"
        );
        // And the canonical writer round-trips the re-parse (identity).
        prop_assert_eq!(parsed.to_text(), nl.to_text());
        Ok(())
    });
}

// ---- one malformed-input test per parser error variant ----

#[test]
fn error_syntax() {
    for bad in [
        "INPUT(a)\nOUTPUT(a)\nbogus line",
        "INPUT(a)\ny = NOT(a",
        "INPUT(a)\ny = NOT(a) trailing",
        "INPUT(a)\ny = NOT()",
        "INPUT(a, b)\n",
        "INPUT(a)\nWIBBLE(a)\n",
        "INPUT(a)\nx y = NOT(a)",
    ] {
        assert!(
            matches!(BenchNetlist::parse(bad), Err(BenchError::Syntax { .. })),
            "expected Syntax error for {bad:?}, got {:?}",
            BenchNetlist::parse(bad)
        );
    }
}

#[test]
fn error_unknown_function() {
    let r = BenchNetlist::parse("INPUT(a)\nOUTPUT(y)\ny = DFF(a, a)");
    match r {
        Err(BenchError::UnknownFunction { line, name }) => {
            assert_eq!(line, 3);
            assert_eq!(name, "DFF");
        }
        other => panic!("expected UnknownFunction, got {other:?}"),
    }
}

#[test]
fn error_bad_arity() {
    for (bad, func) in [
        ("INPUT(a)\ny = NOT(a, a)", "NOT"),
        ("INPUT(a)\ny = BUFF(a, a)", "BUFF"),
        ("INPUT(a)\ny = NAND(a)", "NAND"),
        ("INPUT(a)\ny = XOR(a)", "XOR"),
    ] {
        match BenchNetlist::parse(bad) {
            Err(BenchError::BadArity { function, .. }) => assert_eq!(function, func),
            other => panic!("expected BadArity for {bad:?}, got {other:?}"),
        }
    }
}

#[test]
fn error_duplicate() {
    for bad in [
        "INPUT(a)\nINPUT(a)",
        "INPUT(a)\ny = NOT(a)\ny = BUFF(a)",
        "INPUT(a)\na = NOT(a)",
    ] {
        assert!(
            matches!(BenchNetlist::parse(bad), Err(BenchError::Duplicate { .. })),
            "expected Duplicate for {bad:?}"
        );
    }
}

#[test]
fn error_undefined() {
    match BenchNetlist::parse("INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)") {
        Err(BenchError::Undefined { line, name }) => {
            assert_eq!(name, "ghost");
            assert_eq!(line, 3, "reported at the referencing gate line");
        }
        other => panic!("expected Undefined, got {other:?}"),
    }
    assert!(matches!(
        BenchNetlist::parse("INPUT(a)\nOUTPUT(nowhere)"),
        Err(BenchError::Undefined { .. })
    ));
}

#[test]
fn error_cycle() {
    let r = BenchNetlist::parse("INPUT(a)\nx = NAND(a, y)\ny = NAND(a, x)");
    assert!(matches!(r, Err(BenchError::Cycle { .. })), "got {r:?}");
    // Self-loop.
    assert!(matches!(
        BenchNetlist::parse("INPUT(a)\nx = NAND(a, x)"),
        Err(BenchError::Cycle { .. })
    ));
}

#[test]
fn error_empty() {
    assert!(matches!(BenchNetlist::parse(""), Err(BenchError::Empty)));
    assert!(matches!(
        BenchNetlist::parse("# only comments\n\n  # here\n"),
        Err(BenchError::Empty)
    ));
}

// ---- committed fixtures ----

#[test]
fn committed_charlib_text_libraries_round_trip() {
    for (file, gate) in [
        ("data/charlib/nor_paper.mislib", CharGate::Nor),
        ("data/charlib/nand_dual.mislib", CharGate::Nand),
    ] {
        let path = workspace_root().join(file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let lib = CharLib::from_text(&text).expect("committed library parses");
        assert_eq!(lib.gate(), gate, "{file}");
        // Loader round trip is the identity on the committed bytes, so
        // `load → save` can never silently reformat a committed library.
        assert_eq!(lib.to_text(), text, "{file} round trip");
        // And the loaded tables drive the cached fast path directly.
        if gate == CharGate::Nor {
            let cells = CellLibrary::hybrid(&lib, None).expect("loaded NOR library builds cells");
            assert!(cells.shared_tables().is_some());
        }
    }
}

#[test]
fn c17_fixture_matches_builtin_topology_bit_for_bit() {
    let text = std::fs::read_to_string(workspace_root().join("data/bench/c17.bench")).unwrap();
    let nl = BenchNetlist::parse(&text).expect("c17 fixture parses");
    assert_eq!(nl.inputs().len(), 5);
    assert_eq!(nl.outputs().len(), 2);
    assert_eq!(nl.gates().len(), 6);

    let ch = InertialChannel::symmetric(ps(50.0), ps(38.0)).unwrap();
    let lowered = nl.lower(&CellLibrary::inertial(ch.clone())).unwrap();
    let mut reference = ChannelPerGate(|| {
        Some(Box::new(InertialChannel::symmetric(ps(50.0), ps(38.0)).unwrap()) as Box<_>)
    });
    let builtin = netlists::c17(&mut reference).unwrap();

    let mut rng = TestRng::seed_from_u64(0xC17);
    for _ in 0..8 {
        let inputs: Vec<DigitalTrace> = (0..5).map(|_| grid_trace(&mut rng, 12)).collect();
        let want = builtin.net.run(&inputs).unwrap();
        let mut sim = Simulator::new(&lowered.net).expect("engine construction");
        let got = sim.run(&inputs).unwrap();
        for (k, out) in lowered.outputs.iter().enumerate() {
            assert_eq!(
                got[out.index()],
                want[builtin.outputs[k].index()],
                "output {k}"
            );
        }
    }
}

/// Constant-input reference model of the committed C432-scale circuit
/// (priority interrupt controller, see `make_data.rs`).
fn c432_reference(e: u16, a: u16, b: u16, c: u16) -> [bool; 7] {
    let va = a & e;
    let vb = b & e;
    let vc = c & e;
    let pa = va != 0;
    let pb = !pa && vb != 0;
    let pc = !pa && !pb && vc != 0;
    let r = if pa {
        va
    } else if pb {
        vb
    } else if pc {
        vc
    } else {
        0
    };
    let chan = if r == 0 { 0 } else { r.trailing_zeros() };
    [
        pa,
        pb,
        pc,
        chan & 8 != 0,
        chan & 4 != 0,
        chan & 2 != 0,
        chan & 1 != 0,
    ]
}

#[test]
fn c432_fixture_loads_runs_and_encodes_priorities() {
    let text = std::fs::read_to_string(workspace_root().join("data/bench/c432.bench")).unwrap();
    let nl = BenchNetlist::parse(&text).expect("c432 fixture parses");
    assert_eq!(nl.inputs().len(), 36);
    assert_eq!(nl.outputs().len(), 7);
    assert_eq!(nl.gates().len(), 132);

    let lowered = nl.lower(&CellLibrary::ideal()).unwrap();
    let mut sim = Simulator::new(&lowered.net).expect("engine construction");
    let mut rng = TestRng::seed_from_u64(0xC432);
    let mut check = |e: u16, a: u16, b: u16, c: u16| {
        let mut inputs = Vec::with_capacity(36);
        for mask in [e, a, b, c] {
            for i in 0..9 {
                inputs.push(DigitalTrace::constant(mask >> i & 1 == 1));
            }
        }
        let traces = sim.run(&inputs).unwrap();
        let want = c432_reference(e, a, b, c);
        for (k, out) in lowered.outputs.iter().enumerate() {
            assert_eq!(
                traces[out.index()].initial_value(),
                want[k],
                "output {k} for e={e:09b} a={a:09b} b={b:09b} c={c:09b}"
            );
        }
    };
    check(0, 0, 0, 0);
    check(0x1FF, 0x1FF, 0x1FF, 0x1FF);
    check(0x1FF, 0, 0, 0x100);
    check(0x0F0, 0x100, 0x0F0, 0);
    for _ in 0..60 {
        let m = |rng: &mut TestRng| (rng.next_u64() & 0x1FF) as u16;
        check(m(&mut rng), m(&mut rng), m(&mut rng), m(&mut rng));
    }
}

/// Constant-input reference model of the committed C880-scale 8-bit ALU
/// (see `make_data.rs`): buses as bit masks, controls as booleans,
/// returns the 27 outputs in declaration order.
#[allow(clippy::too_many_arguments)]
fn c880_reference(
    a: u16,
    b: u16,
    c: u16,
    d: u16,
    e: u16,
    g: u16,
    f: u8,
    cin: bool,
    inv: bool,
    ps0: bool,
    ps1: bool,
    ten: bool,
    zen: bool,
    pen: bool,
    oen: bool,
) -> Vec<bool> {
    let mask = |v: u16| v & 0xFF;
    let xb = mask(b ^ if inv { 0xFF } else { 0 });
    let mut cy = [false; 9];
    cy[0] = cin;
    let mut s: u16 = 0;
    for i in 0..8 {
        let ai = a >> i & 1 == 1;
        let xbi = xb >> i & 1 == 1;
        let p = ai ^ xbi;
        let gn = ai && xbi;
        if p ^ cy[i] {
            s |= 1 << i;
        }
        cy[i + 1] = gn || (p && cy[i]);
    }
    let cout = cy[8];
    let ovf = oen && (cy[7] ^ cy[8]);
    let sel = f >> 1 & 7; // F3 F2 F1
    let m = mask(match sel {
        0 => s,
        1 => a & b,
        2 => a | b,
        3 => a ^ b,
        4 => !(a & b),
        5 => !(a | b),
        6 => !(a ^ b),
        _ => a,
    });
    let y = mask(m ^ if f & 1 == 1 { 0xFF } else { 0 });
    let r = y & mask(g);
    let zero = zen && y == 0;
    let par = pen && y.count_ones() % 2 == 1;
    let pdec0 = ten && !ps0;
    let pdec1 = ten && ps0;
    let tv = (if pdec0 { mask(c) } else { 0 }) | (if pdec1 { mask(d) } else { 0 });
    let t = tv & mask(e);
    let pt = (t.count_ones() % 2 == 1) ^ ps1;
    let eq = mask(a) == mask(b);
    let agb = mask(a) > mask(b);
    let k = if t == 0 { 0 } else { 15 - t.leading_zeros() };
    let mut out: Vec<bool> = (0..8).map(|i| r >> i & 1 == 1).collect();
    out.extend([cout, ovf, par, zero]);
    out.extend((0..8).map(|i| t >> i & 1 == 1));
    out.extend([pt, eq, agb, k & 4 != 0, k & 2 != 0, k & 1 != 0, t != 0]);
    out
}

#[test]
fn c880_fixture_loads_runs_and_matches_the_alu_reference() {
    let text = std::fs::read_to_string(workspace_root().join("data/bench/c880.bench")).unwrap();
    let nl = BenchNetlist::parse(&text).expect("c880 fixture parses");
    assert_eq!(nl.inputs().len(), 60);
    assert_eq!(nl.outputs().len(), 27);
    assert_eq!(nl.gates().len(), 366);

    let lowered = nl.lower(&CellLibrary::ideal()).unwrap();
    let mut sim = Simulator::new(&lowered.net).expect("engine construction");
    let mut rng = TestRng::seed_from_u64(0x880);
    let mut check = |a: u16, b: u16, c: u16, d: u16, e: u16, g: u16, f: u8, ctl: u8| {
        let bit = |v: u16, i: usize| v >> i & 1 == 1;
        let (cin, inv, ps0, ps1) = (ctl & 1 != 0, ctl & 2 != 0, ctl & 4 != 0, ctl & 8 != 0);
        let (ten, zen, pen, oen) = (ctl & 16 != 0, ctl & 32 != 0, ctl & 64 != 0, ctl & 128 != 0);
        let mut inputs = Vec::with_capacity(60);
        for mask in [a, b, c, d, e, g] {
            for i in 0..8 {
                inputs.push(DigitalTrace::constant(bit(mask, i)));
            }
        }
        for i in 0..4 {
            inputs.push(DigitalTrace::constant(f >> i & 1 == 1));
        }
        for v in [cin, inv, ps0, ps1, ten, zen, pen, oen] {
            inputs.push(DigitalTrace::constant(v));
        }
        let traces = sim.run(&inputs).unwrap();
        let want = c880_reference(a, b, c, d, e, g, f, cin, inv, ps0, ps1, ten, zen, pen, oen);
        for (k, out) in lowered.outputs.iter().enumerate() {
            assert_eq!(
                traces[out.index()].initial_value(),
                want[k],
                "output {k} ('{}') for a={a:08b} b={b:08b} c={c:08b} d={d:08b} e={e:08b} \
                 g={g:08b} f={f:04b} ctl={ctl:08b}",
                nl.outputs()[k]
            );
        }
    };
    // Corners: all-zero, all-ones, add overflow, subtract-to-zero, pass
    // bus selects, every function code.
    check(0, 0, 0, 0, 0, 0, 0, 0);
    check(0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xF, 0xFF);
    check(0x80, 0x80, 0, 0, 0, 0xFF, 0, 0b1000_0000);
    check(0x55, 0x55, 0, 0, 0, 0xFF, 0, 0b0000_0011); // A - B = 0 with INV+CIN
    check(0, 0, 0xAA, 0x55, 0xFF, 0, 0, 0b0001_0000); // pass C
    check(0, 0, 0xAA, 0x55, 0xFF, 0, 0, 0b0001_0100); // pass D
    for f in 0..16u8 {
        check(0xC3, 0x5A, 0, 0, 0, 0xFF, f, 0);
    }
    for _ in 0..60 {
        let m = |rng: &mut TestRng| (rng.next_u64() & 0xFF) as u16;
        let (a, b, c, d) = (m(&mut rng), m(&mut rng), m(&mut rng), m(&mut rng));
        let (e, g) = (m(&mut rng), m(&mut rng));
        let f = (rng.next_u64() & 0xF) as u8;
        let ctl = (rng.next_u64() & 0xFF) as u8;
        check(a, b, c, d, e, g, f, ctl);
    }
}

#[test]
fn c880_partition_is_covering_balanced_and_moderately_redundant() {
    // The per-cone partition on the C880-scale fixture: every signal
    // assigned, loads within 2x of each other at 4 workers, and the
    // cone-overlap redundancy bounded well below "every worker evaluates
    // everything" — the numbers EXPERIMENTS.md reports come from here.
    let text = std::fs::read_to_string(workspace_root().join("data/bench/c880.bench")).unwrap();
    let nl = BenchNetlist::parse(&text).unwrap();
    let lowered = nl.lower(&CellLibrary::ideal()).unwrap();
    let n = lowered.net.signal_count();
    for workers in [2usize, 4] {
        let par = ParallelSimulator::new(&lowered.net, workers).unwrap();
        let loads = par.worker_loads();
        eprintln!(
            "c880 partition, {workers} workers: loads {loads:?} of {n} signals, \
             replication {:.3}",
            par.replication_factor()
        );
        assert!(loads.iter().all(|&l| l > 0), "no idle worker at {workers}");
        assert!(
            loads.iter().sum::<usize>() >= n,
            "cones must cover every signal"
        );
        let (max, min) = (
            *loads.iter().max().unwrap() as f64,
            *loads.iter().min().unwrap() as f64,
        );
        assert!(
            max / min < 2.0,
            "{workers} workers: unbalanced loads {loads:?}"
        );
        assert!(
            par.replication_factor() < 0.95 * workers as f64,
            "{workers} workers: replication {:.3} ~ full duplication, packing regressed",
            par.replication_factor()
        );
        // The biggest cone union bounds the parallel span: it must stay
        // below the whole circuit. (On this fixture the R-bus cones all
        // share the adder + logic-unit core, so the structural floor is
        // high — ~0.87 at 2 workers; see EXPERIMENTS.md.)
        assert!(
            max / n as f64 <= 0.92,
            "{workers} workers: critical worker evaluates {max}/{n} of the circuit"
        );
    }
}

#[test]
fn wavefront_schedule_is_exactly_once_on_the_committed_fixtures() {
    // The level-sliced schedule never replicates work: on every
    // committed fixture, at every worker count and cutover, the
    // per-worker loads partition the signal set (contrast with the
    // per-cone engine's cone-overlap redundancy above).
    for file in [
        "data/bench/c17.bench",
        "data/bench/c432.bench",
        "data/bench/c880.bench",
    ] {
        let text = std::fs::read_to_string(workspace_root().join(file)).unwrap();
        let nl = BenchNetlist::parse(&text).unwrap();
        let lowered = nl.lower(&CellLibrary::ideal()).unwrap();
        let n = lowered.net.signal_count();
        for workers in [1usize, 2, 4, 8] {
            for cutover in [0usize, mis_sim::wavefront::DEFAULT_CUTOVER, usize::MAX] {
                let wave = WavefrontSimulator::new(&lowered.net, workers)
                    .unwrap()
                    .with_cutover(cutover);
                assert_eq!(
                    wave.worker_loads().iter().sum::<usize>(),
                    n,
                    "{file}: {workers} workers, cutover {cutover}"
                );
                assert!(
                    (wave.replication_factor() - 1.0).abs() < f64::EPSILON,
                    "{file}: replication must be exactly 1.0"
                );
            }
        }
    }
}

#[test]
fn c880_engines_match_sweep_under_timed_cells() {
    // Serial event queue AND parallel per-cone engine (2 and 5 workers,
    // via assert_engine_matches) on the C880-scale fixture under both
    // timed cell libraries.
    let text = std::fs::read_to_string(workspace_root().join("data/bench/c880.bench")).unwrap();
    let nl = BenchNetlist::parse(&text).unwrap();
    let fallback = InertialChannel::symmetric(ps(50.0), ps(38.0)).unwrap();
    let cells = [
        CellLibrary::inertial(fallback.clone()),
        CellLibrary::hybrid(shared_lib(), Some(fallback)).unwrap(),
    ];
    let mut rng = TestRng::seed_from_u64(0x880);
    for cells in cells {
        let lowered = nl.lower(&cells).unwrap();
        let inputs: Vec<DigitalTrace> = (0..60).map(|_| grid_trace(&mut rng, 6)).collect();
        assert_engine_matches(&lowered.net, &inputs);
    }
}

#[test]
fn c432_event_engine_matches_sweep_under_timed_cells() {
    let text = std::fs::read_to_string(workspace_root().join("data/bench/c432.bench")).unwrap();
    let nl = BenchNetlist::parse(&text).unwrap();
    let fallback = InertialChannel::symmetric(ps(50.0), ps(38.0)).unwrap();
    let cells = [
        CellLibrary::inertial(fallback.clone()),
        CellLibrary::hybrid(shared_lib(), Some(fallback)).unwrap(),
    ];
    let mut rng = TestRng::seed_from_u64(0x432);
    for cells in cells {
        let lowered = nl.lower(&cells).unwrap();
        let inputs: Vec<DigitalTrace> = (0..36).map(|_| grid_trace(&mut rng, 10)).collect();
        assert_engine_matches(&lowered.net, &inputs);
    }
}
