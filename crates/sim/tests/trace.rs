//! Chrome-trace export over a real netlist: a golden-file pin of the
//! C17 timeline and structural checks on the traced serial engine.
//!
//! The golden file (`tests/golden/c17.trace.json`) freezes the exact
//! byte output of [`mis_probe::TraceSnapshot::to_chrome_json`] — after
//! [`mis_probe::trace::normalize_timestamps`] rewrites every `ts`/`dur`
//! to `0.000` — for the committed C17 fixture under deterministic
//! inertial cells and the same hand-written stimulus the VCD golden
//! uses. Everything except wall-clock timing is deterministic: track
//! layout, metadata, event order, event names, phases and args (signal
//! indices, edge counts, run ordinals). Any change to the exporter's
//! field layout, the engine's event sequence, or the seal/gate-span
//! recording points shows up as a diff against a file a human has
//! inspected in a trace viewer. Re-bless with `BLESS=1` after
//! inspecting the new timeline.

use std::path::PathBuf;

use mis_digital::InertialChannel;
use mis_probe::trace::normalize_timestamps;
use mis_probe::{Probe, TraceSink};
use mis_sim::{BenchNetlist, CellLibrary, Simulator};
use mis_waveform::units::ps;
use mis_waveform::{DigitalTrace, TraceArena};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The committed C17 fixture under symmetric inertial cells — the same
/// deterministic lowering the VCD golden pins.
fn c17_lowered() -> mis_sim::LoweredNetlist {
    let text =
        std::fs::read_to_string(workspace_root().join("data/bench/c17.bench")).expect("fixture");
    let cells =
        CellLibrary::inertial(InertialChannel::symmetric(ps(50.0), ps(38.0)).expect("channel"));
    BenchNetlist::parse(&text)
        .expect("fixture parses")
        .lower(&cells)
        .expect("lowering")
}

/// The VCD golden's hand-written five-input stimulus, reused verbatim
/// so the two golden files pin the same run.
fn c17_stimulus() -> Vec<DigitalTrace> {
    let edges = |times: &[f64]| -> Vec<(f64, bool)> {
        times
            .iter()
            .enumerate()
            .map(|(k, &t)| (t, k % 2 == 0))
            .collect()
    };
    vec![
        DigitalTrace::with_edges(false, edges(&[ps(100.0), ps(400.0)])).unwrap(),
        DigitalTrace::with_edges(true, {
            let mut e = edges(&[ps(150.0), ps(500.0)]);
            for p in &mut e {
                p.1 = !p.1;
            }
            e
        })
        .unwrap(),
        DigitalTrace::with_edges(false, edges(&[ps(200.0), ps(230.0), ps(600.0)])).unwrap(),
        DigitalTrace::constant(true),
        DigitalTrace::with_edges(false, edges(&[ps(350.0)])).unwrap(),
    ]
}

/// Runs the traced serial engine once over the fixture and returns the
/// timestamp-normalized Chrome Trace JSON.
fn traced_c17_dump() -> String {
    let lowered = c17_lowered();
    let sink = TraceSink::new();
    let mut sim = Simulator::new_traced(&lowered.net, &Probe::disabled(), &sink).expect("engine");
    let mut arena = TraceArena::new();
    sim.run_in(&c17_stimulus(), &mut arena).expect("run");
    let json = sink.snapshot().to_chrome_json();
    assert!(mis_probe::json::is_wellformed(&json), "{json}");
    normalize_timestamps(&json)
}

#[test]
fn c17_trace_matches_the_committed_golden_file() {
    let got = traced_c17_dump();
    let golden_path = workspace_root().join("crates/sim/tests/golden/c17.trace.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &got).expect("bless golden file");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect("committed golden file");
    assert_eq!(
        got,
        want,
        "C17 chrome trace drifted from {}; if the change is intentional, \
         load the new timeline in a trace viewer and re-commit it",
        golden_path.display()
    );
}

#[test]
fn c17_trace_is_byte_deterministic_after_normalization() {
    assert_eq!(traced_c17_dump(), traced_c17_dump());
}

#[test]
fn c17_trace_carries_the_pinned_event_census() {
    // The same engine behavior the sim_profile --expect CI gate pins
    // (6 gate evaluations on C17), seen from the timeline side: one
    // run span, one gate span per evaluation, one seal instant per
    // primary-input edge batch.
    let dump = traced_c17_dump();
    let count = |needle: &str| dump.matches(needle).count();
    assert_eq!(count("\"name\":\"run\""), 1);
    assert_eq!(count("\"name\":\"gate\""), 6);
    assert_eq!(count("\"name\":\"seal\""), 5, "five primary inputs");
    assert_eq!(count("\"ph\":\"M\""), 2, "process_name + one thread_name");
}
