//! Steady-state allocation-freedom of the event-queue engine, asserted
//! with the `mis-testkit` counting allocator: after one warm-up run has
//! sized the arena, the ready queue and the span map, re-running
//! [`Simulator::run_in`] over same-shaped inputs performs **zero** heap
//! allocations — on the committed C432- and C880-scale fixtures with
//! `Arc`-shared cached-hybrid cells, the exact workloads of the
//! `netlist_throughput` bench tier. The parallel engine is deliberately
//! *not* under this gate: its steady-state allocations are the scoped
//! thread spawns themselves (worker arenas are warm and reused), and
//! the counter is thread-local — see
//! `worker_thread_allocations_stay_off_this_threads_count` below, which
//! pins down that serial-scoped contract.
//!
//! An integration test (its own binary) so the counting allocator can be
//! installed globally without touching any other target.

use std::path::PathBuf;

use mis_charlib::CharLib;
use mis_digital::InertialChannel;
use mis_probe::{Probe, TraceSink};
use mis_sim::{BenchNetlist, CellLibrary, Simulator, WavefrontSimulator};
use mis_testkit::alloc::{self, CountingAllocator};
use mis_waveform::generate::{Assignment, TraceConfig};
use mis_waveform::units::ps;
use mis_waveform::{DigitalTrace, TraceArena};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn committed_cells() -> CellLibrary {
    let text = std::fs::read_to_string(workspace_root().join("data/charlib/nor_paper.mislib"))
        .expect("committed NOR library");
    let lib = CharLib::from_text(&text).expect("library parses");
    CellLibrary::hybrid(
        &lib,
        Some(InertialChannel::symmetric(ps(50.0), ps(38.0)).expect("channel")),
    )
    .expect("cell library")
}

fn fixture(name: &str) -> BenchNetlist {
    let text =
        std::fs::read_to_string(workspace_root().join("data/bench").join(name)).expect("fixture");
    BenchNetlist::parse(&text).expect("fixture parses")
}

fn traffic(n: usize, seed: u64) -> Vec<DigitalTrace> {
    (0..n)
        .map(|i| {
            let pair = TraceConfig::new(ps(400.0), ps(150.0), Assignment::Local, 40)
                .generate(seed + i as u64)
                .expect("trace generation");
            if i % 2 == 0 {
                pair.a
            } else {
                pair.b
            }
        })
        .collect()
}

#[test]
fn warm_simulator_run_in_is_allocation_free() {
    let cells = committed_cells();
    for (file, seed) in [
        ("c432.bench", 0x432),
        ("c880.bench", 0x880),
        ("c17.bench", 0xC17),
    ] {
        let lowered = fixture(file).lower(&cells).expect("lowering");
        let inputs = traffic(lowered.inputs.len(), seed);
        let mut sim = Simulator::new(&lowered.net).expect("engine construction");
        let mut arena = TraceArena::new();
        // Warm-up: sizes the arena storage, the ready queue and the span
        // map; also pins down the edge counts a repeat run must hit.
        sim.run_in(&inputs, &mut arena).expect("warm-up run");
        let warm_edges = arena.total_edges();
        let (allocations, ()) = alloc::count_in(|| {
            for _ in 0..5 {
                sim.run_in(&inputs, &mut arena).expect("steady-state run");
            }
        });
        assert_eq!(
            allocations, 0,
            "{file}: steady-state Simulator::run_in allocated {allocations} times"
        );
        assert_eq!(arena.total_edges(), warm_edges, "{file}: reproducible");
    }
}

#[test]
fn warm_probed_simulator_run_in_is_allocation_free_and_counts_events() {
    // The zero-allocation contract must survive with a *live* probe
    // attached: counters are preallocated at registration, the census
    // walk reads the sealed arena without building anything, and the
    // span timer records into fixed atomics. Same fixtures, same
    // traffic as the unprobed gate above.
    let cells = committed_cells();
    for (file, seed) in [
        ("c432.bench", 0x432),
        ("c880.bench", 0x880),
        ("c17.bench", 0xC17),
    ] {
        let lowered = fixture(file).lower(&cells).expect("lowering");
        let inputs = traffic(lowered.inputs.len(), seed);
        let probe = Probe::new();
        let mut sim = Simulator::new_probed(&lowered.net, &probe).expect("engine construction");
        let mut arena = TraceArena::new();
        sim.run_in(&inputs, &mut arena).expect("warm-up run");
        let warm_pops = sim.counters().events_popped();
        assert!(warm_pops > 0, "{file}: probe saw the warm-up run");
        let (allocations, ()) = alloc::count_in(|| {
            for _ in 0..5 {
                sim.run_in(&inputs, &mut arena).expect("steady-state run");
            }
        });
        assert_eq!(
            allocations, 0,
            "{file}: steady-state probed run_in allocated {allocations} times"
        );
        // Identical inputs pop identical event counts every run.
        assert_eq!(
            sim.counters().events_popped(),
            warm_pops * 6,
            "{file}: per-run pop count is reproducible"
        );
        assert_eq!(sim.counters().runs(), 6, "{file}: six runs recorded");
    }
}

#[test]
fn warm_traced_simulator_run_in_is_allocation_free() {
    // Tracing is held to the same bar as the probe: with a *live*
    // TraceSink attached, a warm run writes every run/gate/seal event
    // into the track's ring buffer — preallocated at registration, so
    // the steady state allocates nothing. (The ring wraps rather than
    // grow: "allocation-bounded" means bounded at construction.)
    let cells = committed_cells();
    for (file, seed) in [
        ("c432.bench", 0x432),
        ("c880.bench", 0x880),
        ("c17.bench", 0xC17),
    ] {
        let lowered = fixture(file).lower(&cells).expect("lowering");
        let inputs = traffic(lowered.inputs.len(), seed);
        let probe = Probe::new();
        let sink = TraceSink::new();
        let mut sim =
            Simulator::new_traced(&lowered.net, &probe, &sink).expect("engine construction");
        let mut arena = TraceArena::new();
        sim.run_in(&inputs, &mut arena).expect("warm-up run");
        let (allocations, ()) = alloc::count_in(|| {
            for _ in 0..5 {
                sim.run_in(&inputs, &mut arena).expect("steady-state run");
            }
        });
        assert_eq!(
            allocations, 0,
            "{file}: steady-state traced run_in allocated {allocations} times"
        );
        let snap = sink.snapshot();
        let track = snap.track("sim").expect("sim track registered");
        assert!(
            !track.events.is_empty(),
            "{file}: traced runs recorded events"
        );
    }
}

#[test]
fn warm_wavefront_serial_paths_are_allocation_free_probed_and_traced() {
    // The wavefront engine's zero-allocation claim is scoped to its
    // serial paths — one worker, or a cutover that routes every front
    // through the serial tail. (Parallel fronts spend their steady-state
    // allocations on the scoped thread spawns themselves, exactly like
    // the per-cone engine; worker arenas are warm and reused.) Both a
    // live probe and a live trace sink are attached: gauges, span
    // timers, level spans and seal instants all land in storage sized at
    // registration.
    let cells = committed_cells();
    for (file, seed) in [("c432.bench", 0x432), ("c880.bench", 0x880)] {
        let lowered = fixture(file).lower(&cells).expect("lowering");
        let inputs = traffic(lowered.inputs.len(), seed);
        for (workers, cutover) in [(1usize, 0usize), (3, usize::MAX)] {
            let probe = Probe::new();
            let sink = TraceSink::new();
            let mut wave = WavefrontSimulator::new_traced(&lowered.net, workers, &probe, &sink)
                .expect("engine construction")
                .with_cutover(cutover);
            let mut arena = TraceArena::new();
            wave.run_in(&inputs, &mut arena).expect("warm-up run");
            let warm_edges = arena.total_edges();
            let warm_pops = wave.counters().events_popped();
            assert!(warm_pops > 0, "{file}: probe saw the warm-up run");
            let (allocations, ()) = alloc::count_in(|| {
                for _ in 0..5 {
                    wave.run_in(&inputs, &mut arena).expect("steady-state run");
                }
            });
            assert_eq!(
                allocations, 0,
                "{file}: steady-state wavefront run_in ({workers} workers, \
                 cutover {cutover}) allocated {allocations} times"
            );
            assert_eq!(arena.total_edges(), warm_edges, "{file}: reproducible");
            assert_eq!(
                wave.counters().events_popped(),
                warm_pops * 6,
                "{file}: per-run pop count is reproducible"
            );
            let snap = sink.snapshot();
            let track = snap.track("wave").expect("wave track registered");
            assert!(
                !track.events.is_empty(),
                "{file}: traced wavefront runs recorded events"
            );
        }
    }
}

#[test]
fn tripped_budget_runs_stay_allocation_free() {
    // The graceful-degradation path is held to the same standard as the
    // happy path: a warm engine re-run under a too-small RunBudget must
    // return SimError::BudgetExceeded without a single heap allocation
    // — the error variant is allocation-free by construction (resource
    // tag + integer limit, no String), and tripping mid-run must not
    // disturb the arena's reset-not-shrink reuse. A full unbudgeted run
    // after each trip stays allocation-free too.
    let cells = committed_cells();
    for (file, seed) in [("c432.bench", 0x432), ("c880.bench", 0x880)] {
        let lowered = fixture(file).lower(&cells).expect("lowering");
        let inputs = traffic(lowered.inputs.len(), seed);
        let mut sim = Simulator::new(&lowered.net).expect("engine construction");
        let mut arena = TraceArena::new();
        sim.run_in(&inputs, &mut arena).expect("warm-up run");
        let warm_edges = arena.total_edges();
        let budget = mis_sim::RunBudget::UNLIMITED.with_max_events(25);
        let (allocations, ()) = alloc::count_in(|| {
            for _ in 0..5 {
                match sim.run_budgeted_in(&inputs, &mut arena, &budget) {
                    Err(mis_digital::SimError::BudgetExceeded { .. }) => {}
                    _ => panic!("a 25-event budget must trip on {file}"),
                }
                sim.run_in(&inputs, &mut arena).expect("run after a trip");
            }
        });
        assert_eq!(
            allocations, 0,
            "{file}: tripped-budget cycling allocated {allocations} times"
        );
        assert_eq!(arena.total_edges(), warm_edges, "{file}: reproducible");
    }
}

#[test]
fn worker_thread_allocations_stay_off_this_threads_count() {
    // The counting allocator is thread-local by design: a zero-allocation
    // assertion is a claim about the asserting thread's own hot path, not
    // about the process. Pin that down — a spawned worker allocating
    // freely must not disturb a serial-scoped `count_in`, which is
    // exactly why the parallel engine's worker threads (and any parallel
    // test runner) cannot pollute the serial engine's gate above.
    let (allocations, ()) = alloc::count_in(|| {
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let v: Vec<u64> = (0..4096).collect();
                assert_eq!(v.len(), 4096);
            });
        });
    });
    // The scope machinery itself allocates on this thread (thread spawn),
    // but the worker's 4096-element Vec must not be attributed here.
    assert!(
        allocations < 32,
        "worker-thread allocations leaked into the spawning thread's count: {allocations}"
    );
}
