//! No-panic property torture for the `.bench` parser: adversarial
//! inputs — multi-KiB lines, huge fan-in, duplicated and overlong
//! identifiers, truncated files, random byte soup — must always come
//! back as `Ok` or a typed [`BenchError`], never a panic. Each case
//! additionally pins the error *kind* where the input's defect is
//! unambiguous, so the parser's diagnostics can't silently degrade into
//! a catch-all.

use mis_sim::{BenchError, BenchNetlist};
use mis_testkit::rng::TestRng;

/// Parses inside `catch_unwind` so a panic fails the test with the
/// offending input attached instead of aborting the harness run.
fn parse_must_not_panic(input: &str) -> Result<BenchNetlist, BenchError> {
    std::panic::catch_unwind(|| BenchNetlist::parse(input))
        .unwrap_or_else(|_| panic!("parser panicked on {:?}...", &input[..input.len().min(120)]))
}

#[test]
fn multi_kib_lines_parse_or_error_cleanly() {
    // A 64 KiB comment line, a 64 KiB identifier, and a definition
    // whose operand list alone is hundreds of KiB.
    let long_comment = format!("# {}\nINPUT(a)\nOUTPUT(a)\n", "x".repeat(65_536));
    assert!(parse_must_not_panic(&long_comment).is_ok());

    let long_name = "n".repeat(65_536);
    let giant_ident = format!("INPUT({long_name})\nOUTPUT({long_name})\n");
    let parsed = parse_must_not_panic(&giant_ident).expect("long identifiers are just names");
    assert_eq!(parsed.inputs().len(), 1);

    let mut soup = String::from("INPUT(a)\nOUTPUT(y)\n");
    soup.push_str("y = AND(");
    for _ in 0..40_000 {
        soup.push_str("a, ");
    }
    soup.push_str("a)\n");
    let parsed = parse_must_not_panic(&soup).expect("huge fan-in is legal");
    assert_eq!(parsed.gates()[0].inputs.len(), 40_001);
}

#[test]
fn duplicate_definitions_are_typed_errors() {
    for input in [
        "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n",
        "INPUT(a)\ny = NOT(a)\ny = NOT(a)\nOUTPUT(y)\n",
        "INPUT(a)\na = NOT(a)\nOUTPUT(a)\n",
    ] {
        match parse_must_not_panic(input) {
            Err(BenchError::Duplicate { .. }) => {}
            other => panic!("expected Duplicate for {input:?}, got {other:?}"),
        }
    }
}

#[test]
fn truncated_files_never_panic() {
    // Every prefix of a valid netlist (cut at each byte boundary) must
    // parse or produce a typed error — truncation mid-token included.
    let full = "# c-ish\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = NAND(a, b)\ny = NOR(t, b)\n";
    for cut in 0..full.len() {
        if !full.is_char_boundary(cut) {
            continue;
        }
        let _ = parse_must_not_panic(&full[..cut]);
    }
}

#[test]
fn malformed_syntax_is_a_typed_error_not_a_panic() {
    for input in [
        "INPUT(",
        "INPUT)a(",
        "y = ",
        "y = AND",
        "y = AND(",
        "y = AND)a, b(",
        "= AND(a, b)",
        "y == AND(a, b)",
        "INPUT(a) OUTPUT(a)",
        "\u{0}\u{1}\u{2}",
        "y = AND(a, b) trailing",
        "OUTPUT()",
        "INPUT()",
        "y = AND(,)",
        "y = AND(a,, b)",
    ] {
        if let Ok(nl) = parse_must_not_panic(input) {
            panic!("malformed {input:?} parsed as {nl:?}");
        }
    }
}

#[test]
fn unknown_functions_and_bad_arity_are_typed() {
    match parse_must_not_panic("INPUT(a)\ny = DFF(a)\nOUTPUT(y)\n") {
        Err(BenchError::UnknownFunction { name, .. }) => assert_eq!(name, "DFF"),
        other => panic!("expected UnknownFunction, got {other:?}"),
    }
    match parse_must_not_panic("INPUT(a)\ny = NOT(a, a)\nOUTPUT(y)\n") {
        Err(BenchError::BadArity { .. }) => {}
        other => panic!("expected BadArity, got {other:?}"),
    }
    match parse_must_not_panic("INPUT(a)\ny = AND(a)\nOUTPUT(y)\n") {
        Err(BenchError::BadArity { .. }) => {}
        other => panic!("expected BadArity, got {other:?}"),
    }
}

#[test]
fn random_ascii_soup_never_panics() {
    // 400 random pseudo-netlists over a hostile alphabet: directive
    // fragments, parens, commas, newlines, long runs. The only
    // requirement is totality — Ok or typed error, never a panic.
    const ALPHABET: &[u8] = b"INPUTOUTAND(),= \n\t#abz019_.-\r";
    let mut rng = TestRng::seed_from_u64(0xbe7c4);
    for _ in 0..400 {
        let len = rng.gen_u64_below(2048) as usize;
        let bytes: Vec<u8> = (0..len)
            .map(|_| ALPHABET[rng.gen_u64_below(ALPHABET.len() as u64) as usize])
            .collect();
        let input = String::from_utf8(bytes).expect("alphabet is ASCII");
        let _ = parse_must_not_panic(&input);
    }
}

#[test]
fn random_mutations_of_a_valid_netlist_never_panic() {
    // Flip, delete or duplicate one region of a real fixture per round:
    // near-valid inputs stress later pipeline stages (arity checks,
    // duplicate detection, topological validation) rather than the
    // tokenizer.
    let base = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
                t1 = NAND(a, b)\nt2 = NOR(b, c)\ny = AND(t1, t2)\nz = XOR(t1, c)\n";
    let mut rng = TestRng::seed_from_u64(0x10a7);
    for _ in 0..400 {
        let mut s = base.as_bytes().to_vec();
        let at = rng.gen_u64_below(s.len() as u64) as usize;
        match rng.gen_u64_below(3) {
            0 => s[at] = b'(' + (rng.gen_u64_below(26) as u8),
            1 => {
                let end = (at + 1 + rng.gen_u64_below(16) as usize).min(s.len());
                s.drain(at..end);
            }
            _ => {
                let chunk: Vec<u8> = s[at..(at + 12).min(s.len())].to_vec();
                s.splice(at..at, chunk);
            }
        }
        if let Ok(input) = String::from_utf8(s) {
            let _ = parse_must_not_panic(&input);
        }
    }
}
