//! VCD export over a real netlist: a golden-file pin of the C17 dump
//! and a round-trip identity check through a minimal re-parser.
//!
//! The golden file (`tests/golden/c17.vcd`) freezes the exact byte
//! output of [`mis_probe::vcd::write_vcd`] for the committed C17
//! fixture under deterministic inertial cells and a fixed hand-written
//! stimulus — any change to the header layout, id-code assignment,
//! quantization, or event ordering shows up as a diff against a file a
//! human has inspected in a waveform viewer.
//!
//! The re-parser is deliberately tiny and test-only: it understands
//! exactly the subset `write_vcd` emits (one scope, 1-bit wires,
//! `0`/`1` value changes) and reconstructs each signal as an initial
//! value plus a tick list, which must equal [`quantize_edges`] applied
//! to the source trace — the edge-identity half of the round trip —
//! while every parsed change must *toggle* the running value — the
//! polarity-parity half.

use std::collections::HashMap;
use std::path::PathBuf;

use mis_digital::InertialChannel;
use mis_probe::vcd::{quantize_edges, write_vcd, VcdSignal};
use mis_sim::{BenchNetlist, CellLibrary, Simulator};
use mis_waveform::units::ps;
use mis_waveform::{DigitalTrace, TraceArena};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The committed C17 fixture, lowered with symmetric inertial cells
/// (no table interpolation, so the dump is deterministic to the bit).
fn c17_lowered() -> mis_sim::LoweredNetlist {
    let text =
        std::fs::read_to_string(workspace_root().join("data/bench/c17.bench")).expect("fixture");
    let cells =
        CellLibrary::inertial(InertialChannel::symmetric(ps(50.0), ps(38.0)).expect("channel"));
    BenchNetlist::parse(&text)
        .expect("fixture parses")
        .lower(&cells)
        .expect("lowering")
}

/// Hand-written stimulus for the five C17 inputs: distinct phases and
/// widths, including one pulse narrow enough to be inertially filtered
/// downstream.
fn c17_stimulus() -> Vec<DigitalTrace> {
    let edges = |times: &[f64]| -> Vec<(f64, bool)> {
        times
            .iter()
            .enumerate()
            .map(|(k, &t)| (t, k % 2 == 0))
            .collect()
    };
    vec![
        DigitalTrace::with_edges(false, edges(&[ps(100.0), ps(400.0)])).unwrap(),
        DigitalTrace::with_edges(true, {
            let mut e = edges(&[ps(150.0), ps(500.0)]);
            for p in &mut e {
                p.1 = !p.1;
            }
            e
        })
        .unwrap(),
        DigitalTrace::with_edges(false, edges(&[ps(200.0), ps(230.0), ps(600.0)])).unwrap(),
        DigitalTrace::constant(true),
        DigitalTrace::with_edges(false, edges(&[ps(350.0)])).unwrap(),
    ]
}

/// Per-signal expectation: name, initial value, quantized edge ticks.
type ExpectedWire = (String, bool, Vec<u64>);

/// Runs the fixture and dumps every named (non-synthetic) signal, in
/// network index order, to a VCD byte vector.
fn dump_c17() -> (Vec<u8>, Vec<ExpectedWire>) {
    let lowered = c17_lowered();
    let mut sim = Simulator::new(&lowered.net).expect("engine");
    let mut arena = TraceArena::new();
    sim.run_in(&c17_stimulus(), &mut arena).expect("run");

    let net = &lowered.net;
    let ids: Vec<_> = (0..net.signal_count())
        .map(|s| net.signal_id(s).expect("s < signal_count"))
        .filter(|&id| !net.signal_name(id).contains('#'))
        .collect();
    let signals: Vec<VcdSignal<'_>> = ids
        .iter()
        .map(|&id| VcdSignal {
            name: net.signal_name(id),
            trace: sim.trace(&arena, id),
        })
        .collect();
    let mut out = Vec::new();
    write_vcd(&mut out, &signals).expect("vcd export");
    let expected = signals
        .iter()
        .map(|s| {
            (
                s.name.to_string(),
                s.trace.initial_value(),
                quantize_edges(s.trace.times()).expect("representable"),
            )
        })
        .collect();
    (out, expected)
}

#[test]
fn c17_dump_matches_the_committed_golden_file() {
    let (bytes, _) = dump_c17();
    let got = String::from_utf8(bytes).expect("vcd is ascii");
    let golden_path = workspace_root().join("crates/sim/tests/golden/c17.vcd");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &got).expect("bless golden file");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect("committed golden file");
    assert_eq!(
        got,
        want,
        "C17 VCD drifted from {}; if the change is intentional, inspect \
         the new dump in a viewer and re-commit it",
        golden_path.display()
    );
}

/// One parsed 1-bit signal: declared name, value at `$dumpvars`, and
/// the (tick, value) change list.
struct ParsedWire {
    name: String,
    initial: bool,
    changes: Vec<(u64, bool)>,
}

/// Minimal re-parser for the exact dialect `write_vcd` emits.
fn parse_vcd(text: &str) -> Vec<ParsedWire> {
    let mut by_code: HashMap<String, usize> = HashMap::new();
    let mut wires: Vec<ParsedWire> = Vec::new();
    let mut lines = text.lines();
    // Declarations: only `$var wire 1 <code> <name> $end` matters.
    for line in lines.by_ref() {
        if line == "$enddefinitions $end" {
            break;
        }
        let tok: Vec<&str> = line.split_whitespace().collect();
        if let ["$var", "wire", "1", code, name, "$end"] = tok[..] {
            by_code.insert(code.to_string(), wires.len());
            wires.push(ParsedWire {
                name: name.to_string(),
                initial: false,
                changes: Vec::new(),
            });
        }
    }
    assert_eq!(lines.next(), Some("$dumpvars"), "dumpvars section");
    // A value-change token is `0<code>` or `1<code>`.
    let split_change = |line: &str| -> (bool, String) {
        let value = match line.as_bytes()[0] {
            b'0' => false,
            b'1' => true,
            other => panic!("unexpected value char {other:?} in {line:?}"),
        };
        (value, line[1..].to_string())
    };
    for line in lines.by_ref() {
        if line == "$end" {
            break;
        }
        let (value, code) = split_change(line);
        wires[by_code[&code]].initial = value;
    }
    let mut tick = None;
    for line in lines {
        if let Some(t) = line.strip_prefix('#') {
            tick = Some(t.parse::<u64>().expect("tick"));
        } else {
            let (value, code) = split_change(line);
            wires[by_code[&code]]
                .changes
                .push((tick.expect("change before first #tick"), value));
        }
    }
    wires
}

#[test]
fn c17_dump_round_trips_through_the_reparser() {
    let (bytes, expected) = dump_c17();
    let parsed = parse_vcd(&String::from_utf8(bytes).expect("ascii"));
    assert_eq!(parsed.len(), expected.len());
    let mut nonempty = 0;
    for (wire, (name, initial, ticks)) in parsed.iter().zip(&expected) {
        assert_eq!(&wire.name, name);
        assert_eq!(wire.initial, *initial, "{name}: initial value");
        // Edge identity: the parsed change times are exactly the
        // quantized source edges, in order.
        let parsed_ticks: Vec<u64> = wire.changes.iter().map(|&(t, _)| t).collect();
        assert_eq!(&parsed_ticks, ticks, "{name}: edge times");
        // Polarity parity: every change toggles the running value.
        let mut value = wire.initial;
        for &(t, v) in &wire.changes {
            assert_eq!(v, !value, "{name}: change at #{t} does not toggle");
            value = v;
        }
        nonempty += usize::from(!wire.changes.is_empty());
    }
    assert!(
        nonempty >= 8,
        "stimulus should exercise most of C17, only {nonempty} wires toggled"
    );
}
