//! Shared evaluation infrastructure for the `mis-sim` engines: the
//! per-gate kernel, the index-width guard, the fan-out CSR builder, and
//! the topological levelizer.
//!
//! All three engines — the serial event-queue [`crate::Simulator`], the
//! parallel per-cone [`crate::ParallelSimulator`] and the level-sliced
//! [`crate::WavefrontSimulator`] — evaluate gates through
//! [`eval_signal_into`], the very same fused ideal-gate + channel
//! passes `mis_digital::Network::run_in` uses. Keeping the kernel in
//! one place is what makes the engines' bit-identity argument
//! structural rather than coincidental: a gate's output is a pure
//! function of its fan-in traces, computed by literally the same code,
//! so any schedule (event order, cone order, level order, thread
//! interleaving) that respects dependencies produces the same traces.

use mis_digital::{
    gates, ChannelCounters, EventBatch, GateKind, Network, SignalId, SignalSource, SimError,
};
use mis_waveform::{EdgeBuf, TraceRef};

/// The largest signal count (and total fan-out edge count) the engines
/// can address: they store signal, span and fan-out-edge indices as
/// `u32`. [`crate::Simulator::new`] rejects anything larger as
/// [`SimError::NetworkTooLarge`]; static analysis compares
/// [`crate::bench::BenchNetlist::lowered_stats`] against this limit to
/// predict that rejection before allocation.
pub const ENGINE_INDEX_MAX: usize = u32::MAX as usize;

/// The engines store signal, span and fan-out-edge indices as `u32`.
/// Rejects counts that would truncate, as [`SimError::NetworkTooLarge`].
pub(crate) fn check_index_width(count: usize) -> Result<(), SimError> {
    if count > ENGINE_INDEX_MAX {
        return Err(SimError::NetworkTooLarge {
            count,
            max: ENGINE_INDEX_MAX,
        });
    }
    Ok(())
}

/// Flat CSR view of a network's fan-out edges plus per-signal fan-in
/// degrees (with multiplicity) — the dependency-count structure both
/// engines are built on.
#[derive(Debug, Clone)]
pub(crate) struct FanoutCsr {
    /// Row starts into `targets`, one entry per signal plus a tail.
    pub start: Vec<u32>,
    /// Dependent gate signal indices, grouped by source signal.
    pub targets: Vec<u32>,
    /// Fan-in degree per signal (0 for inputs).
    pub indeg: Vec<u32>,
}

impl FanoutCsr {
    /// Walks `net` once and builds the CSR.
    ///
    /// # Errors
    ///
    /// [`SimError::NetworkTooLarge`] when the signal count or the total
    /// fan-out edge count exceeds the `u32` index width.
    pub(crate) fn build(net: &Network) -> Result<Self, SimError> {
        let n = net.signal_count();
        check_index_width(n)?;
        let mut indeg = vec![0u32; n];
        let mut counts = vec![0usize; n];
        let for_each_edge = |f: &mut dyn FnMut(usize, usize)| {
            for s in 0..n {
                let id = net.signal_id(s).expect("s < signal_count");
                match net.source(id) {
                    SignalSource::Input => {}
                    SignalSource::Gate { inputs, .. } => {
                        for i in inputs {
                            f(i.index(), s);
                        }
                    }
                    SignalSource::TwoInputChannelGate { inputs, .. } => {
                        for i in inputs {
                            f(i.index(), s);
                        }
                    }
                }
            }
        };
        for_each_edge(&mut |src, dst| {
            counts[src] += 1;
            indeg[dst] += 1;
        });
        // Gate arity is bounded, but the *sum* of fan-outs can outgrow
        // the index width even when the signal count fits: check it
        // before narrowing.
        let total: usize = counts.iter().sum();
        check_index_width(total)?;
        let mut start = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        start.push(0u32);
        for &c in &counts {
            acc += c;
            start.push(acc as u32);
        }
        let mut cursor: Vec<u32> = start[..n].to_vec();
        let mut targets = vec![0u32; total];
        for_each_edge(&mut |src, dst| {
            targets[cursor[src] as usize] = dst as u32;
            cursor[src] += 1;
        });
        Ok(FanoutCsr {
            start,
            targets,
            indeg,
        })
    }

    /// Whether signal `s` drives no gate (a cone root for the parallel
    /// partitioning: every signal reaches at least one sink, so sink
    /// fan-in cones cover the whole network).
    #[inline]
    pub(crate) fn is_sink(&self, s: usize) -> bool {
        self.start[s] == self.start[s + 1]
    }
}

/// Topological level per signal: 0 for inputs, `1 + max` over fan-in
/// levels for gates — the same definition `mis_analyze::sta::levels`
/// documents (kept crate-local here to avoid a `sim → analyze`
/// dependency cycle; `mis-analyze` property-tests its table against the
/// engines, which pins the two definitions together). One forward pass
/// suffices because [`Network`]'s builder enforces reference-before-use:
/// every fan-in has a smaller signal index.
pub(crate) fn levels(net: &Network) -> Vec<u32> {
    let n = net.signal_count();
    let mut levels = vec![0u32; n];
    for s in 0..n {
        let id = net.signal_id(s).expect("s < signal_count");
        let mut level = 0u32;
        for_each_fanin_of(net.source(id), &mut |i| level = level.max(levels[i] + 1));
        levels[s] = level;
    }
    levels
}

/// Calls `f` with each fan-in signal index of `source` (none for
/// inputs).
pub(crate) fn for_each_fanin_of(source: SignalSource<'_>, f: &mut impl FnMut(usize)) {
    match source {
        SignalSource::Input => {}
        SignalSource::Gate { inputs, .. } => {
            for i in inputs {
                f(i.index());
            }
        }
        SignalSource::TwoInputChannelGate { inputs, .. } => {
            for i in inputs {
                f(i.index());
            }
        }
    }
}

/// The arena-level shortcut for a gate, if any: a channel-less unary
/// gate is a pure span duplicate (`TraceArena::push_duplicate` — in the
/// SoA layout logical NOT is an initial-value flip, so no staging round
/// trip is needed). Returns the source signal and whether to invert.
///
/// Both engines consult this **one** predicate before falling back to
/// [`eval_signal_into`], so the fast-path decision (which gates qualify,
/// and the invert flag) cannot silently diverge between them.
pub(crate) fn duplicate_shortcut(source: &SignalSource<'_>) -> Option<(SignalId, bool)> {
    match source {
        SignalSource::Gate {
            kind,
            inputs,
            channel: None,
        } if kind.func2().is_none() => Some((inputs[0], matches!(kind, GateKind::Not))),
        _ => None,
    }
}

/// Evaluates one non-input signal through the fused ideal-gate + channel
/// kernels, writing the result into `out` (using `scratch` for the
/// fused binary-gate pass and `batch` for the two-input channels'
/// pre-merged event list). Fan-in traces are obtained through
/// `resolve`, so the caller decides where sealed traces live — the
/// serial engine resolves into its single arena, each parallel worker
/// into its own. (Callers normally peel off [`duplicate_shortcut`]
/// gates first; the channel-less unary arm below remains as the general
/// fallback so the kernel is total over non-input sources.)
///
/// Channel applications record into `stats` through the probed trait
/// entry points; unprobed engines pass the
/// [`ChannelCounters::disabled`] sink, which the probed paths treat as
/// a branch-only no-op, so there is still exactly **one** kernel for
/// every engine and both probe modes.
///
/// # Errors
///
/// Propagates channel failures.
///
/// # Panics
///
/// Panics when `source` is [`SignalSource::Input`] — inputs are sealed
/// by the engines before any gate evaluation.
pub(crate) fn eval_signal_into<'a, F>(
    source: SignalSource<'_>,
    resolve: F,
    out: &mut EdgeBuf,
    scratch: &mut EdgeBuf,
    batch: &mut EventBatch,
    stats: &ChannelCounters,
) -> Result<(), SimError>
where
    F: Fn(SignalId) -> TraceRef<'a>,
{
    match source {
        SignalSource::Input => unreachable!("inputs are sealed before gate evaluation"),
        SignalSource::Gate {
            kind,
            inputs,
            channel,
        } => match kind.func2() {
            None => {
                let mut view = resolve(inputs[0]);
                if matches!(kind, GateKind::Not) {
                    view = view.inverted();
                }
                match channel {
                    None => {
                        out.copy_ref(view);
                        Ok(())
                    }
                    Some(ch) => ch.apply_into_probed(view, out, stats),
                }
            }
            Some(f) => {
                let va = resolve(inputs[0]);
                let vb = resolve(inputs[1]);
                match channel {
                    None => gates::combine2_into(f, va, vb, out),
                    Some(ch) => {
                        gates::combine2_into(f, va, vb, scratch)?;
                        ch.apply_into_probed(scratch.as_ref(), out, stats)
                    }
                }
            }
        },
        SignalSource::TwoInputChannelGate { inputs, channel } => {
            let va = resolve(inputs[0]);
            let vb = resolve(inputs[1]);
            channel.apply2_batched_into_probed(va, vb, batch, out, stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_digital::SimError;

    #[test]
    fn index_width_boundary() {
        assert!(check_index_width(0).is_ok());
        assert!(check_index_width(u32::MAX as usize).is_ok());
        let err = check_index_width(u32::MAX as usize + 1).unwrap_err();
        match err {
            SimError::NetworkTooLarge { count, max } => {
                assert_eq!(count, u32::MAX as usize + 1);
                assert_eq!(max, u32::MAX as usize);
            }
            other => panic!("expected NetworkTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn csr_rows_and_sinks() {
        use mis_digital::{GateKind, Network};
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let y = net.add_gate("y", GateKind::Nor, &[a, b], None).unwrap();
        let _z = net.add_gate("z", GateKind::Not, &[a], None).unwrap();
        let csr = FanoutCsr::build(&net).unwrap();
        let row = |s: usize| &csr.targets[csr.start[s] as usize..csr.start[s + 1] as usize];
        assert_eq!(row(a.index()), &[y.index() as u32, 3]);
        assert_eq!(row(b.index()), &[y.index() as u32]);
        assert!(csr.is_sink(y.index()));
        assert!(csr.is_sink(3));
        assert!(!csr.is_sink(a.index()));
        assert_eq!(csr.indeg, vec![0, 0, 2, 1]);
    }

    #[test]
    fn levels_are_one_plus_max_fanin() {
        use mis_digital::{GateKind, Network};
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let y = net.add_gate("y", GateKind::Nor, &[a, b], None).unwrap();
        let z = net.add_gate("z", GateKind::Not, &[y], None).unwrap();
        // A gate fed by signals on different levels sits one above the
        // *deeper* fan-in.
        let w = net.add_gate("w", GateKind::Nand, &[a, z], None).unwrap();
        let table = levels(&net);
        assert_eq!(table[a.index()], 0);
        assert_eq!(table[b.index()], 0);
        assert_eq!(table[y.index()], 1);
        assert_eq!(table[z.index()], 2);
        assert_eq!(table[w.index()], 3);
    }
}
