//! Parallel per-cone netlist evaluation — the first multi-threaded layer
//! of the workspace.
//!
//! [`ParallelSimulator`] partitions a netlist into **sink fan-in cones**:
//! the transitive fan-in of every sink signal (a signal driving no gate —
//! primary outputs and dead ends alike; acyclicity means every signal
//! reaches at least one sink, so the cones cover the whole network). The
//! cones are distributed over a fixed number of workers by a
//! deterministic greedy packer that minimizes each worker's cone *union*,
//! and each worker then evaluates its union **independently, bottom-up,
//! in signal-index order** — a topological order by the [`Network`]
//! builder's reference-before-use invariant.
//!
//! The scheme trades redundancy for isolation: cones overlap, so shared
//! logic is re-evaluated by every worker whose union contains it, but in
//! exchange a worker needs *nothing* from any other worker — no locks,
//! no level barriers, no cross-thread trace reads. Each worker owns its
//! own [`TraceArena`] (and span map), which is what makes the aliasing
//! story trivially sound under `forbid(unsafe_code)`: mutable state is
//! moved into exactly one scoped `std::thread` worker, immutable state
//! (the network, its `Send + Sync` channels, the input traces) is shared
//! by reference.
//!
//! **Determinism and bit-identity.** After the scoped workers join, the
//! coordinator merges results into the caller's arena **by ascending
//! signal index**, taking each signal from its fixed owner worker
//! (assigned at construction). Every per-gate evaluation runs the same
//! shared kernel as the serial engines on the same fan-in traces, so by
//! induction over the topological order every worker that evaluates a
//! signal produces the same trace — overlap is redundant, never
//! divergent — and the merged result is bit-identical to
//! [`crate::Simulator::run`] regardless of worker count or thread
//! interleaving (property-tested in `crates/sim/tests/proptests.rs`).
//!
//! # Examples
//!
//! ```
//! use mis_digital::{GateKind, InertialChannel, Network};
//! use mis_sim::{ParallelSimulator, Simulator};
//! use mis_waveform::{units::ps, DigitalTrace};
//!
//! # fn main() -> Result<(), mis_digital::SimError> {
//! let mut net = Network::new();
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let ch = || Box::new(InertialChannel::symmetric(ps(30.0), ps(30.0)).unwrap());
//! let y = net.add_gate("y", GateKind::Nor, &[a, b], Some(ch()))?;
//! let z = net.add_gate("z", GateKind::Not, &[a], Some(ch()))?;
//! let ta = DigitalTrace::with_edges(false, vec![(ps(100.0), true)])?;
//! let tb = DigitalTrace::constant(false);
//! let mut par = ParallelSimulator::new(&net, 2)?;
//! let got = par.run(&[ta.clone(), tb.clone()])?;
//! let want = Simulator::new(&net)?.run(&[ta, tb])?;
//! assert_eq!(got, want);
//! # Ok(())
//! # }
//! ```

use mis_digital::{ChannelCounters, EventBatch, Network, SignalId, SignalSource, SimError};
use mis_probe::{Gauge, Probe, SpanTimer, TraceSink};
use mis_waveform::{DigitalTrace, TraceArena, TraceRef};

use crate::budget::{BudgetMeter, RunBudget};
use crate::kernel::{self, FanoutCsr};
use crate::overlay::{rewrite_span, TraceOverlay};
use crate::probe::SimTracer;

/// A fixed-size bit set over signal indices — the working representation
/// of fan-in cones and worker unions during partitioning.
#[derive(Debug, Clone)]
struct SignalSet {
    words: Vec<u64>,
}

impl SignalSet {
    fn new(signals: usize) -> Self {
        SignalSet {
            words: vec![0; signals.div_ceil(64)],
        }
    }

    fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sets bit `i`; returns whether it was newly set.
    fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// How many bits `other` would add to `self`.
    fn growth(&self, other: &SignalSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (b & !a).count_ones() as usize)
            .sum()
    }

    fn union_with(&mut self, other: &SignalSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// Calls `f` with each fan-in signal index of `s`.
fn for_each_fanin(net: &Network, s: usize, f: &mut impl FnMut(usize)) {
    let id = net.signal_id(s).expect("s < signal_count");
    match net.source(id) {
        SignalSource::Input => {}
        SignalSource::Gate { inputs, .. } => {
            for i in inputs {
                f(i.index());
            }
        }
        SignalSource::TwoInputChannelGate { inputs, .. } => {
            for i in inputs {
                f(i.index());
            }
        }
    }
}

/// Computes the transitive fan-in cone of `root` (root included) into
/// the reusable `cone` set (cleared first), returning its size. Taking
/// the set by `&mut` keeps partitioning at **one** live cone at a time
/// — peak construction memory is O(workers × signals), not
/// O(sinks × signals), which matters at the `u32::MAX`-signal scale the
/// engines otherwise admit.
fn cone_into(net: &Network, root: usize, cone: &mut SignalSet, stack: &mut Vec<usize>) -> usize {
    cone.clear();
    stack.clear();
    stack.push(root);
    cone.insert(root);
    let mut size = 1usize;
    while let Some(s) = stack.pop() {
        for_each_fanin(net, s, &mut |i| {
            if cone.insert(i) {
                size += 1;
                stack.push(i);
            }
        });
    }
    size
}

/// One worker's private evaluation state: its assigned signal set (a
/// union of sink cones, ascending — a topological order), its own arena,
/// and its own span map. Nothing here is ever touched by another thread.
#[derive(Debug)]
struct Worker {
    /// Signals this worker evaluates, ascending.
    signals: Vec<u32>,
    /// Arena span per evaluated signal (entries outside `signals` stale).
    span_of: Vec<u32>,
    /// Worker-owned trace storage, reused run to run.
    arena: TraceArena,
    /// Partition size, published as the `par.w<i>.load` gauge — the
    /// registry is the source of truth [`ParallelSimulator::worker_loads`]
    /// reads back (gauge *sets* store even on a disabled probe).
    load: Gauge,
    /// Per-run busy span, `par.w<i>.busy`.
    busy: SpanTimer,
    /// Channel-event sink for this worker's kernel calls (all workers
    /// share the one `chan.*` cell set; counters are cumulative).
    chan: ChannelCounters,
    /// Warm merged-event scratch for batched two-input channel
    /// evaluation, private to this worker like the arena.
    batch: EventBatch,
    /// Timeline recorder on this worker's `par.w<i>` trace track —
    /// disabled unless the engine came from
    /// [`ParallelSimulator::new_traced`].
    tracer: SimTracer,
}

impl Worker {
    /// Evaluates this worker's signal set bottom-up into its own arena.
    /// Cone-closure guarantees every fan-in of an assigned signal is
    /// assigned too, so all reads hit this worker's already-sealed spans.
    ///
    /// Each worker meters the gates *it* evaluates against its own
    /// [`BudgetMeter`] over the shared budget. A worker's gate set is a
    /// subset of the network's, so any budget the serial engine fits is
    /// fit here too (see the budget module docs on monotonicity); the
    /// accounting is deterministic because the signal sets are fixed at
    /// construction.
    fn evaluate(
        &mut self,
        net: &Network,
        inputs: &[DigitalTrace],
        budget: &RunBudget,
        overlay: Option<&dyn TraceOverlay>,
    ) -> Result<(), SimError> {
        let started = self.busy.start();
        let busy_started = self.tracer.start();
        let result = self.evaluate_inner(net, inputs, budget, overlay);
        self.tracer.busy_span(busy_started);
        self.busy.stop(started);
        result
    }

    fn evaluate_inner(
        &mut self,
        net: &Network,
        inputs: &[DigitalTrace],
        budget: &RunBudget,
        overlay: Option<&dyn TraceOverlay>,
    ) -> Result<(), SimError> {
        let mut meter = BudgetMeter::start(budget);
        self.arena.reset();
        for &s in &self.signals {
            let s = s as usize;
            let id = net.signal_id(s).expect("s < signal_count");
            let source = net.source(id);
            let is_input = matches!(source, SignalSource::Input);
            let gate_started = if is_input { None } else { self.tracer.start() };
            let mut span = if is_input {
                self.arena.push_trace(&inputs[s])
            } else if let Some((src, invert)) = kernel::duplicate_shortcut(&source) {
                // Channel-less unary gate: a span copy in the flat
                // array, the same fast path as the serial engine (one
                // shared predicate decides it for both).
                self.tracer.guard(meter.on_event())?;
                self.arena
                    .push_duplicate(self.span_of[src.index()] as usize, invert)
            } else {
                self.tracer.guard(meter.on_event())?;
                let span_of = &self.span_of;
                let chan = &self.chan;
                let batch = &mut self.batch;
                let (sealed, out, scratch) = self.arena.stage();
                kernel::eval_signal_into(
                    source,
                    |sid| sealed.trace(span_of[sid.index()] as usize),
                    out,
                    scratch,
                    batch,
                    chan,
                )?;
                self.arena.seal_out()
            };
            if let Some(ov) = overlay {
                if ov.rewrites(id) {
                    span = rewrite_span(&mut self.arena, span, id, ov)?;
                }
            }
            if is_input {
                if self.tracer.is_enabled() {
                    self.tracer
                        .seal(s as u32, self.arena.trace(span).len() as u32);
                }
            } else {
                let edges = self.arena.trace(span).len() as u64;
                self.tracer.gate_span(gate_started, s as u32, edges as u32);
                self.tracer.guard(meter.on_edges(edges))?;
            }
            // Lossless: construction checked the signal count fits u32,
            // and a worker seals at most one span per signal per run.
            self.span_of[s] = span as u32;
        }
        Ok(())
    }
}

/// A parallel per-cone evaluator over a borrowed [`Network`] — see the
/// module docs for the partitioning scheme and the determinism argument.
///
/// Construction performs the whole partition (cones, greedy packing,
/// owner table); each [`ParallelSimulator::run_in`] then only spawns the
/// scoped workers and merges. Worker arenas persist across runs, so a
/// warm worker evaluates allocation-free — the per-run allocations are
/// the thread spawns themselves.
#[derive(Debug)]
pub struct ParallelSimulator<'n> {
    net: &'n Network,
    workers: Vec<Worker>,
    /// For each signal, the index of the worker whose arena the merge
    /// reads it from (the lowest-indexed worker that evaluates it).
    owner: Vec<u32>,
    /// Total assigned signals (`par.assigned_signals` gauge): the
    /// registry value [`ParallelSimulator::replication_factor`] reads.
    assigned: Gauge,
    /// Span of the signal-order merge, `par.merge`.
    merge: SpanTimer,
    /// Timeline recorder on the coordinator's `par` trace track (run +
    /// merge spans) — disabled unless built by
    /// [`ParallelSimulator::new_traced`].
    tracer: SimTracer,
}

impl<'n> ParallelSimulator<'n> {
    /// Partitions `net` into cone unions for `workers` workers.
    ///
    /// Sinks are packed greedily, largest cone first, each onto the
    /// worker whose union grows least (ties to the lower worker index) —
    /// deterministic, and within a few percent of balanced on the ISCAS
    /// fixtures. Workers left without any cone stay empty and are never
    /// spawned.
    ///
    /// # Errors
    ///
    /// * [`SimError::Network`] — `workers` is zero.
    /// * [`SimError::NetworkTooLarge`] — the network exceeds the `u32`
    ///   index width (same check as [`crate::Simulator::new`]).
    pub fn new(net: &'n Network, workers: usize) -> Result<Self, SimError> {
        Self::new_probed(net, workers, &Probe::disabled())
    }

    /// [`ParallelSimulator::new`] with metrics recording into `probe`:
    /// per-worker `par.w<i>.load` gauges and `par.w<i>.busy` span
    /// timers, the `par.assigned_signals` replication gauge, the
    /// `par.merge` merge span, and the shared `chan.*` channel
    /// counters. The load and replication gauges are *set* at
    /// construction, so [`ParallelSimulator::worker_loads`] and
    /// [`ParallelSimulator::replication_factor`] read through the
    /// registry even on a disabled probe.
    ///
    /// # Errors
    ///
    /// As [`ParallelSimulator::new`].
    pub fn new_probed(net: &'n Network, workers: usize, probe: &Probe) -> Result<Self, SimError> {
        Self::build(net, workers, probe, &TraceSink::disabled())
    }

    /// [`ParallelSimulator::new_probed`] plus timeline recording into
    /// `sink`: one `par.w<i>` trace track per worker (busy spans,
    /// per-gate spans, input seals, budget instants) and a `par` track
    /// for the coordinator's run and merge spans — the one-row-per-worker
    /// timeline. Identical evaluation semantics; traced warm runs stay
    /// allocation-free (preallocated rings only).
    ///
    /// # Errors
    ///
    /// As [`ParallelSimulator::new`].
    pub fn new_traced(
        net: &'n Network,
        workers: usize,
        probe: &Probe,
        sink: &TraceSink,
    ) -> Result<Self, SimError> {
        Self::build(net, workers, probe, sink)
    }

    fn build(
        net: &'n Network,
        workers: usize,
        probe: &Probe,
        sink: &TraceSink,
    ) -> Result<Self, SimError> {
        if workers == 0 {
            return Err(SimError::Network {
                reason: "parallel evaluation needs at least one worker".into(),
            });
        }
        let n = net.signal_count();
        let csr = FanoutCsr::build(net)?;
        // Pass 1: cone sizes only (one reusable scratch set), to fix the
        // packing order — largest cone first, ties ascending sink index.
        let mut scratch = SignalSet::new(n);
        let mut stack = Vec::new();
        let mut sinks: Vec<(usize, usize)> = (0..n)
            .filter(|&s| csr.is_sink(s))
            .map(|s| (s, cone_into(net, s, &mut scratch, &mut stack)))
            .collect();
        sinks.sort_by_key(|&(s, size)| (std::cmp::Reverse(size), s));
        // Pass 2: greedy packing, recomputing each cone into the same
        // scratch set right before it is placed.
        let mut unions: Vec<SignalSet> = (0..workers).map(|_| SignalSet::new(n)).collect();
        let mut sizes = vec![0usize; workers];
        for &(s, _) in &sinks {
            cone_into(net, s, &mut scratch, &mut stack);
            let best = (0..workers)
                .min_by_key(|&w| sizes[w] + unions[w].growth(&scratch))
                .expect("at least one worker");
            unions[best].union_with(&scratch);
            sizes[best] = unions[best].count();
        }
        let mut owner = vec![u32::MAX; n];
        let chan = ChannelCounters::register(probe);
        let workers: Vec<Worker> = unions
            .iter()
            .enumerate()
            .map(|(w, set)| {
                let signals: Vec<u32> = (0..n)
                    .filter(|&s| set.contains(s))
                    .map(|s| {
                        if owner[s] == u32::MAX {
                            owner[s] = w as u32;
                        }
                        s as u32
                    })
                    .collect();
                let load = probe.gauge(&format!("par.w{w}.load"));
                load.set(signals.len() as u64);
                Worker {
                    busy: probe.timer(&format!("par.w{w}.busy")),
                    load,
                    chan: chan.clone(),
                    tracer: SimTracer::register_worker(sink, "par", w as u32),
                    signals,
                    span_of: vec![0; n],
                    arena: TraceArena::new(),
                    batch: EventBatch::new(),
                }
            })
            .collect();
        debug_assert!(
            owner.iter().all(|&w| w != u32::MAX),
            "sink cones must cover every signal"
        );
        let assigned = probe.gauge("par.assigned_signals");
        assigned.set(workers.iter().map(|w| w.signals.len() as u64).sum());
        Ok(ParallelSimulator {
            net,
            workers,
            owner,
            assigned,
            merge: probe.timer("par.merge"),
            tracer: SimTracer::register(sink, "par"),
        })
    }

    /// The network under simulation.
    #[must_use]
    pub fn network(&self) -> &'n Network {
        self.net
    }

    /// Number of workers (including any left empty by the partition).
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Signals assigned to each worker — the partition's load picture.
    /// The sum exceeds the signal count by the cone-overlap redundancy.
    ///
    /// A thin view over the `par.w<i>.load` registry gauges (set once
    /// at construction), so a profile report and this accessor can
    /// never disagree.
    #[must_use]
    pub fn worker_loads(&self) -> Vec<usize> {
        self.workers
            .iter()
            .map(|w| w.load.value() as usize)
            .collect()
    }

    /// Total assigned signals divided by the signal count: 1.0 means no
    /// redundant work, W means every worker evaluates everything.
    ///
    /// Reads the `par.assigned_signals` registry gauge — same
    /// source-of-truth argument as [`ParallelSimulator::worker_loads`].
    #[must_use]
    pub fn replication_factor(&self) -> f64 {
        self.assigned.value() as f64 / self.net.signal_count().max(1) as f64
    }

    /// Evaluates the network into `arena`: scoped workers evaluate their
    /// cone unions concurrently (worker 0 on the calling thread), then
    /// the results are merged **by ascending signal index** — so unlike
    /// the serial engine's schedule-order spans, span `i` always holds
    /// signal `i`'s trace.
    ///
    /// # Errors
    ///
    /// * [`SimError::Network`] — wrong number of input traces.
    /// * Propagates channel failures (the lowest-indexed failing
    ///   worker's error, deterministically).
    pub fn run_in(
        &mut self,
        inputs: &[DigitalTrace],
        arena: &mut TraceArena,
    ) -> Result<(), SimError> {
        self.run_controlled_in(inputs, arena, &RunBudget::UNLIMITED, None)
    }

    /// [`ParallelSimulator::run_in`] under a [`RunBudget`]: each worker
    /// meters its own gate evaluations against the budget (see the
    /// budget module docs — per-worker accounting is monotone with the
    /// serial engine's), and a tripped run returns
    /// [`SimError::BudgetExceeded`] instead of doing unbounded work.
    ///
    /// # Errors
    ///
    /// * [`SimError::BudgetExceeded`] — a worker's budget tripped (the
    ///   lowest-indexed failing worker's error, deterministically).
    /// * As [`ParallelSimulator::run_in`].
    pub fn run_budgeted_in(
        &mut self,
        inputs: &[DigitalTrace],
        arena: &mut TraceArena,
        budget: &RunBudget,
    ) -> Result<(), SimError> {
        self.run_controlled_in(inputs, arena, budget, None)
    }

    /// The fully general run: a [`RunBudget`] plus an optional
    /// [`TraceOverlay`] shared by reference across the scoped workers —
    /// bit-identical to [`crate::Simulator::run_controlled_in`] under
    /// the same budget-free inputs, because every worker applies the
    /// same pure rewrite at the same sealed-span boundary.
    ///
    /// # Errors
    ///
    /// * [`SimError::BudgetExceeded`] — a worker's budget tripped.
    /// * Propagates overlay rewrite failures.
    /// * As [`ParallelSimulator::run_in`].
    pub fn run_controlled_in(
        &mut self,
        inputs: &[DigitalTrace],
        arena: &mut TraceArena,
        budget: &RunBudget,
        overlay: Option<&dyn TraceOverlay>,
    ) -> Result<(), SimError> {
        if inputs.len() != self.net.input_count() {
            return Err(SimError::Network {
                reason: format!(
                    "expected {} input traces, got {}",
                    self.net.input_count(),
                    inputs.len()
                ),
            });
        }
        let run_started = self.tracer.start();
        let net = self.net;
        let (first, rest) = self
            .workers
            .split_first_mut()
            .expect("construction guarantees at least one worker");
        std::thread::scope(|scope| -> Result<(), SimError> {
            let handles: Vec<_> = rest
                .iter_mut()
                .filter(|w| !w.signals.is_empty())
                .map(|w| scope.spawn(move || w.evaluate(net, inputs, budget, overlay)))
                .collect();
            let mut result = first.evaluate(net, inputs, budget, overlay);
            for h in handles {
                let r = h
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
                if result.is_ok() {
                    result = r;
                }
            }
            result
        })?;
        let merge_started = self.merge.start();
        let merge_trace_started = self.tracer.start();
        arena.reset();
        for s in 0..net.signal_count() {
            let w = &self.workers[self.owner[s] as usize];
            arena.push_view(w.arena.trace(w.span_of[s] as usize));
        }
        self.tracer.merge_span(merge_trace_started);
        self.merge.stop(merge_started);
        self.tracer.run_span(run_started);
        Ok(())
    }

    /// The allocating compatibility wrapper: one owned trace per signal
    /// in signal order, bit-identical to [`crate::Simulator::run`].
    ///
    /// # Errors
    ///
    /// As [`ParallelSimulator::run_in`].
    pub fn run(&mut self, inputs: &[DigitalTrace]) -> Result<Vec<DigitalTrace>, SimError> {
        let mut arena = TraceArena::new();
        self.run_in(inputs, &mut arena)?;
        Ok((0..self.net.signal_count())
            .map(|s| arena.to_trace(s))
            .collect())
    }

    /// The arena span index of signal `id` after a
    /// [`ParallelSimulator::run_in`] — always `id.index()`, by the
    /// signal-order merge.
    #[must_use]
    pub fn span(&self, id: SignalId) -> usize {
        id.index()
    }

    /// Convenience: the view of signal `id`'s trace inside `arena`
    /// (valid after a [`ParallelSimulator::run_in`] into that arena).
    ///
    /// # Panics
    ///
    /// Panics for a foreign [`SignalId`] or a mismatched arena.
    #[must_use]
    pub fn trace<'a>(&self, arena: &'a TraceArena, id: SignalId) -> TraceRef<'a> {
        arena.trace(self.span(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_digital::{GateKind, InertialChannel};
    use mis_waveform::units::ps;

    fn two_cone_net() -> (Network, SignalId, SignalId) {
        // Two disjoint cones: y = NOR(a, b) and z = NOT(c).
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let ch = || {
            Box::new(InertialChannel::symmetric(ps(30.0), ps(25.0)).unwrap())
                as Box<dyn mis_digital::TraceTransform>
        };
        let y = net
            .add_gate("y", GateKind::Nor, &[a, b], Some(ch()))
            .unwrap();
        let z = net.add_gate("z", GateKind::Not, &[c], Some(ch())).unwrap();
        (net, y, z)
    }

    fn pulse(t0: f64, t1: f64) -> DigitalTrace {
        DigitalTrace::with_edges(false, vec![(t0, true), (t1, false)]).unwrap()
    }

    #[test]
    fn disjoint_cones_split_across_workers() {
        let (net, _, _) = two_cone_net();
        let par = ParallelSimulator::new(&net, 2).unwrap();
        let loads = par.worker_loads();
        assert_eq!(loads.len(), 2);
        // Cones {a, b, y} and {c, z} are disjoint: no replication.
        assert_eq!(loads.iter().sum::<usize>(), net.signal_count());
        assert!((par.replication_factor() - 1.0).abs() < 1e-12);
        assert!(loads.iter().all(|&l| l > 0));
    }

    #[test]
    fn matches_serial_engine_at_every_worker_count() {
        let (net, y, z) = two_cone_net();
        let inputs = vec![
            pulse(ps(100.0), ps(400.0)),
            pulse(ps(250.0), ps(600.0)),
            pulse(ps(90.0), ps(115.0)),
        ];
        let want = crate::Simulator::new(&net).unwrap().run(&inputs).unwrap();
        for workers in 1..=4 {
            let mut par = ParallelSimulator::new(&net, workers).unwrap();
            let got = par.run(&inputs).unwrap();
            assert_eq!(got, want, "{workers} workers");
            // The span contract: signal-order spans, reusable arena.
            let mut arena = TraceArena::new();
            par.run_in(&inputs, &mut arena).unwrap();
            par.run_in(&inputs, &mut arena).unwrap();
            assert_eq!(par.trace(&arena, y).to_trace(), want[y.index()]);
            assert_eq!(par.trace(&arena, z).to_trace(), want[z.index()]);
        }
    }

    #[test]
    fn zero_workers_is_an_error() {
        let (net, _, _) = two_cone_net();
        assert!(matches!(
            ParallelSimulator::new(&net, 0),
            Err(SimError::Network { .. })
        ));
    }

    #[test]
    fn input_count_is_validated() {
        let (net, _, _) = two_cone_net();
        let mut par = ParallelSimulator::new(&net, 2).unwrap();
        assert!(par.run(&[]).is_err());
    }

    #[test]
    fn probed_partition_publishes_loads_and_spans_through_the_registry() {
        use mis_probe::{MetricValue, Probe};
        let (net, _, _) = two_cone_net();
        let probe = Probe::new();
        let mut par = ParallelSimulator::new_probed(&net, 2, &probe).unwrap();
        let report = probe.report();
        // The accessors are views over the same registry cells.
        let loads = par.worker_loads();
        for (i, &load) in loads.iter().enumerate() {
            assert_eq!(
                report.get(&format!("par.w{i}.load")).unwrap().scalar(),
                Some(load as u64)
            );
        }
        assert_eq!(
            report.get("par.assigned_signals").unwrap().scalar(),
            Some(loads.iter().sum::<usize>() as u64)
        );
        // Busy/merge spans record once the engine runs.
        let inputs = vec![
            pulse(ps(100.0), ps(400.0)),
            pulse(ps(250.0), ps(600.0)),
            pulse(ps(90.0), ps(115.0)),
        ];
        par.run(&inputs).unwrap();
        let report = probe.report();
        match report.get("par.merge").unwrap() {
            MetricValue::Timer { count, .. } => assert_eq!(*count, 1),
            other => panic!("par.merge should be a timer, got {other:?}"),
        }
        match report.get("par.w0.busy").unwrap() {
            MetricValue::Timer { count, .. } => assert_eq!(*count, 1),
            other => panic!("par.w0.busy should be a timer, got {other:?}"),
        }
    }

    #[test]
    fn traced_engine_records_one_track_per_worker() {
        use mis_probe::{EventKind, Probe, TraceSink};
        let (net, y, z) = two_cone_net();
        let inputs = vec![
            pulse(ps(100.0), ps(400.0)),
            pulse(ps(250.0), ps(600.0)),
            pulse(ps(90.0), ps(115.0)),
        ];
        let probe = Probe::new();
        let sink = TraceSink::new();
        let mut par = ParallelSimulator::new_traced(&net, 2, &probe, &sink).unwrap();
        let got = par.run(&inputs).unwrap();
        let want = crate::Simulator::new(&net).unwrap().run(&inputs).unwrap();
        assert_eq!(got, want, "tracing must not disturb the results");
        assert_eq!(got[y.index()], want[y.index()]);
        assert_eq!(got[z.index()], want[z.index()]);
        let snap = sink.snapshot();
        // The coordinator track seals a run and a merge span; each
        // worker track seals a busy span and its gate spans.
        let par_track = snap.track("par").unwrap();
        assert!(par_track.events.iter().any(|e| e.kind == EventKind::Run));
        assert!(par_track.events.iter().any(|e| e.kind == EventKind::Merge));
        for w in 0..2u32 {
            let track = snap.track(&format!("par.w{w}")).unwrap();
            let busy = track
                .events
                .iter()
                .find(|e| e.kind == EventKind::Busy)
                .expect("busy span per worker");
            assert_eq!(busy.a, w);
            assert!(track.events.iter().any(|e| e.kind == EventKind::Gate));
        }
    }

    #[test]
    fn more_workers_than_sinks_leaves_spares_empty() {
        let (net, _, _) = two_cone_net();
        let mut par = ParallelSimulator::new(&net, 8).unwrap();
        let loads = par.worker_loads();
        assert_eq!(loads.iter().filter(|&&l| l > 0).count(), 2);
        let inputs = vec![
            pulse(ps(100.0), ps(400.0)),
            DigitalTrace::constant(false),
            DigitalTrace::constant(true),
        ];
        let want = crate::Simulator::new(&net).unwrap().run(&inputs).unwrap();
        assert_eq!(par.run(&inputs).unwrap(), want);
    }
}
