//! **mis-sim** — event-driven netlist simulation over real circuits: the
//! layer that takes the workspace from "one gate, one channel" to "a
//! whole ISCAS benchmark through one engine".
//!
//! The paper validates its hybrid channel *inside* a timing simulator,
//! where shared event-queue overhead — not per-channel kernel cost —
//! dominates; the follow-up paper (Ferdowsi et al., 2024) evaluates on
//! interconnected circuits outright. This crate supplies that missing
//! granularity in four pieces:
//!
//! * [`mod@bench`] — an ISCAS-85 `.bench` parser/writer and its lowering
//!   onto the [`mis_digital::Network`] builder (topological ordering of
//!   forward references, balanced zero-time reduction of wide fan-ins,
//!   one timed cell per `.bench` gate). Committed fixtures for C17 and
//!   a C432-scale circuit live under `data/bench/`.
//! * [`cells`] — [`CellLibrary`], the standard-cell view of the delay
//!   models: one `Arc`-shared cached-hybrid table set per cell type
//!   (NAND through the free view-inversion duality) plus an inertial
//!   fallback for the non-hybrid gate kinds.
//! * [`engine`] — [`Simulator`], the event-queue evaluator: dependency
//!   counting plus a time-ordered ready queue over the same fused
//!   arena kernels as `Network::run_in`, bit-identical to the levelized
//!   sweep and allocation-free on a warm arena.
//! * [`parallel`] — [`ParallelSimulator`], per-cone evaluation on a
//!   scoped `std::thread` worker pool: sink fan-in cones packed onto
//!   workers that each own their [`mis_waveform::TraceArena`], merged
//!   deterministically by signal index — bit-identical to the serial
//!   engines at every worker count.
//! * [`wavefront`] — [`WavefrontSimulator`], level-sliced wavefront
//!   evaluation: topological fronts split into disjoint per-worker
//!   chunks (exactly-once, replication 1.0 by construction) with a
//!   per-level merge barrier and a hybrid serial tail for narrow
//!   fronts — bit-identical to the serial engine at every worker
//!   count and cutover.
//!
//! Two cross-cutting controls thread through both engines:
//! [`mod@budget`] bounds a run (events, edges, deadline) with a graceful
//! [`mis_digital::SimError::BudgetExceeded`] instead of unbounded work,
//! and [`mod@overlay`] rewrites sealed traces mid-run — the injection
//! point the `mis-fault` campaigns build on.
//!
//! # Examples
//!
//! ```
//! use mis_sim::{BenchNetlist, CellLibrary, Simulator};
//! use mis_waveform::{units::ps, DigitalTrace, TraceArena};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = BenchNetlist::parse(
//!     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)",
//! )?;
//! let lowered = nl.lower(&CellLibrary::ideal())?;
//! let mut sim = Simulator::new(&lowered.net)?;
//! let mut arena = TraceArena::new();
//! let a = DigitalTrace::with_edges(false, vec![(ps(100.0), true)])?;
//! let b = DigitalTrace::constant(false);
//! sim.run_in(&[a, b], &mut arena)?;
//! let y = sim.trace(&arena, lowered.outputs[0]);
//! assert!(y.initial_value());
//! assert_eq!(y.times(), &[ps(100.0)]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod budget;
pub mod cells;
pub mod engine;
mod error;
mod kernel;
pub mod overlay;
pub mod parallel;
pub mod probe;
pub mod wavefront;

pub use bench::{BenchFunc, BenchGate, BenchNetlist, LoweredNetlist, LoweredStats};
pub use budget::RunBudget;
pub use cells::CellLibrary;
pub use engine::Simulator;
pub use error::BenchError;
pub use kernel::ENGINE_INDEX_MAX;
pub use overlay::TraceOverlay;
pub use parallel::ParallelSimulator;
pub use probe::{SimCounters, SimTracer};
pub use wavefront::WavefrontSimulator;
