//! The event-queue netlist evaluator.
//!
//! [`mis_digital::Network::run_in`] evaluates a netlist as a *levelized
//! topological sweep*: gates run in declaration order, full stop. That is
//! exact for a feed-forward network, but it is not how timing simulators
//! schedule work — they pull the next pending activity from a
//! time-ordered event queue, which is also where their cost lives once
//! per-channel kernels are allocation-free (see `EXPERIMENTS.md`, PR 3).
//! [`Simulator`] is that engine at whole-trace granularity:
//!
//! * **Dependency counting.** Each gate waits until every fan-in signal
//!   is sealed; fan-out edges are stored in a flat CSR layout built once
//!   at construction (`crate::kernel::FanoutCsr`). Declaration order
//!   is irrelevant — any acyclic wiring evaluates, which is what
//!   `.bench` circuits (with their forward references) need.
//! * **Time-ordered ready queue.** A ready gate enters a binary min-heap
//!   keyed by its *activation time* — the earliest input edge it will
//!   see (`+∞` for all-constant inputs) — with ties broken by signal
//!   index. The pop order is the event-driven schedule; the tie-break
//!   makes it deterministic.
//! * **Identical kernels.** A popped gate is evaluated by the very same
//!   fused ideal-gate + channel passes `Network::run_in` uses
//!   (`crate::kernel::eval_signal_into`, shared with the parallel
//!   per-cone engine). Because each gate's output depends only on its
//!   already-sealed fan-in traces — never on queue order — the engine is
//!   **bit-identical** to the levelized sweep by confluence, a property
//!   the `mis-sim` suite asserts on every `mis_digital::netlists`
//!   topology and on random DAGs.
//!
//! Like the sweep, a warm run is allocation-free: the heap, the
//! dependency counters and the span map are preallocated at
//! construction, and the arena reuses its flat storage (asserted by
//! `crates/sim/tests/alloc.rs` under the counting allocator).
//!
//! # Examples
//!
//! ```
//! use mis_digital::{GateKind, InertialChannel, Network};
//! use mis_sim::Simulator;
//! use mis_waveform::{units::ps, DigitalTrace, TraceArena};
//!
//! # fn main() -> Result<(), mis_digital::SimError> {
//! let mut net = Network::new();
//! let x = net.add_input("x");
//! let ch = Box::new(InertialChannel::symmetric(ps(30.0), ps(30.0))?);
//! let y = net.add_gate("y", GateKind::Not, &[x], Some(ch))?;
//! let input = DigitalTrace::with_edges(false, vec![(ps(100.0), true)])?;
//! let mut sim = Simulator::new(&net)?;
//! let mut arena = TraceArena::new();
//! sim.run_in(&[input], &mut arena)?;
//! let out = sim.trace(&arena, y);
//! assert!((out.times()[0] - ps(130.0)).abs() < 1e-18);
//! # Ok(())
//! # }
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mis_digital::{EventBatch, Network, SignalId, SignalSource, SimError};
use mis_probe::{Probe, TraceSink};
use mis_waveform::{DigitalTrace, TraceArena, TraceRef};

use crate::budget::{BudgetMeter, RunBudget};
use crate::kernel::{self, FanoutCsr};
use crate::overlay::{rewrite_span, TraceOverlay};
use crate::probe::{census_index, SimCounters, SimTracer};

/// A gate whose fan-ins are all sealed, keyed for the ready queue.
#[derive(Debug, Clone, Copy)]
struct Ready {
    /// Earliest input edge time (`+∞` when every input is constant).
    time: f64,
    /// Signal index of the gate.
    signal: u32,
}

impl PartialEq for Ready {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Ready {}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap: reverse both keys so pops yield the
        // earliest activation, lowest signal index first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.signal.cmp(&self.signal))
    }
}

/// An event-queue evaluator over a borrowed [`Network`] — see the
/// module docs for the queue discipline and the bit-identity argument.
///
/// Construction walks the network once (fan-out CSR, dependency
/// degrees, queue capacity); each [`Simulator::run_in`] then reuses that
/// storage, so the per-run cost is the event loop itself.
#[derive(Debug)]
pub struct Simulator<'n> {
    net: &'n Network,
    /// Fan-out CSR + fan-in degrees, built once at construction.
    csr: FanoutCsr,
    /// Remaining unsealed fan-ins per signal, reset from the CSR's
    /// degrees each run.
    deps_left: Vec<u32>,
    /// Arena span holding each signal's trace, filled during a run.
    span_of: Vec<u32>,
    /// The ready queue (capacity: every signal, preallocated).
    heap: BinaryHeap<Ready>,
    /// Warm merged-event scratch for the two-input channels' batched
    /// schedule evaluation (`crate::kernel::eval_signal_into`).
    batch: EventBatch,
    /// Engine metrics — a disabled bundle for [`Simulator::new`]
    /// engines, so recording is compiled in unconditionally and the
    /// unprobed hot loop pays only local register updates.
    counters: SimCounters,
    /// Timeline recorder on the `sim` trace track — disabled unless the
    /// engine came from [`Simulator::new_traced`], same contract as
    /// `counters`.
    tracer: SimTracer,
}

impl<'n> Simulator<'n> {
    /// Prepares an engine for `net`: builds the fan-out CSR and sizes
    /// every per-run buffer.
    ///
    /// # Errors
    ///
    /// [`SimError::NetworkTooLarge`] when the network's signal or
    /// fan-out-edge count exceeds the engine's `u32` index width.
    pub fn new(net: &'n Network) -> Result<Self, SimError> {
        Self::with_instrumentation(net, SimCounters::disabled(), SimTracer::disabled())
    }

    /// [`Simulator::new`] with metrics recording into `probe`: every
    /// run updates the `sim.*` event counters, the ready-queue
    /// high-water gauge, the run span timer, the per-kind edge census,
    /// and the `chan.*` channel counters. Identical evaluation
    /// semantics; the probed engine's warm runs stay allocation-free.
    ///
    /// # Errors
    ///
    /// As [`Simulator::new`].
    pub fn new_probed(net: &'n Network, probe: &Probe) -> Result<Self, SimError> {
        Self::with_instrumentation(net, SimCounters::register(probe), SimTracer::disabled())
    }

    /// [`Simulator::new_probed`] plus timeline recording into `sink`:
    /// every run seals a `run` span, a `gate` span per ready-queue pop
    /// (signal index + output edges), a `seal` instant per input trace,
    /// and a `budget` instant when a [`RunBudget`] limit trips — all on
    /// the `sim` trace track, into the sink's preallocated ring buffer,
    /// so traced warm runs stay allocation-free. Identical evaluation
    /// semantics.
    ///
    /// # Errors
    ///
    /// As [`Simulator::new`].
    pub fn new_traced(net: &'n Network, probe: &Probe, sink: &TraceSink) -> Result<Self, SimError> {
        Self::with_instrumentation(
            net,
            SimCounters::register(probe),
            SimTracer::register(sink, "sim"),
        )
    }

    fn with_instrumentation(
        net: &'n Network,
        counters: SimCounters,
        tracer: SimTracer,
    ) -> Result<Self, SimError> {
        let n = net.signal_count();
        let csr = FanoutCsr::build(net)?;
        Ok(Simulator {
            net,
            csr,
            deps_left: vec![0; n],
            span_of: vec![0; n],
            heap: BinaryHeap::with_capacity(n),
            batch: EventBatch::new(),
            counters,
            tracer,
        })
    }

    /// The network under simulation.
    #[must_use]
    pub fn network(&self) -> &'n Network {
        self.net
    }

    /// The engine's metric bundle (disabled for [`Simulator::new`]
    /// engines).
    #[must_use]
    pub fn counters(&self) -> &SimCounters {
        &self.counters
    }

    /// Evaluates the network into `arena` through the event queue. After
    /// the run, every signal's trace sits in the arena at
    /// [`Simulator::span`] — spans are sealed in *schedule* order, which
    /// generally differs from signal order.
    ///
    /// On a warm arena (one prior run of similar edge counts) the whole
    /// evaluation performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// * [`SimError::Network`] — wrong number of input traces.
    /// * Propagates channel failures.
    pub fn run_in(
        &mut self,
        inputs: &[DigitalTrace],
        arena: &mut TraceArena,
    ) -> Result<(), SimError> {
        self.run_controlled_in(inputs, arena, &RunBudget::UNLIMITED, None)
    }

    /// [`Simulator::run_in`] under a [`RunBudget`]: the run stops with
    /// [`SimError::BudgetExceeded`] instead of doing unbounded work —
    /// see the budget module docs for the accounting semantics. A
    /// tripped run leaves the arena reusable (the next run resets it).
    ///
    /// # Errors
    ///
    /// * [`SimError::BudgetExceeded`] — a budget limit tripped.
    /// * As [`Simulator::run_in`].
    pub fn run_budgeted_in(
        &mut self,
        inputs: &[DigitalTrace],
        arena: &mut TraceArena,
        budget: &RunBudget,
    ) -> Result<(), SimError> {
        self.run_controlled_in(inputs, arena, budget, None)
    }

    /// The fully general run: a [`RunBudget`] plus an optional
    /// [`TraceOverlay`] rewriting sealed traces before downstream gates
    /// read them — the entry point `mis-fault` injects faults through.
    /// With [`RunBudget::UNLIMITED`] and no overlay this *is*
    /// [`Simulator::run_in`].
    ///
    /// # Errors
    ///
    /// * [`SimError::BudgetExceeded`] — a budget limit tripped.
    /// * Propagates overlay rewrite failures.
    /// * As [`Simulator::run_in`].
    pub fn run_controlled_in(
        &mut self,
        inputs: &[DigitalTrace],
        arena: &mut TraceArena,
        budget: &RunBudget,
        overlay: Option<&dyn TraceOverlay>,
    ) -> Result<(), SimError> {
        if inputs.len() != self.net.input_count() {
            return Err(SimError::Network {
                reason: format!(
                    "expected {} input traces, got {}",
                    self.net.input_count(),
                    inputs.len()
                ),
            });
        }
        let started = self.counters.start_run();
        let run_started = self.tracer.start();
        let mut meter = BudgetMeter::start(budget);
        arena.reset();
        self.heap.clear();
        self.deps_left.copy_from_slice(&self.csr.indeg);
        for (i, t) in inputs.iter().enumerate() {
            // One span is sealed per signal and construction verified the
            // signal count fits the index width, so the narrowing is
            // lossless.
            let mut span = arena.push_trace(t);
            if let Some(ov) = overlay {
                let id = self.net.signal_id(i).expect("i < signal_count");
                if ov.rewrites(id) {
                    span = rewrite_span(arena, span, id, ov)?;
                }
            }
            self.span_of[i] = span as u32;
            if self.tracer.is_enabled() {
                self.tracer.seal(i as u32, arena.trace(span).len() as u32);
            }
        }
        let mut sealed = inputs.len();
        for i in 0..inputs.len() {
            self.notify_fanout(i, arena);
        }
        // Event tallies stay in registers through the loop; the shared
        // counters see one flush per run (see `SimCounters`).
        let (mut pops, mut dups) = (0u64, 0u64);
        let mut heap_hw = self.heap.len();
        while let Some(Ready { signal, .. }) = self.heap.pop() {
            // `len + 1` is the queue depth just before this pop — pushes
            // only happen in `notify_fanout`, so the maximum depth is
            // always observed at a pop.
            heap_hw = heap_hw.max(self.heap.len() + 1);
            pops += 1;
            self.tracer.guard(meter.on_event())?;
            let gate_started = self.tracer.start();
            let s = signal as usize;
            dups += u64::from(self.eval(s, arena, overlay)?);
            let edges = arena.trace(self.span_of[s] as usize).len() as u64;
            self.tracer.gate_span(gate_started, signal, edges as u32);
            self.tracer.guard(meter.on_edges(edges))?;
            sealed += 1;
            self.notify_fanout(s, arena);
        }
        debug_assert_eq!(
            sealed,
            self.net.signal_count(),
            "event loop drained before every gate was evaluated"
        );
        self.counters
            .finish_run(started, pops, dups, heap_hw as u64);
        self.tracer.run_span(run_started);
        if self.counters.is_enabled() {
            self.census(arena);
        }
        Ok(())
    }

    /// The post-run per-kind edge census: one O(n) walk over the sealed
    /// spans, run only when the probe is enabled — the event loop never
    /// pays for it.
    fn census(&self, arena: &TraceArena) {
        for s in 0..self.net.signal_count() {
            let id = self.net.signal_id(s).expect("s < signal_count");
            let class = census_index(&self.net.source(id));
            let edges = arena.trace(self.span_of[s] as usize).len() as u64;
            self.counters.census(class, edges);
        }
    }

    /// The allocating compatibility wrapper: evaluates through a
    /// run-local arena and returns one owned trace per signal **in
    /// signal order**, exactly like [`Network::run`].
    ///
    /// # Errors
    ///
    /// As [`Simulator::run_in`].
    pub fn run(&mut self, inputs: &[DigitalTrace]) -> Result<Vec<DigitalTrace>, SimError> {
        let mut arena = TraceArena::new();
        self.run_in(inputs, &mut arena)?;
        Ok((0..self.net.signal_count())
            .map(|s| arena.to_trace(self.span_of[s] as usize))
            .collect())
    }

    /// The arena span index holding signal `id`'s trace (valid after a
    /// [`Simulator::run_in`]).
    ///
    /// # Panics
    ///
    /// Panics for a foreign [`SignalId`].
    #[must_use]
    pub fn span(&self, id: SignalId) -> usize {
        self.span_of[id.index()] as usize
    }

    /// Convenience: the view of signal `id`'s trace inside `arena`
    /// (valid after a [`Simulator::run_in`] into that arena).
    ///
    /// # Panics
    ///
    /// Panics for a foreign [`SignalId`] or a mismatched arena.
    #[must_use]
    pub fn trace<'a>(&self, arena: &'a TraceArena, id: SignalId) -> TraceRef<'a> {
        arena.trace(self.span(id))
    }

    /// Decrements the dependency count of every gate fed by `s`, queueing
    /// those that became ready, keyed by activation time.
    fn notify_fanout(&mut self, s: usize, arena: &TraceArena) {
        for k in self.csr.start[s]..self.csr.start[s + 1] {
            let signal = self.csr.targets[k as usize];
            let g = signal as usize;
            self.deps_left[g] -= 1;
            if self.deps_left[g] == 0 {
                let time = self.activation_time(g, arena);
                self.heap.push(Ready { time, signal });
            }
        }
    }

    /// Earliest edge time across the gate's (already sealed) fan-in
    /// traces; `+∞` when every input is constant.
    fn activation_time(&self, g: usize, arena: &TraceArena) -> f64 {
        let net = self.net;
        let id = net.signal_id(g).expect("g < signal_count");
        match net.source(id) {
            SignalSource::Input => f64::INFINITY,
            SignalSource::Gate { inputs, .. } => self.fanin_activation(inputs, arena),
            SignalSource::TwoInputChannelGate { inputs, .. } => {
                self.fanin_activation(&inputs, arena)
            }
        }
    }

    /// Earliest first-edge time across `ids`' sealed spans.
    fn fanin_activation(&self, ids: &[SignalId], arena: &TraceArena) -> f64 {
        ids.iter()
            .map(|sid| {
                arena
                    .trace(self.span_of[sid.index()] as usize)
                    .times()
                    .first()
                    .copied()
                    .unwrap_or(f64::INFINITY)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Evaluates one gate through the shared per-gate kernel
    /// ([`crate::kernel::eval_signal_into`]) and seals its output span,
    /// applying any overlay rewrite before the span is published.
    /// Returns whether the gate resolved as a duplicate-span shortcut
    /// (the run loop's duplicate tally).
    fn eval(
        &mut self,
        s: usize,
        arena: &mut TraceArena,
        overlay: Option<&dyn TraceOverlay>,
    ) -> Result<bool, SimError> {
        let net = self.net;
        let id = net.signal_id(s).expect("s < signal_count");
        let source = net.source(id);
        let (mut span, dup) = match kernel::duplicate_shortcut(&source) {
            Some((src, invert)) => (
                arena.push_duplicate(self.span_of[src.index()] as usize, invert),
                true,
            ),
            None => (self.eval_staged(source, arena)?, false),
        };
        if let Some(ov) = overlay {
            if ov.rewrites(id) {
                span = rewrite_span(arena, span, id, ov)?;
            }
        }
        // Lossless: spans per run = signal count, checked at construction.
        self.span_of[s] = span as u32;
        Ok(dup)
    }

    /// The staging-buffer path of [`Simulator::eval`]: runs the shared
    /// kernel against the sealed arena storage and seals the result.
    fn eval_staged(
        &mut self,
        source: SignalSource<'_>,
        arena: &mut TraceArena,
    ) -> Result<usize, SimError> {
        let span_of = &self.span_of;
        let batch = &mut self.batch;
        let (sealed, out, scratch) = arena.stage();
        kernel::eval_signal_into(
            source,
            |sid| sealed.trace(span_of[sid.index()] as usize),
            out,
            scratch,
            batch,
            self.counters.channels(),
        )?;
        Ok(arena.seal_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_digital::{GateKind, InertialChannel, Network, PureDelayChannel};
    use mis_waveform::units::ps;

    #[test]
    fn matches_network_run_on_a_small_circuit() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let n1 = net
            .add_gate(
                "n1",
                GateKind::Nor,
                &[a, b],
                Some(Box::new(
                    InertialChannel::symmetric(ps(40.0), ps(30.0)).unwrap(),
                )),
            )
            .unwrap();
        let n2 = net
            .add_gate(
                "n2",
                GateKind::Nand,
                &[n1, a],
                Some(Box::new(PureDelayChannel::new(ps(5.0)).unwrap())),
            )
            .unwrap();
        let ta =
            DigitalTrace::with_edges(false, vec![(ps(100.0), true), (ps(400.0), false)]).unwrap();
        let tb = DigitalTrace::with_edges(false, vec![(ps(250.0), true)]).unwrap();
        let want = net.run(&[ta.clone(), tb.clone()]).unwrap();
        let mut sim = Simulator::new(&net).unwrap();
        let got = sim.run(&[ta.clone(), tb]).unwrap();
        assert_eq!(got, want);
        // And the warm in-place path reproduces it.
        let mut arena = TraceArena::new();
        sim.run_in(
            &[
                ta,
                DigitalTrace::with_edges(false, vec![(ps(250.0), true)]).unwrap(),
            ],
            &mut arena,
        )
        .unwrap();
        assert_eq!(sim.trace(&arena, n2).to_trace(), want[n2.index()]);
        assert_eq!(sim.trace(&arena, n1).to_trace(), want[n1.index()]);
    }

    #[test]
    fn input_count_is_validated() {
        let mut net = Network::new();
        net.add_input("a");
        let mut sim = Simulator::new(&net).unwrap();
        assert!(sim.run(&[]).is_err());
    }

    #[test]
    fn probed_engine_counts_pops_gates_and_census() {
        use mis_probe::Probe;
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let nor = net
            .add_gate(
                "nor",
                GateKind::Nor,
                &[a, b],
                Some(Box::new(
                    InertialChannel::symmetric(ps(40.0), ps(30.0)).unwrap(),
                )),
            )
            .unwrap();
        // A channel-less NOT: the duplicate-span shortcut.
        net.add_gate("inv", GateKind::Not, &[nor], None).unwrap();
        let ta =
            DigitalTrace::with_edges(false, vec![(ps(100.0), true), (ps(400.0), false)]).unwrap();
        let tb = DigitalTrace::constant(false);
        let inputs = [ta, tb];

        let probe = Probe::new();
        let mut sim = Simulator::new_probed(&net, &probe).unwrap();
        let mut arena = TraceArena::new();
        sim.run_in(&inputs, &mut arena).unwrap();
        sim.run_in(&inputs, &mut arena).unwrap();

        let c = sim.counters();
        // Every non-input signal pops exactly once per run.
        assert_eq!(c.runs(), 2);
        assert_eq!(c.events_popped(), 2 * 2);
        assert_eq!(c.duplicate_spans(), 2, "one channel-less NOT per run");
        assert_eq!(c.gates_evaluated(), 2);
        assert!(c.heap_high_water() >= 1);

        // The census sees each class's output edges: `a` has 2 edges,
        // `b` none; NOR output = delayed pulse (2 edges), NOT mirrors it.
        let report = probe.report();
        assert_eq!(report.get("sim.edges.input").unwrap().scalar(), Some(2 * 2));
        assert_eq!(report.get("sim.edges.nor").unwrap().scalar(), Some(2 * 2));
        assert_eq!(report.get("sim.edges.not").unwrap().scalar(), Some(2 * 2));
        // Results are bit-identical to the unprobed engine.
        let want = Simulator::new(&net).unwrap().run(&inputs).unwrap();
        let got = sim.run(&inputs).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn traced_engine_records_the_run_timeline() {
        use mis_probe::{EventKind, Probe, TraceSink};
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        net.add_gate(
            "nor",
            GateKind::Nor,
            &[a, b],
            Some(Box::new(
                InertialChannel::symmetric(ps(40.0), ps(30.0)).unwrap(),
            )),
        )
        .unwrap();
        let ta =
            DigitalTrace::with_edges(false, vec![(ps(100.0), true), (ps(400.0), false)]).unwrap();
        let inputs = [ta, DigitalTrace::constant(false)];
        let probe = Probe::new();
        let sink = TraceSink::new();
        let mut sim = Simulator::new_traced(&net, &probe, &sink).unwrap();
        let mut arena = TraceArena::new();
        sim.run_in(&inputs, &mut arena).unwrap();
        sim.run_in(&inputs, &mut arena).unwrap();
        let snap = sink.snapshot();
        let track = snap.track("sim").unwrap();
        // Per run: two input seals, one gate span, one run span.
        let count = |k: EventKind| track.events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EventKind::Seal), 4);
        assert_eq!(count(EventKind::Gate), 2);
        assert_eq!(count(EventKind::Run), 2);
        let gate = track
            .events
            .iter()
            .find(|e| e.kind == EventKind::Gate)
            .unwrap();
        assert_eq!(gate.a, 2, "gate span carries the NOR's signal index");
        assert_eq!(gate.b, 2, "gate span carries the sealed edge count");
        // Results are bit-identical to the untraced engine.
        let want = Simulator::new(&net).unwrap().run(&inputs).unwrap();
        assert_eq!(sim.run(&inputs).unwrap(), want);
    }

    #[test]
    fn traced_engine_marks_budget_trips() {
        use mis_probe::{EventKind, Probe, TraceSink};
        let mut net = Network::new();
        let a = net.add_input("a");
        net.add_gate("y", GateKind::Not, &[a], None).unwrap();
        let probe = Probe::new();
        let sink = TraceSink::new();
        let mut sim = Simulator::new_traced(&net, &probe, &sink).unwrap();
        let mut arena = TraceArena::new();
        let budget = crate::RunBudget::UNLIMITED.with_max_events(0);
        assert!(sim
            .run_budgeted_in(&[DigitalTrace::constant(false)], &mut arena, &budget)
            .is_err());
        let snap = sink.snapshot();
        let track = snap.track("sim").unwrap();
        let trip = track
            .events
            .iter()
            .find(|e| e.kind == EventKind::Budget)
            .expect("budget instant recorded");
        assert_eq!(trip.a, 0, "events resource code");
        // The aborted run seals no run span.
        assert!(!track.events.iter().any(|e| e.kind == EventKind::Run));
    }

    #[test]
    fn unprobed_engine_carries_a_disabled_bundle() {
        let mut net = Network::new();
        let a = net.add_input("a");
        net.add_gate("y", GateKind::Not, &[a], None).unwrap();
        let mut sim = Simulator::new(&net).unwrap();
        sim.run(&[DigitalTrace::constant(false)]).unwrap();
        assert!(!sim.counters().is_enabled());
        assert_eq!(sim.counters().events_popped(), 0);
        assert_eq!(sim.counters().runs(), 0);
    }

    #[test]
    fn constant_inputs_still_evaluate_every_gate() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let y = net.add_gate("y", GateKind::Not, &[a], None).unwrap();
        let mut sim = Simulator::new(&net).unwrap();
        let got = sim.run(&[DigitalTrace::constant(true)]).unwrap();
        assert!(!got[y.index()].initial_value());
        assert_eq!(got[y.index()].transition_count(), 0);
    }

    #[test]
    fn ready_ordering_is_time_then_index() {
        let mut heap = BinaryHeap::new();
        heap.push(Ready {
            time: 5.0,
            signal: 1,
        });
        heap.push(Ready {
            time: 2.0,
            signal: 9,
        });
        heap.push(Ready {
            time: 2.0,
            signal: 3,
        });
        heap.push(Ready {
            time: f64::INFINITY,
            signal: 0,
        });
        let order: Vec<u32> = std::iter::from_fn(|| heap.pop())
            .map(|r| r.signal)
            .collect();
        assert_eq!(order, vec![3, 9, 1, 0]);
    }
}
