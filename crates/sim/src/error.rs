use std::error::Error;
use std::fmt;

use mis_digital::SimError;

/// Errors produced while parsing, validating or lowering a `.bench`
/// netlist. Every malformed-input class has its own variant so callers
/// (and the error-path tests) can tell a syntax slip from a semantic
/// violation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BenchError {
    /// A line that is neither a directive, a gate definition nor a
    /// comment — or a definition with broken call syntax.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of the violation.
        reason: String,
    },
    /// A gate definition names a function the simulator does not model
    /// (e.g. `DFF` — the engine is purely combinational).
    UnknownFunction {
        /// 1-based line number.
        line: usize,
        /// The offending function name, as written.
        name: String,
    },
    /// A function applied to the wrong number of operands (unary `NOT`/
    /// `BUFF` need exactly one input, every other function at least two).
    BadArity {
        /// 1-based line number.
        line: usize,
        /// Canonical function name.
        function: String,
        /// Operand count found.
        count: usize,
    },
    /// A signal defined twice — two gate definitions, two `INPUT`
    /// declarations, or a gate driving a declared input.
    Duplicate {
        /// 1-based line number of the second definition.
        line: usize,
        /// The redefined signal.
        name: String,
    },
    /// A referenced signal (gate operand or `OUTPUT` declaration) that no
    /// `INPUT` declaration or gate definition produces.
    Undefined {
        /// 1-based line number of the first reference (the gate or
        /// `OUTPUT` declaration naming the dangling signal).
        line: usize,
        /// The dangling signal name.
        name: String,
    },
    /// The definitions contain a combinational cycle; `name` is a signal
    /// on it.
    Cycle {
        /// 1-based line number of a gate definition on the cycle.
        line: usize,
        /// A signal participating in the cycle.
        name: String,
    },
    /// The netlist declares no primary inputs at all (an empty or
    /// comment-only file).
    Empty,
    /// Lowering onto a [`mis_digital::Network`] failed (defensive: the
    /// parser validates everything the builder checks).
    Build(SimError),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Syntax { line, reason } => {
                write!(f, "bench syntax error on line {line}: {reason}")
            }
            BenchError::UnknownFunction { line, name } => {
                write!(f, "line {line}: unknown gate function '{name}'")
            }
            BenchError::BadArity {
                line,
                function,
                count,
            } => write!(f, "line {line}: {function} applied to {count} operand(s)"),
            BenchError::Duplicate { line, name } => {
                write!(f, "line {line}: signal '{name}' defined more than once")
            }
            BenchError::Undefined { line, name } => {
                write!(
                    f,
                    "line {line}: signal '{name}' is referenced but never defined"
                )
            }
            BenchError::Cycle { line, name } => {
                write!(
                    f,
                    "line {line}: combinational cycle through signal '{name}'"
                )
            }
            BenchError::Empty => write!(f, "netlist declares no primary inputs"),
            BenchError::Build(e) => write!(f, "netlist lowering failed: {e}"),
        }
    }
}

impl Error for BenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BenchError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for BenchError {
    fn from(e: SimError) -> Self {
        BenchError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BenchError::Syntax {
            line: 3,
            reason: "missing '='".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.source().is_none());
        let e = BenchError::Build(SimError::Network { reason: "x".into() });
        assert!(e.source().is_some());
    }
}
