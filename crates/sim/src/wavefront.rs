//! The level-sliced wavefront evaluator with a hybrid serial tail.
//!
//! The per-cone engine ([`crate::ParallelSimulator`]) buys thread
//! isolation by *replicating* work: cone unions overlap, so the fleet
//! evaluates some gates several times (ISCAS C880 replicates ~1.9× at
//! four workers — see `EXPERIMENTS.md`, PR 5). [`WavefrontSimulator`]
//! removes the replication by slicing the network into **topological
//! levels** (`crate::kernel::levels`: inputs at level 0, each gate one
//! past its deepest fan-in) and evaluating each level as one parallel
//! front:
//!
//! * **Exactly-once evaluation.** A level's gates are split into
//!   contiguous per-worker chunks; every gate belongs to exactly one
//!   chunk, so the replication factor is 1.0 *by construction* (the
//!   `wave.assigned_signals` gauge equals the signal count, asserted in
//!   the suite).
//! * **Per-level merge barrier.** A gate's fan-ins all sit on strictly
//!   lower levels, so workers read *sealed* spans from the shared
//!   [`TraceArena`] immutably and write their chunk into private
//!   arenas; the coordinator then merges the chunks back in chunk order
//!   before the next level starts. The barrier is what keeps every read
//!   data-race-free without a single `unsafe` block.
//! * **Hybrid serial tail.** Level widths collapse near the outputs
//!   (the PR 9 timeline attribution measured ≤ 6 signals per level past
//!   level 15 on C432 and C880), where spawn + merge overhead dwarfs
//!   the work. Levels narrower than the *cutover* — and every level
//!   when one worker is configured — are evaluated by the coordinator
//!   straight into the shared arena, no threads, no merge.
//!
//! Gates run through the same fused kernels as every other engine
//! (`crate::kernel::eval_signal_into`), and each gate's output depends
//! only on its sealed fan-in traces, so the engine is **bit-identical**
//! to [`crate::Simulator`] at every worker count and cutover — the same
//! confluence argument as the per-cone engine, property-tested in
//! `crates/sim/tests/proptests.rs`.
//!
//! Budgets are charged against one shared `SharedBudgetMeter`: atomic
//! tallies make the totals schedule-independent, so a budget trips (or
//! fits) identically at every worker count — *exact*, not merely
//! monotone (see the budget module docs).
//!
//! # Examples
//!
//! ```
//! use mis_digital::{GateKind, InertialChannel, Network};
//! use mis_sim::{Simulator, WavefrontSimulator};
//! use mis_waveform::{units::ps, DigitalTrace};
//!
//! # fn main() -> Result<(), mis_digital::SimError> {
//! let mut net = Network::new();
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let ch = Box::new(InertialChannel::symmetric(ps(40.0), ps(30.0))?);
//! net.add_gate("y", GateKind::Nor, &[a, b], Some(ch))?;
//! let ta = DigitalTrace::with_edges(false, vec![(ps(100.0), true)])?;
//! let tb = DigitalTrace::constant(false);
//! let got = WavefrontSimulator::new(&net, 4)?.run(&[ta.clone(), tb.clone()])?;
//! let want = Simulator::new(&net)?.run(&[ta, tb])?;
//! assert_eq!(got, want);
//! # Ok(())
//! # }
//! ```

use mis_digital::{ChannelCounters, EventBatch, Network, SignalId, SimError};
use mis_probe::{Gauge, Probe, SpanTimer, TraceSink};
use mis_waveform::{DigitalTrace, TraceArena, TraceRef};

use crate::budget::{RunBudget, SharedBudgetMeter};
use crate::kernel;
use crate::overlay::{rewrite_span, TraceOverlay};
use crate::probe::{census_index, SimCounters, SimTracer};

/// Default minimum front width evaluated in parallel: the PR 9 timeline
/// attribution measured at most 6 signals per level in the late tail of
/// both C432 and C880, so fronts of 6 or fewer default to the serial
/// tail and anything wider goes to the workers.
pub const DEFAULT_CUTOVER: usize = 7;

/// Contiguous chunk `[lo, hi)` of a `width`-signal front assigned to
/// worker `w` of `workers`: balanced to within one signal, empty chunks
/// for the spare workers of a narrow front.
#[inline]
fn chunk_bounds(width: usize, workers: usize, w: usize) -> (usize, usize) {
    (w * width / workers, (w + 1) * width / workers)
}

/// One wavefront worker's private state. Unlike the per-cone engine's
/// workers, a wavefront worker owns no signal set — it is handed a
/// chunk of the current front each level and reads every fan-in from
/// the shared arena (all fan-ins are sealed by the previous barrier).
#[derive(Debug)]
struct WaveWorker {
    /// Per-level chunk storage, reset at each level.
    arena: TraceArena,
    /// Chunk-local span per evaluated signal, in chunk order — what the
    /// coordinator's merge reads back.
    spans: Vec<u32>,
    /// Static schedule load, published as the `wave.w<i>.load` gauge
    /// (gauge *sets* store even on a disabled probe, so
    /// [`WavefrontSimulator::worker_loads`] always reads through the
    /// registry).
    load: Gauge,
    /// Cumulative busy time, `wave.w<i>.busy`.
    busy: SpanTimer,
    /// Channel-event sink for this worker's kernel calls (all workers
    /// share the one `chan.*` cell set; counters are cumulative).
    chan: ChannelCounters,
    /// Warm merged-event scratch for batched two-input channel
    /// evaluation, private to this worker like the arena.
    batch: EventBatch,
    /// Timeline recorder on this worker's `par.w<i>` trace track (the
    /// established worker-track naming, shared with the per-cone
    /// engine) — disabled unless the engine came from
    /// [`WavefrontSimulator::new_traced`].
    tracer: SimTracer,
}

impl WaveWorker {
    /// Evaluates one chunk of the current front into this worker's
    /// arena, reading fan-ins from the sealed spans of `main`. Returns
    /// the chunk's `(events, duplicate_spans)` tallies for the
    /// coordinator's run flush.
    fn evaluate_level(
        &mut self,
        net: &Network,
        chunk: &[u32],
        main: &TraceArena,
        span_of: &[u32],
        meter: &SharedBudgetMeter<'_>,
        overlay: Option<&dyn TraceOverlay>,
    ) -> Result<(u64, u64), SimError> {
        let started = self.busy.start();
        let busy_started = self.tracer.start();
        let result = self.evaluate_level_inner(net, chunk, main, span_of, meter, overlay);
        self.tracer.busy_span(busy_started);
        self.busy.stop(started);
        result
    }

    fn evaluate_level_inner(
        &mut self,
        net: &Network,
        chunk: &[u32],
        main: &TraceArena,
        span_of: &[u32],
        meter: &SharedBudgetMeter<'_>,
        overlay: Option<&dyn TraceOverlay>,
    ) -> Result<(u64, u64), SimError> {
        self.arena.reset();
        self.spans.clear();
        let (mut pops, mut dups) = (0u64, 0u64);
        for &s in chunk {
            let s = s as usize;
            let id = net.signal_id(s).expect("s < signal_count");
            let source = net.source(id);
            self.tracer.guard(meter.on_event())?;
            pops += 1;
            let gate_started = self.tracer.start();
            let mut span = if let Some((src, invert)) = kernel::duplicate_shortcut(&source) {
                // The source span lives in the *shared* arena (strictly
                // lower level), so the worker copies the view instead of
                // the serial engines' same-arena span duplicate — same
                // shared predicate, same resulting trace.
                dups += 1;
                let mut view = main.trace(span_of[src.index()] as usize);
                if invert {
                    view = view.inverted();
                }
                self.arena.push_view(view)
            } else {
                let chan = &self.chan;
                let batch = &mut self.batch;
                let (_, out, scratch) = self.arena.stage();
                kernel::eval_signal_into(
                    source,
                    |sid| main.trace(span_of[sid.index()] as usize),
                    out,
                    scratch,
                    batch,
                    chan,
                )?;
                self.arena.seal_out()
            };
            if let Some(ov) = overlay {
                if ov.rewrites(id) {
                    span = rewrite_span(&mut self.arena, span, id, ov)?;
                }
            }
            let edges = self.arena.trace(span).len() as u64;
            self.tracer.gate_span(gate_started, s as u32, edges as u32);
            self.tracer.guard(meter.on_edges(edges))?;
            // Lossless: chunk spans per level ≤ signal count, checked at
            // construction.
            self.spans.push(span as u32);
        }
        Ok((pops, dups))
    }
}

/// A level-sliced wavefront evaluator over a borrowed [`Network`] — see
/// the module docs for the front/barrier discipline and the
/// exactly-once argument.
///
/// Construction levelizes the network once; each
/// [`WavefrontSimulator::run_in`] walks the levels, spawning scoped
/// workers only for fronts at least [`WavefrontSimulator::cutover`]
/// wide. Worker arenas persist across runs, and an all-serial run
/// (one worker, or every front under the cutover) is allocation-free on
/// a warm arena, exactly like the serial engine.
#[derive(Debug)]
pub struct WavefrontSimulator<'n> {
    net: &'n Network,
    /// Signal indices sorted by (level, index): level `l` occupies
    /// `order[level_start[l]..level_start[l + 1]]`.
    order: Vec<u32>,
    /// Level offsets into `order` (one entry per level plus a tail).
    level_start: Vec<u32>,
    /// Arena span holding each signal's trace, maintained run to run.
    span_of: Vec<u32>,
    workers: Vec<WaveWorker>,
    /// Minimum front width evaluated in parallel; narrower fronts take
    /// the coordinator's serial tail.
    cutover: usize,
    /// Coordinator's warm merged-event scratch for serial-tail gates.
    batch: EventBatch,
    /// Total scheduled signals (`wave.assigned_signals` gauge) — equal
    /// to the signal count by construction, the registry value
    /// [`WavefrontSimulator::replication_factor`] reads.
    assigned: Gauge,
    /// Widest front (`wave.peak_width` gauge).
    peak_width: Gauge,
    /// Cumulative merge time across parallel barriers, `wave.merge`.
    merge: SpanTimer,
    /// Engine metrics — a disabled bundle for [`WavefrontSimulator::new`]
    /// engines, same contract as the serial engine's.
    counters: SimCounters,
    /// Timeline recorder on the coordinator's `wave` trace track (run,
    /// level and merge spans) — disabled unless built by
    /// [`WavefrontSimulator::new_traced`].
    tracer: SimTracer,
}

impl<'n> WavefrontSimulator<'n> {
    /// Levelizes `net` for `workers` workers at the default
    /// [`DEFAULT_CUTOVER`] (adjust with
    /// [`WavefrontSimulator::with_cutover`]).
    ///
    /// # Errors
    ///
    /// * [`SimError::Network`] — `workers` is zero.
    /// * [`SimError::NetworkTooLarge`] — the network exceeds the `u32`
    ///   index width (same check as [`crate::Simulator::new`]).
    pub fn new(net: &'n Network, workers: usize) -> Result<Self, SimError> {
        Self::new_probed(net, workers, &Probe::disabled())
    }

    /// [`WavefrontSimulator::new`] with metrics recording into `probe`:
    /// per-worker `wave.w<i>.load` gauges and `wave.w<i>.busy` span
    /// timers, the `wave.assigned_signals` / `wave.peak_width` /
    /// `wave.levels` schedule gauges, the `wave.merge` barrier span,
    /// the `sim.*` run counters and edge census, and the shared
    /// `chan.*` channel counters. The schedule gauges are *set* at
    /// construction, so [`WavefrontSimulator::worker_loads`] and
    /// [`WavefrontSimulator::replication_factor`] read through the
    /// registry even on a disabled probe.
    ///
    /// # Errors
    ///
    /// As [`WavefrontSimulator::new`].
    pub fn new_probed(net: &'n Network, workers: usize, probe: &Probe) -> Result<Self, SimError> {
        Self::build(net, workers, probe, &TraceSink::disabled())
    }

    /// [`WavefrontSimulator::new_probed`] plus timeline recording into
    /// `sink`: one `par.w<i>` trace track per worker (per-level busy
    /// spans, per-gate spans, budget instants) and a `wave` coordinator
    /// track carrying one `run` span per run, one `level` span per
    /// front (payload: level ordinal and width), and a `merge` span per
    /// parallel barrier. Identical evaluation semantics; traced warm
    /// serial-tail runs stay allocation-free (preallocated rings only).
    ///
    /// # Errors
    ///
    /// As [`WavefrontSimulator::new`].
    pub fn new_traced(
        net: &'n Network,
        workers: usize,
        probe: &Probe,
        sink: &TraceSink,
    ) -> Result<Self, SimError> {
        Self::build(net, workers, probe, sink)
    }

    fn build(
        net: &'n Network,
        workers: usize,
        probe: &Probe,
        sink: &TraceSink,
    ) -> Result<Self, SimError> {
        if workers == 0 {
            return Err(SimError::Network {
                reason: "wavefront evaluation needs at least one worker".into(),
            });
        }
        let n = net.signal_count();
        kernel::check_index_width(n)?;
        let levels = kernel::levels(net);
        let depth = levels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        // Counting sort by level; ascending signal index within a level
        // falls out of the ascending outer walk.
        let mut level_start = vec![0u32; depth + 1];
        for &l in &levels {
            level_start[l as usize + 1] += 1;
        }
        for l in 0..depth {
            level_start[l + 1] += level_start[l];
        }
        let mut cursor = level_start.clone();
        let mut order = vec![0u32; n];
        for (s, &l) in levels.iter().enumerate() {
            order[cursor[l as usize] as usize] = s as u32;
            cursor[l as usize] += 1;
        }
        let peak = (0..depth)
            .map(|l| level_start[l + 1] - level_start[l])
            .max()
            .unwrap_or(0);
        let counters = SimCounters::register(probe);
        let chan = counters.channels().clone();
        let workers: Vec<WaveWorker> = (0..workers)
            .map(|w| WaveWorker {
                arena: TraceArena::new(),
                spans: Vec::new(),
                load: probe.gauge(&format!("wave.w{w}.load")),
                busy: probe.timer(&format!("wave.w{w}.busy")),
                chan: chan.clone(),
                batch: EventBatch::new(),
                tracer: SimTracer::register_worker(sink, "par", w as u32),
            })
            .collect();
        let peak_width = probe.gauge("wave.peak_width");
        peak_width.set(u64::from(peak));
        // Set-and-release: the registry cell keeps the value, the engine
        // never reads it back.
        probe.gauge("wave.levels").set(depth as u64);
        let mut engine = WavefrontSimulator {
            net,
            order,
            level_start,
            span_of: vec![0; n],
            workers,
            cutover: DEFAULT_CUTOVER,
            batch: EventBatch::new(),
            assigned: probe.gauge("wave.assigned_signals"),
            peak_width,
            merge: probe.timer("wave.merge"),
            counters,
            tracer: SimTracer::register(sink, "wave"),
        };
        engine.publish_schedule();
        Ok(engine)
    }

    /// Returns the engine with a different serial-tail cutover: the
    /// minimum front width evaluated in parallel. `0` sends every
    /// gate-bearing front to the workers, `usize::MAX` makes the whole
    /// run serial; both extremes (and everything between) are
    /// bit-identical — the cutover only moves work between the
    /// coordinator and the workers. The static-schedule gauges are
    /// republished for the new schedule.
    #[must_use]
    pub fn with_cutover(mut self, cutover: usize) -> Self {
        self.cutover = cutover;
        self.publish_schedule();
        self
    }

    /// Recomputes the static per-worker loads for the current cutover
    /// and publishes them (plus the exactly-once total) through the
    /// registry gauges. Serial-tail fronts and the input level are
    /// evaluated on the calling thread, which is also worker 0's.
    fn publish_schedule(&mut self) {
        let workers = self.workers.len();
        let mut loads = vec![0u64; workers];
        for l in 0..self.level_count() {
            let width = (self.level_start[l + 1] - self.level_start[l]) as usize;
            if l == 0 || width < self.cutover || workers == 1 {
                loads[0] += width as u64;
            } else {
                for (w, load) in loads.iter_mut().enumerate() {
                    let (lo, hi) = chunk_bounds(width, workers, w);
                    *load += (hi - lo) as u64;
                }
            }
        }
        for (w, load) in loads.iter().enumerate() {
            self.workers[w].load.set(*load);
        }
        // Every signal is scheduled exactly once: the chunks partition
        // each front and the fronts partition the signals.
        self.assigned.set(loads.iter().sum());
    }

    /// The network under simulation.
    #[must_use]
    pub fn network(&self) -> &'n Network {
        self.net
    }

    /// Number of workers.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The serial-tail cutover: fronts narrower than this are evaluated
    /// by the coordinator without spawning.
    #[must_use]
    pub fn cutover(&self) -> usize {
        self.cutover
    }

    /// Number of topological levels (0 for an empty network).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.level_start.len() - 1
    }

    /// The widest front, in signals — a thin view over the
    /// `wave.peak_width` registry gauge.
    #[must_use]
    pub fn peak_width(&self) -> usize {
        self.peak_width.value() as usize
    }

    /// The engine's metric bundle (disabled for
    /// [`WavefrontSimulator::new`] engines).
    #[must_use]
    pub fn counters(&self) -> &SimCounters {
        &self.counters
    }

    /// Signals scheduled onto each worker under the current cutover
    /// (serial-tail and input fronts count toward worker 0, whose
    /// thread evaluates them). The sum is exactly the signal count.
    ///
    /// A thin view over the `wave.w<i>.load` registry gauges, so a
    /// profile report and this accessor can never disagree.
    #[must_use]
    pub fn worker_loads(&self) -> Vec<usize> {
        self.workers
            .iter()
            .map(|w| w.load.value() as usize)
            .collect()
    }

    /// Total scheduled signals divided by the signal count — 1.0 by
    /// construction: level chunks never overlap, so no gate is ever
    /// evaluated twice (contrast with the per-cone engine's cone
    /// redundancy).
    ///
    /// Reads the `wave.assigned_signals` registry gauge — same
    /// source-of-truth argument as [`WavefrontSimulator::worker_loads`].
    #[must_use]
    pub fn replication_factor(&self) -> f64 {
        self.assigned.value() as f64 / self.net.signal_count().max(1) as f64
    }

    /// Evaluates the network into `arena` level by level: inputs sealed
    /// first, then each front either serially (narrower than the
    /// cutover) or as parallel chunks merged back in chunk order. After
    /// the run every signal's trace sits at [`WavefrontSimulator::span`]
    /// — spans are sealed in level order.
    ///
    /// On a warm arena an all-serial run (one worker, or
    /// `usize::MAX` cutover) performs zero heap allocations; parallel
    /// fronts pay their scoped thread spawns.
    ///
    /// # Errors
    ///
    /// * [`SimError::Network`] — wrong number of input traces.
    /// * Propagates channel failures (the lowest-indexed failing
    ///   chunk's error, deterministically).
    pub fn run_in(
        &mut self,
        inputs: &[DigitalTrace],
        arena: &mut TraceArena,
    ) -> Result<(), SimError> {
        self.run_controlled_in(inputs, arena, &RunBudget::UNLIMITED, None)
    }

    /// [`WavefrontSimulator::run_in`] under a [`RunBudget`]: all chunks
    /// charge one shared atomic meter, so the charged totals — and
    /// therefore whether a budget trips — are identical to the serial
    /// engine's at every worker count and cutover (see the budget
    /// module docs). A tripped run leaves the arena reusable.
    ///
    /// # Errors
    ///
    /// * [`SimError::BudgetExceeded`] — a budget limit tripped.
    /// * As [`WavefrontSimulator::run_in`].
    pub fn run_budgeted_in(
        &mut self,
        inputs: &[DigitalTrace],
        arena: &mut TraceArena,
        budget: &RunBudget,
    ) -> Result<(), SimError> {
        self.run_controlled_in(inputs, arena, budget, None)
    }

    /// The fully general run: a [`RunBudget`] plus an optional
    /// [`TraceOverlay`] shared by reference across the chunks —
    /// bit-identical to [`crate::Simulator::run_controlled_in`] under
    /// the same inputs, because every chunk applies the same pure
    /// rewrite at the same sealed-span boundary.
    ///
    /// # Errors
    ///
    /// * [`SimError::BudgetExceeded`] — a budget limit tripped.
    /// * Propagates overlay rewrite failures.
    /// * As [`WavefrontSimulator::run_in`].
    pub fn run_controlled_in(
        &mut self,
        inputs: &[DigitalTrace],
        arena: &mut TraceArena,
        budget: &RunBudget,
        overlay: Option<&dyn TraceOverlay>,
    ) -> Result<(), SimError> {
        if inputs.len() != self.net.input_count() {
            return Err(SimError::Network {
                reason: format!(
                    "expected {} input traces, got {}",
                    self.net.input_count(),
                    inputs.len()
                ),
            });
        }
        let started = self.counters.start_run();
        let run_started = self.tracer.start();
        let meter = SharedBudgetMeter::start(budget);
        arena.reset();
        let (mut pops, mut dups) = (0u64, 0u64);
        for l in 0..self.level_count() {
            let range = self.level_start[l] as usize..self.level_start[l + 1] as usize;
            let width = range.len();
            let level_started = self.tracer.start();
            if l == 0 {
                // The input front: sealed straight from caller traces
                // (level 0 holds exactly the inputs — every gate has a
                // fan-in, so gates sit at level ≥ 1).
                for i in range {
                    let s = self.order[i] as usize;
                    let mut span = arena.push_trace(&inputs[s]);
                    if let Some(ov) = overlay {
                        let id = self.net.signal_id(s).expect("s < signal_count");
                        if ov.rewrites(id) {
                            span = rewrite_span(arena, span, id, ov)?;
                        }
                    }
                    self.span_of[s] = span as u32;
                    if self.tracer.is_enabled() {
                        self.tracer.seal(s as u32, arena.trace(span).len() as u32);
                    }
                }
            } else if width < self.cutover || self.workers.len() == 1 {
                // The serial tail: the coordinator evaluates narrow
                // fronts straight into the shared arena — no spawns, no
                // merge, no private-arena copy.
                for i in range {
                    let s = self.order[i] as usize;
                    self.tracer.guard(meter.on_event())?;
                    pops += 1;
                    let gate_started = self.tracer.start();
                    dups += u64::from(self.eval_serial(s, arena, overlay)?);
                    let edges = arena.trace(self.span_of[s] as usize).len() as u64;
                    self.tracer.gate_span(gate_started, s as u32, edges as u32);
                    self.tracer.guard(meter.on_edges(edges))?;
                }
            } else {
                let (p, d) = self.eval_front(l, arena, &meter, overlay)?;
                pops += p;
                dups += d;
            }
            self.tracer
                .level_span(level_started, l as u32, width as u32);
        }
        // No ready queue: the high-water gauge stays untouched (0),
        // which `sim_profile` reports as "no heap" for this engine.
        self.counters.finish_run(started, pops, dups, 0);
        self.tracer.run_span(run_started);
        if self.counters.is_enabled() {
            self.census(arena);
        }
        Ok(())
    }

    /// Evaluates one parallel front: scoped workers over contiguous
    /// chunks (worker 0's chunk on the calling thread), then the merge
    /// barrier copies every chunk back into the shared arena in chunk
    /// order. Returns the front's `(events, duplicate_spans)` tallies.
    fn eval_front(
        &mut self,
        l: usize,
        arena: &mut TraceArena,
        meter: &SharedBudgetMeter<'_>,
        overlay: Option<&dyn TraceOverlay>,
    ) -> Result<(u64, u64), SimError> {
        let range = self.level_start[l] as usize..self.level_start[l + 1] as usize;
        let width = range.len();
        let workers = self.workers.len();
        let net = self.net;
        let front = &self.order[range];
        let span_of = &self.span_of;
        let main: &TraceArena = arena;
        let (first, rest) = self
            .workers
            .split_first_mut()
            .expect("construction guarantees at least one worker");
        let (pops, dups) = std::thread::scope(|scope| -> Result<(u64, u64), SimError> {
            let handles: Vec<_> = rest
                .iter_mut()
                .enumerate()
                .filter_map(|(k, w)| {
                    let (lo, hi) = chunk_bounds(width, workers, k + 1);
                    (lo < hi).then(|| {
                        scope.spawn(move || {
                            w.evaluate_level(net, &front[lo..hi], main, span_of, meter, overlay)
                        })
                    })
                })
                .collect();
            let (lo, hi) = chunk_bounds(width, workers, 0);
            let mut result = if lo < hi {
                first.evaluate_level(net, &front[lo..hi], main, span_of, meter, overlay)
            } else {
                Ok((0, 0))
            };
            for h in handles {
                let r = h
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
                match (&mut result, r) {
                    (Ok((p0, d0)), Ok((p, d))) => {
                        *p0 += p;
                        *d0 += d;
                    }
                    (Ok(_), Err(e)) => result = Err(e),
                    (Err(_), _) => {}
                }
            }
            result
        })?;
        let merge_started = self.merge.start();
        let merge_trace_started = self.tracer.start();
        for (wi, w) in self.workers.iter().enumerate() {
            let (lo, hi) = chunk_bounds(width, workers, wi);
            for (k, &s) in front[lo..hi].iter().enumerate() {
                let span = arena.push_view(w.arena.trace(w.spans[k] as usize));
                self.span_of[s as usize] = span as u32;
            }
        }
        self.tracer.merge_span(merge_trace_started);
        self.merge.stop(merge_started);
        Ok((pops, dups))
    }

    /// Evaluates one serial-tail gate straight into the shared arena —
    /// the same shape as the serial engine's `eval` (shared
    /// duplicate-shortcut predicate, shared kernel, overlay at the
    /// sealed-span boundary). Returns whether the gate resolved as a
    /// duplicate span.
    fn eval_serial(
        &mut self,
        s: usize,
        arena: &mut TraceArena,
        overlay: Option<&dyn TraceOverlay>,
    ) -> Result<bool, SimError> {
        let net = self.net;
        let id = net.signal_id(s).expect("s < signal_count");
        let source = net.source(id);
        let (mut span, dup) = match kernel::duplicate_shortcut(&source) {
            Some((src, invert)) => (
                arena.push_duplicate(self.span_of[src.index()] as usize, invert),
                true,
            ),
            None => {
                let span_of = &self.span_of;
                let batch = &mut self.batch;
                let (sealed, out, scratch) = arena.stage();
                kernel::eval_signal_into(
                    source,
                    |sid| sealed.trace(span_of[sid.index()] as usize),
                    out,
                    scratch,
                    batch,
                    self.counters.channels(),
                )?;
                (arena.seal_out(), false)
            }
        };
        if let Some(ov) = overlay {
            if ov.rewrites(id) {
                span = rewrite_span(arena, span, id, ov)?;
            }
        }
        self.span_of[s] = span as u32;
        Ok(dup)
    }

    /// The post-run per-kind edge census — same walk as the serial
    /// engine's, run only when the probe is enabled.
    fn census(&self, arena: &TraceArena) {
        for s in 0..self.net.signal_count() {
            let id = self.net.signal_id(s).expect("s < signal_count");
            let class = census_index(&self.net.source(id));
            let edges = arena.trace(self.span_of[s] as usize).len() as u64;
            self.counters.census(class, edges);
        }
    }

    /// The allocating compatibility wrapper: one owned trace per signal
    /// in signal order, bit-identical to [`crate::Simulator::run`].
    ///
    /// # Errors
    ///
    /// As [`WavefrontSimulator::run_in`].
    pub fn run(&mut self, inputs: &[DigitalTrace]) -> Result<Vec<DigitalTrace>, SimError> {
        let mut arena = TraceArena::new();
        self.run_in(inputs, &mut arena)?;
        Ok((0..self.net.signal_count())
            .map(|s| arena.to_trace(self.span_of[s] as usize))
            .collect())
    }

    /// The arena span index holding signal `id`'s trace (valid after a
    /// [`WavefrontSimulator::run_in`]).
    ///
    /// # Panics
    ///
    /// Panics for a foreign [`SignalId`].
    #[must_use]
    pub fn span(&self, id: SignalId) -> usize {
        self.span_of[id.index()] as usize
    }

    /// Convenience: the view of signal `id`'s trace inside `arena`
    /// (valid after a [`WavefrontSimulator::run_in`] into that arena).
    ///
    /// # Panics
    ///
    /// Panics for a foreign [`SignalId`] or a mismatched arena.
    #[must_use]
    pub fn trace<'a>(&self, arena: &'a TraceArena, id: SignalId) -> TraceRef<'a> {
        arena.trace(self.span(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use mis_digital::{GateKind, InertialChannel};
    use mis_waveform::units::ps;

    /// A three-level circuit exercising inputs, a channel gate, a
    /// duplicate-shortcut NOT and a reconvergent NAND.
    fn layered_net() -> (Network, Vec<DigitalTrace>) {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let nor = net
            .add_gate(
                "nor",
                GateKind::Nor,
                &[a, b],
                Some(Box::new(
                    InertialChannel::symmetric(ps(40.0), ps(30.0)).unwrap(),
                )),
            )
            .unwrap();
        let inv = net.add_gate("inv", GateKind::Not, &[c], None).unwrap();
        net.add_gate("y", GateKind::Nand, &[nor, inv], None)
            .unwrap();
        net.add_gate("z", GateKind::And, &[a, c], None).unwrap();
        let ta =
            DigitalTrace::with_edges(false, vec![(ps(100.0), true), (ps(400.0), false)]).unwrap();
        let tb = DigitalTrace::with_edges(false, vec![(ps(250.0), true)]).unwrap();
        let tc = DigitalTrace::with_edges(true, vec![(ps(150.0), false)]).unwrap();
        (net, vec![ta, tb, tc])
    }

    #[test]
    fn matches_serial_engine_at_every_worker_count_and_cutover() {
        let (net, inputs) = layered_net();
        let want = Simulator::new(&net).unwrap().run(&inputs).unwrap();
        for workers in 1..=4 {
            for cutover in [0, 2, DEFAULT_CUTOVER, usize::MAX] {
                let got = WavefrontSimulator::new(&net, workers)
                    .unwrap()
                    .with_cutover(cutover)
                    .run(&inputs)
                    .unwrap();
                assert_eq!(got, want, "workers={workers} cutover={cutover}");
            }
        }
    }

    #[test]
    fn zero_workers_is_an_error() {
        let (net, _) = layered_net();
        assert!(WavefrontSimulator::new(&net, 0).is_err());
    }

    #[test]
    fn input_count_is_validated() {
        let (net, _) = layered_net();
        let mut sim = WavefrontSimulator::new(&net, 2).unwrap();
        assert!(sim.run(&[]).is_err());
    }

    #[test]
    fn levelization_orders_fronts_by_depth() {
        let (net, _) = layered_net();
        let sim = WavefrontSimulator::new(&net, 2).unwrap();
        // inputs a,b,c / nor+inv+z / y
        assert_eq!(sim.level_count(), 3);
        assert_eq!(sim.level_start, vec![0, 3, 6, 7]);
        assert_eq!(sim.peak_width.value(), 3);
    }

    #[test]
    fn schedule_is_exactly_once_at_every_cutover() {
        let (net, _) = layered_net();
        for workers in 1..=4 {
            for cutover in [0, 2, usize::MAX] {
                let sim = WavefrontSimulator::new(&net, workers)
                    .unwrap()
                    .with_cutover(cutover);
                let loads = sim.worker_loads();
                assert_eq!(
                    loads.iter().sum::<usize>(),
                    net.signal_count(),
                    "workers={workers} cutover={cutover} loads={loads:?}"
                );
                assert!((sim.replication_factor() - 1.0).abs() < f64::EPSILON);
            }
        }
    }

    #[test]
    fn all_serial_cutover_sends_every_signal_to_worker_zero() {
        let (net, _) = layered_net();
        let sim = WavefrontSimulator::new(&net, 4)
            .unwrap()
            .with_cutover(usize::MAX);
        assert_eq!(sim.worker_loads()[0], net.signal_count());
    }

    #[test]
    fn probed_engine_counts_match_the_serial_engine() {
        use mis_probe::Probe;
        let (net, inputs) = layered_net();
        let probe_serial = Probe::new();
        let mut serial = Simulator::new_probed(&net, &probe_serial).unwrap();
        let mut arena = TraceArena::new();
        serial.run_in(&inputs, &mut arena).unwrap();

        let probe = Probe::new();
        // Cutover 0: every gate level runs through the workers.
        let mut sim = WavefrontSimulator::new_probed(&net, 3, &probe)
            .unwrap()
            .with_cutover(0);
        let mut wave_arena = TraceArena::new();
        sim.run_in(&inputs, &mut wave_arena).unwrap();
        let c = sim.counters();
        assert_eq!(c.events_popped(), serial.counters().events_popped());
        assert_eq!(c.duplicate_spans(), serial.counters().duplicate_spans());
        assert_eq!(c.gates_evaluated(), serial.counters().gates_evaluated());
        assert_eq!(c.heap_high_water(), 0, "no ready queue in this engine");
        // The edge census agrees too (identical traces, identical walk).
        let report = probe.report();
        let serial_report = probe_serial.report();
        for key in ["sim.edges.input", "sim.edges.nor", "sim.edges.not"] {
            assert_eq!(
                report.get(key).unwrap().scalar(),
                serial_report.get(key).unwrap().scalar(),
                "{key}"
            );
        }
    }

    #[test]
    fn traced_engine_records_levels_and_worker_tracks() {
        use mis_probe::{EventKind, Probe, TraceSink};
        let (net, inputs) = layered_net();
        let probe = Probe::new();
        let sink = TraceSink::new();
        let mut sim = WavefrontSimulator::new_traced(&net, 2, &probe, &sink)
            .unwrap()
            .with_cutover(0);
        let mut arena = TraceArena::new();
        sim.run_in(&inputs, &mut arena).unwrap();
        let snap = sink.snapshot();
        let wave = snap.track("wave").unwrap();
        let count = |k: EventKind| wave.events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EventKind::Run), 1);
        assert_eq!(count(EventKind::Level), 3, "one span per level");
        assert_eq!(count(EventKind::Merge), 2, "one barrier per gate level");
        assert_eq!(count(EventKind::Seal), 3, "inputs seal on the wave track");
        let level = wave
            .events
            .iter()
            .find(|e| e.kind == EventKind::Level)
            .unwrap();
        assert_eq!((level.a, level.b), (0, 3), "level span carries its width");
        // Worker tracks carry the per-gate spans.
        let gate_spans: usize = (0..2)
            .map(|w| {
                let track = snap.track(&format!("par.w{w}")).unwrap();
                track
                    .events
                    .iter()
                    .filter(|e| e.kind == EventKind::Gate)
                    .count()
            })
            .sum();
        assert_eq!(gate_spans, 4, "every gate evaluated on some worker");
    }

    #[test]
    fn budget_trips_are_exact_and_leave_the_engine_reusable() {
        let (net, inputs) = layered_net();
        let gates = net.signal_count() - net.input_count();
        let mut sim = WavefrontSimulator::new(&net, 3).unwrap().with_cutover(0);
        let mut arena = TraceArena::new();
        let exact = RunBudget::UNLIMITED.with_max_events(gates as u64);
        sim.run_budgeted_in(&inputs, &mut arena, &exact).unwrap();
        let short = RunBudget::UNLIMITED.with_max_events(gates as u64 - 1);
        assert!(matches!(
            sim.run_budgeted_in(&inputs, &mut arena, &short),
            Err(SimError::BudgetExceeded { .. })
        ));
        // The tripped engine still produces bit-identical results.
        let want = Simulator::new(&net).unwrap().run(&inputs).unwrap();
        assert_eq!(sim.run(&inputs).unwrap(), want);
    }
}
