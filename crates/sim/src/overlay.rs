//! Trace overlays: deterministic per-signal rewrites applied inside an
//! engine run — the injection point `mis-fault` builds its fault model
//! on.
//!
//! An overlay sees every signal's trace right after the engine seals it
//! (input copies and gate outputs alike) and may replace it before any
//! downstream gate reads it. Because the rewrite happens *at the
//! sealed-span boundary* — the same place both engines publish traces —
//! the two engines stay bit-identical under any overlay: a gate's
//! output is still a pure function of its (now rewritten) fan-in
//! traces, evaluated by the shared kernel, so the confluence argument
//! of `crate::kernel` goes through unchanged with "trace of signal `s`"
//! reinterpreted as "rewritten trace of signal `s`".
//!
//! Overlays must be [`Sync`]: the parallel engine shares one overlay
//! reference across its scoped workers, each of which applies it to the
//! signals it evaluates. Determinism therefore requires `rewrite` to be
//! a pure function of `(signal, view)` — interior mutability that makes
//! the result depend on call order would break both bit-identity and
//! the cone-overlap redundancy argument.

use mis_digital::{SignalId, SimError};
use mis_waveform::{EdgeBuf, TraceRef};

/// A deterministic per-signal trace rewrite, applied by the engines at
/// the sealed-span boundary (see the module docs).
///
/// [`TraceOverlay::rewrites`] is the cheap pre-filter the engines call
/// for every signal; only signals it accepts pay the staging round trip
/// through [`TraceOverlay::rewrite`].
pub trait TraceOverlay: Sync {
    /// Whether this overlay rewrites signal `id` — called once per
    /// sealed signal per run (per worker, in the parallel engine).
    fn rewrites(&self, id: SignalId) -> bool;

    /// Rewrites signal `id`'s sealed trace: reads the fault-free `view`
    /// and writes the replacement into `out`. The buffer arrives in an
    /// unspecified state — implementations must start with
    /// [`EdgeBuf::clear`]. Must be a pure function of `(id, view)`.
    ///
    /// # Errors
    ///
    /// Implementations surface invalid rewrites (e.g. a non-monotone
    /// edge push) as [`SimError`]; the engines abort the run with it.
    fn rewrite(&self, id: SignalId, view: TraceRef<'_>, out: &mut EdgeBuf) -> Result<(), SimError>;
}

/// Applies one overlay rewrite at the sealed-span boundary: stages the
/// fault-free span `span` through the arena's `out` buffer and seals
/// the replacement, returning its span index. The one rewrite path both
/// engines share, so overlay semantics cannot diverge between them.
pub(crate) fn rewrite_span(
    arena: &mut mis_waveform::TraceArena,
    span: usize,
    id: SignalId,
    overlay: &dyn TraceOverlay,
) -> Result<usize, SimError> {
    let (sealed, out, _scratch) = arena.stage();
    overlay.rewrite(id, sealed.trace(span), out)?;
    Ok(arena.seal_out())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunBudget, Simulator};
    use mis_digital::{GateKind, Network};
    use mis_waveform::{DigitalTrace, TraceArena};

    /// Forces one signal stuck at a constant — the shape `mis-fault`
    /// uses, inlined here to test the engine-side plumbing in isolation.
    struct StuckAt {
        id: SignalId,
        value: bool,
    }

    impl TraceOverlay for StuckAt {
        fn rewrites(&self, id: SignalId) -> bool {
            id == self.id
        }

        fn rewrite(
            &self,
            _id: SignalId,
            _view: TraceRef<'_>,
            out: &mut EdgeBuf,
        ) -> Result<(), SimError> {
            out.clear(self.value);
            Ok(())
        }
    }

    #[test]
    fn overlay_rewrites_feed_downstream_gates() {
        // y = NOT(a): stuck-at-1 on `a` forces y constant-low.
        let mut net = Network::new();
        let a = net.add_input("a");
        let y = net.add_gate("y", GateKind::Not, &[a], None).unwrap();
        let input = DigitalTrace::with_edges(false, vec![(100.0, true), (200.0, false)]).unwrap();
        let overlay = StuckAt { id: a, value: true };
        let mut sim = Simulator::new(&net).unwrap();
        let mut arena = TraceArena::new();
        sim.run_controlled_in(
            std::slice::from_ref(&input),
            &mut arena,
            &RunBudget::UNLIMITED,
            Some(&overlay),
        )
        .unwrap();
        let ya = sim.trace(&arena, a);
        assert!(ya.initial_value() && ya.is_empty(), "input rewritten");
        let yy = sim.trace(&arena, y);
        assert!(!yy.initial_value() && yy.is_empty(), "gate saw the rewrite");
    }

    #[test]
    fn overlay_on_a_gate_output_rewrites_after_evaluation() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let y = net.add_gate("y", GateKind::Not, &[a], None).unwrap();
        let z = net.add_gate("z", GateKind::Not, &[y], None).unwrap();
        let input = DigitalTrace::with_edges(false, vec![(100.0, true)]).unwrap();
        let overlay = StuckAt {
            id: y,
            value: false,
        };
        let mut sim = Simulator::new(&net).unwrap();
        let mut arena = TraceArena::new();
        sim.run_controlled_in(
            std::slice::from_ref(&input),
            &mut arena,
            &RunBudget::UNLIMITED,
            Some(&overlay),
        )
        .unwrap();
        assert!(sim.trace(&arena, a).len() == 1, "untouched signal intact");
        let zy = sim.trace(&arena, z);
        assert!(zy.initial_value() && zy.is_empty(), "z = NOT(stuck-low y)");
    }
}
