//! Engine-level instrumentation: the metric bundle the probed
//! simulator entry points record into.
//!
//! [`SimCounters`] registers the `sim.*` metrics on a
//! [`mis_probe::Probe`] and is owned by every [`crate::Simulator`] —
//! engines built through the plain constructors carry a
//! [`SimCounters::disabled`] bundle, whose record calls reduce to one
//! predictable branch, so instrumentation is compiled in
//! unconditionally without costing the unprobed hot paths anything
//! measurable (the `crates/sim/tests/alloc.rs` suite additionally
//! asserts the probed paths allocate nothing when warm).
//!
//! The per-gate-kind **edge census** (`sim.edges.*`) is collected by a
//! single post-run O(n) walk over the sealed arena — never from inside
//! the event loop — so it costs the hot loop literally zero and the
//! disabled mode skips the walk entirely.

use std::cell::Cell;

use mis_digital::{BudgetResource, ChannelCounters, SignalSource, SimError};
use mis_probe::{Counter, EventKind, Gauge, Histogram, Probe, SpanTimer, TraceSink, TraceTrack};

/// Edge-census classes, indexed by [`census_index`]: one per gate kind
/// plus primary inputs and the two-input MIS channel gates.
const CENSUS_NAMES: [&str; 9] = [
    "sim.edges.input",
    "sim.edges.buf",
    "sim.edges.not",
    "sim.edges.and",
    "sim.edges.or",
    "sim.edges.nand",
    "sim.edges.nor",
    "sim.edges.xor",
    "sim.edges.mis",
];

/// The census class of a signal source (an index into the
/// `sim.edges.*` counters).
#[must_use]
pub(crate) fn census_index(source: &SignalSource<'_>) -> usize {
    use mis_digital::GateKind as K;
    match source {
        SignalSource::Input => 0,
        SignalSource::Gate { kind, .. } => match kind {
            K::Buf => 1,
            K::Not => 2,
            K::And => 3,
            K::Or => 4,
            K::Nand => 5,
            K::Nor => 6,
            K::Xor => 7,
        },
        SignalSource::TwoInputChannelGate { .. } => 8,
    }
}

/// The engine metric bundle, registered under stable `sim.*` names.
/// Counters are cumulative across runs of the engine that owns the
/// bundle (and across engines sharing a [`Probe`], since same-name
/// metrics share cells).
#[derive(Debug, Clone)]
pub struct SimCounters {
    /// Ready-queue pops (one per evaluated signal per run).
    events_popped: Counter,
    /// Gates evaluated through the staged kernel (pops minus
    /// duplicate-span shortcuts).
    gates_evaluated: Counter,
    /// Channel-less unary gates resolved as arena span duplicates.
    duplicate_spans: Counter,
    /// Completed `run_in` calls.
    runs: Counter,
    /// High-water mark of the ready queue, across all runs.
    heap_high_water: Gauge,
    /// Output edges per evaluated gate (census walk, enabled only).
    edges_per_gate: Histogram,
    /// Wall-clock span of each `run_in`.
    run_time: SpanTimer,
    /// Per-class output-edge totals, indexed by [`census_index`].
    edge_census: [Counter; 9],
    /// The channel-event sink threaded into the shared gate kernel.
    channels: ChannelCounters,
}

impl SimCounters {
    /// Registers (or re-attaches to) the `sim.*` and `chan.*` metrics
    /// on `probe`.
    #[must_use]
    pub fn register(probe: &Probe) -> Self {
        SimCounters {
            events_popped: probe.counter("sim.events_popped"),
            gates_evaluated: probe.counter("sim.gates_evaluated"),
            duplicate_spans: probe.counter("sim.duplicate_spans"),
            runs: probe.counter("sim.runs"),
            heap_high_water: probe.gauge("sim.heap_high_water"),
            edges_per_gate: probe.histogram("sim.edges_per_gate"),
            run_time: probe.timer("sim.run_time"),
            edge_census: std::array::from_fn(|i| probe.counter(CENSUS_NAMES[i])),
            channels: ChannelCounters::register(probe),
        }
    }

    /// A bundle on a fresh disabled registry — what the unprobed
    /// constructors own. Record calls are branch-only no-ops.
    #[must_use]
    pub fn disabled() -> Self {
        SimCounters::register(&Probe::disabled())
    }

    /// Whether records actually land anywhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.events_popped.is_enabled()
    }

    /// The channel-event sink for the shared gate kernel.
    #[must_use]
    pub(crate) fn channels(&self) -> &ChannelCounters {
        &self.channels
    }

    /// Starts the run span (None when disabled).
    pub(crate) fn start_run(&self) -> Option<std::time::Instant> {
        self.run_time.start()
    }

    /// Flushes one run's locally-accumulated event-loop tallies.
    pub(crate) fn finish_run(
        &self,
        started: Option<std::time::Instant>,
        pops: u64,
        duplicates: u64,
        heap_high_water: u64,
    ) {
        self.run_time.stop(started);
        self.runs.inc();
        self.events_popped.add(pops);
        self.duplicate_spans.add(duplicates);
        self.gates_evaluated.add(pops - duplicates);
        self.heap_high_water.record_max(heap_high_water);
    }

    /// One census observation: `edges` output edges on a signal of
    /// census class `class`. Inputs (`class == 0`) count toward the
    /// per-class totals but not the per-*gate* histogram.
    pub(crate) fn census(&self, class: usize, edges: u64) {
        self.edge_census[class].add(edges);
        if class != 0 {
            self.edges_per_gate.record(edges);
        }
    }

    /// Cumulative ready-queue pops.
    #[must_use]
    pub fn events_popped(&self) -> u64 {
        self.events_popped.value()
    }

    /// Cumulative staged-kernel gate evaluations.
    #[must_use]
    pub fn gates_evaluated(&self) -> u64 {
        self.gates_evaluated.value()
    }

    /// Cumulative duplicate-span shortcuts.
    #[must_use]
    pub fn duplicate_spans(&self) -> u64 {
        self.duplicate_spans.value()
    }

    /// Completed runs.
    #[must_use]
    pub fn runs(&self) -> u64 {
        self.runs.value()
    }

    /// Ready-queue high-water mark across runs.
    #[must_use]
    pub fn heap_high_water(&self) -> u64 {
        self.heap_high_water.value()
    }
}

/// The engine's timeline recorder: a typed wrapper over one
/// [`mis_probe::TraceSink`] track that the traced entry points record
/// run spans, per-gate evaluation spans, input-seal instants and
/// budget-trip instants into. Engines built without a sink carry a
/// [`SimTracer::disabled`] tracer, whose record calls reduce to one
/// branch on a pre-loaded flag — no clock reads — exactly the
/// [`SimCounters`] contract, so tracing is compiled in unconditionally.
///
/// Recording writes into the track's preallocated ring buffer, so a
/// traced warm run stays allocation-free (asserted in
/// `crates/sim/tests/alloc.rs`).
#[derive(Debug, Clone)]
pub struct SimTracer {
    track: TraceTrack,
    /// The `a` payload of [`EventKind::Busy`] spans: the worker index
    /// for per-worker tracks, 0 for engine-level tracks.
    id: u32,
    /// Completed-run ordinal, the `a` payload of [`EventKind::Run`]
    /// spans. A `Cell` because each tracer is owned by one engine (and
    /// recorded from one thread at a time).
    runs: Cell<u32>,
}

impl SimTracer {
    /// Opens (or re-opens) the track `name` on `sink`.
    #[must_use]
    pub fn register(sink: &TraceSink, name: &str) -> Self {
        SimTracer {
            track: sink.track(name),
            id: 0,
            runs: Cell::new(0),
        }
    }

    /// A per-worker tracer: the track `{prefix}.w{worker}`, with `worker`
    /// carried as the busy-span payload.
    #[must_use]
    pub fn register_worker(sink: &TraceSink, prefix: &str, worker: u32) -> Self {
        SimTracer {
            track: sink.track(&format!("{prefix}.w{worker}")),
            id: worker,
            runs: Cell::new(0),
        }
    }

    /// A tracer on a fresh disabled sink — what the untraced
    /// constructors own. Record calls are branch-only no-ops.
    #[must_use]
    pub fn disabled() -> Self {
        Self::register(&TraceSink::disabled(), "sim")
    }

    /// Whether records actually land anywhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.track.is_enabled()
    }

    /// Opens a span (None when disabled — no clock read).
    #[inline]
    pub(crate) fn start(&self) -> Option<u64> {
        self.track.start()
    }

    /// Seals a completed run: one [`EventKind::Run`] span carrying the
    /// tracer-local run ordinal.
    pub(crate) fn run_span(&self, started: Option<u64>) {
        if started.is_some() {
            let run = self.runs.get();
            self.track.span(EventKind::Run, run, 0, started);
            self.runs.set(run.wrapping_add(1));
        }
    }

    /// Seals one gate evaluation: an [`EventKind::Gate`] span carrying
    /// the signal index and its sealed output-edge count.
    #[inline]
    pub(crate) fn gate_span(&self, started: Option<u64>, signal: u32, edges: u32) {
        self.track.span(EventKind::Gate, signal, edges, started);
    }

    /// Seals one worker busy interval ([`EventKind::Busy`], payload =
    /// the registered worker index).
    pub(crate) fn busy_span(&self, started: Option<u64>) {
        self.track.span(EventKind::Busy, self.id, 0, started);
    }

    /// Seals the parallel merge ([`EventKind::Merge`]).
    pub(crate) fn merge_span(&self, started: Option<u64>) {
        self.track.span(EventKind::Merge, 0, 0, started);
    }

    /// Seals one wavefront level ([`EventKind::Level`] span, payload =
    /// level ordinal and width in signals).
    pub(crate) fn level_span(&self, started: Option<u64>, level: u32, width: u32) {
        self.track.span(EventKind::Level, level, width, started);
    }

    /// Records an input span sealed into the arena
    /// ([`EventKind::Seal`] instant).
    #[inline]
    pub(crate) fn seal(&self, signal: u32, edges: u32) {
        self.track.instant(EventKind::Seal, signal, edges);
    }

    /// Passes a budget-meter result through, recording an
    /// [`EventKind::Budget`] instant (payload = resource code) when it
    /// tripped — how the event loops mark trips on the timeline without
    /// disturbing error propagation.
    #[inline]
    pub(crate) fn guard<T>(&self, r: Result<T, SimError>) -> Result<T, SimError> {
        if let Err(SimError::BudgetExceeded { resource, .. }) = &r {
            let code = match resource {
                BudgetResource::Events => 0,
                BudgetResource::Edges => 1,
                BudgetResource::Deadline => 2,
            };
            self.track.instant(EventKind::Budget, code, 0);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_run_splits_pops_into_gates_and_duplicates() {
        let probe = Probe::new();
        let c = SimCounters::register(&probe);
        assert!(c.is_enabled());
        c.finish_run(None, 10, 3, 7);
        c.finish_run(None, 10, 3, 5);
        assert_eq!(c.runs(), 2);
        assert_eq!(c.events_popped(), 20);
        assert_eq!(c.duplicate_spans(), 6);
        assert_eq!(c.gates_evaluated(), 14);
        assert_eq!(c.heap_high_water(), 7, "gauge keeps the maximum");
    }

    #[test]
    fn disabled_bundle_records_nothing() {
        let c = SimCounters::disabled();
        assert!(!c.is_enabled());
        c.finish_run(c.start_run(), 10, 3, 7);
        c.census(2, 100);
        assert_eq!(c.events_popped(), 0);
        assert_eq!(c.heap_high_water(), 0);
    }

    #[test]
    fn tracer_records_runs_gates_and_budget_trips() {
        let sink = TraceSink::new();
        let t = SimTracer::register(&sink, "sim");
        assert!(t.is_enabled());
        let run = t.start();
        t.gate_span(t.start(), 4, 2);
        t.seal(0, 3);
        t.run_span(run);
        t.run_span(t.start());
        let err: Result<(), SimError> = Err(SimError::BudgetExceeded {
            resource: BudgetResource::Edges,
            limit: 5,
        });
        assert!(t.guard(err).is_err());
        assert!(t.guard(Ok(())).is_ok());
        let snap = sink.snapshot();
        let track = snap.track("sim").unwrap();
        let kinds: Vec<EventKind> = track.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Gate,
                EventKind::Seal,
                EventKind::Run,
                EventKind::Run,
                EventKind::Budget
            ]
        );
        // Run ordinals increment; the budget instant carries the
        // resource code (edges = 1); a passing guard records nothing.
        assert_eq!(track.events[2].a, 0);
        assert_eq!(track.events[3].a, 1);
        assert_eq!(track.events[4].a, 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = SimTracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.start(), None);
        t.run_span(t.start());
        t.gate_span(None, 1, 1);
        let err: Result<(), SimError> = Err(SimError::BudgetExceeded {
            resource: BudgetResource::Events,
            limit: 0,
        });
        assert!(t.guard(err).is_err(), "guard still propagates");
    }

    #[test]
    fn worker_tracer_names_its_track_and_carries_its_index() {
        let sink = TraceSink::new();
        let t = SimTracer::register_worker(&sink, "par", 3);
        t.busy_span(t.start());
        let snap = sink.snapshot();
        let track = snap.track("par.w3").unwrap();
        assert_eq!(track.events[0].kind, EventKind::Busy);
        assert_eq!(track.events[0].a, 3);
    }

    #[test]
    fn census_classes_cover_every_source_shape() {
        // The census array and the index function must stay in sync:
        // every name is distinct and the histogram skips inputs only.
        let mut names: Vec<&str> = CENSUS_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CENSUS_NAMES.len());
        let probe = Probe::new();
        let c = SimCounters::register(&probe);
        c.census(0, 5);
        c.census(6, 7);
        let report = probe.report();
        assert_eq!(report.get("sim.edges.input").unwrap().scalar(), Some(5));
        assert_eq!(report.get("sim.edges.nor").unwrap().scalar(), Some(7));
    }
}
