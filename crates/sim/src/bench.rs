//! ISCAS-85 `.bench` netlist ingestion: parser, writer, and lowering
//! onto the [`mis_digital::Network`] builder.
//!
//! The `.bench` format is the lingua franca of the ISCAS benchmark
//! distributions — line-oriented, with `INPUT(x)` / `OUTPUT(y)`
//! declarations and `z = FUNC(a, b, ...)` gate definitions, `#` comments,
//! and no ordering requirement (gates may reference signals defined
//! later in the file). [`BenchNetlist::parse`] accepts that full
//! generality; [`BenchNetlist::lower`] topologically sorts the gates and
//! emits a feed-forward [`Network`] (which *does* require declaration
//! order) with one timed cell per `.bench` gate.
//!
//! Fan-in beyond two is reduced through balanced trees of **zero-time**
//! gates, with the cell — the gate that carries the delay model — at the
//! root: an n-ary `NAND` becomes ideal `AND` subtrees feeding one
//! [`CellLibrary`]-realized `NAND2`, so every `.bench` gate contributes
//! exactly one channel's worth of delay regardless of width. `XNOR`
//! lowers as an ideal `XOR` tree with a celled `NOT` root.
//!
//! # Examples
//!
//! ```
//! use mis_sim::{BenchNetlist, CellLibrary};
//! use mis_waveform::DigitalTrace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//!     INPUT(a)
//!     INPUT(b)
//!     OUTPUT(y)
//!     y = NAND(a, b)  # one gate
//! ";
//! let parsed = BenchNetlist::parse(src)?;
//! assert_eq!(parsed.inputs().len(), 2);
//! let lowered = parsed.lower(&CellLibrary::ideal())?;
//! let a = DigitalTrace::constant(true);
//! let b = DigitalTrace::constant(true);
//! let traces = lowered.net.run(&[a, b])?;
//! assert!(!traces[lowered.outputs[0].index()].initial_value());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use mis_digital::{GateKind, Network, SignalId};

use crate::cells::CellLibrary;
use crate::error::BenchError;

/// A gate function the `.bench` format can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchFunc {
    /// n-ary AND.
    And,
    /// n-ary OR.
    Or,
    /// n-ary NAND.
    Nand,
    /// n-ary NOR.
    Nor,
    /// n-ary XOR (odd parity).
    Xor,
    /// n-ary XNOR (even parity).
    Xnor,
    /// Unary inverter.
    Not,
    /// Unary buffer.
    Buff,
}

impl BenchFunc {
    /// Parses a (case-insensitive) function name; `BUF` is accepted as a
    /// synonym for `BUFF`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        let n = name.to_ascii_uppercase();
        Some(match n.as_str() {
            "AND" => BenchFunc::And,
            "OR" => BenchFunc::Or,
            "NAND" => BenchFunc::Nand,
            "NOR" => BenchFunc::Nor,
            "XOR" => BenchFunc::Xor,
            "XNOR" => BenchFunc::Xnor,
            "NOT" => BenchFunc::Not,
            "BUF" | "BUFF" => BenchFunc::Buff,
            _ => return None,
        })
    }

    /// The canonical upper-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BenchFunc::And => "AND",
            BenchFunc::Or => "OR",
            BenchFunc::Nand => "NAND",
            BenchFunc::Nor => "NOR",
            BenchFunc::Xor => "XOR",
            BenchFunc::Xnor => "XNOR",
            BenchFunc::Not => "NOT",
            BenchFunc::Buff => "BUFF",
        }
    }

    /// Whether the function takes exactly one operand.
    #[must_use]
    pub fn is_unary(self) -> bool {
        matches!(self, BenchFunc::Not | BenchFunc::Buff)
    }
}

/// One `z = FUNC(a, b, ...)` definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchGate {
    /// The driven signal.
    pub output: String,
    /// The gate function.
    pub func: BenchFunc,
    /// Operand signal names, in written order.
    pub inputs: Vec<String>,
}

/// A parsed `.bench` netlist: declarations and definitions in file
/// order, structurally validated (no duplicates, no dangling references,
/// no combinational cycles) but not yet lowered to a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchNetlist {
    inputs: Vec<String>,
    outputs: Vec<String>,
    gates: Vec<BenchGate>,
    /// Gate indices in topological order, computed once at validation
    /// (a pure function of `gates`, so derived equality stays an
    /// equality of the declarations).
    topo: Vec<usize>,
}

/// A `.bench` netlist lowered onto the [`Network`] builder.
#[derive(Debug)]
pub struct LoweredNetlist {
    /// The feed-forward network (gates in topological order; fan-in
    /// reduction trees interleaved before their roots).
    pub net: Network,
    /// Primary inputs, in `INPUT` declaration order.
    pub inputs: Vec<SignalId>,
    /// Designated outputs, in `OUTPUT` declaration order.
    pub outputs: Vec<SignalId>,
}

impl BenchNetlist {
    /// Assembles and validates a netlist from its parts (the programmatic
    /// twin of [`BenchNetlist::parse`], used e.g. by fixture generators).
    ///
    /// # Errors
    ///
    /// The same semantic violations `parse` reports — [`BenchError::Empty`],
    /// [`BenchError::Duplicate`] (line 0), [`BenchError::Undefined`],
    /// [`BenchError::BadArity`] (line 0), [`BenchError::Syntax`] (line 0,
    /// for names the text form cannot carry), [`BenchError::Cycle`].
    pub fn new(
        inputs: Vec<String>,
        outputs: Vec<String>,
        gates: Vec<BenchGate>,
    ) -> Result<Self, BenchError> {
        for g in &gates {
            check_arity(0, g.func, g.inputs.len())?;
        }
        BenchNetlist {
            inputs,
            outputs,
            gates,
            topo: Vec::new(),
        }
        .validated()
    }

    /// Primary input names, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Output names, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    /// Gate definitions, in file order.
    #[must_use]
    pub fn gates(&self) -> &[BenchGate] {
        &self.gates
    }

    /// Parses `.bench` text. Blank lines and `#` comments (whole-line or
    /// trailing) are ignored; `INPUT`/`OUTPUT` and function names are
    /// case-insensitive; whitespace is free around every token. Files
    /// exported from Windows tooling parse unchanged: CRLF line endings
    /// are accepted (both by `str::lines` and, for stray `\r`, by token
    /// trimming), and a leading UTF-8 byte-order mark is ignored.
    ///
    /// # Errors
    ///
    /// One [`BenchError`] variant per malformed-input class — see the
    /// variant docs.
    pub fn parse(text: &str) -> Result<Self, BenchError> {
        // The BOM would otherwise glue itself onto the first token and
        // turn `INPUT(...)` into an unrecognized keyword.
        let text = text.strip_prefix('\u{FEFF}').unwrap_or(text);
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut gates: Vec<BenchGate> = Vec::new();
        let mut defined_at: HashMap<String, usize> = HashMap::new();
        for (no, raw) in text.lines().enumerate() {
            let line = no + 1;
            // Strip trailing comment, then surrounding whitespace.
            let code = raw.split('#').next().unwrap_or("").trim();
            if code.is_empty() {
                continue;
            }
            if let Some(eq) = code.find('=') {
                let name = code[..eq].trim();
                check_signal_name(line, name)?;
                let (func_name, args) = parse_call(line, code[eq + 1..].trim())?;
                let func =
                    BenchFunc::from_name(func_name).ok_or_else(|| BenchError::UnknownFunction {
                        line,
                        name: func_name.to_owned(),
                    })?;
                check_arity(line, func, args.len())?;
                if defined_at.insert(name.to_owned(), line).is_some() {
                    return Err(BenchError::Duplicate {
                        line,
                        name: name.to_owned(),
                    });
                }
                gates.push(BenchGate {
                    output: name.to_owned(),
                    func,
                    inputs: args.iter().map(|&a| a.to_owned()).collect(),
                });
            } else {
                let (kw, args) = parse_call(line, code)?;
                let name = match (kw.to_ascii_uppercase().as_str(), args.as_slice()) {
                    ("INPUT", [name]) | ("OUTPUT", [name]) => *name,
                    ("INPUT" | "OUTPUT", _) => {
                        return Err(BenchError::Syntax {
                            line,
                            reason: format!("{kw} takes exactly one signal name"),
                        })
                    }
                    _ => {
                        return Err(BenchError::Syntax {
                            line,
                            reason: format!("expected INPUT/OUTPUT declaration, got '{kw}(...)'"),
                        })
                    }
                };
                if kw.eq_ignore_ascii_case("INPUT") {
                    if defined_at.insert(name.to_owned(), line).is_some() {
                        return Err(BenchError::Duplicate {
                            line,
                            name: name.to_owned(),
                        });
                    }
                    inputs.push(name.to_owned());
                } else {
                    outputs.push(name.to_owned());
                }
            }
        }
        BenchNetlist {
            inputs,
            outputs,
            gates,
            topo: Vec::new(),
        }
        .validated()
    }

    /// Renders the netlist in canonical `.bench` form: `INPUT` block,
    /// `OUTPUT` block, then gate definitions in stored order. The output
    /// re-parses to an equal [`BenchNetlist`] (round-trip identity).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for i in &self.inputs {
            let _ = writeln!(s, "INPUT({i})");
        }
        s.push('\n');
        for o in &self.outputs {
            let _ = writeln!(s, "OUTPUT({o})");
        }
        s.push('\n');
        for g in &self.gates {
            let _ = write!(s, "{} = {}(", g.output, g.func.name());
            for (k, op) in g.inputs.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                s.push_str(op);
            }
            s.push_str(")\n");
        }
        s
    }

    /// Semantic validation shared by [`BenchNetlist::parse`] and
    /// [`BenchNetlist::new`]: well-formed signal names (the text form
    /// must be able to carry every name — redundant after `parse`, load-
    /// bearing for `new`), at least one input, no dangling references,
    /// no cycles. Stores the topological order for [`BenchNetlist::lower`]
    /// on success. (Duplicates are caught where line numbers are still
    /// known.)
    fn validated(mut self) -> Result<Self, BenchError> {
        for name in self
            .inputs
            .iter()
            .chain(self.outputs.iter())
            .chain(self.gates.iter().map(|g| &g.output))
            .chain(self.gates.iter().flat_map(|g| g.inputs.iter()))
        {
            check_signal_name(0, name)?;
        }
        if self.inputs.is_empty() {
            return Err(BenchError::Empty);
        }
        let mut defined: HashMap<&str, ()> = HashMap::new();
        for i in &self.inputs {
            if defined.insert(i, ()).is_some() {
                return Err(BenchError::Duplicate {
                    line: 0,
                    name: i.clone(),
                });
            }
        }
        for g in &self.gates {
            if defined.insert(&g.output, ()).is_some() {
                return Err(BenchError::Duplicate {
                    line: 0,
                    name: g.output.clone(),
                });
            }
        }
        for name in self
            .gates
            .iter()
            .flat_map(|g| g.inputs.iter())
            .chain(self.outputs.iter())
        {
            if !defined.contains_key(name.as_str()) {
                return Err(BenchError::Undefined { name: name.clone() });
            }
        }
        self.topo = self.topo_order()?;
        Ok(self)
    }

    /// Gate indices in a topological order (inputs-before-users), stable
    /// with respect to file order among independent gates.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Cycle`] naming a signal on a cycle.
    fn topo_order(&self) -> Result<Vec<usize>, BenchError> {
        let gate_of: HashMap<&str, usize> = self
            .gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.output.as_str(), i))
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        let mut placed = vec![false; self.gates.len()];
        // Repeated stable scans: quadratic in the worst case, but netlist
        // files are small and the scan preserves file order among ready
        // gates, which keeps lowering deterministic and diffable.
        loop {
            let mut progressed = false;
            for (i, g) in self.gates.iter().enumerate() {
                if placed[i] {
                    continue;
                }
                let ready = g
                    .inputs
                    .iter()
                    .all(|op| gate_of.get(op.as_str()).is_none_or(|&j| placed[j]));
                if ready {
                    placed[i] = true;
                    order.push(i);
                    progressed = true;
                }
            }
            if order.len() == self.gates.len() {
                return Ok(order);
            }
            if !progressed {
                let stuck = self
                    .gates
                    .iter()
                    .enumerate()
                    .find(|(i, _)| !placed[*i])
                    .map(|(_, g)| g.output.clone())
                    .unwrap_or_default();
                return Err(BenchError::Cycle { name: stuck });
            }
        }
    }

    /// Lowers the netlist onto a [`Network`], realizing each `.bench`
    /// gate as one `cells` cell (fan-in reduced through zero-time trees,
    /// see the module docs).
    ///
    /// # Errors
    ///
    /// Propagates [`Network`] builder failures as [`BenchError::Build`]
    /// (defensive — validation already covers the builder's checks).
    pub fn lower(&self, cells: &CellLibrary) -> Result<LoweredNetlist, BenchError> {
        let mut net = Network::new();
        let mut id_of: HashMap<&str, SignalId> = HashMap::new();
        let mut inputs = Vec::with_capacity(self.inputs.len());
        for name in &self.inputs {
            let id = net.add_input(name);
            id_of.insert(name, id);
            inputs.push(id);
        }
        for &gi in &self.topo {
            let g = &self.gates[gi];
            let ops: Vec<SignalId> = g.inputs.iter().map(|op| id_of[op.as_str()]).collect();
            let id = lower_gate(&mut net, cells, &g.output, g.func, &ops)?;
            id_of.insert(&g.output, id);
        }
        let outputs = self.outputs.iter().map(|o| id_of[o.as_str()]).collect();
        Ok(LoweredNetlist {
            net,
            inputs,
            outputs,
        })
    }
}

/// Lowers one `.bench` gate: a zero-time balanced reduction tree with the
/// timed cell at the root.
fn lower_gate(
    net: &mut Network,
    cells: &CellLibrary,
    name: &str,
    func: BenchFunc,
    ops: &[SignalId],
) -> Result<SignalId, BenchError> {
    let id = match func {
        BenchFunc::Not => cells.add_unary(net, name, GateKind::Not, ops[0])?,
        BenchFunc::Buff => cells.add_unary(net, name, GateKind::Buf, ops[0])?,
        BenchFunc::And | BenchFunc::Or | BenchFunc::Xor => {
            let kind = match func {
                BenchFunc::And => GateKind::And,
                BenchFunc::Or => GateKind::Or,
                _ => GateKind::Xor,
            };
            let mid = ops.len() / 2;
            let mut counter = 0;
            let left = reduce_ideal(net, name, kind, &ops[..mid], &mut counter)?;
            let right = reduce_ideal(net, name, kind, &ops[mid..], &mut counter)?;
            cells.add(net, name, kind, left, right)?
        }
        BenchFunc::Nand | BenchFunc::Nor => {
            // The inverting cell sits at the root; its fan-in halves are
            // reduced with the *non-inverted* function (AND under NAND,
            // OR under NOR) so the overall Boolean function is exact.
            let (inner, root) = if func == BenchFunc::Nand {
                (GateKind::And, GateKind::Nand)
            } else {
                (GateKind::Or, GateKind::Nor)
            };
            let mid = ops.len() / 2;
            let mut counter = 0;
            let left = reduce_ideal(net, name, inner, &ops[..mid], &mut counter)?;
            let right = reduce_ideal(net, name, inner, &ops[mid..], &mut counter)?;
            cells.add(net, name, root, left, right)?
        }
        BenchFunc::Xnor => {
            let mut counter = 0;
            let parity = reduce_ideal(net, name, GateKind::Xor, ops, &mut counter)?;
            cells.add_unary(net, name, GateKind::Not, parity)?
        }
    };
    Ok(id)
}

/// Reduces `ops` to one signal through a balanced tree of zero-time
/// `kind` gates (a single operand passes through untouched). Temporary
/// signals are named `<name>#t<k>`.
fn reduce_ideal(
    net: &mut Network,
    name: &str,
    kind: GateKind,
    ops: &[SignalId],
    counter: &mut usize,
) -> Result<SignalId, BenchError> {
    Ok(match ops {
        [] => unreachable!("arity checked at parse time"),
        [one] => *one,
        [a, b] => net.add_gate(&tmp_name(name, counter), kind, &[*a, *b], None)?,
        _ => {
            let mid = ops.len() / 2;
            let left = reduce_ideal(net, name, kind, &ops[..mid], counter)?;
            let right = reduce_ideal(net, name, kind, &ops[mid..], counter)?;
            net.add_gate(&tmp_name(name, counter), kind, &[left, right], None)?
        }
    })
}

fn tmp_name(name: &str, counter: &mut usize) -> String {
    let n = format!("{name}#t{counter}");
    *counter += 1;
    n
}

/// Splits `NAME ( a , b )` into the name and its operand list. Rejects
/// missing/mismatched parentheses, empty operands, and garbage after the
/// closing parenthesis.
fn parse_call<'a>(line: usize, code: &'a str) -> Result<(&'a str, Vec<&'a str>), BenchError> {
    let open = code.find('(').ok_or_else(|| BenchError::Syntax {
        line,
        reason: format!("expected '(' in '{code}'"),
    })?;
    let name = code[..open].trim();
    check_signal_name(line, name)?;
    let rest = &code[open + 1..];
    let close = rest.rfind(')').ok_or_else(|| BenchError::Syntax {
        line,
        reason: "missing ')'".into(),
    })?;
    if !rest[close + 1..].trim().is_empty() {
        return Err(BenchError::Syntax {
            line,
            reason: format!("unexpected trailing text '{}'", rest[close + 1..].trim()),
        });
    }
    let body = rest[..close].trim();
    if body.is_empty() {
        return Err(BenchError::Syntax {
            line,
            reason: "empty operand list".into(),
        });
    }
    let mut args = Vec::new();
    for op in body.split(',') {
        let op = op.trim();
        check_signal_name(line, op)?;
        args.push(op);
    }
    Ok((name, args))
}

/// Signal names: non-empty, no whitespace, none of the structural
/// characters `( ) , = #`.
fn check_signal_name(line: usize, name: &str) -> Result<(), BenchError> {
    if name.is_empty() {
        return Err(BenchError::Syntax {
            line,
            reason: "empty signal name".into(),
        });
    }
    if let Some(bad) = name
        .chars()
        .find(|c| c.is_whitespace() || "(),=#".contains(*c))
    {
        return Err(BenchError::Syntax {
            line,
            reason: format!("invalid character '{bad}' in signal name '{name}'"),
        });
    }
    Ok(())
}

fn check_arity(line: usize, func: BenchFunc, count: usize) -> Result<(), BenchError> {
    let ok = if func.is_unary() {
        count == 1
    } else {
        count >= 2
    };
    if ok {
        Ok(())
    } else {
        Err(BenchError::BadArity {
            line,
            function: func.name().to_owned(),
            count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_waveform::DigitalTrace;

    const C17: &str = "
        # c17 cut
        INPUT(1)
        INPUT(2)
        INPUT(3)
        INPUT(6)
        INPUT(7)
        OUTPUT(22)
        OUTPUT(23)
        10 = NAND(1, 3)
        11 = NAND(3, 6)
        16 = NAND(2, 11)
        19 = NAND(11, 7)
        22 = NAND(10, 16)
        23 = NAND(16, 19)
    ";

    #[test]
    fn parses_c17_and_round_trips() {
        let nl = BenchNetlist::parse(C17).unwrap();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gates().len(), 6);
        let again = BenchNetlist::parse(&nl.to_text()).unwrap();
        assert_eq!(nl, again);
    }

    #[test]
    fn forward_references_are_legal_and_lower_correctly() {
        // Gate `y` references `z`, defined later in the file.
        let nl = BenchNetlist::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = BUFF(a)").unwrap();
        let lowered = nl.lower(&CellLibrary::ideal()).unwrap();
        let traces = lowered.net.run(&[DigitalTrace::constant(true)]).unwrap();
        assert!(!traces[lowered.outputs[0].index()].initial_value());
    }

    #[test]
    fn wide_gates_reduce_to_exact_boolean_functions() {
        let nl = BenchNetlist::parse(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n\
             OUTPUT(w)\nOUTPUT(x)\nOUTPUT(y)\nOUTPUT(z)\n\
             w = NAND(a, b, c, d, e)\n\
             x = NOR(a, b, c)\n\
             y = XOR(a, b, c, d)\n\
             z = XNOR(a, b, c)",
        )
        .unwrap();
        let cells = CellLibrary::ideal();
        let lowered = nl.lower(&cells).unwrap();
        for bits in 0..32u32 {
            let vals: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let inputs: Vec<DigitalTrace> =
                vals.iter().map(|&v| DigitalTrace::constant(v)).collect();
            let traces = lowered.net.run(&inputs).unwrap();
            let get = |k: usize| traces[lowered.outputs[k].index()].initial_value();
            assert_eq!(get(0), !vals.iter().all(|&v| v), "NAND5 {bits:05b}");
            assert_eq!(get(1), !vals[..3].iter().any(|&v| v), "NOR3 {bits:05b}");
            let par4 = vals[..4].iter().filter(|&&v| v).count() % 2 == 1;
            assert_eq!(get(2), par4, "XOR4 {bits:05b}");
            let par3 = vals[..3].iter().filter(|&&v| v).count() % 2 == 1;
            assert_eq!(get(3), !par3, "XNOR3 {bits:05b}");
        }
    }

    #[test]
    fn comment_and_whitespace_torture() {
        let nl = BenchNetlist::parse(
            "\t # leading comment\n\
             \n\
             input( a )# trailing\n\
             INPUT(b)\n\
             output(y)\n\
             y   =   nand (  a ,\tb )   # gate\n",
        )
        .unwrap();
        assert_eq!(nl.inputs(), ["a", "b"]);
        assert_eq!(nl.outputs(), ["y"]);
        assert_eq!(nl.gates()[0].func, BenchFunc::Nand);
    }

    #[test]
    fn programmatic_constructor_rejects_unserializable_names() {
        // `to_text` guarantees its output re-parses to an equal netlist;
        // `new` must therefore reject names the text form cannot carry
        // (whitespace splits tokens, '#' starts a comment, '(),=' are
        // structural — and '#' also guards the lowering's temp names).
        for bad in ["y z", "a#b", "p(q", "", "a,b", "x=y"] {
            let r = BenchNetlist::new(
                vec!["a".into()],
                vec![],
                vec![BenchGate {
                    output: bad.to_owned(),
                    func: BenchFunc::Not,
                    inputs: vec!["a".into()],
                }],
            );
            assert!(
                matches!(r, Err(BenchError::Syntax { .. })),
                "name {bad:?} must be rejected, got {r:?}"
            );
        }
    }

    #[test]
    fn crlf_and_bom_parse_like_bare_newlines() {
        let plain = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
        let windows = "\u{FEFF}INPUT(a)\r\nINPUT(b)\r\nOUTPUT(y)\r\ny = NAND(a, b)\r\n";
        assert_eq!(
            BenchNetlist::parse(windows).unwrap(),
            BenchNetlist::parse(plain).unwrap()
        );
        // A BOM with no following newline convention still parses, and a
        // file ending in a bare `\r` (no final newline) does too.
        let stub = "\u{FEFF}INPUT(a)\ny = NOT(a)\r";
        assert_eq!(BenchNetlist::parse(stub).unwrap().gates().len(), 1);
    }

    #[test]
    fn buf_synonym_and_canonical_writer() {
        let nl = BenchNetlist::parse("INPUT(a)\nOUTPUT(y)\ny = BUF(a)").unwrap();
        assert_eq!(nl.gates()[0].func, BenchFunc::Buff);
        assert!(nl.to_text().contains("y = BUFF(a)"));
    }
}
