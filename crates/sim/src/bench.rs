//! ISCAS-85 `.bench` netlist ingestion: parser, writer, and lowering
//! onto the [`mis_digital::Network`] builder.
//!
//! The `.bench` format is the lingua franca of the ISCAS benchmark
//! distributions — line-oriented, with `INPUT(x)` / `OUTPUT(y)`
//! declarations and `z = FUNC(a, b, ...)` gate definitions, `#` comments,
//! and no ordering requirement (gates may reference signals defined
//! later in the file). [`BenchNetlist::parse`] accepts that full
//! generality; [`BenchNetlist::lower`] topologically sorts the gates and
//! emits a feed-forward [`Network`] (which *does* require declaration
//! order) with one timed cell per `.bench` gate.
//!
//! Fan-in beyond two is reduced through balanced trees of **zero-time**
//! gates, with the cell — the gate that carries the delay model — at the
//! root: an n-ary `NAND` becomes ideal `AND` subtrees feeding one
//! [`CellLibrary`]-realized `NAND2`, so every `.bench` gate contributes
//! exactly one channel's worth of delay regardless of width. `XNOR`
//! lowers as an ideal `XOR` tree with a celled `NOT` root.
//!
//! # Examples
//!
//! ```
//! use mis_sim::{BenchNetlist, CellLibrary};
//! use mis_waveform::DigitalTrace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//!     INPUT(a)
//!     INPUT(b)
//!     OUTPUT(y)
//!     y = NAND(a, b)  # one gate
//! ";
//! let parsed = BenchNetlist::parse(src)?;
//! assert_eq!(parsed.inputs().len(), 2);
//! let lowered = parsed.lower(&CellLibrary::ideal())?;
//! let a = DigitalTrace::constant(true);
//! let b = DigitalTrace::constant(true);
//! let traces = lowered.net.run(&[a, b])?;
//! assert!(!traces[lowered.outputs[0].index()].initial_value());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use mis_digital::{GateKind, Network, SignalId};

use crate::cells::CellLibrary;
use crate::error::BenchError;

/// A gate function the `.bench` format can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchFunc {
    /// n-ary AND.
    And,
    /// n-ary OR.
    Or,
    /// n-ary NAND.
    Nand,
    /// n-ary NOR.
    Nor,
    /// n-ary XOR (odd parity).
    Xor,
    /// n-ary XNOR (even parity).
    Xnor,
    /// Unary inverter.
    Not,
    /// Unary buffer.
    Buff,
}

impl BenchFunc {
    /// Parses a (case-insensitive) function name; `BUF` is accepted as a
    /// synonym for `BUFF`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        let n = name.to_ascii_uppercase();
        Some(match n.as_str() {
            "AND" => BenchFunc::And,
            "OR" => BenchFunc::Or,
            "NAND" => BenchFunc::Nand,
            "NOR" => BenchFunc::Nor,
            "XOR" => BenchFunc::Xor,
            "XNOR" => BenchFunc::Xnor,
            "NOT" => BenchFunc::Not,
            "BUF" | "BUFF" => BenchFunc::Buff,
            _ => return None,
        })
    }

    /// The canonical upper-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BenchFunc::And => "AND",
            BenchFunc::Or => "OR",
            BenchFunc::Nand => "NAND",
            BenchFunc::Nor => "NOR",
            BenchFunc::Xor => "XOR",
            BenchFunc::Xnor => "XNOR",
            BenchFunc::Not => "NOT",
            BenchFunc::Buff => "BUFF",
        }
    }

    /// Whether the function takes exactly one operand.
    #[must_use]
    pub fn is_unary(self) -> bool {
        matches!(self, BenchFunc::Not | BenchFunc::Buff)
    }
}

/// One `z = FUNC(a, b, ...)` definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchGate {
    /// The driven signal.
    pub output: String,
    /// The gate function.
    pub func: BenchFunc,
    /// Operand signal names, in written order.
    pub inputs: Vec<String>,
}

/// A parsed `.bench` netlist: declarations and definitions in file
/// order, structurally validated (no duplicates, no dangling references,
/// no combinational cycles) but not yet lowered to a [`Network`].
#[derive(Debug, Clone)]
pub struct BenchNetlist {
    inputs: Vec<String>,
    outputs: Vec<String>,
    gates: Vec<BenchGate>,
    /// 1-based source line of each `INPUT` declaration, parallel to
    /// `inputs` (0 for programmatically assembled netlists).
    input_lines: Vec<usize>,
    /// 1-based source line of each `OUTPUT` declaration, parallel to
    /// `outputs` (0 when programmatic).
    output_lines: Vec<usize>,
    /// 1-based source line of each gate definition, parallel to `gates`
    /// (0 when programmatic).
    gate_lines: Vec<usize>,
    /// Gate indices in topological order, computed once at validation
    /// (a pure function of `gates`).
    topo: Vec<usize>,
}

/// Equality is over the *declarations* only: source-line spans are
/// provenance, not netlist content (the canonical writer re-flows lines,
/// and round-trip identity `parse(to_text(n)) == n` must survive that),
/// and `topo` is a pure function of `gates`.
impl PartialEq for BenchNetlist {
    fn eq(&self, other: &Self) -> bool {
        self.inputs == other.inputs && self.outputs == other.outputs && self.gates == other.gates
    }
}

impl Eq for BenchNetlist {}

/// A `.bench` netlist lowered onto the [`Network`] builder.
#[derive(Debug)]
pub struct LoweredNetlist {
    /// The feed-forward network (gates in topological order; fan-in
    /// reduction trees interleaved before their roots).
    pub net: Network,
    /// Primary inputs, in `INPUT` declaration order.
    pub inputs: Vec<SignalId>,
    /// Designated outputs, in `OUTPUT` declaration order.
    pub outputs: Vec<SignalId>,
}

impl BenchNetlist {
    /// Assembles and validates a netlist from its parts (the programmatic
    /// twin of [`BenchNetlist::parse`], used e.g. by fixture generators).
    ///
    /// # Errors
    ///
    /// The same semantic violations `parse` reports — [`BenchError::Empty`],
    /// [`BenchError::Duplicate`], [`BenchError::Undefined`],
    /// [`BenchError::BadArity`], [`BenchError::Syntax`] (for names the
    /// text form cannot carry), [`BenchError::Cycle`] — with `line 0`
    /// throughout, as there is no source text to point into.
    pub fn new(
        inputs: Vec<String>,
        outputs: Vec<String>,
        gates: Vec<BenchGate>,
    ) -> Result<Self, BenchError> {
        for g in &gates {
            check_arity(0, g.func, g.inputs.len())?;
        }
        let (ni, no, ng) = (inputs.len(), outputs.len(), gates.len());
        BenchNetlist {
            inputs,
            outputs,
            gates,
            input_lines: vec![0; ni],
            output_lines: vec![0; no],
            gate_lines: vec![0; ng],
            topo: Vec::new(),
        }
        .validated()
    }

    /// Primary input names, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Output names, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    /// Gate definitions, in file order.
    #[must_use]
    pub fn gates(&self) -> &[BenchGate] {
        &self.gates
    }

    /// 1-based source line of each `INPUT` declaration, parallel to
    /// [`BenchNetlist::inputs`]. All zeros for netlists assembled with
    /// [`BenchNetlist::new`].
    #[must_use]
    pub fn input_lines(&self) -> &[usize] {
        &self.input_lines
    }

    /// 1-based source line of each `OUTPUT` declaration, parallel to
    /// [`BenchNetlist::outputs`] (0 when programmatic).
    #[must_use]
    pub fn output_lines(&self) -> &[usize] {
        &self.output_lines
    }

    /// 1-based source line of each gate definition, parallel to
    /// [`BenchNetlist::gates`] (0 when programmatic).
    #[must_use]
    pub fn gate_lines(&self) -> &[usize] {
        &self.gate_lines
    }

    /// Parses `.bench` text. Blank lines and `#` comments (whole-line or
    /// trailing) are ignored; `INPUT`/`OUTPUT` and function names are
    /// case-insensitive; whitespace is free around every token. Files
    /// exported from Windows tooling parse unchanged: CRLF line endings
    /// are accepted (both by `str::lines` and, for stray `\r`, by token
    /// trimming), and a leading UTF-8 byte-order mark is ignored.
    ///
    /// # Errors
    ///
    /// One [`BenchError`] variant per malformed-input class — see the
    /// variant docs.
    pub fn parse(text: &str) -> Result<Self, BenchError> {
        // The BOM would otherwise glue itself onto the first token and
        // turn `INPUT(...)` into an unrecognized keyword.
        let text = text.strip_prefix('\u{FEFF}').unwrap_or(text);
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut gates: Vec<BenchGate> = Vec::new();
        let mut input_lines = Vec::new();
        let mut output_lines = Vec::new();
        let mut gate_lines = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let line = no + 1;
            // Strip trailing comment, then surrounding whitespace.
            let code = raw.split('#').next().unwrap_or("").trim();
            if code.is_empty() {
                continue;
            }
            if let Some(eq) = code.find('=') {
                let name = code[..eq].trim();
                check_signal_name(line, name)?;
                let (func_name, args) = parse_call(line, code[eq + 1..].trim())?;
                let func =
                    BenchFunc::from_name(func_name).ok_or_else(|| BenchError::UnknownFunction {
                        line,
                        name: func_name.to_owned(),
                    })?;
                check_arity(line, func, args.len())?;
                gates.push(BenchGate {
                    output: name.to_owned(),
                    func,
                    inputs: args.iter().map(|&a| a.to_owned()).collect(),
                });
                gate_lines.push(line);
            } else {
                let (kw, args) = parse_call(line, code)?;
                let name = match (kw.to_ascii_uppercase().as_str(), args.as_slice()) {
                    ("INPUT", [name]) | ("OUTPUT", [name]) => *name,
                    ("INPUT" | "OUTPUT", _) => {
                        return Err(BenchError::Syntax {
                            line,
                            reason: format!("{kw} takes exactly one signal name"),
                        })
                    }
                    _ => {
                        return Err(BenchError::Syntax {
                            line,
                            reason: format!("expected INPUT/OUTPUT declaration, got '{kw}(...)'"),
                        })
                    }
                };
                if kw.eq_ignore_ascii_case("INPUT") {
                    inputs.push(name.to_owned());
                    input_lines.push(line);
                } else {
                    outputs.push(name.to_owned());
                    output_lines.push(line);
                }
            }
        }
        BenchNetlist {
            inputs,
            outputs,
            gates,
            input_lines,
            output_lines,
            gate_lines,
            topo: Vec::new(),
        }
        .validated()
    }

    /// Renders the netlist in canonical `.bench` form: `INPUT` block,
    /// `OUTPUT` block, then gate definitions in stored order. The output
    /// re-parses to an equal [`BenchNetlist`] (round-trip identity).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for i in &self.inputs {
            let _ = writeln!(s, "INPUT({i})");
        }
        s.push('\n');
        for o in &self.outputs {
            let _ = writeln!(s, "OUTPUT({o})");
        }
        s.push('\n');
        for g in &self.gates {
            let _ = write!(s, "{} = {}(", g.output, g.func.name());
            for (k, op) in g.inputs.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                s.push_str(op);
            }
            s.push_str(")\n");
        }
        s
    }

    /// Semantic validation shared by [`BenchNetlist::parse`] and
    /// [`BenchNetlist::new`] — the single place every semantic violation
    /// is diagnosed, consuming the retained source spans so parsed
    /// netlists report real line numbers (programmatic ones report 0):
    /// well-formed signal names (the text form must be able to carry
    /// every name — redundant after `parse`, load-bearing for `new`), at
    /// least one input, no duplicate definitions (reported at the second
    /// occurrence in source order), no dangling references (reported at
    /// the first referencing line), no cycles. Stores the topological
    /// order for [`BenchNetlist::lower`] on success.
    fn validated(mut self) -> Result<Self, BenchError> {
        for (i, name) in self.inputs.iter().enumerate() {
            check_signal_name(self.input_lines[i], name)?;
        }
        for (i, name) in self.outputs.iter().enumerate() {
            check_signal_name(self.output_lines[i], name)?;
        }
        for (i, g) in self.gates.iter().enumerate() {
            check_signal_name(self.gate_lines[i], &g.output)?;
            for op in &g.inputs {
                check_signal_name(self.gate_lines[i], op)?;
            }
        }
        if self.inputs.is_empty() {
            return Err(BenchError::Empty);
        }
        // Definitions in source order (stable for the all-zero
        // programmatic spans, where vector order — inputs, then gates —
        // stands in for file order), so a duplicate is reported at its
        // *second* occurrence.
        let mut defs: Vec<(&str, usize)> = self
            .inputs
            .iter()
            .zip(&self.input_lines)
            .map(|(n, &l)| (n.as_str(), l))
            .chain(
                self.gates
                    .iter()
                    .zip(&self.gate_lines)
                    .map(|(g, &l)| (g.output.as_str(), l)),
            )
            .collect();
        defs.sort_by_key(|&(_, line)| line);
        let mut defined: HashMap<&str, ()> = HashMap::new();
        for (name, line) in defs {
            if defined.insert(name, ()).is_some() {
                return Err(BenchError::Duplicate {
                    line,
                    name: name.to_owned(),
                });
            }
        }
        // References in source order: gate operands at their gate's line,
        // `OUTPUT` declarations at their own.
        let mut refs: Vec<(&str, usize)> = self
            .gates
            .iter()
            .zip(&self.gate_lines)
            .flat_map(|(g, &l)| g.inputs.iter().map(move |op| (op.as_str(), l)))
            .chain(
                self.outputs
                    .iter()
                    .zip(&self.output_lines)
                    .map(|(n, &l)| (n.as_str(), l)),
            )
            .collect();
        refs.sort_by_key(|&(_, line)| line);
        for (name, line) in refs {
            if !defined.contains_key(name) {
                return Err(BenchError::Undefined {
                    line,
                    name: name.to_owned(),
                });
            }
        }
        self.topo = self.topo_order()?;
        Ok(self)
    }

    /// Gate indices in a topological order (inputs-before-users), stable
    /// with respect to file order among independent gates.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Cycle`] naming a signal on a cycle.
    fn topo_order(&self) -> Result<Vec<usize>, BenchError> {
        let gate_of: HashMap<&str, usize> = self
            .gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.output.as_str(), i))
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        let mut placed = vec![false; self.gates.len()];
        // Repeated stable scans: quadratic in the worst case, but netlist
        // files are small and the scan preserves file order among ready
        // gates, which keeps lowering deterministic and diffable.
        loop {
            let mut progressed = false;
            for (i, g) in self.gates.iter().enumerate() {
                if placed[i] {
                    continue;
                }
                let ready = g
                    .inputs
                    .iter()
                    .all(|op| gate_of.get(op.as_str()).is_none_or(|&j| placed[j]));
                if ready {
                    placed[i] = true;
                    order.push(i);
                    progressed = true;
                }
            }
            if order.len() == self.gates.len() {
                return Ok(order);
            }
            if !progressed {
                let (line, stuck) = self
                    .gates
                    .iter()
                    .enumerate()
                    .find(|(i, _)| !placed[*i])
                    .map(|(i, g)| (self.gate_lines[i], g.output.clone()))
                    .unwrap_or_default();
                return Err(BenchError::Cycle { line, name: stuck });
            }
        }
    }

    /// Lowers the netlist onto a [`Network`], realizing each `.bench`
    /// gate as one `cells` cell (fan-in reduced through zero-time trees,
    /// see the module docs).
    ///
    /// # Errors
    ///
    /// Propagates [`Network`] builder failures as [`BenchError::Build`]
    /// (defensive — validation already covers the builder's checks).
    pub fn lower(&self, cells: &CellLibrary) -> Result<LoweredNetlist, BenchError> {
        let mut net = Network::new();
        let mut id_of: HashMap<&str, SignalId> = HashMap::new();
        let mut inputs = Vec::with_capacity(self.inputs.len());
        for name in &self.inputs {
            let id = net.add_input(name);
            id_of.insert(name, id);
            inputs.push(id);
        }
        for &gi in &self.topo {
            let g = &self.gates[gi];
            let ops: Vec<SignalId> = g.inputs.iter().map(|op| id_of[op.as_str()]).collect();
            let id = lower_gate(&mut net, cells, &g.output, g.func, &ops)?;
            id_of.insert(&g.output, id);
        }
        let outputs = self.outputs.iter().map(|o| id_of[o.as_str()]).collect();
        Ok(LoweredNetlist {
            net,
            inputs,
            outputs,
        })
    }

    /// Exact post-lowering size of this netlist — the signal count and
    /// total fan-out edge count [`BenchNetlist::lower`] will produce —
    /// computed *without* building anything, so callers (the `A007`
    /// pre-flight lint) can predict
    /// [`mis_digital::SimError::NetworkTooLarge`] before
    /// [`crate::Simulator::new`] allocates. Counts saturate instead of
    /// wrapping, which keeps the comparison against
    /// [`crate::ENGINE_INDEX_MAX`] meaningful even for absurd inputs.
    ///
    /// Per `.bench` gate of fan-in `n`, lowering emits: `n − 1` two-input
    /// gates for `AND`/`OR`/`XOR`/`NAND`/`NOR` (a balanced zero-time tree
    /// with the timed cell at the root), `n − 1` two-input gates plus a
    /// unary root for `XNOR`, and one unary gate for `NOT`/`BUFF`. Each
    /// two-input gate contributes two fan-out edges, each unary gate one.
    #[must_use]
    pub fn lowered_stats(&self) -> LoweredStats {
        let mut signals = self.inputs.len();
        let mut edges = 0usize;
        for g in &self.gates {
            let n = g.inputs.len();
            let (binary, unary) = match g.func {
                BenchFunc::Not | BenchFunc::Buff => (0, 1),
                BenchFunc::Xnor => (n - 1, 1),
                _ => (n - 1, 0),
            };
            signals = signals.saturating_add(binary + unary);
            edges = edges.saturating_add(2 * binary + unary);
        }
        LoweredStats { signals, edges }
    }
}

/// The exact size [`BenchNetlist::lower`] produces, predicted by
/// [`BenchNetlist::lowered_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweredStats {
    /// Total signal count of the lowered [`Network`] (primary inputs,
    /// reduction-tree temporaries, and cell roots).
    pub signals: usize,
    /// Total fan-out edge count (with multiplicity).
    pub edges: usize,
}

/// Lowers one `.bench` gate: a zero-time balanced reduction tree with the
/// timed cell at the root.
fn lower_gate(
    net: &mut Network,
    cells: &CellLibrary,
    name: &str,
    func: BenchFunc,
    ops: &[SignalId],
) -> Result<SignalId, BenchError> {
    let id = match func {
        BenchFunc::Not => cells.add_unary(net, name, GateKind::Not, ops[0])?,
        BenchFunc::Buff => cells.add_unary(net, name, GateKind::Buf, ops[0])?,
        BenchFunc::And | BenchFunc::Or | BenchFunc::Xor => {
            let kind = match func {
                BenchFunc::And => GateKind::And,
                BenchFunc::Or => GateKind::Or,
                _ => GateKind::Xor,
            };
            let mid = ops.len() / 2;
            let mut counter = 0;
            let left = reduce_ideal(net, name, kind, &ops[..mid], &mut counter)?;
            let right = reduce_ideal(net, name, kind, &ops[mid..], &mut counter)?;
            cells.add(net, name, kind, left, right)?
        }
        BenchFunc::Nand | BenchFunc::Nor => {
            // The inverting cell sits at the root; its fan-in halves are
            // reduced with the *non-inverted* function (AND under NAND,
            // OR under NOR) so the overall Boolean function is exact.
            let (inner, root) = if func == BenchFunc::Nand {
                (GateKind::And, GateKind::Nand)
            } else {
                (GateKind::Or, GateKind::Nor)
            };
            let mid = ops.len() / 2;
            let mut counter = 0;
            let left = reduce_ideal(net, name, inner, &ops[..mid], &mut counter)?;
            let right = reduce_ideal(net, name, inner, &ops[mid..], &mut counter)?;
            cells.add(net, name, root, left, right)?
        }
        BenchFunc::Xnor => {
            let mut counter = 0;
            let parity = reduce_ideal(net, name, GateKind::Xor, ops, &mut counter)?;
            cells.add_unary(net, name, GateKind::Not, parity)?
        }
    };
    Ok(id)
}

/// Reduces `ops` to one signal through a balanced tree of zero-time
/// `kind` gates (a single operand passes through untouched). Temporary
/// signals are named `<name>#t<k>`.
fn reduce_ideal(
    net: &mut Network,
    name: &str,
    kind: GateKind,
    ops: &[SignalId],
    counter: &mut usize,
) -> Result<SignalId, BenchError> {
    Ok(match ops {
        [] => unreachable!("arity checked at parse time"),
        [one] => *one,
        [a, b] => net.add_gate(&tmp_name(name, counter), kind, &[*a, *b], None)?,
        _ => {
            let mid = ops.len() / 2;
            let left = reduce_ideal(net, name, kind, &ops[..mid], counter)?;
            let right = reduce_ideal(net, name, kind, &ops[mid..], counter)?;
            net.add_gate(&tmp_name(name, counter), kind, &[left, right], None)?
        }
    })
}

fn tmp_name(name: &str, counter: &mut usize) -> String {
    let n = format!("{name}#t{counter}");
    *counter += 1;
    n
}

/// Splits `NAME ( a , b )` into the name and its operand list. Rejects
/// missing/mismatched parentheses, empty operands, and garbage after the
/// closing parenthesis.
fn parse_call(line: usize, code: &str) -> Result<(&str, Vec<&str>), BenchError> {
    let open = code.find('(').ok_or_else(|| BenchError::Syntax {
        line,
        reason: format!("expected '(' in '{code}'"),
    })?;
    let name = code[..open].trim();
    check_signal_name(line, name)?;
    let rest = &code[open + 1..];
    let close = rest.rfind(')').ok_or_else(|| BenchError::Syntax {
        line,
        reason: "missing ')'".into(),
    })?;
    if !rest[close + 1..].trim().is_empty() {
        return Err(BenchError::Syntax {
            line,
            reason: format!("unexpected trailing text '{}'", rest[close + 1..].trim()),
        });
    }
    let body = rest[..close].trim();
    if body.is_empty() {
        return Err(BenchError::Syntax {
            line,
            reason: "empty operand list".into(),
        });
    }
    let mut args = Vec::new();
    for op in body.split(',') {
        let op = op.trim();
        check_signal_name(line, op)?;
        args.push(op);
    }
    Ok((name, args))
}

/// Signal names: non-empty, no whitespace, none of the structural
/// characters `( ) , = #`.
fn check_signal_name(line: usize, name: &str) -> Result<(), BenchError> {
    if name.is_empty() {
        return Err(BenchError::Syntax {
            line,
            reason: "empty signal name".into(),
        });
    }
    if let Some(bad) = name
        .chars()
        .find(|c| c.is_whitespace() || "(),=#".contains(*c))
    {
        return Err(BenchError::Syntax {
            line,
            reason: format!("invalid character '{bad}' in signal name '{name}'"),
        });
    }
    Ok(())
}

fn check_arity(line: usize, func: BenchFunc, count: usize) -> Result<(), BenchError> {
    let ok = if func.is_unary() {
        count == 1
    } else {
        count >= 2
    };
    if ok {
        Ok(())
    } else {
        Err(BenchError::BadArity {
            line,
            function: func.name().to_owned(),
            count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_waveform::DigitalTrace;

    const C17: &str = "
        # c17 cut
        INPUT(1)
        INPUT(2)
        INPUT(3)
        INPUT(6)
        INPUT(7)
        OUTPUT(22)
        OUTPUT(23)
        10 = NAND(1, 3)
        11 = NAND(3, 6)
        16 = NAND(2, 11)
        19 = NAND(11, 7)
        22 = NAND(10, 16)
        23 = NAND(16, 19)
    ";

    #[test]
    fn parses_c17_and_round_trips() {
        let nl = BenchNetlist::parse(C17).unwrap();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gates().len(), 6);
        let again = BenchNetlist::parse(&nl.to_text()).unwrap();
        assert_eq!(nl, again);
    }

    #[test]
    fn forward_references_are_legal_and_lower_correctly() {
        // Gate `y` references `z`, defined later in the file.
        let nl = BenchNetlist::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = BUFF(a)").unwrap();
        let lowered = nl.lower(&CellLibrary::ideal()).unwrap();
        let traces = lowered.net.run(&[DigitalTrace::constant(true)]).unwrap();
        assert!(!traces[lowered.outputs[0].index()].initial_value());
    }

    #[test]
    fn wide_gates_reduce_to_exact_boolean_functions() {
        let nl = BenchNetlist::parse(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n\
             OUTPUT(w)\nOUTPUT(x)\nOUTPUT(y)\nOUTPUT(z)\n\
             w = NAND(a, b, c, d, e)\n\
             x = NOR(a, b, c)\n\
             y = XOR(a, b, c, d)\n\
             z = XNOR(a, b, c)",
        )
        .unwrap();
        let cells = CellLibrary::ideal();
        let lowered = nl.lower(&cells).unwrap();
        for bits in 0..32u32 {
            let vals: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let inputs: Vec<DigitalTrace> =
                vals.iter().map(|&v| DigitalTrace::constant(v)).collect();
            let traces = lowered.net.run(&inputs).unwrap();
            let get = |k: usize| traces[lowered.outputs[k].index()].initial_value();
            assert_eq!(get(0), !vals.iter().all(|&v| v), "NAND5 {bits:05b}");
            assert_eq!(get(1), !vals[..3].iter().any(|&v| v), "NOR3 {bits:05b}");
            let par4 = vals[..4].iter().filter(|&&v| v).count() % 2 == 1;
            assert_eq!(get(2), par4, "XOR4 {bits:05b}");
            let par3 = vals[..3].iter().filter(|&&v| v).count() % 2 == 1;
            assert_eq!(get(3), !par3, "XNOR3 {bits:05b}");
        }
    }

    #[test]
    fn comment_and_whitespace_torture() {
        let nl = BenchNetlist::parse(
            "\t # leading comment\n\
             \n\
             input( a )# trailing\n\
             INPUT(b)\n\
             output(y)\n\
             y   =   nand (  a ,\tb )   # gate\n",
        )
        .unwrap();
        assert_eq!(nl.inputs(), ["a", "b"]);
        assert_eq!(nl.outputs(), ["y"]);
        assert_eq!(nl.gates()[0].func, BenchFunc::Nand);
    }

    #[test]
    fn programmatic_constructor_rejects_unserializable_names() {
        // `to_text` guarantees its output re-parses to an equal netlist;
        // `new` must therefore reject names the text form cannot carry
        // (whitespace splits tokens, '#' starts a comment, '(),=' are
        // structural — and '#' also guards the lowering's temp names).
        for bad in ["y z", "a#b", "p(q", "", "a,b", "x=y"] {
            let r = BenchNetlist::new(
                vec!["a".into()],
                vec![],
                vec![BenchGate {
                    output: bad.to_owned(),
                    func: BenchFunc::Not,
                    inputs: vec!["a".into()],
                }],
            );
            assert!(
                matches!(r, Err(BenchError::Syntax { .. })),
                "name {bad:?} must be rejected, got {r:?}"
            );
        }
    }

    #[test]
    fn crlf_and_bom_parse_like_bare_newlines() {
        let plain = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
        let windows = "\u{FEFF}INPUT(a)\r\nINPUT(b)\r\nOUTPUT(y)\r\ny = NAND(a, b)\r\n";
        assert_eq!(
            BenchNetlist::parse(windows).unwrap(),
            BenchNetlist::parse(plain).unwrap()
        );
        // A BOM with no following newline convention still parses, and a
        // file ending in a bare `\r` (no final newline) does too.
        let stub = "\u{FEFF}INPUT(a)\ny = NOT(a)\r";
        assert_eq!(BenchNetlist::parse(stub).unwrap().gates().len(), 1);
    }

    #[test]
    fn errors_carry_real_source_lines() {
        // Duplicate: reported at the *second* occurrence.
        match BenchNetlist::parse("INPUT(a)\n\nINPUT(a)").unwrap_err() {
            BenchError::Duplicate { line, name } => {
                assert_eq!((line, name.as_str()), (3, "a"));
            }
            other => panic!("expected Duplicate, got {other:?}"),
        }
        match BenchNetlist::parse("INPUT(a)\ny = NOT(a)\n# pad\ny = BUFF(a)").unwrap_err() {
            BenchError::Duplicate { line, name } => {
                assert_eq!((line, name.as_str()), (4, "y"));
            }
            other => panic!("expected Duplicate, got {other:?}"),
        }
        // BadArity and Syntax: the offending definition's line.
        match BenchNetlist::parse("INPUT(a)\n\ny = NOT(a, a)").unwrap_err() {
            BenchError::BadArity { line, .. } => assert_eq!(line, 3),
            other => panic!("expected BadArity, got {other:?}"),
        }
        match BenchNetlist::parse("INPUT(a)\ny = NOT(a) trailing").unwrap_err() {
            BenchError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Syntax, got {other:?}"),
        }
        // Undefined: the first referencing line (here the OUTPUT
        // declaration precedes the gate that also references it).
        match BenchNetlist::parse("INPUT(a)\nOUTPUT(ghost)\ny = NAND(a, ghost)").unwrap_err() {
            BenchError::Undefined { line, name } => {
                assert_eq!((line, name.as_str()), (2, "ghost"));
            }
            other => panic!("expected Undefined, got {other:?}"),
        }
        // Cycle: a gate definition on the cycle.
        match BenchNetlist::parse("INPUT(a)\nx = NAND(a, y)\ny = NAND(a, x)").unwrap_err() {
            BenchError::Cycle { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Cycle, got {other:?}"),
        }
    }

    #[test]
    fn spans_track_declarations_and_survive_cloning() {
        let nl = BenchNetlist::parse(C17).unwrap();
        assert_eq!(nl.input_lines(), [3, 4, 5, 6, 7]);
        assert_eq!(nl.output_lines(), [8, 9]);
        assert_eq!(nl.gate_lines(), [10, 11, 12, 13, 14, 15]);
        // Spans are provenance, not content: the round-tripped netlist
        // compares equal even though the writer re-flowed every line.
        let again = BenchNetlist::parse(&nl.to_text()).unwrap();
        assert_eq!(nl, again);
        assert_ne!(nl.input_lines(), again.input_lines());
        // Programmatic netlists carry zero spans.
        let built = BenchNetlist::new(
            nl.inputs().to_vec(),
            nl.outputs().to_vec(),
            nl.gates().to_vec(),
        )
        .unwrap();
        assert_eq!(built, nl);
        assert!(built.input_lines().iter().all(|&l| l == 0));
        assert!(built.gate_lines().iter().all(|&l| l == 0));
    }

    #[test]
    fn lowered_stats_match_lowering_exactly() {
        for src in [
            C17,
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n\
             OUTPUT(w)\nOUTPUT(x)\nOUTPUT(y)\nOUTPUT(z)\n\
             w = NAND(a, b, c, d, e)\n\
             x = NOR(a, b, c)\n\
             y = XOR(a, b, c, d)\n\
             z = XNOR(a, b, c)",
            "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = BUFF(n)",
        ] {
            let nl = BenchNetlist::parse(src).unwrap();
            let stats = nl.lowered_stats();
            let lowered = nl.lower(&CellLibrary::ideal()).unwrap();
            assert_eq!(stats.signals, lowered.net.signal_count(), "{src:?}");
            let mut edges = 0;
            for s in 0..lowered.net.signal_count() {
                let id = lowered.net.signal_id(s).unwrap();
                edges += match lowered.net.source(id) {
                    mis_digital::SignalSource::Input => 0,
                    mis_digital::SignalSource::Gate { inputs, .. } => inputs.len(),
                    mis_digital::SignalSource::TwoInputChannelGate { .. } => 2,
                };
            }
            assert_eq!(stats.edges, edges, "{src:?}");
        }
    }

    #[test]
    fn buf_synonym_and_canonical_writer() {
        let nl = BenchNetlist::parse("INPUT(a)\nOUTPUT(y)\ny = BUF(a)").unwrap();
        assert_eq!(nl.gates()[0].func, BenchFunc::Buff);
        assert!(nl.to_text().contains("y = BUFF(a)"));
    }
}
